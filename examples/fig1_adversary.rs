//! Reproduces **Figure 1** of the paper: the strong adversary that forces
//! the weakener's `p2` to loop forever against plain ABD, for both coin
//! values, and prints the executions as per-process timelines.
//!
//! ```sh
//! cargo run --example fig1_adversary
//! ```

use blunting::adversary::fig1::fig1_script;
use blunting::programs::weakener::{is_bad, site_c, site_u1, site_u2};
use blunting::sim::kernel::run;
use blunting::sim::rng::Tape;

fn main() {
    for coin in 0..2usize {
        println!("==============================================================");
        println!("Figure 1, case coin = {coin}");
        println!("==============================================================");
        let mut sched = fig1_script(coin);
        let report = run(
            blunting::abd::scenarios::weakener_abd(1),
            &mut sched,
            &mut Tape::new(vec![coin]),
            true,
            10_000,
        )
        .expect("the scripted schedule is complete");

        println!("{}", report.trace.timeline(3));
        println!(
            "u1 = {}, u2 = {}, c = {}",
            report.outcome.get(&site_u1()).unwrap(),
            report.outcome.get(&site_u2()).unwrap(),
            report.outcome.get(&site_c()).unwrap(),
        );
        assert!(is_bad(&report.outcome));
        println!("⇒ (u1 = c) ∧ (u2 = 1 − c): p2 loops forever. Adversary wins.\n");
    }
    println!("The adversary wins for BOTH coin values: with plain ABD the");
    println!("weakener's nontermination probability is 1, versus 1/2 with");
    println!("atomic registers (Appendix A.1/A.2 of the paper).");
}
