//! Explore the Theorem 4.2 bound landscape: how many preamble iterations
//! buy how much blunting, across process counts and random-step budgets
//! (the paper's time-complexity/probability trade-off, Sections 4.2 & 7).
//!
//! ```sh
//! cargo run --example bound_explorer            # default grid
//! cargo run --example bound_explorer -- 5 3 64  # n r k_max
//! ```

use blunting::core::bound::{bound_curve, min_iterations_for_advantage};
use blunting::core::ratio::Ratio;

fn main() {
    let args: Vec<u32> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let (n, r, k_max) = match args[..] {
        [n, r, k] => (n, r, k),
        _ => (3, 1, 16),
    };

    let pa = Ratio::new(1, 2);
    let pl = Ratio::ONE;
    println!("Theorem 4.2 for n = {n} processes, r = {r} program random steps,");
    println!("Prob[O_a] = {pa}, Prob[O] = {pl}:\n");
    println!(
        "{:>4} | {:>12} | {:>12} | {:>12}",
        "k", "Prob[X] ≥", "advantage", "bound ≤"
    );
    println!("{}", "-".repeat(52));
    for point in bound_curve(pa, pl, n, r, k_max) {
        println!(
            "{:>4} | {:>12} | {:>12} | {:>12}",
            point.k,
            point.prob_x.to_string(),
            point.advantage.to_string(),
            point.bound.to_string(),
        );
    }

    println!("\nIterations needed to cap the adversary's advantage:");
    for (num, den) in [(1i128, 2i128), (1, 4), (1, 10), (1, 100)] {
        let eps = Ratio::new(num, den);
        match min_iterations_for_advantage(n, r, eps, 1_000_000) {
            Some(k) => println!("  advantage ≤ {eps:<6} needs k = {k}"),
            None => println!("  advantage ≤ {eps:<6} not reachable below k = 10⁶"),
        }
    }

    println!("\nAnd across system sizes (advantage ≤ 1/10):");
    println!("{:>4} | k needed for r = 1, 2, 4, 8", "n");
    for n in [2u32, 3, 4, 8, 16] {
        let ks: Vec<String> = [1u32, 2, 4, 8]
            .iter()
            .map(|&r| {
                min_iterations_for_advantage(n, r, Ratio::new(1, 10), 1_000_000)
                    .map_or("∞".into(), |k| k.to_string())
            })
            .collect();
        println!("{:>4} | {}", n, ks.join(", "));
    }
}
