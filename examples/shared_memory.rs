//! Tour of the shared-memory constructions (Sections 5.2–5.4): run the
//! snapshot, Vitányi–Awerbuch, and Israeli–Li implementations under random
//! schedules, check the resulting histories with the linearizability
//! checker, and compare exact adversarial values against atomic baselines.
//!
//! ```sh
//! cargo run --release --example shared_memory
//! ```

use blunting::core::ids::ObjId;
use blunting::core::spec::{RegisterSpec, SnapshotSpec};
use blunting::core::value::Val;
use blunting::lincheck::wgl::check_linearizable;
use blunting::registers::scenarios::{ghw_atomic, ghw_snapshot, sw_weakener_il, weakener_va};
use blunting::sim::explore::{worst_case_prob, ExploreBudget};
use blunting::sim::kernel::run;
use blunting::sim::rng::SplitMix64;
use blunting::sim::sched::RandomScheduler;

fn main() {
    // 1. The Afek et al. snapshot under the snapshot weakener.
    println!("== Afek et al. snapshot (Section 5.2) ==");
    let report = run(
        ghw_snapshot(2),
        &mut RandomScheduler::new(3),
        &mut SplitMix64::new(3),
        true,
        100_000,
    )
    .unwrap();
    println!("one snapshot² execution: outcome {}", report.outcome);
    let h = report.trace.history().project(ObjId(0));
    let ok = check_linearizable(&h, &SnapshotSpec::new(3, Val::Nil)).is_ok();
    println!("history linearizable w.r.t. the snapshot spec: {ok}");
    assert!(ok);

    let budget = ExploreBudget::with_max_states(2_000_000);
    let bad = blunting::programs::ghw::is_bad;
    let (pa, _) = worst_case_prob(&ghw_atomic(), &bad, &budget).unwrap();
    let (p1, _) = worst_case_prob(&ghw_snapshot(1), &bad, &budget).unwrap();
    let (p2, _) = worst_case_prob(&ghw_snapshot(2), &bad, &budget).unwrap();
    println!("exact adversarial bad probability: atomic {pa}, snapshot {p1}, snapshot² {p2}");
    println!("(single-update-per-process programs give this snapshot no leverage —");
    println!(" the ABD amplification needs the quorum freedom of message passing;");
    println!(" see EXPERIMENTS.md, experiment E9.)\n");

    // 2. Vitányi–Awerbuch under the weakener.
    println!("== Vitányi–Awerbuch MWMR register (Section 5.3) ==");
    let wbad = blunting::programs::weakener::is_bad;
    let (v1, _) = worst_case_prob(&weakener_va(1), &wbad, &budget).unwrap();
    let (v2, _) = worst_case_prob(&weakener_va(2), &wbad, &budget).unwrap();
    println!("exact adversarial bad probability: VA {v1}, VA² {v2}");
    let report = run(
        weakener_va(2),
        &mut RandomScheduler::new(9),
        &mut SplitMix64::new(9),
        true,
        100_000,
    )
    .unwrap();
    let h = report.trace.history().project(ObjId(0));
    assert!(check_linearizable(&h, &RegisterSpec::new(Val::Nil)).is_ok());
    println!("sampled VA² history linearizable: true\n");

    // 3. Israeli–Li under the single-writer weakener.
    println!("== Israeli–Li SWMR register (Section 5.4) ==");
    let (i1, _) = worst_case_prob(&sw_weakener_il(1), &wbad, &budget).unwrap();
    let (i2, _) = worst_case_prob(&sw_weakener_il(2), &wbad, &budget).unwrap();
    println!("exact adversarial bad probability: IL {i1}, IL² {i2}");
    let report = run(
        sw_weakener_il(2),
        &mut RandomScheduler::new(5),
        &mut SplitMix64::new(5),
        true,
        100_000,
    )
    .unwrap();
    let h = report.trace.history().project(ObjId(0));
    assert!(check_linearizable(&h, &RegisterSpec::new(Val::Nil)).is_ok());
    println!("sampled IL² history linearizable: true");
}
