//! Quickstart: run the weakener program (Algorithm 1 of the paper) against
//! atomic registers, plain ABD, and the preamble-iterated ABD², and print
//! what the paper's quantitative story looks like from the library's API.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use blunting::abd::scenarios::{weakener_abd, weakener_atomic};
use blunting::adversary::report::weakener_theorem_bound;
use blunting::core::ratio::Ratio;
use blunting::programs::weakener::is_bad;
use blunting::sim::explore::{worst_case_prob, ExploreBudget};
use blunting::sim::kernel::run;
use blunting::sim::montecarlo::estimate;
use blunting::sim::rng::SplitMix64;
use blunting::sim::sched::RandomScheduler;

fn main() {
    println!("== The weakener (Algorithm 1) ==\n");
    println!("{}", blunting::programs::weakener::weakener());

    // 1. One concrete execution of the weakener over ABD², traced.
    let report = run(
        weakener_abd(2),
        &mut RandomScheduler::new(42),
        &mut SplitMix64::new(42),
        true,
        50_000,
    )
    .expect("the weakener always terminates under complete schedules");
    println!("one ABD² execution under a random schedule:");
    println!("  outcome:            {}", report.outcome);
    println!("  bad (p2 loops)?     {}", is_bad(&report.outcome));
    println!("  scheduled events:   {}", report.steps);
    println!("  message deliveries: {}", report.trace.delivery_count());
    println!(
        "  program / object random steps: {} / {}",
        report.trace.program_random_count(),
        report.trace.object_random_count()
    );

    // 2. The exact adversarial value with atomic registers (Appendix A.1).
    let (atomic, stats) = worst_case_prob(&weakener_atomic(), &is_bad, &ExploreBudget::default())
        .expect("the atomic game is small");
    println!("\nexact worst-case bad probability, atomic registers: {atomic}");
    println!("  ({} states explored)", stats.states);
    assert_eq!(atomic, Ratio::new(1, 2));

    // 3. Theorem 4.2's bound for ABD^k on this program (n = 3, r = 1).
    println!("\nTheorem 4.2 bound on Prob[bad] for ABD^k:");
    for k in [1u32, 2, 3, 4, 8, 16] {
        println!(
            "  k = {k:>2}: bad ≤ {}  (termination ≥ {})",
            weakener_theorem_bound(k),
            weakener_theorem_bound(k).complement()
        );
    }

    // 4. An oblivious (random) environment for contrast: far from the
    //    adversarial worst case.
    let est = estimate(
        || weakener_abd(1),
        RandomScheduler::new,
        is_bad,
        2_000,
        7,
        100_000,
    )
    .expect("runs complete");
    let (lo, hi) = est.wilson_interval(1.96);
    println!(
        "\nrandom-scheduling frequency of the bad outcome over plain ABD: \
         {:.3} (95% CI [{lo:.3}, {hi:.3}])",
        est.mean()
    );
    println!("…while the Figure 1 adversary forces it with probability 1.");
    println!("\nSee `cargo run --example fig1_adversary` for that attack, and");
    println!("`cargo run --release -p blunt-bench --bin experiments` for the full");
    println!("paper-vs-measured table.");
}
