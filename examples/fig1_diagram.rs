//! Renders the paper's **Figure 1** as an ASCII space-time diagram from a
//! recorded trace, annotates it with the happens-before race report, and
//! explains the adversary's decisions with a principal variation and a
//! slice of the expectimax game tree.
//!
//! ```sh
//! cargo run --example fig1_diagram
//! ```

use blunt_adversary::fig1::fig1_script;
use blunt_adversary::search;
use blunt_programs::weakener::is_bad;
use blunt_sim::explore::ExploreBudget;
use blunt_sim::kernel::run;
use blunt_sim::rng::Tape;
use blunt_trace::{analyze, render_pv, render_tree, space_time, DiagramOptions};

fn main() {
    for coin in 0..2usize {
        println!("================================================================");
        println!("Figure 1, case coin = {coin}: space-time diagram");
        println!("================================================================");
        let report = run(
            blunt_abd::scenarios::weakener_abd(1),
            &mut fig1_script(coin),
            &mut Tape::new(vec![coin]),
            true,
            10_000,
        )
        .expect("the scripted schedule is complete");
        assert!(is_bad(&report.outcome), "the Figure 1 adversary wins");

        println!(
            "{}",
            space_time(&report.trace, 3, &DiagramOptions::default())
        );

        // Which of those steps did the adversary *choose* to order, and
        // which orders were forced? The happens-before report lists the
        // freedom the schedule exploited.
        let hb = analyze(&report.trace, 3);
        println!("{}", hb.report(&report.trace).summary(&report.trace));
    }

    println!("================================================================");
    println!("Why the adversary plays this way: the expectimax explanation");
    println!("================================================================");
    println!("(atomic-register weakener — small enough to solve and print here;");
    println!(" the fused ABD game gives the Figure 1 schedule itself, see");
    println!(" blunt_adversary::search::fused_principal_variation)\n");

    let budget = ExploreBudget::default();
    let (value, stats, tree) =
        search::exact_worst_atomic_traced(&budget, 50_000).expect("atomic game solves");
    println!(
        "atomic game value: {value} ({} states explored)\n",
        stats.states
    );
    println!("{}", render_tree(&tree, 40));

    for coin in 0..2usize {
        let pv = search::atomic_principal_variation(vec![coin], &budget, 10_000)
            .expect("principal variation exists");
        println!("--- coin = {coin} ---");
        println!("{}", render_pv(&pv));
        println!(
            "adversary {} on this coin\n",
            if is_bad(&pv.outcome) { "WINS" } else { "loses" }
        );
    }
    println!("The value 1/2 is exact: against atomic registers the adversary's");
    println!("best schedule wins on exactly one of the two coin values —");
    println!("blunting the Figure 1 attack, which wins on both.");
}
