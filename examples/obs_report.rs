//! End-to-end observability report: exercises every instrumented subsystem
//! — simulator kernel/scheduler, adversary search, linearizability
//! checkers, and the ABD system — then prints the full metrics snapshot and
//! writes it as JSONL.
//!
//! ```sh
//! cargo run --release --example obs_report
//! ```
//!
//! The run also demonstrates that the expectimax counters are
//! deterministic: the Figure-1-scale search is solved twice and the
//! per-solve node/memo-hit deltas must match exactly.

use blunt_abd::scenarios::weakener_abd;
use blunt_adversary::fig1::fig1_script;
use blunt_adversary::search;
use blunt_core::ids::ObjId;
use blunt_core::spec::RegisterSpec;
use blunt_core::value::Val;
use blunt_lincheck::strong::check_strong;
use blunt_lincheck::tree::ExecTree;
use blunt_lincheck::wgl::check_linearizable;
use blunt_obs::{parse_jsonl, JsonlSink, Recorder};
use blunt_programs::weakener;
use blunt_sim::explore::ExploreBudget;
use blunt_sim::export::{record_trace, run_summary_json};
use blunt_sim::kernel::run;
use blunt_sim::rng::{SplitMix64, Tape};
use blunt_sim::sched::RandomScheduler;
use blunt_sim::trace::Trace;

/// The explorer counters a single `exact_worst_atomic` solve adds to the
/// global registry, read as (states, memo hits).
fn search_counters() -> (u64, u64) {
    let snap = blunt_obs::snapshot();
    (
        snap.counter("adversary.search.states").unwrap_or(0),
        snap.counter("adversary.search.memo_hits").unwrap_or(0),
    )
}

fn main() {
    blunt_obs::reset();
    let sink_path = std::path::Path::new("target/obs_report/metrics.jsonl");
    let mut sink = JsonlSink::create(sink_path).expect("create metrics.jsonl");

    // 1. The Figure 1 adversary: scripted schedules forcing nontermination
    //    for both coin values (exercises kernel, network, ABD, fig1).
    println!("== Figure 1 adversary (ABD^1, scripted) ==");
    let mut fig1_traces: Vec<Trace> = Vec::new();
    for coin in 0..2usize {
        let report = run(
            weakener_abd(1),
            &mut fig1_script(coin),
            &mut Tape::new(vec![coin]),
            true,
            10_000,
        )
        .expect("figure 1 run completes");
        println!(
            "  coin={coin}: bad={} steps={} deliveries={}",
            weakener::is_bad(&report.outcome),
            report.steps,
            report.trace.delivery_count(),
        );
        record_trace(&report.trace, &mut sink);
        sink.record(&run_summary_json(&format!("fig1.coin{coin}"), &report));
        fig1_traces.push(report.trace);
    }

    // 2. A run under the oblivious random scheduler (exercises the
    //    RandomScheduler pick counters and branching histogram).
    let oblivious = run(
        weakener_abd(1),
        &mut RandomScheduler::new(7),
        &mut SplitMix64::new(7),
        true,
        200_000,
    )
    .expect("oblivious run completes");
    sink.record(&run_summary_json("oblivious.seed7", &oblivious));

    // 3. Expectimax search, solved twice: counters must be identical per
    //    solve because the explorer is deterministic.
    println!("\n== Expectimax search (atomic weakener game, solved twice) ==");
    let (s0, m0) = search_counters();
    let (p1, _) = search::exact_worst_atomic(&ExploreBudget::default()).expect("solve 1");
    let (s1, m1) = search_counters();
    let (p2, _) = search::exact_worst_atomic(&ExploreBudget::default()).expect("solve 2");
    let (s2, m2) = search_counters();
    let (nodes_a, hits_a) = (s1 - s0, m1 - m0);
    let (nodes_b, hits_b) = (s2 - s1, m2 - m1);
    println!("  solve 1: value={p1} nodes_expanded={nodes_a} cache_hits={hits_a}");
    println!("  solve 2: value={p2} nodes_expanded={nodes_b} cache_hits={hits_b}");
    assert_eq!(p1, p2, "same game, same value");
    assert_eq!(
        (nodes_a, hits_a),
        (nodes_b, hits_b),
        "expectimax counters must be stable across same-seed solves"
    );
    println!("  counters identical across solves: OK");

    // 4. Linearizability checkers on the recorded Figure 1 traces.
    println!("\n== Linearizability checks on the Figure 1 traces ==");
    let reg = RegisterSpec::new(Val::Nil);
    for t in &fig1_traces {
        assert!(check_linearizable(&t.history().project(ObjId(0)), &reg).is_ok());
    }
    let tree = ExecTree::build(&fig1_traces, ObjId(0), |_| false);
    let strong = check_strong(&tree, &reg);
    println!("  per-trace linearizable: true; tree strongly linearizable: {strong}");

    // The full snapshot, as a table and as JSONL records.
    let snap = blunt_obs::snapshot();
    println!("\n== Metrics snapshot ==");
    println!("{}", snap.to_table());
    for record in snap.to_jsonl_records() {
        sink.record(&record);
    }
    let lines = sink.lines();
    sink.flush();
    drop(sink);

    // Prove the sink round-trips and that at least four subsystems counted.
    let text = std::fs::read_to_string(sink_path).expect("read metrics.jsonl");
    let records = parse_jsonl(&text).expect("metrics.jsonl parses");
    assert_eq!(records.len() as u64, lines);
    let nonzero = |name: &str| {
        let v = snap.counter(name).unwrap_or(0);
        assert!(v > 0, "expected nonzero counter {name}");
        (name.to_string(), v)
    };
    let witnesses = [
        nonzero("sim.sched.picks.random"),
        nonzero("adversary.search.states"),
        nonzero("lincheck.wgl.states"),
        nonzero("abd.deliver.query"),
        nonzero("sim.kernel.runs"),
        nonzero("lincheck.strong.nodes_visited"),
    ];
    println!(
        "Wrote {} records to {} ({} metrics; subsystem witnesses: {})",
        records.len(),
        sink_path.display(),
        snap.counters.len() + snap.gauges.len() + snap.histograms.len() + snap.timers.len(),
        witnesses
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
}
