//! The round-based extension of Section 7: `T` independent weakener rounds,
//! `s = 1` coin per round, and the recommendation `k > T·s`.
//!
//! With atomic registers the optimal adversary wins each round with
//! probability exactly 1/2, so the bad probability decays as `2^-T`; the
//! Theorem 4.2 bound shows how many preamble iterations keep an ABD-backed
//! run close to that decay.
//!
//! ```sh
//! cargo run --release --example round_based
//! ```

use blunting::abd::config::ObjectConfig;
use blunting::abd::system::{AbdSystem, AbdSystemDef};
use blunting::core::bound::blunting_bound;
use blunting::core::ratio::Ratio;
use blunting::core::value::Val;
use blunting::programs::round_based::{is_bad, object_count, round_based};
use blunting::sim::explore::{worst_case_prob, ExploreBudget};
use blunting::sim::kernel::run;
use blunting::sim::montecarlo::estimate;
use blunting::sim::rng::SplitMix64;
use blunting::sim::sched::RandomScheduler;

fn atomic_system(rounds: u32) -> AbdSystem {
    let objects = (0..object_count(rounds))
        .map(|i| {
            if i % 2 == 0 {
                ObjectConfig::atomic(Val::Nil)
            } else {
                ObjectConfig::atomic(Val::Int(-1))
            }
        })
        .collect();
    AbdSystem::new(AbdSystemDef {
        program: round_based(rounds),
        objects,
        purge_stale: true,
        fused_rpc: false,
    })
}

fn abd_system(rounds: u32, k: u32) -> AbdSystem {
    let objects = (0..object_count(rounds))
        .map(|i| {
            if i % 2 == 0 {
                ObjectConfig::abd(k, Val::Nil)
            } else {
                ObjectConfig::atomic(Val::Int(-1))
            }
        })
        .collect();
    AbdSystem::new(AbdSystemDef {
        program: round_based(rounds),
        objects,
        purge_stale: true,
        fused_rpc: false,
    })
}

fn main() {
    println!("== Round-based weakener (Section 7 extension) ==\n");

    // Exact atomic values: 2^-T.
    for rounds in 1..=3u32 {
        let bad = move |o: &blunting::core::outcome::Outcome| is_bad(rounds, o);
        let (p, stats) = worst_case_prob(
            &atomic_system(rounds),
            &bad,
            &ExploreBudget::with_max_states(20_000_000),
        )
        .expect("atomic round games are small");
        println!(
            "T = {rounds}: exact atomic adversarial value = {p} \
             (expected {}, {} states)",
            Ratio::new(1, 1 << rounds),
            stats.states
        );
    }

    // The paper's advice: pick k > T·s. Show the Theorem 4.2 bound with the
    // correct r = T·s for a few T.
    println!("\nTheorem 4.2 bound for ABD^k with r = T (s = 1 coin/round), n = 3:");
    println!("{:>3} {:>5} | {:>12}", "T", "k", "bound ≤");
    for rounds in [1u32, 2, 4] {
        let pa = Ratio::new(1, i128::from(1u32 << rounds));
        for k in [rounds, rounds + 1, 2 * rounds, 4 * rounds] {
            let b = blunting_bound(pa, Ratio::ONE, 3, rounds, k);
            println!("{rounds:>3} {k:>5} | {:>12}", b.to_string());
        }
    }

    // Empirical frequencies over ABD^k under random scheduling, T = 2.
    println!("\nrandom-scheduling bad frequency, T = 2 (2000 trials):");
    for k in [1u32, 2, 4] {
        let est = estimate(
            || abd_system(2, k),
            RandomScheduler::new,
            |o| is_bad(2, o),
            2_000,
            13,
            500_000,
        )
        .expect("runs complete");
        println!("  ABD^{k}: {:.4}", est.mean());
    }

    // And one traced run for flavor.
    let report = run(
        abd_system(2, 2),
        &mut RandomScheduler::new(1),
        &mut SplitMix64::new(1),
        true,
        500_000,
    )
    .unwrap();
    println!(
        "\none T = 2, ABD² run: {} events, {} deliveries, outcome {}",
        report.steps,
        report.trace.delivery_count(),
        report.outcome
    );
}
