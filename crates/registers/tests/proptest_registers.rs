//! Property-based tests for the shared-memory constructions: randomly
//! generated straight-line programs (random operations, arguments, and
//! process assignments) run under randomly seeded schedules must always
//! produce linearizable histories — for the base constructions and for
//! every `k`-iterated version.
//!
//! Programs being *data* (`blunt_programs::ProgramDef`) is what makes this
//! possible: proptest synthesizes the program, the simulator executes it,
//! the checker validates the emitted history.

use blunt_core::ids::{MethodId, ObjId, Pid};
use blunt_core::spec::{RegisterSpec, SnapshotSpec};
use blunt_core::value::Val;
use blunt_lincheck::wgl::check_linearizable;
use blunt_programs::{Expr, Instr, ProgramDef};
use blunt_registers::system::{ShmObjectConfig, ShmSystem, ShmSystemDef};
use blunt_sim::kernel::run;
use blunt_sim::rng::SplitMix64;
use blunt_sim::sched::RandomScheduler;
use proptest::prelude::*;

const N: usize = 3;

/// A randomly planned register operation.
#[derive(Clone, Copy, Debug)]
enum PlannedOp {
    Read,
    Write(i64),
}

fn planned_ops() -> impl Strategy<Value = Vec<Vec<PlannedOp>>> {
    let op = prop_oneof![
        Just(PlannedOp::Read),
        (0i64..6).prop_map(PlannedOp::Write),
    ];
    prop::collection::vec(prop::collection::vec(op, 0..4), N..=N)
}

fn register_program(plans: &[Vec<PlannedOp>], writer_only: Option<Pid>) -> ProgramDef {
    let codes = plans
        .iter()
        .enumerate()
        .map(|(p, plan)| {
            let mut code = Vec::new();
            for op in plan {
                match op {
                    PlannedOp::Read => code.push(Instr::Invoke {
                        line: 1,
                        obj: ObjId(0),
                        method: MethodId::READ,
                        arg: Expr::Const(Val::Nil),
                        bind: None,
                    }),
                    PlannedOp::Write(v) => {
                        // In single-writer mode only the designated writer
                        // writes; others read instead.
                        let is_writer =
                            writer_only.is_none_or(|w| w == Pid(p as u32));
                        if is_writer {
                            code.push(Instr::Invoke {
                                line: 1,
                                obj: ObjId(0),
                                method: MethodId::WRITE,
                                arg: Expr::int(*v),
                                bind: None,
                            });
                        } else {
                            code.push(Instr::Invoke {
                                line: 1,
                                obj: ObjId(0),
                                method: MethodId::READ,
                                arg: Expr::Const(Val::Nil),
                                bind: None,
                            });
                        }
                    }
                }
            }
            code.push(Instr::Halt);
            code
        })
        .collect();
    ProgramDef::new("proptest-register", codes, vec![0; N], 0, vec![])
}

fn snapshot_program(plans: &[Vec<PlannedOp>]) -> ProgramDef {
    let codes = plans
        .iter()
        .enumerate()
        .map(|(p, plan)| {
            let mut code = Vec::new();
            for op in plan {
                match op {
                    PlannedOp::Read => code.push(Instr::Invoke {
                        line: 1,
                        obj: ObjId(0),
                        method: MethodId::SCAN,
                        arg: Expr::Const(Val::Nil),
                        bind: None,
                    }),
                    PlannedOp::Write(v) => code.push(Instr::Invoke {
                        line: 1,
                        obj: ObjId(0),
                        method: MethodId::UPDATE,
                        arg: Expr::Const(Val::pair(Val::Int(p as i64), Val::Int(*v))),
                        bind: None,
                    }),
                }
            }
            code.push(Instr::Halt);
            code
        })
        .collect();
    ProgramDef::new("proptest-snapshot", codes, vec![0; N], 0, vec![])
}

fn check_history(sys: ShmSystem, seed: u64, spec_kind: SpecKind) -> Result<(), TestCaseError> {
    let report = run(
        sys,
        &mut RandomScheduler::new(seed),
        &mut SplitMix64::new(seed ^ 0xF00D),
        true,
        500_000,
    )
    .map_err(|e| TestCaseError::fail(format!("run failed: {e}")))?;
    let h = report.trace.history().project(ObjId(0));
    let ok = match spec_kind {
        SpecKind::Register => check_linearizable(&h, &RegisterSpec::new(Val::Nil)).is_ok(),
        SpecKind::Snapshot => check_linearizable(&h, &SnapshotSpec::new(N, Val::Nil)).is_ok(),
    };
    prop_assert!(ok, "non-linearizable history (seed {seed}):\n{h}");
    Ok(())
}

#[derive(Clone, Copy)]
enum SpecKind {
    Register,
    Snapshot,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn vitanyi_awerbuch_random_programs_linearizable(
        plans in planned_ops(), k in 1u32..4, seed in 0u64..10_000
    ) {
        let sys = ShmSystem::new(ShmSystemDef {
            program: register_program(&plans, None),
            objects: vec![ShmObjectConfig::VitanyiAwerbuch { k, initial: Val::Nil }],
        });
        check_history(sys, seed, SpecKind::Register)?;
    }

    #[test]
    fn israeli_li_random_programs_linearizable(
        plans in planned_ops(), k in 1u32..4, seed in 0u64..10_000
    ) {
        let sys = ShmSystem::new(ShmSystemDef {
            program: register_program(&plans, Some(Pid(0))),
            objects: vec![ShmObjectConfig::IsraeliLi {
                k,
                writer: Pid(0),
                initial: Val::Nil,
            }],
        });
        check_history(sys, seed, SpecKind::Register)?;
    }

    #[test]
    fn snapshot_random_programs_linearizable(
        plans in planned_ops(), k in 1u32..3, seed in 0u64..10_000,
        update_preamble in prop::bool::ANY
    ) {
        let sys = ShmSystem::new(ShmSystemDef {
            program: snapshot_program(&plans),
            objects: vec![ShmObjectConfig::Snapshot {
                k,
                components: N,
                initial: Val::Nil,
                update_preamble,
            }],
        });
        check_history(sys, seed, SpecKind::Snapshot)?;
    }

    #[test]
    fn atomic_baselines_random_programs_linearizable(
        plans in planned_ops(), seed in 0u64..10_000
    ) {
        let sys = ShmSystem::new(ShmSystemDef {
            program: register_program(&plans, None),
            objects: vec![ShmObjectConfig::AtomicRegister { initial: Val::Nil }],
        });
        check_history(sys, seed, SpecKind::Register)?;
        let sys = ShmSystem::new(ShmSystemDef {
            program: snapshot_program(&plans),
            objects: vec![ShmObjectConfig::AtomicSnapshot {
                components: N,
                initial: Val::Nil,
            }],
        });
        check_history(sys, seed, SpecKind::Snapshot)?;
    }
}
