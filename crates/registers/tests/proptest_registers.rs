//! Randomized tests for the shared-memory constructions: randomly
//! generated straight-line programs (random operations, arguments, and
//! process assignments) run under randomly seeded schedules must always
//! produce linearizable histories — for the base constructions and for
//! every `k`-iterated version.
//!
//! Programs being *data* (`blunt_programs::ProgramDef`) is what makes this
//! possible: a seeded SplitMix64 synthesizes the program, the simulator
//! executes it, the checker validates the emitted history.

use blunt_core::ids::{MethodId, ObjId, Pid};
use blunt_core::spec::{RegisterSpec, SnapshotSpec};
use blunt_core::value::Val;
use blunt_lincheck::wgl::check_linearizable;
use blunt_programs::{Expr, Instr, ProgramDef};
use blunt_registers::system::{ShmObjectConfig, ShmSystem, ShmSystemDef};
use blunt_sim::kernel::run;
use blunt_sim::rng::SplitMix64;
use blunt_sim::sched::RandomScheduler;

const N: usize = 3;
const CASES: u64 = 32;

/// A randomly planned register operation.
#[derive(Clone, Copy, Debug)]
enum PlannedOp {
    Read,
    Write(i64),
}

/// Per-process plans: `N` processes, each with 0..4 ops, each op a read or
/// a write of 0..6 — the same shape the proptest strategy generated.
fn planned_ops(rng: &mut SplitMix64) -> Vec<Vec<PlannedOp>> {
    (0..N)
        .map(|_| {
            let len = (rng.next_u64() % 4) as usize;
            (0..len)
                .map(|_| {
                    if rng.next_u64() & 1 == 0 {
                        PlannedOp::Read
                    } else {
                        PlannedOp::Write((rng.next_u64() % 6) as i64)
                    }
                })
                .collect()
        })
        .collect()
}

fn register_program(plans: &[Vec<PlannedOp>], writer_only: Option<Pid>) -> ProgramDef {
    let codes = plans
        .iter()
        .enumerate()
        .map(|(p, plan)| {
            let mut code = Vec::new();
            for op in plan {
                match op {
                    PlannedOp::Read => code.push(Instr::Invoke {
                        line: 1,
                        obj: ObjId(0),
                        method: MethodId::READ,
                        arg: Expr::Const(Val::Nil),
                        bind: None,
                    }),
                    PlannedOp::Write(v) => {
                        // In single-writer mode only the designated writer
                        // writes; others read instead.
                        let is_writer = writer_only.is_none_or(|w| w == Pid(p as u32));
                        if is_writer {
                            code.push(Instr::Invoke {
                                line: 1,
                                obj: ObjId(0),
                                method: MethodId::WRITE,
                                arg: Expr::int(*v),
                                bind: None,
                            });
                        } else {
                            code.push(Instr::Invoke {
                                line: 1,
                                obj: ObjId(0),
                                method: MethodId::READ,
                                arg: Expr::Const(Val::Nil),
                                bind: None,
                            });
                        }
                    }
                }
            }
            code.push(Instr::Halt);
            code
        })
        .collect();
    ProgramDef::new("proptest-register", codes, vec![0; N], 0, vec![])
}

fn snapshot_program(plans: &[Vec<PlannedOp>]) -> ProgramDef {
    let codes = plans
        .iter()
        .enumerate()
        .map(|(p, plan)| {
            let mut code = Vec::new();
            for op in plan {
                match op {
                    PlannedOp::Read => code.push(Instr::Invoke {
                        line: 1,
                        obj: ObjId(0),
                        method: MethodId::SCAN,
                        arg: Expr::Const(Val::Nil),
                        bind: None,
                    }),
                    PlannedOp::Write(v) => code.push(Instr::Invoke {
                        line: 1,
                        obj: ObjId(0),
                        method: MethodId::UPDATE,
                        arg: Expr::Const(Val::pair(Val::Int(p as i64), Val::Int(*v))),
                        bind: None,
                    }),
                }
            }
            code.push(Instr::Halt);
            code
        })
        .collect();
    ProgramDef::new("proptest-snapshot", codes, vec![0; N], 0, vec![])
}

#[derive(Clone, Copy)]
enum SpecKind {
    Register,
    Snapshot,
}

fn check_history(sys: ShmSystem, seed: u64, spec_kind: SpecKind) {
    let report = run(
        sys,
        &mut RandomScheduler::new(seed),
        &mut SplitMix64::new(seed ^ 0xF00D),
        true,
        500_000,
    )
    .unwrap_or_else(|e| panic!("run failed (seed {seed}): {e}"));
    let h = report.trace.history().project(ObjId(0));
    let ok = match spec_kind {
        SpecKind::Register => check_linearizable(&h, &RegisterSpec::new(Val::Nil)).is_ok(),
        SpecKind::Snapshot => check_linearizable(&h, &SnapshotSpec::new(N, Val::Nil)).is_ok(),
    };
    assert!(ok, "non-linearizable history (seed {seed}):\n{h}");
}

#[test]
fn vitanyi_awerbuch_random_programs_linearizable() {
    let mut rng = SplitMix64::new(0x2E60_0001);
    for _ in 0..CASES {
        let plans = planned_ops(&mut rng);
        let k = 1 + (rng.next_u64() % 3) as u32;
        let seed = rng.next_u64() % 10_000;
        let sys = ShmSystem::new(ShmSystemDef {
            program: register_program(&plans, None),
            objects: vec![ShmObjectConfig::VitanyiAwerbuch {
                k,
                initial: Val::Nil,
            }],
        });
        check_history(sys, seed, SpecKind::Register);
    }
}

#[test]
fn israeli_li_random_programs_linearizable() {
    let mut rng = SplitMix64::new(0x2E60_0002);
    for _ in 0..CASES {
        let plans = planned_ops(&mut rng);
        let k = 1 + (rng.next_u64() % 3) as u32;
        let seed = rng.next_u64() % 10_000;
        let sys = ShmSystem::new(ShmSystemDef {
            program: register_program(&plans, Some(Pid(0))),
            objects: vec![ShmObjectConfig::IsraeliLi {
                k,
                writer: Pid(0),
                initial: Val::Nil,
            }],
        });
        check_history(sys, seed, SpecKind::Register);
    }
}

#[test]
fn snapshot_random_programs_linearizable() {
    let mut rng = SplitMix64::new(0x2E60_0003);
    for _ in 0..CASES {
        let plans = planned_ops(&mut rng);
        let k = 1 + (rng.next_u64() % 2) as u32;
        let seed = rng.next_u64() % 10_000;
        let update_preamble = rng.next_u64() & 1 == 1;
        let sys = ShmSystem::new(ShmSystemDef {
            program: snapshot_program(&plans),
            objects: vec![ShmObjectConfig::Snapshot {
                k,
                components: N,
                initial: Val::Nil,
                update_preamble,
            }],
        });
        check_history(sys, seed, SpecKind::Snapshot);
    }
}

#[test]
fn atomic_baselines_random_programs_linearizable() {
    let mut rng = SplitMix64::new(0x2E60_0004);
    for _ in 0..CASES {
        let plans = planned_ops(&mut rng);
        let seed = rng.next_u64() % 10_000;
        let sys = ShmSystem::new(ShmSystemDef {
            program: register_program(&plans, None),
            objects: vec![ShmObjectConfig::AtomicRegister { initial: Val::Nil }],
        });
        check_history(sys, seed, SpecKind::Register);
        let sys = ShmSystem::new(ShmSystemDef {
            program: snapshot_program(&plans),
            objects: vec![ShmObjectConfig::AtomicSnapshot {
                components: N,
                initial: Val::Nil,
            }],
        });
        check_history(sys, seed, SpecKind::Snapshot);
    }
}
