//! Scratch probe for explorer feasibility measurements on the
//! shared-memory systems (the polished harness is `blunt-bench`).
#![allow(clippy::type_complexity)]
use blunt_registers::scenarios::*;
use blunt_sim::explore::{worst_case_prob, ExploreBudget};
use std::time::Instant;

fn main() {
    let budget = ExploreBudget::with_max_states(40_000_000);
    let cases: Vec<(
        &str,
        Box<dyn Fn() -> blunt_registers::ShmSystem>,
        Box<dyn Fn(&blunt_core::outcome::Outcome) -> bool>,
    )> = vec![
        (
            "ghw atomic",
            Box::new(ghw_atomic),
            Box::new(blunt_programs::ghw::is_bad),
        ),
        (
            "ghw snapshot k=1",
            Box::new(|| ghw_snapshot(1)),
            Box::new(blunt_programs::ghw::is_bad),
        ),
        (
            "ghw snapshot k=2",
            Box::new(|| ghw_snapshot(2)),
            Box::new(blunt_programs::ghw::is_bad),
        ),
        (
            "weakener VA k=1",
            Box::new(|| weakener_va(1)),
            Box::new(blunt_programs::weakener::is_bad),
        ),
        (
            "weakener VA k=2",
            Box::new(|| weakener_va(2)),
            Box::new(blunt_programs::weakener::is_bad),
        ),
        (
            "sw-weakener atomic",
            Box::new(sw_weakener_atomic),
            Box::new(blunt_programs::weakener::is_bad),
        ),
        (
            "sw-weakener IL k=1",
            Box::new(|| sw_weakener_il(1)),
            Box::new(blunt_programs::weakener::is_bad),
        ),
        (
            "sw-weakener IL k=2",
            Box::new(|| sw_weakener_il(2)),
            Box::new(blunt_programs::weakener::is_bad),
        ),
    ];
    for (name, mk, bad) in cases {
        let t = Instant::now();
        match worst_case_prob(&mk(), bad.as_ref(), &budget) {
            Ok((p, s)) => println!(
                "{name}: worst = {p} ({:.4}) states={} in {:?}",
                p.to_f64(),
                s.states,
                t.elapsed()
            ),
            Err(e) => println!("{name}: {e} in {:?}", t.elapsed()),
        }
    }
}
