//! The Afek–Attiya–Dolev–Gafni–Merritt–Shavit atomic snapshot from
//! single-writer registers (Section 5.2 of the paper).
//!
//! Memory layout: one single-writer cell `M[i]` per component, holding a
//! triple `(data, seq, view)` — the component value, the writer's sequence
//! number, and the view embedded by the writer's most recent `Update`.
//!
//! - `Scan` repeatedly *collects* (reads all cells, one base step each);
//!   it returns after a **clean double collect** (two successive collects
//!   with equal sequence numbers), or **borrows** the embedded view of a
//!   process it has seen move twice.
//! - `Update(v)` at component `i` performs an embedded scan and then writes
//!   `(v, seq+1, view)` into `M[i]` in a single base step.
//!
//! Preamble mapping (Section 5.2): `Scan`'s preamble extends to just before
//! its return — the whole collect loop is effect-free (reads only, enforced
//! here by `&Shm`). `Update`'s preamble is empty by default; the *extended*
//! mapping (`update_preamble = true`) stretches it over the embedded scan,
//! which the paper notes is also valid since an update linearizes only at
//! its write.

use crate::shm::{CellId, Shm, ShmLayout};
use crate::twophase::{PreambleStatus, ShmOp};
use blunt_core::ids::Pid;
use blunt_core::value::Val;

/// Parses a cell triple `(data, seq, view)`.
fn parse_cell(v: &Val) -> (Val, i64, Vec<Val>) {
    let t = v.as_tuple().expect("snapshot cell holds a triple");
    let data = t[0].clone();
    let seq = t[1].as_int().expect("snapshot seq is an integer");
    let view = t[2].as_tuple().expect("snapshot view is a tuple").to_vec();
    (data, seq, view)
}

/// Builds a cell triple.
#[must_use]
pub fn make_cell(data: Val, seq: i64, view: Vec<Val>) -> Val {
    Val::Tuple(vec![data, Val::Int(seq), Val::Tuple(view)])
}

/// The collect-loop engine shared by `Scan` and `Update`'s embedded scan.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ScanMachine {
    /// First cell of the snapshot's region.
    base: usize,
    /// Number of components.
    comps: usize,
    /// Next cell index to read within the current collect.
    idx: usize,
    /// The previous complete collect, if any.
    prev: Option<Vec<(Val, i64, Vec<Val>)>>,
    /// The collect being accumulated.
    cur: Vec<(Val, i64, Vec<Val>)>,
    /// How often each component was seen to move.
    moved: Vec<u8>,
}

impl ScanMachine {
    /// A fresh scan over cells `base..base+comps`.
    #[must_use]
    pub fn new(base: usize, comps: usize) -> ScanMachine {
        ScanMachine {
            base,
            comps,
            idx: 0,
            prev: None,
            cur: Vec::new(),
            moved: vec![0; comps],
        }
    }

    /// One base read; returns the scan's view when it completes.
    pub fn step(&mut self, shm: &Shm, layout: &ShmLayout, pid: Pid) -> Option<Vec<Val>> {
        let cell = CellId(self.base + self.idx);
        self.cur.push(parse_cell(&shm.read(layout, cell, pid)));
        self.idx += 1;
        if self.idx < self.comps {
            return None;
        }
        // A collect just completed.
        let cur = std::mem::take(&mut self.cur);
        self.idx = 0;
        let Some(prev) = self.prev.take() else {
            self.prev = Some(cur);
            return None;
        };
        if prev.iter().zip(cur.iter()).all(|(a, b)| a.1 == b.1) {
            // Clean double collect: return the direct view.
            return Some(cur.into_iter().map(|(d, _, _)| d).collect());
        }
        for j in 0..self.comps {
            if prev[j].1 != cur[j].1 {
                if self.moved[j] >= 1 {
                    // Component j moved twice during this scan: its embedded
                    // view was written entirely within our timespan — borrow
                    // it.
                    return Some(cur[j].2.clone());
                }
                self.moved[j] += 1;
            }
        }
        self.prev = Some(cur);
        None
    }
}

/// A `Scan` or `Update` operation on the snapshot.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SnapshotOp {
    /// `Scan()`.
    Scan {
        /// Invoking process.
        pid: Pid,
        /// Collect engine (the preamble).
        scan: ScanMachine,
        /// The chosen view, installed by `start_tail`.
        view: Option<Vec<Val>>,
    },
    /// `Update(component, value)`.
    Update {
        /// Invoking process.
        pid: Pid,
        /// First cell of the region.
        base: usize,
        /// Number of components.
        comps: usize,
        /// Component to write (must be writable by `pid`).
        component: usize,
        /// New value.
        value: Val,
        /// This writer's next sequence number.
        seq: i64,
        /// Whether the embedded scan is part of the preamble (the extended
        /// mapping of Section 5.2) or of the tail (the default mapping).
        scan_in_preamble: bool,
        /// Embedded scan engine.
        scan: ScanMachine,
        /// The view to embed, once known.
        view: Option<Vec<Val>>,
        /// Set once the final write has happened.
        written: bool,
    },
}

impl SnapshotOp {
    /// A new `Scan` over cells `base..base+comps`.
    #[must_use]
    pub fn scan(pid: Pid, base: usize, comps: usize) -> SnapshotOp {
        SnapshotOp::Scan {
            pid,
            scan: ScanMachine::new(base, comps),
            view: None,
        }
    }

    /// A new `Update` writing `value` to `component` with sequence number
    /// `seq`.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn update(
        pid: Pid,
        base: usize,
        comps: usize,
        component: usize,
        value: Val,
        seq: i64,
        scan_in_preamble: bool,
    ) -> SnapshotOp {
        SnapshotOp::Update {
            pid,
            base,
            comps,
            component,
            value,
            seq,
            scan_in_preamble,
            scan: ScanMachine::new(base, comps),
            view: None,
            written: false,
        }
    }
}

impl ShmOp for SnapshotOp {
    /// `Some(view)` — for scans, the view to return; for updates, the view
    /// to embed. `None` for updates whose embedded scan runs in the tail.
    type Locals = Option<Vec<Val>>;

    fn preamble_is_empty(&self) -> bool {
        matches!(
            self,
            SnapshotOp::Update {
                scan_in_preamble: false,
                ..
            }
        )
    }

    fn empty_locals(&self) -> Option<Vec<Val>> {
        None
    }

    fn preamble_step(&mut self, shm: &Shm, layout: &ShmLayout) -> PreambleStatus<Option<Vec<Val>>> {
        match self {
            SnapshotOp::Scan { pid, scan, .. } => match scan.step(shm, layout, *pid) {
                Some(view) => PreambleStatus::Done(Some(view)),
                None => PreambleStatus::Step,
            },
            SnapshotOp::Update {
                pid,
                scan,
                scan_in_preamble,
                ..
            } => {
                assert!(
                    *scan_in_preamble,
                    "preamble step on an update with an empty preamble"
                );
                match scan.step(shm, layout, *pid) {
                    Some(view) => PreambleStatus::Done(Some(view)),
                    None => PreambleStatus::Step,
                }
            }
        }
    }

    fn reset_preamble(&mut self) {
        match self {
            SnapshotOp::Scan { scan, .. } | SnapshotOp::Update { scan, .. } => {
                let (base, comps) = (scan.base, scan.comps);
                *scan = ScanMachine::new(base, comps);
            }
        }
    }

    fn start_tail(&mut self, locals: Option<Vec<Val>>) {
        match self {
            SnapshotOp::Scan { view, .. } => {
                *view = Some(locals.expect("scan preamble produces a view"));
            }
            SnapshotOp::Update { view, .. } => *view = locals,
        }
    }

    fn tail_step(&mut self, shm: &mut Shm, layout: &ShmLayout) -> Option<Val> {
        match self {
            // A scan's tail is just its return.
            SnapshotOp::Scan { view, .. } => {
                Some(Val::Tuple(view.clone().expect("tail after start_tail")))
            }
            SnapshotOp::Update {
                pid,
                base,
                component,
                value,
                seq,
                scan,
                view,
                written,
                ..
            } => {
                assert!(!*written, "update stepped past its write");
                // Run the embedded scan in the tail if the preamble did not.
                let v = match view {
                    Some(v) => v.clone(),
                    None => match scan.step(shm, layout, *pid) {
                        Some(v) => {
                            *view = Some(v.clone());
                            return None; // the write is the next step
                        }
                        None => return None,
                    },
                };
                let cell = CellId(*base + *component);
                shm.write(layout, cell, *pid, make_cell(value.clone(), *seq, v));
                *written = true;
                Some(Val::Nil)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shm::{CellSpec, ShmLayout};
    use crate::twophase::{IterEffect, IteratedOp};

    fn setup(comps: usize) -> (ShmLayout, Shm) {
        let mut l = ShmLayout::new();
        for i in 0..comps {
            l.push(CellSpec::single_writer(
                Pid(i as u32),
                comps.max(3),
                make_cell(Val::Nil, 0, vec![Val::Nil; comps]),
                format!("M[{i}]"),
            ));
        }
        let m = l.initial_memory();
        (l, m)
    }

    fn run_to_completion(op: &mut IteratedOp<SnapshotOp>, shm: &mut Shm, l: &ShmLayout) -> Val {
        for _ in 0..1000 {
            match op.step(shm, l) {
                IterEffect::Complete(v) => return v,
                IterEffect::NeedChoice { .. } => op.choose(0),
                _ => {}
            }
        }
        panic!("operation did not complete");
    }

    #[test]
    fn solo_scan_returns_initial_view() {
        let (l, mut m) = setup(2);
        let mut op = IteratedOp::new(SnapshotOp::scan(Pid(2), 0, 2), 1);
        let v = run_to_completion(&mut op, &mut m, &l);
        assert_eq!(v, Val::Tuple(vec![Val::Nil, Val::Nil]));
    }

    #[test]
    fn update_then_scan_sees_the_value() {
        let (l, mut m) = setup(2);
        let mut up = IteratedOp::new(
            SnapshotOp::update(Pid(0), 0, 2, 0, Val::Int(7), 1, false),
            1,
        );
        assert_eq!(run_to_completion(&mut up, &mut m, &l), Val::Nil);
        let mut sc = IteratedOp::new(SnapshotOp::scan(Pid(2), 0, 2), 1);
        let v = run_to_completion(&mut sc, &mut m, &l);
        assert_eq!(v, Val::Tuple(vec![Val::Int(7), Val::Nil]));
    }

    #[test]
    fn interleaved_writer_forces_extra_collects_and_borrowing() {
        // Drive a scan step-by-step while component 0 keeps moving: after
        // seeing it move twice, the scan borrows the embedded view.
        let (l, mut m) = setup(2);
        let mut sc = IteratedOp::new(SnapshotOp::scan(Pid(2), 0, 2), 1);

        let embedded = vec![Val::Int(42), Val::Int(43)];
        let mut seq = 1;
        let mut write = |mem: &mut Shm, view: Vec<Val>| {
            mem.write(&l, CellId(0), Pid(0), make_cell(Val::Int(seq), seq, view));
            seq += 1;
        };

        // First collect (2 reads).
        sc.step(&mut m, &l);
        sc.step(&mut m, &l);
        // Writer moves once before the second collect.
        write(&mut m, vec![Val::Nil, Val::Nil]);
        sc.step(&mut m, &l);
        sc.step(&mut m, &l);
        // Writer moves again, embedding a recognizable view.
        write(&mut m, embedded.clone());
        // Third collect observes the second move: borrow the embedded view.
        let mut result = None;
        for _ in 0..10 {
            match sc.step(&mut m, &l) {
                IterEffect::PreamblePassed { .. } => {}
                IterEffect::Complete(v) => {
                    result = Some(v);
                    break;
                }
                _ => {}
            }
        }
        assert_eq!(result, Some(Val::Tuple(embedded)));
    }

    #[test]
    fn update_with_preamble_scan_marks_preamble() {
        let (l, mut m) = setup(2);
        let mut up = IteratedOp::new(SnapshotOp::update(Pid(1), 0, 2, 1, Val::Int(5), 1, true), 1);
        let mut saw_preamble = false;
        for _ in 0..100 {
            match up.step(&mut m, &l) {
                IterEffect::PreamblePassed { .. } => saw_preamble = true,
                IterEffect::Complete(v) => {
                    assert_eq!(v, Val::Nil);
                    break;
                }
                _ => {}
            }
        }
        assert!(saw_preamble, "extended-preamble update must mark Π");
        let (data, seq, _) = parse_cell(&m.read(&l, CellId(1), Pid(1)));
        assert_eq!(data, Val::Int(5));
        assert_eq!(seq, 1);
    }

    #[test]
    fn default_update_has_empty_preamble() {
        let op = SnapshotOp::update(Pid(0), 0, 2, 0, Val::Int(1), 1, false);
        assert!(op.preamble_is_empty());
        // Wrapping with any k leaves it unchanged: no choice is ever needed.
        let (l, mut m) = setup(2);
        let mut wrapped = IteratedOp::new(op, 4);
        let mut completed = false;
        for _ in 0..100 {
            match wrapped.step(&mut m, &l) {
                IterEffect::Complete(_) => {
                    completed = true;
                    break;
                }
                IterEffect::NeedChoice { .. } => panic!("empty preamble must not branch"),
                _ => {}
            }
        }
        assert!(completed);
    }

    #[test]
    fn scan_k2_requests_a_choice_between_iterations() {
        let (l, mut m) = setup(2);
        let mut sc = IteratedOp::new(SnapshotOp::scan(Pid(2), 0, 2), 2);
        let mut chosen = false;
        for _ in 0..100 {
            match sc.step(&mut m, &l) {
                IterEffect::NeedChoice { choices, .. } => {
                    assert_eq!(choices, 2);
                    sc.choose(1);
                    chosen = true;
                }
                IterEffect::Complete(_) => break,
                _ => {}
            }
        }
        assert!(chosen);
    }
}
