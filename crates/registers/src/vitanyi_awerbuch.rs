//! The Vitányi–Awerbuch multi-writer multi-reader register from
//! single-writer registers (Section 5.3 of the paper).
//!
//! Memory layout: one single-writer cell `Val[i]` per process, holding
//! `(value, t, wpid)` — a value and its timestamp, a `(t, pid)` pair
//! ordered lexicographically.
//!
//! - `Read`: read all `Val[j]` (one base step each), return the value with
//!   the largest timestamp. Preamble: all of it, up to just before the
//!   return (reads only).
//! - `Write(v)` at `i`: read all `Val[j]`, compute `t' = max t + 1`, then
//!   write `(v, t', i)` into `Val[i]`. Preamble: the reads; tail: the
//!   single write.

use crate::shm::{CellId, Shm, ShmLayout};
use crate::twophase::{PreambleStatus, ShmOp};
use blunt_core::ids::Pid;
use blunt_core::value::Val;

fn parse_cell(v: &Val) -> (Val, i64, i64) {
    let t = v.as_tuple().expect("VA cell holds a triple");
    (
        t[0].clone(),
        t[1].as_int().expect("VA t is an integer"),
        t[2].as_int().expect("VA pid is an integer"),
    )
}

/// Builds a cell triple `(value, t, wpid)`.
#[must_use]
pub fn make_cell(value: Val, t: i64, wpid: i64) -> Val {
    Val::Tuple(vec![value, Val::Int(t), Val::Int(wpid)])
}

/// A `Read` or `Write` on the Vitányi–Awerbuch register.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct VaOp {
    pid: Pid,
    base: usize,
    n: usize,
    /// `None` for reads, `Some(v)` for writes.
    write_value: Option<Val>,
    /// Next cell to read in the preamble.
    idx: usize,
    /// Best (value, t, wpid) so far.
    best: Option<(Val, i64, i64)>,
    /// Chosen locals, installed by `start_tail`.
    chosen: Option<(Val, i64, i64)>,
}

impl VaOp {
    /// A `Read` by `pid` over cells `base..base+n`.
    #[must_use]
    pub fn read(pid: Pid, base: usize, n: usize) -> VaOp {
        VaOp {
            pid,
            base,
            n,
            write_value: None,
            idx: 0,
            best: None,
            chosen: None,
        }
    }

    /// A `Write(v)` by `pid` over cells `base..base+n`.
    #[must_use]
    pub fn write(pid: Pid, base: usize, n: usize, v: Val) -> VaOp {
        VaOp {
            pid,
            base,
            n,
            write_value: Some(v),
            idx: 0,
            best: None,
            chosen: None,
        }
    }
}

impl ShmOp for VaOp {
    /// The maximum-timestamp triple observed by the preamble.
    type Locals = (Val, i64, i64);

    fn preamble_step(&mut self, shm: &Shm, layout: &ShmLayout) -> PreambleStatus<(Val, i64, i64)> {
        let cell = CellId(self.base + self.idx);
        let (v, t, w) = parse_cell(&shm.read(layout, cell, self.pid));
        let better = match &self.best {
            None => true,
            Some((_, bt, bw)) => (t, w) > (*bt, *bw),
        };
        if better {
            self.best = Some((v, t, w));
        }
        self.idx += 1;
        if self.idx == self.n {
            PreambleStatus::Done(self.best.clone().expect("n ≥ 1 cells read"))
        } else {
            PreambleStatus::Step
        }
    }

    fn reset_preamble(&mut self) {
        self.idx = 0;
        self.best = None;
    }

    fn start_tail(&mut self, locals: (Val, i64, i64)) {
        self.chosen = Some(locals);
    }

    fn tail_step(&mut self, shm: &mut Shm, layout: &ShmLayout) -> Option<Val> {
        let (v, t, _w) = self.chosen.clone().expect("tail after start_tail");
        match &self.write_value {
            // Read: return the chosen value (the return control point).
            None => Some(v),
            // Write: install (v, max t + 1, pid) into own cell.
            Some(wv) => {
                let cell = CellId(self.base + self.pid.index());
                shm.write(
                    layout,
                    cell,
                    self.pid,
                    make_cell(wv.clone(), t + 1, i64::from(self.pid.0)),
                );
                Some(Val::Nil)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shm::{CellSpec, ShmLayout};
    use crate::twophase::{IterEffect, IteratedOp};

    fn setup(n: usize) -> (ShmLayout, Shm) {
        let mut l = ShmLayout::new();
        for i in 0..n {
            l.push(CellSpec::single_writer(
                Pid(i as u32),
                n,
                make_cell(Val::Nil, 0, 0),
                format!("Val[{i}]"),
            ));
        }
        let m = l.initial_memory();
        (l, m)
    }

    fn run(op: &mut IteratedOp<VaOp>, shm: &mut Shm, l: &ShmLayout) -> Val {
        for _ in 0..100 {
            match op.step(shm, l) {
                IterEffect::Complete(v) => return v,
                IterEffect::NeedChoice { .. } => op.choose(0),
                _ => {}
            }
        }
        panic!("operation did not complete");
    }

    #[test]
    fn read_of_fresh_register_returns_initial() {
        let (l, mut m) = setup(3);
        let mut r = IteratedOp::new(VaOp::read(Pid(2), 0, 3), 1);
        assert_eq!(run(&mut r, &mut m, &l), Val::Nil);
    }

    #[test]
    fn write_then_read_round_trips() {
        let (l, mut m) = setup(3);
        let mut w = IteratedOp::new(VaOp::write(Pid(0), 0, 3, Val::Int(9)), 1);
        assert_eq!(run(&mut w, &mut m, &l), Val::Nil);
        let mut r = IteratedOp::new(VaOp::read(Pid(2), 0, 3), 1);
        assert_eq!(run(&mut r, &mut m, &l), Val::Int(9));
    }

    #[test]
    fn concurrent_writes_resolve_by_timestamp_then_pid() {
        let (l, mut m) = setup(3);
        // Both writers read the fresh state (max t = 0) and both install
        // t = 1; the higher pid wins the lexicographic tie-break.
        let mut w0 = IteratedOp::new(VaOp::write(Pid(0), 0, 3, Val::Int(0)), 1);
        let mut w1 = IteratedOp::new(VaOp::write(Pid(1), 0, 3, Val::Int(1)), 1);
        // Interleave the preambles fully before either write.
        for _ in 0..3 {
            w0.step(&mut m, &l);
            w1.step(&mut m, &l);
        }
        // Both tails.
        w0.step(&mut m, &l);
        w1.step(&mut m, &l);
        let mut r = IteratedOp::new(VaOp::read(Pid(2), 0, 3), 1);
        assert_eq!(run(&mut r, &mut m, &l), Val::Int(1));
    }

    #[test]
    fn sequential_writes_monotonically_increase_timestamps() {
        let (l, mut m) = setup(2);
        for (pid, v) in [(0u32, 1i64), (1, 2), (0, 3)] {
            let mut w = IteratedOp::new(VaOp::write(Pid(pid), 0, 2, Val::Int(v)), 1);
            run(&mut w, &mut m, &l);
        }
        let mut r = IteratedOp::new(VaOp::read(Pid(1), 0, 2), 1);
        assert_eq!(run(&mut r, &mut m, &l), Val::Int(3));
    }

    #[test]
    fn k2_read_requests_choice_and_uses_it() {
        let (l, mut m) = setup(2);
        let mut r = IteratedOp::new(VaOp::read(Pid(1), 0, 2), 2);
        // First iteration sees the initial state.
        r.step(&mut m, &l);
        r.step(&mut m, &l);
        // A write lands between iterations.
        let mut w = IteratedOp::new(VaOp::write(Pid(0), 0, 2, Val::Int(5)), 1);
        run(&mut w, &mut m, &l);
        // Second iteration sees the write.
        r.step(&mut m, &l);
        match r.step(&mut m, &l) {
            IterEffect::NeedChoice { choices: 2, .. } => {}
            other => panic!("expected choice request, got {other:?}"),
        }
        // Choosing iteration 0 returns the old value — the blunting
        // mechanism in action.
        r.choose(0);
        match r.step(&mut m, &l) {
            IterEffect::Complete(v) => assert_eq!(v, Val::Nil),
            other => panic!("unexpected {other:?}"),
        }
    }
}
