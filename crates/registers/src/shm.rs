//! The shared-memory substrate: an array of atomic base registers with
//! per-cell access control.
//!
//! Base registers "execute in a single indivisible step" (Section 2.1): one
//! scheduled event of the composed system performs exactly one cell read or
//! write. Access control materializes the constructions' assumptions —
//! *single-writer* registers for the snapshot and Vitányi–Awerbuch
//! constructions, *single-reader* registers for Israeli–Li — and turns an
//! implementation that violates its register discipline into a panic
//! instead of a silent wrong answer.

use blunt_core::ids::Pid;
use blunt_core::value::Val;
use std::fmt;

/// Index of a base register.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CellId(pub usize);

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell{}", self.0)
    }
}

/// Static per-cell access rights (part of the immutable system definition).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CellSpec {
    /// Bitmask of processes allowed to write.
    pub writers: u64,
    /// Bitmask of processes allowed to read.
    pub readers: u64,
    /// Initial contents.
    pub initial: Val,
    /// Debug label (e.g. `"M[2]"`, `"Report[1][0]"`).
    pub label: String,
}

impl CellSpec {
    /// A cell writable by `writers` and readable by `readers`.
    #[must_use]
    pub fn new(writers: &[Pid], readers: &[Pid], initial: Val, label: String) -> CellSpec {
        CellSpec {
            writers: mask(writers),
            readers: mask(readers),
            initial,
            label,
        }
    }

    /// A multi-reader cell with a single writer.
    #[must_use]
    pub fn single_writer(writer: Pid, n: usize, initial: Val, label: String) -> CellSpec {
        CellSpec {
            writers: 1 << writer.index(),
            readers: all_mask(n),
            initial,
            label,
        }
    }

    /// A single-writer single-reader cell.
    #[must_use]
    pub fn single_reader(writer: Pid, reader: Pid, initial: Val, label: String) -> CellSpec {
        CellSpec {
            writers: 1 << writer.index(),
            readers: 1 << reader.index(),
            initial,
            label,
        }
    }
}

fn mask(pids: &[Pid]) -> u64 {
    pids.iter().fold(0, |m, p| m | (1 << p.index()))
}

fn all_mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// The immutable memory layout: cell specifications in cell-id order.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct ShmLayout {
    cells: Vec<CellSpec>,
}

impl ShmLayout {
    /// An empty layout.
    #[must_use]
    pub fn new() -> ShmLayout {
        ShmLayout::default()
    }

    /// Appends a cell and returns its id.
    pub fn push(&mut self, spec: CellSpec) -> CellId {
        self.cells.push(spec);
        CellId(self.cells.len() - 1)
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if no cells are declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cell specification accessor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn spec(&self, id: CellId) -> &CellSpec {
        &self.cells[id.0]
    }

    /// Builds the initial memory for this layout.
    #[must_use]
    pub fn initial_memory(&self) -> Shm {
        Shm {
            cells: self.cells.iter().map(|c| c.initial.clone()).collect(),
        }
    }
}

/// The mutable memory: one value per cell.
///
/// Reads and writes check the layout's access rights; a violation is a bug
/// in a register construction and panics.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Shm {
    cells: Vec<Val>,
}

impl Shm {
    /// Atomically reads `cell` as process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` lacks read access or the cell does not exist.
    #[must_use]
    pub fn read(&self, layout: &ShmLayout, cell: CellId, pid: Pid) -> Val {
        let spec = layout.spec(cell);
        assert!(
            spec.readers & (1 << pid.index()) != 0,
            "{pid} reads {} ({}) without permission",
            cell,
            spec.label
        );
        self.cells[cell.0].clone()
    }

    /// Atomically writes `cell` as process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` lacks write access or the cell does not exist.
    pub fn write(&mut self, layout: &ShmLayout, cell: CellId, pid: Pid, val: Val) {
        let spec = layout.spec(cell);
        assert!(
            spec.writers & (1 << pid.index()) != 0,
            "{pid} writes {} ({}) without permission",
            cell,
            spec.label
        );
        self.cells[cell.0] = val;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> ShmLayout {
        let mut l = ShmLayout::new();
        l.push(CellSpec::single_writer(Pid(0), 3, Val::Nil, "M[0]".into()));
        l.push(CellSpec::single_reader(
            Pid(0),
            Pid(2),
            Val::Int(7),
            "V[2]".into(),
        ));
        l
    }

    #[test]
    fn initial_memory_matches_layout() {
        let l = layout();
        let m = l.initial_memory();
        assert_eq!(m.read(&l, CellId(0), Pid(1)), Val::Nil);
        assert_eq!(m.read(&l, CellId(1), Pid(2)), Val::Int(7));
        assert_eq!(l.len(), 2);
        assert!(!l.is_empty());
    }

    #[test]
    fn writes_take_effect() {
        let l = layout();
        let mut m = l.initial_memory();
        m.write(&l, CellId(0), Pid(0), Val::Int(3));
        assert_eq!(m.read(&l, CellId(0), Pid(2)), Val::Int(3));
    }

    #[test]
    #[should_panic(expected = "without permission")]
    fn single_writer_violation_panics() {
        let l = layout();
        let mut m = l.initial_memory();
        m.write(&l, CellId(0), Pid(1), Val::Int(9));
    }

    #[test]
    #[should_panic(expected = "without permission")]
    fn single_reader_violation_panics() {
        let l = layout();
        let m = l.initial_memory();
        let _ = m.read(&l, CellId(1), Pid(1));
    }

    #[test]
    fn masks_cover_declared_processes() {
        let spec = CellSpec::new(&[Pid(0), Pid(2)], &[Pid(1)], Val::Nil, "x".into());
        assert_eq!(spec.writers, 0b101);
        assert_eq!(spec.readers, 0b010);
    }
}
