//! Shared-memory register and snapshot constructions (Sections 5.2–5.4 of
//! the paper), with their preamble-iterated transformations.
//!
//! Three classic linearizable-but-not-strongly-linearizable constructions
//! over *atomic base registers*:
//!
//! - [`snapshot`] — the Afek–Attiya–Dolev–Gafni–Merritt–Shavit atomic
//!   snapshot from single-writer registers (Section 5.2): scans repeat
//!   collects until a clean double collect, or borrow the embedded view of
//!   an updater seen moving twice;
//! - [`vitanyi_awerbuch`] — the multi-writer multi-reader register from
//!   single-writer registers (Section 5.3): readers take the
//!   maximum-timestamp value, writers bump the maximum timestamp;
//! - [`israeli_li`] — the single-writer multi-reader register from
//!   single-reader registers (Section 5.4): readers gossip through a
//!   `Report` matrix.
//!
//! Each construction is written as a step machine implementing
//! [`twophase::ShmOp`], which splits the operation into an **effect-free
//! preamble** (its steps receive `&Shm` — read-only access is enforced by
//! the type system) and a **tail** (`&mut Shm`). The generic wrapper
//! [`twophase::IteratedOp`] applies the paper's Algorithm 2 to *any* such
//! machine: run the preamble `k` times, pick one result uniformly at
//! random, run the tail — "the transformation is mechanical, once the
//! preamble is identified" (Section 7).
//!
//! [`system::ShmSystem`] composes a randomized program with a set of these
//! objects (or their atomic baselines) into a [`blunt_sim::System`] for
//! scheduling, adversary search, and exhaustive exploration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod israeli_li;
pub mod scenarios;
pub mod shm;
pub mod snapshot;
pub mod system;
pub mod twophase;
pub mod vitanyi_awerbuch;

pub use shm::{CellId, Shm, ShmLayout};
pub use system::{ShmEvent, ShmObjectConfig, ShmSystem, ShmSystemDef};
pub use twophase::{IteratedOp, PreambleStatus, ShmOp};
