//! The Israeli–Li single-writer multi-reader register from single-reader
//! registers (Section 5.4 of the paper).
//!
//! Memory layout for `n` processes with designated writer `w`:
//!
//! - `Val[i]` for every process `i`: written by `w`, read **only** by `i`
//!   (single-reader);
//! - `Report[i][j]`: written by reader `i`, read only by reader `j` — the
//!   gossip matrix through which readers forward what they returned.
//!
//! All cells hold `(value, seq)` pairs.
//!
//! - `Write(v)`: write `(v, seq+1)` into every `Val[i]` — the preamble is
//!   **empty** (the write has no effect-free prefix to iterate);
//! - `Read` at `i`: read `Val[i]` and column `i` of `Report` (the
//!   preamble), pick the pair with the largest sequence number, then write
//!   it to row `i` of `Report` (the tail) and return the value.

use crate::shm::{CellId, Shm, ShmLayout};
use crate::twophase::{PreambleStatus, ShmOp};
use blunt_core::ids::Pid;
use blunt_core::value::Val;

fn parse_cell(v: &Val) -> (Val, i64) {
    let t = v.as_tuple().expect("IL cell holds a pair");
    (t[0].clone(), t[1].as_int().expect("IL seq is an integer"))
}

/// Builds a cell pair `(value, seq)`.
#[must_use]
pub fn make_cell(value: Val, seq: i64) -> Val {
    Val::Tuple(vec![value, Val::Int(seq)])
}

/// Cell index helpers for the Israeli–Li layout rooted at `base` for `n`
/// processes: `Val[i]` at `base + i`, `Report[i][j]` at `base + n + i·n + j`.
#[must_use]
pub fn val_cell(base: usize, i: usize) -> CellId {
    CellId(base + i)
}

/// See [`val_cell`].
#[must_use]
pub fn report_cell(base: usize, n: usize, i: usize, j: usize) -> CellId {
    CellId(base + n + i * n + j)
}

/// A `Read` or `Write` on the Israeli–Li register.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct IlOp {
    pid: Pid,
    base: usize,
    n: usize,
    /// `Some((v, seq))` for writes.
    write: Option<(Val, i64)>,
    /// Preamble/tail progress cursor.
    idx: usize,
    /// Best (value, seq) observed by the preamble.
    best: Option<(Val, i64)>,
    /// Chosen locals.
    chosen: Option<(Val, i64)>,
}

impl IlOp {
    /// A `Read` by `pid`.
    #[must_use]
    pub fn read(pid: Pid, base: usize, n: usize) -> IlOp {
        IlOp {
            pid,
            base,
            n,
            write: None,
            idx: 0,
            best: None,
            chosen: None,
        }
    }

    /// A `Write(v)` with sequence number `seq` (allocated by the writer).
    #[must_use]
    pub fn write(pid: Pid, base: usize, n: usize, v: Val, seq: i64) -> IlOp {
        IlOp {
            pid,
            base,
            n,
            write: Some((v, seq)),
            idx: 0,
            best: None,
            chosen: None,
        }
    }

    /// The sequence of cells a reader reads: own `Val`, then own `Report`
    /// column (skipping its own row).
    fn read_targets(&self) -> Vec<CellId> {
        let me = self.pid.index();
        let mut cells = vec![val_cell(self.base, me)];
        for j in 0..self.n {
            if j != me {
                cells.push(report_cell(self.base, self.n, j, me));
            }
        }
        cells
    }

    /// The cells a reader's tail writes: own `Report` row.
    fn write_targets(&self) -> Vec<CellId> {
        let me = self.pid.index();
        (0..self.n)
            .filter(|&j| j != me)
            .map(|j| report_cell(self.base, self.n, me, j))
            .collect()
    }
}

impl ShmOp for IlOp {
    type Locals = (Val, i64);

    fn preamble_is_empty(&self) -> bool {
        self.write.is_some()
    }

    fn empty_locals(&self) -> (Val, i64) {
        (Val::Nil, 0)
    }

    fn preamble_step(&mut self, shm: &Shm, layout: &ShmLayout) -> PreambleStatus<(Val, i64)> {
        let targets = self.read_targets();
        let (v, s) = parse_cell(&shm.read(layout, targets[self.idx], self.pid));
        let better = match &self.best {
            None => true,
            Some((_, bs)) => s > *bs,
        };
        if better {
            self.best = Some((v, s));
        }
        self.idx += 1;
        if self.idx == targets.len() {
            PreambleStatus::Done(self.best.clone().expect("at least one cell read"))
        } else {
            PreambleStatus::Step
        }
    }

    fn reset_preamble(&mut self) {
        self.idx = 0;
        self.best = None;
    }

    fn start_tail(&mut self, locals: (Val, i64)) {
        self.chosen = Some(locals);
        self.idx = 0;
    }

    fn tail_step(&mut self, shm: &mut Shm, layout: &ShmLayout) -> Option<Val> {
        match &self.write {
            // Writer: install (v, seq) into every Val[i], one per step.
            Some((v, seq)) => {
                let cell = val_cell(self.base, self.idx);
                shm.write(layout, cell, self.pid, make_cell(v.clone(), *seq));
                self.idx += 1;
                (self.idx == self.n).then_some(Val::Nil)
            }
            // Reader: forward the chosen pair through own Report row, then
            // return the value.
            None => {
                let (v, s) = self.chosen.clone().expect("tail after start_tail");
                let targets = self.write_targets();
                if self.idx < targets.len() {
                    shm.write(layout, targets[self.idx], self.pid, make_cell(v, s));
                    self.idx += 1;
                    (self.idx == targets.len())
                        .then_some(self.chosen.clone().expect("chosen set").0)
                } else {
                    // Degenerate n = 1 case: nothing to report.
                    Some(v)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shm::{CellSpec, ShmLayout};
    use crate::twophase::{IterEffect, IteratedOp};

    const WRITER: Pid = Pid(0);

    fn setup(n: usize) -> (ShmLayout, Shm) {
        let mut l = ShmLayout::new();
        for i in 0..n {
            l.push(CellSpec::single_reader(
                WRITER,
                Pid(i as u32),
                make_cell(Val::Nil, 0),
                format!("Val[{i}]"),
            ));
        }
        for i in 0..n {
            for j in 0..n {
                l.push(CellSpec::single_reader(
                    Pid(i as u32),
                    Pid(j as u32),
                    make_cell(Val::Nil, 0),
                    format!("Report[{i}][{j}]"),
                ));
            }
        }
        let m = l.initial_memory();
        (l, m)
    }

    fn run(op: &mut IteratedOp<IlOp>, shm: &mut Shm, l: &ShmLayout) -> Val {
        for _ in 0..200 {
            match op.step(shm, l) {
                IterEffect::Complete(v) => return v,
                IterEffect::NeedChoice { .. } => op.choose(0),
                _ => {}
            }
        }
        panic!("operation did not complete");
    }

    #[test]
    fn fresh_read_returns_initial() {
        let (l, mut m) = setup(3);
        let mut r = IteratedOp::new(IlOp::read(Pid(2), 0, 3), 1);
        assert_eq!(run(&mut r, &mut m, &l), Val::Nil);
    }

    #[test]
    fn write_then_read_round_trips() {
        let (l, mut m) = setup(3);
        let mut w = IteratedOp::new(IlOp::write(WRITER, 0, 3, Val::Int(4), 1), 1);
        assert_eq!(run(&mut w, &mut m, &l), Val::Nil);
        for reader in 1..3u32 {
            let mut r = IteratedOp::new(IlOp::read(Pid(reader), 0, 3), 1);
            assert_eq!(run(&mut r, &mut m, &l), Val::Int(4));
        }
    }

    #[test]
    fn reader_gossip_prevents_new_old_inversion_between_readers() {
        let (l, mut m) = setup(3);
        // The writer installs value 1 only at reader 1's Val cell so far
        // (a partial write).
        let mut w = IteratedOp::new(IlOp::write(WRITER, 0, 3, Val::Int(1), 1), 1);
        w.step(&mut m, &l); // writes Val[0]
        w.step(&mut m, &l); // writes Val[1]
                            // Reader 1 reads now: sees (1, 1) and reports it.
        let mut r1 = IteratedOp::new(IlOp::read(Pid(1), 0, 3), 1);
        assert_eq!(run(&mut r1, &mut m, &l), Val::Int(1));
        // Reader 2's Val[2] is still old, but reader 1's report reaches it.
        let mut r2 = IteratedOp::new(IlOp::read(Pid(2), 0, 3), 1);
        assert_eq!(run(&mut r2, &mut m, &l), Val::Int(1));
    }

    #[test]
    fn write_preamble_is_empty_and_uniterated() {
        let op = IlOp::write(WRITER, 0, 3, Val::Int(1), 1);
        assert!(op.preamble_is_empty());
        let (l, mut m) = setup(3);
        let mut wrapped = IteratedOp::new(op, 8);
        let mut steps = 0;
        loop {
            match wrapped.step(&mut m, &l) {
                IterEffect::Complete(_) => break,
                IterEffect::NeedChoice { .. } => panic!("writes must not branch"),
                _ => steps += 1,
            }
        }
        assert_eq!(steps, 2, "a write takes exactly n base steps");
    }

    #[test]
    fn reads_have_nontrivial_preamble() {
        let op = IlOp::read(Pid(1), 0, 3);
        assert!(!op.preamble_is_empty());
        assert_eq!(op.read_targets().len(), 3);
        assert_eq!(op.write_targets().len(), 2);
    }

    #[test]
    fn k2_read_can_return_the_older_iteration() {
        let (l, mut m) = setup(2);
        let mut r = IteratedOp::new(IlOp::read(Pid(1), 0, 2), 2);
        // Iteration 1 over the fresh state (2 reads: Val[1], Report[0][1]).
        r.step(&mut m, &l);
        r.step(&mut m, &l);
        // Writer completes a write between iterations.
        let mut w = IteratedOp::new(IlOp::write(WRITER, 0, 2, Val::Int(7), 1), 1);
        run(&mut w, &mut m, &l);
        // Iteration 2 sees the write; then the choice resolves to 0.
        r.step(&mut m, &l);
        match r.step(&mut m, &l) {
            IterEffect::NeedChoice { choices: 2, .. } => r.choose(0),
            other => panic!("unexpected {other:?}"),
        }
        // Tail: one report write, then return of the OLD value.
        let v = loop {
            if let IterEffect::Complete(v) = r.step(&mut m, &l) {
                break v;
            }
        };
        assert_eq!(v, Val::Nil);
    }
}
