//! Ready-made shared-memory system configurations for the paper's
//! shared-memory case studies (Sections 5.2–5.4).

use crate::system::{ShmObjectConfig, ShmSystem, ShmSystemDef};
use blunt_core::ids::Pid;
use blunt_core::value::Val;
use blunt_programs::{ghw, weakener};

/// The snapshot weakener (`blunt_programs::ghw`) with an **atomic**
/// snapshot and an atomic coin register — the `P(O_a)` baseline.
#[must_use]
pub fn ghw_atomic() -> ShmSystem {
    ShmSystem::new(ShmSystemDef {
        program: ghw::snapshot_weakener(),
        objects: vec![
            ShmObjectConfig::AtomicSnapshot {
                components: 3,
                initial: Val::Nil,
            },
            ShmObjectConfig::AtomicRegister {
                initial: Val::Int(-1),
            },
        ],
    })
}

/// The snapshot weakener over the Afek et al. snapshot iterated `k` times
/// (`k = 1` is the untransformed construction of Section 5.2).
#[must_use]
pub fn ghw_snapshot(k: u32) -> ShmSystem {
    ShmSystem::new(ShmSystemDef {
        program: ghw::snapshot_weakener(),
        objects: vec![
            ShmObjectConfig::Snapshot {
                k,
                components: 3,
                initial: Val::Nil,
                update_preamble: false,
            },
            ShmObjectConfig::AtomicRegister {
                initial: Val::Int(-1),
            },
        ],
    })
}

/// The weakener (Algorithm 1) with `R` a Vitányi–Awerbuch register iterated
/// `k` times and `C` atomic.
#[must_use]
pub fn weakener_va(k: u32) -> ShmSystem {
    ShmSystem::new(ShmSystemDef {
        program: weakener::weakener(),
        objects: vec![
            ShmObjectConfig::VitanyiAwerbuch {
                k,
                initial: Val::Nil,
            },
            ShmObjectConfig::AtomicRegister {
                initial: Val::Int(-1),
            },
        ],
    })
}

/// The weakener with both registers atomic, in the shared-memory system
/// (sanity baseline; equivalent to the message-passing atomic scenario).
#[must_use]
pub fn weakener_shm_atomic() -> ShmSystem {
    ShmSystem::new(ShmSystemDef {
        program: weakener::weakener(),
        objects: vec![
            ShmObjectConfig::AtomicRegister { initial: Val::Nil },
            ShmObjectConfig::AtomicRegister {
                initial: Val::Int(-1),
            },
        ],
    })
}

/// The single-writer weakener with `R` an Israeli–Li register (writer
/// `p0`) iterated `k` times and `C` atomic.
#[must_use]
pub fn sw_weakener_il(k: u32) -> ShmSystem {
    ShmSystem::new(ShmSystemDef {
        program: weakener::sw_weakener(),
        objects: vec![
            ShmObjectConfig::IsraeliLi {
                k,
                writer: Pid(0),
                initial: Val::Nil,
            },
            ShmObjectConfig::AtomicRegister {
                initial: Val::Int(-1),
            },
        ],
    })
}

/// The single-writer weakener with `R` atomic — the baseline for
/// [`sw_weakener_il`].
#[must_use]
pub fn sw_weakener_atomic() -> ShmSystem {
    ShmSystem::new(ShmSystemDef {
        program: weakener::sw_weakener(),
        objects: vec![
            ShmObjectConfig::AtomicRegister { initial: Val::Nil },
            ShmObjectConfig::AtomicRegister {
                initial: Val::Int(-1),
            },
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_core::ratio::Ratio;
    use blunt_sim::explore::{worst_case_prob, ExploreBudget};
    use blunt_sim::kernel::run;
    use blunt_sim::rng::SplitMix64;
    use blunt_sim::sched::RandomScheduler;

    fn completes(mk: impl Fn() -> ShmSystem, seeds: u64) {
        for seed in 0..seeds {
            let report = run(
                mk(),
                &mut RandomScheduler::new(seed),
                &mut SplitMix64::new(seed),
                false,
                100_000,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(report.outcome.len() >= 3, "seed {seed}: incomplete outcome");
        }
    }

    #[test]
    fn all_scenarios_complete_under_random_schedules() {
        completes(ghw_atomic, 30);
        completes(|| ghw_snapshot(1), 30);
        completes(|| ghw_snapshot(2), 20);
        completes(|| weakener_va(1), 30);
        completes(|| weakener_va(2), 20);
        completes(weakener_shm_atomic, 30);
        completes(|| sw_weakener_il(1), 30);
        completes(|| sw_weakener_il(2), 20);
        completes(sw_weakener_atomic, 30);
    }

    #[test]
    fn shm_atomic_weakener_worst_case_is_one_half() {
        let (p, _) = worst_case_prob(
            &weakener_shm_atomic(),
            &blunt_programs::weakener::is_bad,
            &ExploreBudget::with_max_states(1_000_000),
        )
        .unwrap();
        assert_eq!(p, Ratio::new(1, 2));
    }

    #[test]
    fn k_iterated_scenarios_take_object_random_steps() {
        let mut saw = false;
        for seed in 0..20 {
            let report = run(
                weakener_va(2),
                &mut RandomScheduler::new(seed),
                &mut SplitMix64::new(seed),
                true,
                100_000,
            )
            .unwrap();
            saw |= report.trace.object_random_count() > 0;
        }
        assert!(saw, "VA² must flip object coins");
    }

    #[test]
    fn untransformed_scenarios_take_no_object_random_steps() {
        for seed in 0..10 {
            for sys in [ghw_snapshot(1), weakener_va(1), sw_weakener_il(1)] {
                let report = run(
                    sys,
                    &mut RandomScheduler::new(seed),
                    &mut SplitMix64::new(seed),
                    true,
                    100_000,
                )
                .unwrap();
                assert_eq!(report.trace.object_random_count(), 0);
            }
        }
    }

    #[test]
    fn il_writes_are_never_iterated() {
        // Even with k = 8, IL writes have empty preambles: the only object
        // random steps come from p2's reads (k = 8 choices each).
        for seed in 0..10 {
            let report = run(
                sw_weakener_il(8),
                &mut RandomScheduler::new(seed),
                &mut SplitMix64::new(seed),
                true,
                200_000,
            )
            .unwrap();
            for ev in report.trace.events() {
                if let blunt_sim::trace::TraceEvent::ObjectRandom { pid, .. } = ev {
                    assert_eq!(*pid, Pid(2), "only the reader takes object coins");
                }
            }
        }
    }
}
