//! The composed shared-memory system: a randomized program over a set of
//! register/snapshot objects (atomic baselines or the step-machine
//! constructions of this crate), implementing [`blunt_sim::System`].
//!
//! Scheduling granularity is one base-register access per adversary event
//! (`Obj(pid)` steps process `pid`'s active operation by one access), which
//! is exactly the interleaving power the paper's adversary has over
//! shared-memory implementations.

use crate::israeli_li::{self, IlOp};
use crate::shm::{CellSpec, Shm, ShmLayout};
use crate::snapshot::{self, SnapshotOp};
use crate::twophase::{IterEffect, IteratedOp};
use crate::vitanyi_awerbuch::{self, VaOp};
use blunt_core::ids::{InvId, MethodId, ObjId, Pid};
use blunt_core::outcome::Outcome;
use blunt_core::value::Val;
use blunt_programs::{ProgCmd, ProgState, ProgramDef};
use blunt_sim::system::{Effects, RandomKind, Status, System};
use blunt_sim::trace::TraceEvent;
use std::rc::Rc;

/// Configuration of one shared object.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ShmObjectConfig {
    /// An atomic register (the `O_a` baseline).
    AtomicRegister {
        /// Initial value.
        initial: Val,
    },
    /// An atomic snapshot (the `O_a` baseline for snapshot programs).
    AtomicSnapshot {
        /// Number of components.
        components: usize,
        /// Initial component value.
        initial: Val,
    },
    /// The Afek et al. snapshot, preamble-iterated `k` times.
    Snapshot {
        /// Preamble iterations (`k = 1` = the untransformed construction).
        k: u32,
        /// Number of components (component `i` is writable by process `i`).
        components: usize,
        /// Initial component value.
        initial: Val,
        /// Use the extended preamble mapping that covers `Update`'s
        /// embedded scan (Section 5.2's remark).
        update_preamble: bool,
    },
    /// The Vitányi–Awerbuch MWMR register, preamble-iterated `k` times.
    VitanyiAwerbuch {
        /// Preamble iterations.
        k: u32,
        /// Initial value.
        initial: Val,
    },
    /// The Israeli–Li SWMR register, preamble-iterated `k` times.
    IsraeliLi {
        /// Preamble iterations (applies to reads; writes have empty
        /// preambles).
        k: u32,
        /// The designated writer.
        writer: Pid,
        /// Initial value.
        initial: Val,
    },
}

/// The immutable definition of a composed shared-memory system.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ShmSystemDef {
    /// The randomized program.
    pub program: ProgramDef,
    /// One configuration per object id.
    pub objects: Vec<ShmObjectConfig>,
}

/// Definition plus derived layout (built once, shared via `Rc`).
#[derive(PartialEq, Eq, Hash, Debug)]
struct Built {
    def: ShmSystemDef,
    layout: ShmLayout,
    /// First cell of each object's region (`usize::MAX` for atomic objects).
    bases: Vec<usize>,
}

/// A schedulable event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ShmEvent {
    /// Process `pid` takes its next program step.
    Prog(Pid),
    /// Process `pid` executes one base access of its active operation.
    Obj(Pid),
}

/// Whose random instruction the system is suspended at.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Awaiting {
    Program { pid: Pid, choices: usize },
    Object { pid: Pid, choices: usize },
}

/// An active operation at a process.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum OpImpl {
    Snap(IteratedOp<SnapshotOp>),
    Va(IteratedOp<VaOp>),
    Il(IteratedOp<IlOp>),
}

impl OpImpl {
    fn step(&mut self, shm: &mut Shm, layout: &ShmLayout) -> IterEffect {
        match self {
            OpImpl::Snap(op) => op.step(shm, layout),
            OpImpl::Va(op) => op.step(shm, layout),
            OpImpl::Il(op) => op.step(shm, layout),
        }
    }

    fn choose(&mut self, choice: usize) {
        match self {
            OpImpl::Snap(op) => op.choose(choice),
            OpImpl::Va(op) => op.choose(choice),
            OpImpl::Il(op) => op.choose(choice),
        }
    }

    fn in_preamble(&self) -> bool {
        match self {
            OpImpl::Snap(op) => op.in_preamble(),
            OpImpl::Va(op) => op.in_preamble(),
            OpImpl::Il(op) => op.in_preamble(),
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Client {
    inv: InvId,
    obj: ObjId,
    op: OpImpl,
}

/// The composed shared-memory system state.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ShmSystem {
    built: Rc<Built>,
    prog: ProgState,
    shm: Shm,
    /// State of atomic registers (`Val::Nil` placeholder otherwise).
    atomic_regs: Vec<Val>,
    /// State of atomic snapshots (empty otherwise).
    atomic_snaps: Vec<Vec<Val>>,
    clients: Vec<Option<Client>>,
    /// Per-object per-process sequence counters (snapshot updaters, the
    /// Israeli–Li writer).
    seqs: Vec<Vec<i64>>,
    awaiting: Option<Awaiting>,
    inv_counters: Vec<u32>,
}

impl ShmSystem {
    /// Builds the initial state.
    ///
    /// # Panics
    ///
    /// Panics if the program references an unconfigured object, a
    /// non-writer writes an Israeli–Li register at runtime, or a snapshot
    /// component is out of range at runtime.
    #[must_use]
    pub fn new(def: ShmSystemDef) -> ShmSystem {
        let n = def.program.process_count();
        let mut layout = ShmLayout::new();
        let mut bases = Vec::with_capacity(def.objects.len());
        for (oid, cfg) in def.objects.iter().enumerate() {
            match cfg {
                ShmObjectConfig::AtomicRegister { .. } | ShmObjectConfig::AtomicSnapshot { .. } => {
                    bases.push(usize::MAX)
                }
                ShmObjectConfig::Snapshot {
                    components,
                    initial,
                    ..
                } => {
                    let base = layout.len();
                    for i in 0..*components {
                        layout.push(CellSpec::single_writer(
                            Pid(i as u32),
                            n,
                            snapshot::make_cell(
                                initial.clone(),
                                0,
                                vec![initial.clone(); *components],
                            ),
                            format!("S{oid}.M[{i}]"),
                        ));
                    }
                    bases.push(base);
                }
                ShmObjectConfig::VitanyiAwerbuch { initial, .. } => {
                    let base = layout.len();
                    for i in 0..n {
                        layout.push(CellSpec::single_writer(
                            Pid(i as u32),
                            n,
                            vitanyi_awerbuch::make_cell(initial.clone(), 0, 0),
                            format!("R{oid}.Val[{i}]"),
                        ));
                    }
                    bases.push(base);
                }
                ShmObjectConfig::IsraeliLi {
                    writer, initial, ..
                } => {
                    let base = layout.len();
                    for i in 0..n {
                        layout.push(CellSpec::single_reader(
                            *writer,
                            Pid(i as u32),
                            israeli_li::make_cell(initial.clone(), 0),
                            format!("R{oid}.Val[{i}]"),
                        ));
                    }
                    for i in 0..n {
                        for j in 0..n {
                            layout.push(CellSpec::single_reader(
                                Pid(i as u32),
                                Pid(j as u32),
                                israeli_li::make_cell(initial.clone(), 0),
                                format!("R{oid}.Report[{i}][{j}]"),
                            ));
                        }
                    }
                    bases.push(base);
                }
            }
        }
        let atomic_regs = def
            .objects
            .iter()
            .map(|c| match c {
                ShmObjectConfig::AtomicRegister { initial } => initial.clone(),
                _ => Val::Nil,
            })
            .collect();
        let atomic_snaps = def
            .objects
            .iter()
            .map(|c| match c {
                ShmObjectConfig::AtomicSnapshot {
                    components,
                    initial,
                } => vec![initial.clone(); *components],
                _ => Vec::new(),
            })
            .collect();
        let prog = ProgState::new(&def.program);
        let objects = def.objects.len();
        let shm = layout.initial_memory();
        ShmSystem {
            built: Rc::new(Built { def, layout, bases }),
            prog,
            shm,
            atomic_regs,
            atomic_snaps,
            clients: vec![None; n],
            seqs: vec![vec![0; n]; objects],
            awaiting: None,
            inv_counters: vec![0; n],
        }
    }

    /// The program state (for assertions in tests).
    #[must_use]
    pub fn prog(&self) -> &ProgState {
        &self.prog
    }

    /// Returns `true` if `pid`'s active operation is still in its preamble.
    #[must_use]
    pub fn in_preamble(&self, pid: Pid) -> bool {
        self.clients[pid.index()]
            .as_ref()
            .is_some_and(|c| c.op.in_preamble())
    }

    fn fresh_inv(&mut self, pid: Pid) -> InvId {
        let c = &mut self.inv_counters[pid.index()];
        *c += 1;
        InvId((u64::from(pid.0) << 32) | u64::from(*c))
    }

    fn handle_invoke(
        &mut self,
        pid: Pid,
        obj: ObjId,
        method: MethodId,
        arg: Val,
        site: blunt_core::ids::CallSite,
        fx: &mut Effects,
    ) {
        let inv = self.fresh_inv(pid);
        // Aggregated over every explorer branch (global registry; see
        // `blunt_sim::network` for the rationale).
        blunt_obs::static_counter!("shm.ops.started").inc();
        fx.push_with(|| TraceEvent::Call {
            inv,
            pid,
            obj,
            method,
            arg: arg.clone(),
            site,
        });
        let n = self.built.def.program.process_count();
        let cfg = self.built.def.objects[obj.index()].clone();
        let base = self.built.bases[obj.index()];
        let op = match (&cfg, method) {
            (ShmObjectConfig::AtomicRegister { .. }, MethodId::READ) => {
                let v = self.atomic_regs[obj.index()].clone();
                self.finish_atomic(pid, inv, v, fx);
                return;
            }
            (ShmObjectConfig::AtomicRegister { .. }, MethodId::WRITE) => {
                self.atomic_regs[obj.index()] = arg;
                self.finish_atomic(pid, inv, Val::Nil, fx);
                return;
            }
            (ShmObjectConfig::AtomicSnapshot { .. }, MethodId::SCAN) => {
                let v = Val::Tuple(self.atomic_snaps[obj.index()].clone());
                self.finish_atomic(pid, inv, v, fx);
                return;
            }
            (ShmObjectConfig::AtomicSnapshot { components, .. }, MethodId::UPDATE) => {
                let (idx, v) = parse_update_arg(&arg, *components);
                self.atomic_snaps[obj.index()][idx] = v;
                self.finish_atomic(pid, inv, Val::Nil, fx);
                return;
            }
            (ShmObjectConfig::Snapshot { k, components, .. }, MethodId::SCAN) => OpImpl::Snap(
                IteratedOp::new(SnapshotOp::scan(pid, base, *components), *k),
            ),
            (
                ShmObjectConfig::Snapshot {
                    k,
                    components,
                    update_preamble,
                    ..
                },
                MethodId::UPDATE,
            ) => {
                let (idx, v) = parse_update_arg(&arg, *components);
                let seq = &mut self.seqs[obj.index()][pid.index()];
                *seq += 1;
                OpImpl::Snap(IteratedOp::new(
                    SnapshotOp::update(pid, base, *components, idx, v, *seq, *update_preamble),
                    *k,
                ))
            }
            (ShmObjectConfig::VitanyiAwerbuch { k, .. }, MethodId::READ) => {
                OpImpl::Va(IteratedOp::new(VaOp::read(pid, base, n), *k))
            }
            (ShmObjectConfig::VitanyiAwerbuch { k, .. }, MethodId::WRITE) => {
                OpImpl::Va(IteratedOp::new(VaOp::write(pid, base, n, arg), *k))
            }
            (ShmObjectConfig::IsraeliLi { k, .. }, MethodId::READ) => {
                OpImpl::Il(IteratedOp::new(IlOp::read(pid, base, n), *k))
            }
            (ShmObjectConfig::IsraeliLi { k, writer, .. }, MethodId::WRITE) => {
                assert_eq!(
                    *writer, pid,
                    "process {pid} writes Israeli–Li register {obj} owned by {writer}"
                );
                let seq = &mut self.seqs[obj.index()][pid.index()];
                *seq += 1;
                OpImpl::Il(IteratedOp::new(IlOp::write(pid, base, n, arg, *seq), *k))
            }
            (cfg, m) => panic!("object {obj} ({cfg:?}) does not implement {m}"),
        };
        self.clients[pid.index()] = Some(Client { inv, obj, op });
    }

    fn finish_atomic(&mut self, pid: Pid, inv: InvId, ret: Val, fx: &mut Effects) {
        fx.push_with(|| TraceEvent::Return {
            inv,
            pid,
            val: ret.clone(),
        });
        self.prog.on_return(pid, ret);
    }

    fn handle_prog_step(&mut self, pid: Pid, fx: &mut Effects) {
        let built = Rc::clone(&self.built);
        match self.prog.step(&built.def.program, pid) {
            ProgCmd::Invoke {
                site,
                obj,
                method,
                arg,
            } => self.handle_invoke(pid, obj, method, arg, site, fx),
            ProgCmd::Random { choices } => {
                self.awaiting = Some(Awaiting::Program { pid, choices });
            }
            ProgCmd::Halted => fx.push(TraceEvent::Internal {
                pid,
                label: "halt".into(),
            }),
            ProgCmd::Looping => fx.push(TraceEvent::Internal {
                pid,
                label: "loop forever".into(),
            }),
        }
    }

    fn handle_obj_step(&mut self, pid: Pid, fx: &mut Effects) {
        let built = Rc::clone(&self.built);
        let client = self.clients[pid.index()]
            .as_mut()
            .expect("Obj event without an active operation");
        let inv = client.inv;
        blunt_obs::static_counter!("shm.base_steps").inc();
        match client.op.step(&mut self.shm, &built.layout) {
            IterEffect::Continue => {
                fx.push_with(|| TraceEvent::Internal {
                    pid,
                    label: "base access".into(),
                });
            }
            IterEffect::PreamblePassed { iteration } => {
                fx.push(TraceEvent::PreamblePassed {
                    inv,
                    pid,
                    iteration,
                });
            }
            IterEffect::NeedChoice { choices, iteration } => {
                fx.push(TraceEvent::PreamblePassed {
                    inv,
                    pid,
                    iteration,
                });
                self.awaiting = Some(Awaiting::Object {
                    pid,
                    choices: choices as usize,
                });
            }
            IterEffect::Complete(ret) => {
                blunt_obs::static_counter!("shm.ops.completed").inc();
                fx.push_with(|| TraceEvent::Return {
                    inv,
                    pid,
                    val: ret.clone(),
                });
                self.clients[pid.index()] = None;
                self.prog.on_return(pid, ret);
            }
        }
    }
}

fn parse_update_arg(arg: &Val, components: usize) -> (usize, Val) {
    let (idx, v) = arg
        .as_pair()
        .expect("Update takes a (component, value) pair");
    let i = usize::try_from(idx.as_int().expect("component index is an integer"))
        .expect("component index is non-negative");
    assert!(i < components, "component {i} out of range");
    (i, v.clone())
}

impl System for ShmSystem {
    type Event = ShmEvent;

    fn process_count(&self) -> usize {
        self.built.def.program.process_count()
    }

    fn enabled(&self, out: &mut Vec<ShmEvent>) {
        out.clear();
        if self.status() != Status::Running {
            return;
        }
        for p in 0..self.process_count() {
            let pid = Pid(p as u32);
            if self.prog.can_step(pid) {
                out.push(ShmEvent::Prog(pid));
            }
            if self.clients[p].is_some() {
                out.push(ShmEvent::Obj(pid));
            }
        }
    }

    fn apply(&mut self, ev: &ShmEvent, fx: &mut Effects) {
        debug_assert_eq!(self.status(), Status::Running);
        match ev {
            ShmEvent::Prog(pid) => self.handle_prog_step(*pid, fx),
            ShmEvent::Obj(pid) => self.handle_obj_step(*pid, fx),
        }
    }

    fn supply_random(&mut self, choice: usize, fx: &mut Effects) {
        match self.awaiting.take() {
            Some(Awaiting::Program { pid, choices }) => {
                assert!(choice < choices, "random choice out of range");
                fx.push(TraceEvent::ProgramRandom {
                    pid,
                    choices,
                    chosen: choice,
                });
                self.prog.on_random(pid, choice);
            }
            Some(Awaiting::Object { pid, choices }) => {
                assert!(choice < choices, "random choice out of range");
                let client = self.clients[pid.index()]
                    .as_mut()
                    .expect("object random step without an active operation");
                fx.push(TraceEvent::ObjectRandom {
                    pid,
                    inv: client.inv,
                    choices,
                    chosen: choice,
                });
                client.op.choose(choice);
            }
            None => panic!("supply_random while not awaiting randomness"),
        }
    }

    fn status(&self) -> Status {
        if self.prog.is_done(&self.built.def.program) {
            return Status::Done;
        }
        match self.awaiting {
            Some(Awaiting::Program { pid, choices }) => Status::AwaitingRandom {
                pid,
                choices,
                kind: RandomKind::Program,
            },
            Some(Awaiting::Object { pid, choices }) => Status::AwaitingRandom {
                pid,
                choices,
                kind: RandomKind::Object,
            },
            None => Status::Running,
        }
    }

    fn outcome(&self) -> Outcome {
        self.prog.outcome()
    }
}
