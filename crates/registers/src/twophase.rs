//! The generic preamble/tail protocol shape and the preamble-iterating
//! wrapper — Algorithm 2 of the paper, as a combinator.
//!
//! A shared-memory operation implements [`ShmOp`]: a step machine whose
//! **preamble** steps receive `&Shm` (they cannot write — effect-freedom is
//! enforced by the borrow, not by convention) and whose **tail** steps
//! receive `&mut Shm`. [`IteratedOp`] lifts any such machine to its `O^k`
//! version: run the preamble `k` times, request one uniform random choice
//! among the `k` collected results, and run the tail on the chosen one.
//! For `k = 1` no random choice is requested, so `O¹ = O` exactly.

use crate::shm::{Shm, ShmLayout};
use std::fmt::Debug;
use std::hash::Hash;

use blunt_core::value::Val;

/// Result of one preamble step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PreambleStatus<L> {
    /// The preamble continues; schedule another step.
    Step,
    /// The preamble just passed its final control point `Π(M)`, producing
    /// the method's locals.
    Done(L),
}

/// A two-phase shared-memory operation.
///
/// The trait's shape *is* the paper's effect-freedom condition: a preamble
/// step can only read the shared memory, a tail step may write it.
pub trait ShmOp: Clone + Eq + Hash + Debug {
    /// The operation's locals, produced by the preamble and consumed by the
    /// tail (the `locals` array of Algorithm 2).
    type Locals: Clone + Eq + Hash + Debug;

    /// Returns `true` if this operation's preamble is empty (`Π(M) = ℓ₀`),
    /// in which case the transformation leaves it unchanged and no preamble
    /// steps are scheduled.
    fn preamble_is_empty(&self) -> bool {
        false
    }

    /// The locals used when the preamble is empty.
    ///
    /// # Panics
    ///
    /// The default implementation panics; operations with empty preambles
    /// must override it.
    fn empty_locals(&self) -> Self::Locals {
        panic!("operation with a non-empty preamble asked for empty locals")
    }

    /// Executes one base-register access of the preamble (read-only).
    fn preamble_step(&mut self, shm: &Shm, layout: &ShmLayout) -> PreambleStatus<Self::Locals>;

    /// Resets preamble-local scratch state so the preamble can run again
    /// (the next iteration of Algorithm 2's `for` loop).
    fn reset_preamble(&mut self);

    /// Installs the chosen locals and switches the machine to its tail.
    fn start_tail(&mut self, locals: Self::Locals);

    /// Executes one base-register access of the tail; returns the
    /// operation's return value when complete.
    fn tail_step(&mut self, shm: &mut Shm, layout: &ShmLayout) -> Option<Val>;
}

/// Where an [`IteratedOp`] currently is.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum IterStage {
    /// Running preamble iteration `iter` (1-based).
    Preamble {
        /// Current iteration number.
        iter: u32,
    },
    /// All `k` iterations done; awaiting the object random choice.
    AwaitChoice,
    /// Running the tail.
    Tail,
}

/// What the composed system must do after stepping an [`IteratedOp`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IterEffect {
    /// Keep scheduling steps.
    Continue,
    /// Preamble iteration `iteration` just completed (emit the
    /// `PreamblePassed` marker); keep scheduling steps.
    PreamblePassed {
        /// The completed iteration (1-based).
        iteration: u32,
    },
    /// All iterations done: request `random([0..k))` (only when `k > 1`).
    NeedChoice {
        /// Number of alternatives (= `k`).
        choices: u32,
        /// The final iteration that just completed.
        iteration: u32,
    },
    /// The operation completed with this return value.
    Complete(Val),
}

/// Algorithm 2: the preamble-iterated version `M^k` of a two-phase
/// operation `M`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct IteratedOp<O: ShmOp> {
    inner: O,
    k: u32,
    stage: IterStage,
    results: Vec<O::Locals>,
}

impl<O: ShmOp> IteratedOp<O> {
    /// Wraps `inner` with `k` preamble iterations.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(inner: O, k: u32) -> IteratedOp<O> {
        assert!(k >= 1, "the transformation requires k ≥ 1");
        let mut op = IteratedOp {
            inner,
            k,
            stage: IterStage::Preamble { iter: 1 },
            results: Vec::new(),
        };
        if op.inner.preamble_is_empty() {
            // Π(M) = ℓ₀: the transformation leaves the method unchanged.
            let locals = op.inner.empty_locals();
            op.inner.start_tail(locals);
            op.stage = IterStage::Tail;
        }
        op
    }

    /// The current stage.
    #[must_use]
    pub fn stage(&self) -> &IterStage {
        &self.stage
    }

    /// Returns `true` if the operation still runs its preamble (its
    /// linearization is not yet fixed).
    #[must_use]
    pub fn in_preamble(&self) -> bool {
        matches!(
            self.stage,
            IterStage::Preamble { .. } | IterStage::AwaitChoice
        )
    }

    /// Executes one base step.
    ///
    /// # Panics
    ///
    /// Panics if called while awaiting the random choice.
    pub fn step(&mut self, shm: &mut Shm, layout: &ShmLayout) -> IterEffect {
        match self.stage.clone() {
            IterStage::Preamble { iter } => match self.inner.preamble_step(shm, layout) {
                PreambleStatus::Step => IterEffect::Continue,
                PreambleStatus::Done(locals) => {
                    self.results.push(locals);
                    if iter < self.k {
                        self.inner.reset_preamble();
                        self.stage = IterStage::Preamble { iter: iter + 1 };
                        IterEffect::PreamblePassed { iteration: iter }
                    } else if self.k > 1 {
                        self.stage = IterStage::AwaitChoice;
                        IterEffect::NeedChoice {
                            choices: self.k,
                            iteration: iter,
                        }
                    } else {
                        let locals = self.results[0].clone();
                        self.inner.start_tail(locals);
                        self.stage = IterStage::Tail;
                        IterEffect::PreamblePassed { iteration: iter }
                    }
                }
            },
            IterStage::AwaitChoice => {
                panic!("stepping an operation that awaits its random choice")
            }
            IterStage::Tail => match self.inner.tail_step(shm, layout) {
                Some(ret) => IterEffect::Complete(ret),
                None => IterEffect::Continue,
            },
        }
    }

    /// Resolves the object random step with iteration `choice` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if not awaiting a choice or `choice ≥ k`.
    pub fn choose(&mut self, choice: usize) {
        assert_eq!(
            self.stage,
            IterStage::AwaitChoice,
            "choose() outside AwaitChoice"
        );
        assert!(choice < self.results.len(), "choice out of range");
        let locals = self.results[choice].clone();
        self.inner.start_tail(locals);
        self.stage = IterStage::Tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shm::{CellId, CellSpec, ShmLayout};
    use blunt_core::ids::Pid;

    /// A miniature two-phase op for testing the wrapper: the preamble reads
    /// cell 0 (one step), the tail writes what it read into cell 1 (one
    /// step) and returns it.
    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    struct CopyOp {
        read: Option<Val>,
        chosen: Option<Val>,
        empty: bool,
    }

    impl CopyOp {
        fn new() -> CopyOp {
            CopyOp {
                read: None,
                chosen: None,
                empty: false,
            }
        }
    }

    impl ShmOp for CopyOp {
        type Locals = Val;

        fn preamble_is_empty(&self) -> bool {
            self.empty
        }

        fn empty_locals(&self) -> Val {
            Val::Int(-1)
        }

        fn preamble_step(&mut self, shm: &Shm, layout: &ShmLayout) -> PreambleStatus<Val> {
            let v = shm.read(layout, CellId(0), Pid(0));
            self.read = Some(v.clone());
            PreambleStatus::Done(v)
        }

        fn reset_preamble(&mut self) {
            self.read = None;
        }

        fn start_tail(&mut self, locals: Val) {
            self.chosen = Some(locals);
        }

        fn tail_step(&mut self, shm: &mut Shm, layout: &ShmLayout) -> Option<Val> {
            let v = self.chosen.clone().unwrap();
            shm.write(layout, CellId(1), Pid(0), v.clone());
            Some(v)
        }
    }

    fn setup() -> (ShmLayout, Shm) {
        let mut l = ShmLayout::new();
        l.push(CellSpec::single_writer(
            Pid(1),
            2,
            Val::Int(7),
            "src".into(),
        ));
        l.push(CellSpec::single_writer(Pid(0), 2, Val::Nil, "dst".into()));
        let m = l.initial_memory();
        (l, m)
    }

    #[test]
    fn k1_runs_preamble_once_and_never_asks_for_randomness() {
        let (l, mut m) = setup();
        let mut op = IteratedOp::new(CopyOp::new(), 1);
        assert!(op.in_preamble());
        assert_eq!(
            op.step(&mut m, &l),
            IterEffect::PreamblePassed { iteration: 1 }
        );
        assert!(!op.in_preamble());
        assert_eq!(op.step(&mut m, &l), IterEffect::Complete(Val::Int(7)));
        assert_eq!(m.read(&l, CellId(1), Pid(1)), Val::Int(7));
    }

    #[test]
    fn k3_iterates_then_requests_choice() {
        let (l, mut m) = setup();
        let mut op = IteratedOp::new(CopyOp::new(), 3);
        assert_eq!(
            op.step(&mut m, &l),
            IterEffect::PreamblePassed { iteration: 1 }
        );
        // Change the source between iterations: results differ per iteration.
        m.write(&l, CellId(0), Pid(1), Val::Int(8));
        assert_eq!(
            op.step(&mut m, &l),
            IterEffect::PreamblePassed { iteration: 2 }
        );
        m.write(&l, CellId(0), Pid(1), Val::Int(9));
        assert_eq!(
            op.step(&mut m, &l),
            IterEffect::NeedChoice {
                choices: 3,
                iteration: 3
            }
        );
        op.choose(1);
        assert_eq!(op.step(&mut m, &l), IterEffect::Complete(Val::Int(8)));
    }

    #[test]
    fn empty_preamble_goes_straight_to_tail() {
        let (l, mut m) = setup();
        let mut inner = CopyOp::new();
        inner.empty = true;
        let mut op = IteratedOp::new(inner, 5);
        assert!(!op.in_preamble());
        assert_eq!(op.step(&mut m, &l), IterEffect::Complete(Val::Int(-1)));
    }

    #[test]
    #[should_panic(expected = "awaits its random choice")]
    fn stepping_while_awaiting_choice_panics() {
        let (l, mut m) = setup();
        let mut op = IteratedOp::new(CopyOp::new(), 2);
        op.step(&mut m, &l);
        op.step(&mut m, &l); // NeedChoice
        op.step(&mut m, &l);
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn zero_k_panics() {
        let _ = IteratedOp::new(CopyOp::new(), 0);
    }
}
