//! Scratch probe for explorer feasibility measurements (not part of the
//! public API surface; see `blunt-bench` for the real experiment harness).
use blunt_abd::scenarios::*;
use blunt_programs::weakener::is_bad;
use blunt_sim::explore::{sure_win, worst_case_prob, ExploreBudget};
use std::time::Instant;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "f1".into());
    let states: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000_000);
    let budget = ExploreBudget::with_max_states(states).fingerprinted();
    match mode.strip_prefix('f').and_then(|k| k.parse::<u32>().ok()) {
        Some(k) => {
            let t = Instant::now();
            match worst_case_prob(&weakener_abd_fused(k), &is_bad, &budget) {
                Ok((p, s)) => println!(
                    "fused k={k}: exact worst = {p} ({:.4}) states={} hits={} depth={} in {:?}",
                    p.to_f64(),
                    s.states,
                    s.memo_hits,
                    s.max_depth,
                    t.elapsed()
                ),
                Err(e) => println!("fused k={k}: {e} in {:?}", t.elapsed()),
            }
        }
        None if mode == "sure1" => {
            let t = Instant::now();
            match sure_win(&weakener_abd(1), &is_bad, &budget) {
                Ok((w, s)) => println!(
                    "unfused k=1 sure_win={w} states={} in {:?}",
                    s.states,
                    t.elapsed()
                ),
                Err(e) => println!("unfused k=1: {e} in {:?}", t.elapsed()),
            }
        }
        None => eprintln!("usage: probe f<k>|sure1 [states]"),
    }
}
