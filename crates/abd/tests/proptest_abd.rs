//! Randomized tests for ABD: randomly generated register programs over
//! randomly seeded schedules always produce linearizable histories —
//! multi-writer and single-writer, fused and unfused, purged and unpurged,
//! for every `k`. Cases come from a seeded SplitMix64, so the suite is
//! deterministic and dependency-free.

use blunt_abd::config::ObjectConfig;
use blunt_abd::system::{AbdSystem, AbdSystemDef};
use blunt_core::ids::{MethodId, ObjId, Pid};
use blunt_core::spec::RegisterSpec;
use blunt_core::value::Val;
use blunt_lincheck::wgl::check_linearizable;
use blunt_programs::{Expr, Instr, ProgramDef};
use blunt_sim::kernel::run;
use blunt_sim::rng::SplitMix64;
use blunt_sim::sched::RandomScheduler;

const N: usize = 3;
const CASES: u64 = 32;

#[derive(Clone, Copy, Debug)]
enum PlannedOp {
    Read,
    Write(i64),
}

/// `N` processes, each with 0..4 ops, each a read or a write of 0..6 —
/// the same shape the proptest strategy generated.
fn planned_ops(rng: &mut SplitMix64) -> Vec<Vec<PlannedOp>> {
    (0..N)
        .map(|_| {
            let len = (rng.next_u64() % 4) as usize;
            (0..len)
                .map(|_| {
                    if rng.next_u64() & 1 == 0 {
                        PlannedOp::Read
                    } else {
                        PlannedOp::Write((rng.next_u64() % 6) as i64)
                    }
                })
                .collect()
        })
        .collect()
}

fn program(plans: &[Vec<PlannedOp>], writer_only: Option<Pid>) -> ProgramDef {
    let codes = plans
        .iter()
        .enumerate()
        .map(|(p, plan)| {
            let mut code = Vec::new();
            for op in plan {
                let instr = match op {
                    PlannedOp::Write(v) if writer_only.is_none_or(|w| w == Pid(p as u32)) => {
                        Instr::Invoke {
                            line: 1,
                            obj: ObjId(0),
                            method: MethodId::WRITE,
                            arg: Expr::int(*v),
                            bind: None,
                        }
                    }
                    _ => Instr::Invoke {
                        line: 1,
                        obj: ObjId(0),
                        method: MethodId::READ,
                        arg: Expr::Const(Val::Nil),
                        bind: None,
                    },
                };
                code.push(instr);
            }
            code.push(Instr::Halt);
            code
        })
        .collect();
    ProgramDef::new("proptest-abd", codes, vec![0; N], 0, vec![])
}

fn check(sys: AbdSystem, seed: u64) {
    let report = run(
        sys,
        &mut RandomScheduler::new(seed),
        &mut SplitMix64::new(seed ^ 0xBEEF),
        true,
        500_000,
    )
    .unwrap_or_else(|e| panic!("run failed (seed {seed}): {e}"));
    let h = report.trace.history().project(ObjId(0));
    assert!(
        check_linearizable(&h, &RegisterSpec::new(Val::Nil)).is_ok(),
        "non-linearizable ABD history (seed {seed}):\n{h}"
    );
}

#[test]
fn multi_writer_abd_random_programs_linearizable() {
    let mut rng = SplitMix64::new(0xABD0_0001);
    for _ in 0..CASES {
        let plans = planned_ops(&mut rng);
        let k = 1 + (rng.next_u64() % 3) as u32;
        let seed = rng.next_u64() % 10_000;
        let fused = rng.next_u64() & 1 == 1;
        let purge = rng.next_u64() & 1 == 1;
        let sys = AbdSystem::new(AbdSystemDef {
            program: program(&plans, None),
            objects: vec![ObjectConfig::abd(k, Val::Nil)],
            purge_stale: purge,
            fused_rpc: fused,
        });
        check(sys, seed);
    }
}

#[test]
fn single_writer_abd_random_programs_linearizable() {
    let mut rng = SplitMix64::new(0xABD0_0002);
    for _ in 0..CASES {
        let plans = planned_ops(&mut rng);
        let k = 1 + (rng.next_u64() % 3) as u32;
        let seed = rng.next_u64() % 10_000;
        let sys = AbdSystem::new(AbdSystemDef {
            program: program(&plans, Some(Pid(0))),
            objects: vec![ObjectConfig::abd_single_writer(k, Pid(0), Val::Nil)],
            purge_stale: true,
            fused_rpc: false,
        });
        check(sys, seed);
    }
}

#[test]
fn object_random_steps_appear_only_for_k_above_one() {
    let mut rng = SplitMix64::new(0xABD0_0003);
    for _ in 0..CASES {
        let plans = planned_ops(&mut rng);
        let k = 1 + (rng.next_u64() % 3) as u32;
        let seed = rng.next_u64() % 10_000;
        let sys = AbdSystem::new(AbdSystemDef {
            program: program(&plans, None),
            objects: vec![ObjectConfig::abd(k, Val::Nil)],
            purge_stale: true,
            fused_rpc: false,
        });
        let report = run(
            sys,
            &mut RandomScheduler::new(seed),
            &mut SplitMix64::new(seed),
            true,
            500_000,
        )
        .unwrap();
        let coins = report.trace.object_random_count();
        if k == 1 {
            assert_eq!(coins, 0, "ABD¹ must be identical to ABD");
        } else {
            // One object coin per completed R-operation.
            let completed = report
                .trace
                .history()
                .project(ObjId(0))
                .invocations()
                .iter()
                .filter(|r| r.ret.is_some())
                .count();
            assert_eq!(coins, completed);
        }
    }
}

#[test]
fn preamble_markers_count_matches_k() {
    let mut rng = SplitMix64::new(0xABD0_0004);
    for _ in 0..CASES {
        let plans = planned_ops(&mut rng);
        let k = 1 + (rng.next_u64() % 3) as u32;
        let seed = rng.next_u64() % 10_000;
        let sys = AbdSystem::new(AbdSystemDef {
            program: program(&plans, None),
            objects: vec![ObjectConfig::abd(k, Val::Nil)],
            purge_stale: true,
            fused_rpc: false,
        });
        let report = run(
            sys,
            &mut RandomScheduler::new(seed),
            &mut SplitMix64::new(seed),
            true,
            500_000,
        )
        .unwrap();
        let completed = report
            .trace
            .history()
            .invocations()
            .iter()
            .filter(|r| r.ret.is_some())
            .count();
        let markers = report
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e, blunt_sim::trace::TraceEvent::PreamblePassed { .. }))
            .count();
        // Every completed op ran exactly k query iterations.
        assert_eq!(markers, completed * k as usize);
    }
}
