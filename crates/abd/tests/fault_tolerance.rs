//! ABD's raison d'être: tolerating any minority of crash failures
//! (Attiya–Bar-Noy–Dolev). These tests run a five-process system, crash up
//! to two processes (a minority) at various points, and check that every
//! surviving operation still completes with linearizable results.

use blunt_abd::config::ObjectConfig;
use blunt_abd::system::{AbdSystem, AbdSystemDef};
use blunt_core::ids::{MethodId, ObjId, Pid};
use blunt_core::spec::RegisterSpec;
use blunt_core::value::Val;
use blunt_lincheck::wgl::check_linearizable;
use blunt_programs::{Expr, Instr, ProgramDef};
use blunt_sim::kernel::run;
use blunt_sim::rng::SplitMix64;
use blunt_sim::sched::RandomScheduler;
use blunt_sim::system::Effects;

/// p0 writes 7 then 9; p4 reads twice; p1–p3 only serve.
fn five_process_program() -> ProgramDef {
    let write = |v: i64| Instr::Invoke {
        line: 1,
        obj: ObjId(0),
        method: MethodId::WRITE,
        arg: Expr::int(v),
        bind: None,
    };
    let read = |bind: u8| Instr::Invoke {
        line: 2,
        obj: ObjId(0),
        method: MethodId::READ,
        arg: Expr::Const(Val::Nil),
        bind: Some(bind),
    };
    ProgramDef::new(
        "five-proc",
        vec![
            vec![write(7), write(9), Instr::Halt],
            vec![Instr::Halt],
            vec![Instr::Halt],
            vec![Instr::Halt],
            vec![read(0), read(1), Instr::Halt],
        ],
        vec![0, 0, 0, 0, 2],
        0,
        vec![Pid(0), Pid(4)],
    )
}

fn system(k: u32) -> AbdSystem {
    AbdSystem::new(AbdSystemDef {
        program: five_process_program(),
        objects: vec![ObjectConfig::abd(k, Val::Nil)],
        purge_stale: true,
        fused_rpc: false,
    })
}

fn run_with_crashes(
    mut sys: AbdSystem,
    crashed: &[Pid],
    seed: u64,
) -> blunt_sim::kernel::RunReport {
    let mut fx = Effects::silent();
    for &p in crashed {
        sys.crash(p, &mut fx);
    }
    run(
        sys,
        &mut RandomScheduler::new(seed),
        &mut SplitMix64::new(seed),
        true,
        200_000,
    )
    .unwrap_or_else(|e| panic!("seed {seed}, crashed {crashed:?}: {e}"))
}

#[test]
fn survives_any_minority_crashed_up_front() {
    // Crash every 2-subset of the pure servers {p1, p2, p3}.
    let pairs = [[Pid(1), Pid(2)], [Pid(1), Pid(3)], [Pid(2), Pid(3)]];
    for crashed in pairs {
        for seed in 0..10 {
            let report = run_with_crashes(system(1), &crashed, seed);
            let h = report.trace.history().project(ObjId(0));
            assert!(
                check_linearizable(&h, &RegisterSpec::new(Val::Nil)).is_ok(),
                "crashed {crashed:?} seed {seed}: non-linearizable:\n{h}"
            );
            // Both of p4's reads completed.
            assert!(report
                .outcome
                .get(&blunt_core::ids::CallSite::new(Pid(4), 2, 1))
                .is_some());
        }
    }
}

#[test]
fn survives_minority_crashes_with_iterated_preambles() {
    for k in [2u32, 3] {
        for seed in 0..10 {
            let report = run_with_crashes(system(k), &[Pid(1), Pid(3)], seed);
            let h = report.trace.history().project(ObjId(0));
            assert!(
                check_linearizable(&h, &RegisterSpec::new(Val::Nil)).is_ok(),
                "k = {k} seed {seed}: non-linearizable:\n{h}"
            );
        }
    }
}

#[test]
fn second_read_sees_at_least_as_much_as_the_first() {
    // With the writer writing 7 then 9 sequentially, p4's reads must be
    // monotone: (⊥|7|9) then ≥ the first — never 9 then 7.
    let rank = |v: &Val| match v {
        Val::Nil => 0,
        Val::Int(7) => 1,
        Val::Int(9) => 2,
        other => panic!("unexpected read value {other}"),
    };
    for seed in 0..30 {
        let report = run_with_crashes(system(1), &[Pid(2), Pid(3)], seed);
        let u1 = report
            .outcome
            .get(&blunt_core::ids::CallSite::new(Pid(4), 2, 0))
            .unwrap();
        let u2 = report
            .outcome
            .get(&blunt_core::ids::CallSite::new(Pid(4), 2, 1))
            .unwrap();
        assert!(
            rank(u2) >= rank(u1),
            "seed {seed}: new/old inversion {u1} then {u2}"
        );
    }
}

#[test]
fn crash_mid_run_after_partial_progress() {
    // Drive the system a bounded number of steps, crash a server, then let
    // a random scheduler finish the run.
    use blunt_sim::system::{Status, System};
    use blunt_sim::trace::Trace;
    for seed in 0..10 {
        let mut sys = system(1);
        // Record the manual pre-crash phase too, so the checked history is
        // the complete execution.
        let mut fx = Effects::recording();
        let mut pre = Trace::new();
        let mut enabled = Vec::new();
        use blunt_sim::rng::RandomSource;
        let mut rng = SplitMix64::new(seed);
        for _ in 0..12 {
            match sys.status() {
                Status::Running => {
                    sys.enabled(&mut enabled);
                    if enabled.is_empty() {
                        break;
                    }
                    let ev = enabled[rng.draw(enabled.len())];
                    sys.apply(&ev, &mut fx);
                }
                Status::AwaitingRandom { choices, .. } => {
                    let c = rng.draw(choices);
                    sys.supply_random(c, &mut fx);
                }
                Status::Done => break,
            }
            pre.extend(fx.take());
        }
        sys.crash(Pid(2), &mut fx);
        pre.extend(fx.take());
        let report = run(
            sys,
            &mut RandomScheduler::new(seed ^ 1),
            &mut SplitMix64::new(seed ^ 2),
            true,
            200_000,
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        pre.extend(report.trace.events().to_vec());
        let h = pre.history().project(ObjId(0));
        assert!(
            check_linearizable(&h, &RegisterSpec::new(Val::Nil)).is_ok(),
            "seed {seed}: non-linearizable after mid-run crash:\n{h}"
        );
    }
}

#[test]
#[should_panic(expected = "stuck")]
fn majority_crash_blocks_progress() {
    // Crashing a majority (3 of 5) removes every quorum: the run must get
    // stuck rather than return wrong answers.
    let report = run_with_crashes(system(1), &[Pid(1), Pid(2), Pid(3)], 0);
    let _ = report;
}
