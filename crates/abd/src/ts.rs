//! ABD timestamps: (integer, process id) pairs ordered lexicographically.

use blunt_core::ids::Pid;
use std::fmt;

/// A logical timestamp `(t, pid)`.
///
/// Comparison is lexicographic — integer first, writer id as tie-breaker —
/// which is what makes concurrent writes by different processes totally
/// ordered (line 9 / line 19 of Algorithm 3 compare these).
///
/// ```
/// use blunt_abd::ts::Ts;
/// use blunt_core::ids::Pid;
/// assert!(Ts::new(1, Pid(1)) > Ts::new(1, Pid(0)));
/// assert!(Ts::new(2, Pid(0)) > Ts::new(1, Pid(1)));
/// assert_eq!(Ts::ZERO, Ts::new(0, Pid(0)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Ts {
    /// The integer component.
    pub t: i64,
    /// The writer's process id (tie-breaker).
    pub pid: u32,
}

impl Ts {
    /// The initial timestamp `(0, 0)` carried by every register's initial
    /// value.
    pub const ZERO: Ts = Ts { t: 0, pid: 0 };

    /// Creates a timestamp.
    #[must_use]
    pub fn new(t: i64, pid: Pid) -> Ts {
        Ts { t, pid: pid.0 }
    }

    /// The successor timestamp a writer with id `pid` derives from this one:
    /// `(t + 1, pid)` (line 27 of Algorithm 3).
    #[must_use]
    pub fn successor_for(self, pid: Pid) -> Ts {
        Ts {
            t: self.t + 1,
            pid: pid.0,
        }
    }
}

impl fmt::Display for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.t, self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order() {
        let a = Ts::new(1, Pid(0));
        let b = Ts::new(1, Pid(1));
        let c = Ts::new(2, Pid(0));
        assert!(a < b && b < c);
        assert!(Ts::ZERO < a);
    }

    #[test]
    fn successor_increments_and_rebrands() {
        let s = Ts::new(3, Pid(1)).successor_for(Pid(0));
        assert_eq!(s, Ts::new(4, Pid(0)));
        assert!(s > Ts::new(3, Pid(1)));
        // Successors of the same timestamp by different writers are ordered
        // by writer id — the concurrent-write tie-break.
        let s0 = Ts::ZERO.successor_for(Pid(0));
        let s1 = Ts::ZERO.successor_for(Pid(1));
        assert!(s0 < s1);
        assert_eq!(s0.t, s1.t);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Ts::new(1, Pid(1)).to_string(), "(1, 1)");
    }
}
