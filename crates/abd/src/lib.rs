//! The ABD register in a crash-prone message-passing system, its
//! preamble-iterated transformation `ABD^k`, and composed systems running
//! randomized programs over them.
//!
//! This crate implements:
//!
//! - the **multi-writer ABD register** (Algorithm 3 of the paper, following
//!   Lynch–Shvartsman): `Read` and `Write` both run a *query phase* (broadcast
//!   `query`, await a majority of replies, adopt the pair with the largest
//!   timestamp) followed by an *update phase* (broadcast `update`, await a
//!   majority of acks);
//! - the **single-writer ABD register** (the original
//!   Attiya–Bar-Noy–Dolev algorithm): the designated writer skips the query
//!   phase and stamps values with a local sequence number;
//! - the **preamble-iterated `ABD^k`** (Algorithm 4): the query phase — the
//!   effect-free preamble identified by `Π_ABD` (Theorem 5.1) — is executed
//!   `k` times and one result is chosen uniformly at random. `k = 1`
//!   reproduces the untransformed algorithm exactly (no object random step
//!   is taken);
//! - [`system::AbdSystem`] — a complete [`blunt_sim::System`] composing a
//!   [`blunt_programs::ProgramDef`] with a set of registers, each configured
//!   as atomic, `ABD^k`, or single-writer `ABD^k`, over one shared network.
//!   The same program text therefore runs against `P(O_a)`, `P(O)`, and
//!   `P(O^k)`, which is how the paper's probability comparisons are made.
//!
//! Effect-freedom of the preamble is visible in the code: the server's query
//! handler is [`server::ServerState::reply`], which takes `&self` — a query
//! can never change server state — while the update handler
//! [`server::ServerState::absorb`] takes `&mut self`.
//!
//! The step machines here are **transport-agnostic**: they map
//! `(state, message) → (state, replies)` and never name a transport. The
//! same compiled machines run under the simulator's adversary-scheduled
//! network, on the chaos runtime's in-process bus, and across real TCP or
//! Unix-domain sockets via `blunt-net` (see `docs/TRANSPORT.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod msg;
pub mod scenarios;
pub mod server;
pub mod system;
pub mod ts;

pub use client::{ActiveOp, OpKind, Phase};
pub use config::{ObjectConfig, ObjectKind};
pub use msg::AbdMsg;
pub use server::{ServerState, StoreState};
pub use system::{AbdEvent, AbdSystem, AbdSystemDef};
pub use ts::Ts;
