//! The client role of ABD: the per-operation state machine covering both
//! `Read` and `Write` of Algorithm 3 and their `k`-iterated versions of
//! Algorithm 4.
//!
//! An operation proceeds through:
//!
//! 1. `k` **query phases** (the preamble): broadcast `query`, collect a
//!    majority of replies, remember the (value, timestamp) with the largest
//!    timestamp. Each completed iteration is reported to the caller so that
//!    the trace can mark the `Π_ABD` control point (`PreamblePassed`);
//! 2. for `k > 1`, an **object random step** choosing which iteration's
//!    result to use (`j := random([1..k])`); for `k = 1` the single result
//!    is used directly — no randomness is introduced, so `ABD¹` *is* ABD;
//! 3. the **update phase** (the tail): broadcast `update` with the chosen
//!    value (`Read` writes back what it will return; `Write` stamps its new
//!    value with `(t + 1, i)`), collect a majority of acks, and return.
//!
//! The machine is pure protocol logic: it never touches the network itself
//! but returns [`ReplyEffect`]/[`AckEffect`] directives that the composed
//! system turns into broadcasts. This keeps it unit-testable in isolation.

use crate::msg::AbdMsg;
use crate::ts::Ts;
use blunt_core::ids::{InvId, ObjId, Pid};
use blunt_core::value::Val;

/// Which register method an operation executes.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// `Read()`.
    Read,
    /// `Write(v)`.
    Write(Val),
}

/// The phase an active operation is in.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Phase {
    /// Awaiting query replies for iteration `iter` (1-based) of the preamble.
    Query {
        /// Current iteration, `1..=k`.
        iter: u32,
        /// Exchange number of this iteration's query.
        sn: u32,
        /// Bitmask of servers that replied.
        responders: u64,
        /// Best (value, timestamp) among replies so far.
        best: Option<(Val, Ts)>,
    },
    /// All `k` iterations done; awaiting the object random choice (`k > 1`).
    AwaitChoice,
    /// Awaiting update acks; will return `ret` on quorum.
    Update {
        /// Exchange number of the update broadcast.
        sn: u32,
        /// Bitmask of servers that acked.
        responders: u64,
        /// The operation's return value.
        ret: Val,
        /// The value being installed (kept so the update broadcast can be
        /// retransmitted verbatim over a lossy transport).
        val: Val,
        /// The timestamp being installed.
        ts: Ts,
    },
}

/// What the caller must do after feeding a reply to the client machine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReplyEffect {
    /// Stale or irrelevant; nothing to do.
    Ignored,
    /// Counted toward the quorum; keep waiting.
    Counted,
    /// Query iteration `iteration` completed (preamble control point) and a
    /// further iteration was started: broadcast `Query { sn }`.
    NextQuery {
        /// The iteration that just completed (1-based).
        iteration: u32,
        /// Exchange number for the next query broadcast.
        sn: u32,
    },
    /// The final iteration completed and `k > 1`: the operation now needs an
    /// object random choice among `k` alternatives.
    NeedChoice {
        /// The iteration that just completed (= `k`).
        iteration: u32,
        /// Number of alternatives (= `k`).
        choices: u32,
    },
    /// The final (and only, `k = 1`) iteration completed: broadcast
    /// `Update { sn, val, ts }`.
    StartUpdate {
        /// The iteration that just completed (= 1).
        iteration: u32,
        /// Exchange number for the update broadcast.
        sn: u32,
        /// Value to install.
        val: Val,
        /// Its timestamp.
        ts: Ts,
    },
}

/// What the caller must do after feeding an ack to the client machine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AckEffect {
    /// Stale or irrelevant.
    Ignored,
    /// Counted; keep waiting.
    Counted,
    /// Quorum of acks reached: the operation returns `ret`.
    Complete {
        /// The operation's return value.
        ret: Val,
    },
}

/// One in-flight register operation at a client.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ActiveOp {
    /// The invocation this operation implements.
    pub inv: InvId,
    /// Target register.
    pub obj: ObjId,
    /// Method.
    pub kind: OpKind,
    /// Configured preamble iterations.
    pub k: u32,
    /// Results of completed query iterations, in order.
    pub results: Vec<(Val, Ts)>,
    /// Current phase.
    pub phase: Phase,
}

impl ActiveOp {
    /// Starts an operation with its first query phase. The caller must
    /// broadcast `Query { sn }`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn start(inv: InvId, obj: ObjId, kind: OpKind, k: u32, sn: u32) -> ActiveOp {
        assert!(k >= 1, "ABD^k requires k ≥ 1");
        ActiveOp {
            inv,
            obj,
            kind,
            k,
            results: Vec::new(),
            phase: Phase::Query {
                iter: 1,
                sn,
                responders: 0,
                best: None,
            },
        }
    }

    /// Starts a single-writer `Write` directly in its update phase (the
    /// original ABD writer has an empty preamble): the caller must broadcast
    /// `Update { sn, val: v, ts }` with the timestamp it derived from its
    /// local sequence counter.
    #[must_use]
    pub fn start_sw_write(inv: InvId, obj: ObjId, v: Val, ts: Ts, sn: u32) -> ActiveOp {
        ActiveOp {
            inv,
            obj,
            kind: OpKind::Write(v.clone()),
            k: 1,
            results: Vec::new(),
            phase: Phase::Update {
                sn,
                responders: 0,
                ret: Val::Nil,
                val: v,
                ts,
            },
        }
    }

    /// Feeds a query reply from server `src` for exchange `msg_sn`.
    ///
    /// `quorum` is the reply threshold (`⌈(n+1)/2⌉`), `me` the client's own
    /// process id (used to stamp `Write` timestamps), and `sn_counter` the
    /// client's exchange-number allocator.
    #[allow(clippy::too_many_arguments)] // mirrors Algorithm 3's parameters
    pub fn on_reply(
        &mut self,
        src: Pid,
        msg_sn: u32,
        val: &Val,
        ts: Ts,
        quorum: u32,
        me: Pid,
        sn_counter: &mut u32,
    ) -> ReplyEffect {
        let Phase::Query {
            iter,
            sn,
            responders,
            best,
        } = &mut self.phase
        else {
            return ReplyEffect::Ignored;
        };
        if msg_sn != *sn {
            return ReplyEffect::Ignored;
        }
        let bit = 1u64 << src.index();
        if *responders & bit != 0 {
            return ReplyEffect::Ignored;
        }
        *responders |= bit;
        let better = match best {
            None => true,
            Some((_, bts)) => ts > *bts,
        };
        if better {
            *best = Some((val.clone(), ts));
        }
        if responders.count_ones() < quorum {
            return ReplyEffect::Counted;
        }

        // Quorum reached: iteration `iter` of the preamble is complete.
        let iteration = *iter;
        let result = best.clone().expect("quorum ≥ 1 reply");
        self.results.push(result);

        if iteration < self.k {
            // Iterate the preamble (the `for` loop of Algorithm 2).
            *sn_counter += 1;
            let next_sn = *sn_counter;
            self.phase = Phase::Query {
                iter: iteration + 1,
                sn: next_sn,
                responders: 0,
                best: None,
            };
            ReplyEffect::NextQuery {
                iteration,
                sn: next_sn,
            }
        } else if self.k > 1 {
            // `j := random([1..k])` — the object random step.
            self.phase = Phase::AwaitChoice;
            ReplyEffect::NeedChoice {
                iteration,
                choices: self.k,
            }
        } else {
            // k = 1: use the single result directly (plain ABD).
            let (sn, val, ts, ret) = self.begin_update(0, me, sn_counter);
            self.phase = Phase::Update {
                sn,
                responders: 0,
                ret,
                val: val.clone(),
                ts,
            };
            ReplyEffect::StartUpdate {
                iteration,
                sn,
                val,
                ts,
            }
        }
    }

    /// Resolves the object random step: use iteration `choice` (0-based).
    /// Returns the update broadcast the caller must send: `(sn, val, ts)`.
    ///
    /// # Panics
    ///
    /// Panics if the operation is not awaiting a choice or `choice ≥ k`.
    pub fn choose(&mut self, choice: usize, me: Pid, sn_counter: &mut u32) -> (u32, Val, Ts) {
        assert_eq!(
            self.phase,
            Phase::AwaitChoice,
            "choose() outside AwaitChoice"
        );
        assert!(choice < self.results.len(), "choice out of range");
        let (sn, val, ts, ret) = self.begin_update(choice, me, sn_counter);
        self.phase = Phase::Update {
            sn,
            responders: 0,
            ret,
            val: val.clone(),
            ts,
        };
        (sn, val, ts)
    }

    /// Computes the update-phase payload from the chosen query result.
    fn begin_update(&self, choice: usize, me: Pid, sn_counter: &mut u32) -> (u32, Val, Ts, Val) {
        let (qv, qts) = self.results[choice].clone();
        *sn_counter += 1;
        let sn = *sn_counter;
        match &self.kind {
            // Read: write back (v, u) and return v (lines 22–24).
            OpKind::Read => (sn, qv.clone(), qts, qv),
            // Write(v): install (v, (t + 1, i)) and return ⊥ (lines 26–28).
            OpKind::Write(w) => (sn, w.clone(), qts.successor_for(me), Val::Nil),
        }
    }

    /// Feeds an update ack from server `src` for exchange `msg_sn`.
    pub fn on_ack(&mut self, src: Pid, msg_sn: u32, quorum: u32) -> AckEffect {
        let Phase::Update {
            sn,
            responders,
            ret,
            ..
        } = &mut self.phase
        else {
            return AckEffect::Ignored;
        };
        if msg_sn != *sn {
            return AckEffect::Ignored;
        }
        let bit = 1u64 << src.index();
        if *responders & bit != 0 {
            return AckEffect::Ignored;
        }
        *responders |= bit;
        if responders.count_ones() < quorum {
            AckEffect::Counted
        } else {
            AckEffect::Complete { ret: ret.clone() }
        }
    }

    /// The exchange number the operation is currently collecting responses
    /// for, if any (used to purge stale messages).
    #[must_use]
    pub fn current_sn(&self) -> Option<u32> {
        match &self.phase {
            Phase::Query { sn, .. } | Phase::Update { sn, .. } => Some(*sn),
            Phase::AwaitChoice => None,
        }
    }

    /// The broadcast that would re-solicit the responses the operation is
    /// currently waiting on, if any.
    ///
    /// Servers' handlers are idempotent per exchange (`sn` bookkeeping at the
    /// client discards duplicate replies/acks, and re-installing the same
    /// `(val, ts)` is a no-op), so a lossy transport may resend this message
    /// any number of times without perturbing the protocol. `None` while the
    /// operation awaits its object random choice — nothing is in flight.
    #[must_use]
    pub fn retransmission(&self) -> Option<AbdMsg> {
        match &self.phase {
            Phase::Query { sn, .. } => Some(AbdMsg::Query {
                obj: self.obj,
                sn: *sn,
            }),
            Phase::Update { sn, val, ts, .. } => Some(AbdMsg::Update {
                obj: self.obj,
                sn: *sn,
                val: val.clone(),
                ts: *ts,
            }),
            Phase::AwaitChoice => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUORUM: u32 = 2;
    const ME: Pid = Pid(0);

    fn reply(op: &mut ActiveOp, src: u32, sn: u32, val: Val, ts: Ts, ctr: &mut u32) -> ReplyEffect {
        op.on_reply(Pid(src), sn, &val, ts, QUORUM, ME, ctr)
    }

    #[test]
    fn k1_read_goes_query_then_update_then_returns() {
        let mut ctr = 0u32;
        let mut op = ActiveOp::start(InvId(0), ObjId(0), OpKind::Read, 1, 0);

        assert_eq!(
            reply(&mut op, 1, 0, Val::Int(7), Ts::new(1, Pid(1)), &mut ctr),
            ReplyEffect::Counted
        );
        let eff = reply(&mut op, 2, 0, Val::Nil, Ts::ZERO, &mut ctr);
        match eff {
            ReplyEffect::StartUpdate {
                iteration,
                sn,
                val,
                ts,
            } => {
                assert_eq!(iteration, 1);
                assert_eq!(sn, 1);
                // Read writes back the max-timestamp pair.
                assert_eq!(val, Val::Int(7));
                assert_eq!(ts, Ts::new(1, Pid(1)));
            }
            other => panic!("unexpected {other:?}"),
        }

        assert_eq!(op.on_ack(Pid(0), 1, QUORUM), AckEffect::Counted);
        assert_eq!(
            op.on_ack(Pid(2), 1, QUORUM),
            AckEffect::Complete { ret: Val::Int(7) }
        );
    }

    #[test]
    fn k1_write_bumps_timestamp_and_returns_nil() {
        let mut ctr = 0u32;
        let mut op = ActiveOp::start(InvId(0), ObjId(0), OpKind::Write(Val::Int(9)), 1, 0);
        reply(&mut op, 1, 0, Val::Int(7), Ts::new(3, Pid(2)), &mut ctr);
        let eff = reply(&mut op, 2, 0, Val::Nil, Ts::ZERO, &mut ctr);
        match eff {
            ReplyEffect::StartUpdate { val, ts, .. } => {
                assert_eq!(val, Val::Int(9));
                assert_eq!(ts, Ts::new(4, ME)); // (t + 1, i)
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(op.on_ack(Pid(1), 1, QUORUM), AckEffect::Counted);
        assert_eq!(
            op.on_ack(Pid(2), 1, QUORUM),
            AckEffect::Complete { ret: Val::Nil }
        );
    }

    #[test]
    fn k2_iterates_then_needs_choice() {
        let mut ctr = 0u32;
        let mut op = ActiveOp::start(InvId(0), ObjId(0), OpKind::Read, 2, 0);

        reply(&mut op, 0, 0, Val::Int(1), Ts::new(1, Pid(1)), &mut ctr);
        let eff = reply(&mut op, 1, 0, Val::Nil, Ts::ZERO, &mut ctr);
        assert_eq!(
            eff,
            ReplyEffect::NextQuery {
                iteration: 1,
                sn: 1
            }
        );

        reply(&mut op, 0, 1, Val::Int(2), Ts::new(2, Pid(1)), &mut ctr);
        let eff = reply(&mut op, 1, 1, Val::Nil, Ts::ZERO, &mut ctr);
        assert_eq!(
            eff,
            ReplyEffect::NeedChoice {
                iteration: 2,
                choices: 2
            }
        );
        assert_eq!(op.results.len(), 2);
        assert_eq!(op.current_sn(), None);

        // Choose the first iteration's result.
        let (sn, val, ts) = op.choose(0, ME, &mut ctr);
        assert_eq!(sn, 2);
        assert_eq!(val, Val::Int(1));
        assert_eq!(ts, Ts::new(1, Pid(1)));
        assert_eq!(op.current_sn(), Some(2));
    }

    #[test]
    fn stale_and_duplicate_replies_are_ignored() {
        let mut ctr = 0u32;
        let mut op = ActiveOp::start(InvId(0), ObjId(0), OpKind::Read, 1, 0);
        assert_eq!(
            reply(&mut op, 1, 9, Val::Int(1), Ts::ZERO, &mut ctr),
            ReplyEffect::Ignored,
            "wrong sn"
        );
        reply(&mut op, 1, 0, Val::Int(1), Ts::ZERO, &mut ctr);
        assert_eq!(
            reply(&mut op, 1, 0, Val::Int(1), Ts::ZERO, &mut ctr),
            ReplyEffect::Ignored,
            "duplicate responder"
        );
    }

    #[test]
    fn stale_acks_are_ignored() {
        let mut op = ActiveOp::start_sw_write(InvId(0), ObjId(0), Val::Int(1), Ts::new(1, ME), 5);
        assert_eq!(op.on_ack(Pid(1), 4, QUORUM), AckEffect::Ignored);
        assert_eq!(op.on_ack(Pid(1), 5, QUORUM), AckEffect::Counted);
        assert_eq!(op.on_ack(Pid(1), 5, QUORUM), AckEffect::Ignored);
        assert_eq!(
            op.on_ack(Pid(2), 5, QUORUM),
            AckEffect::Complete { ret: Val::Nil }
        );
    }

    #[test]
    fn best_tracks_maximum_timestamp_not_latest_reply() {
        let mut ctr = 0u32;
        let mut op = ActiveOp::start(InvId(0), ObjId(0), OpKind::Read, 1, 0);
        reply(&mut op, 0, 0, Val::Int(5), Ts::new(2, Pid(0)), &mut ctr);
        // A later reply with an older timestamp must not win.
        let eff = reply(&mut op, 1, 0, Val::Int(9), Ts::new(1, Pid(1)), &mut ctr);
        match eff {
            ReplyEffect::StartUpdate { val, ts, .. } => {
                assert_eq!(val, Val::Int(5));
                assert_eq!(ts, Ts::new(2, Pid(0)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "AwaitChoice")]
    fn choose_outside_await_choice_panics() {
        let mut ctr = 0u32;
        let mut op = ActiveOp::start(InvId(0), ObjId(0), OpKind::Read, 2, 0);
        let _ = op.choose(0, ME, &mut ctr);
    }

    #[test]
    fn retransmission_replays_the_in_flight_broadcast() {
        let mut ctr = 0u32;
        let mut op = ActiveOp::start(InvId(0), ObjId(3), OpKind::Read, 2, 0);
        assert_eq!(
            op.retransmission(),
            Some(AbdMsg::Query {
                obj: ObjId(3),
                sn: 0
            }),
            "query phase resends the query"
        );

        reply(&mut op, 0, 0, Val::Int(1), Ts::new(1, Pid(1)), &mut ctr);
        reply(&mut op, 1, 0, Val::Nil, Ts::ZERO, &mut ctr);
        reply(&mut op, 0, 1, Val::Int(2), Ts::new(2, Pid(1)), &mut ctr);
        reply(&mut op, 1, 1, Val::Nil, Ts::ZERO, &mut ctr);
        assert_eq!(op.retransmission(), None, "nothing in flight at the choice");

        let (sn, val, ts) = op.choose(1, ME, &mut ctr);
        assert_eq!(
            op.retransmission(),
            Some(AbdMsg::Update {
                obj: ObjId(3),
                sn,
                val,
                ts
            }),
            "update phase resends the chosen install"
        );
    }

    #[test]
    fn replies_ignored_during_update_phase() {
        let mut ctr = 0u32;
        let mut op = ActiveOp::start(InvId(0), ObjId(0), OpKind::Read, 1, 0);
        reply(&mut op, 0, 0, Val::Int(1), Ts::ZERO, &mut ctr);
        reply(&mut op, 1, 0, Val::Int(1), Ts::ZERO, &mut ctr);
        // Now in Update; a late query reply is ignored.
        assert_eq!(
            reply(&mut op, 2, 0, Val::Int(1), Ts::ZERO, &mut ctr),
            ReplyEffect::Ignored
        );
    }
}
