//! Ready-made system configurations for the paper's ABD case study
//! (Appendix A).
//!
//! All scenarios run Algorithm 1 (the weakener) with register `R` in a
//! configurable implementation. Register `C` defaults to atomic: the paper's
//! adversary gains nothing from `C`'s implementation (it only needs `p2` to
//! read the coin *after* the flip, which holds in every complete schedule),
//! and keeping `C` atomic shrinks the exploration state space. The
//! full-ABD configuration is available for cross-checking.

use crate::config::ObjectConfig;
use crate::system::{AbdSystem, AbdSystemDef};
use blunt_core::value::Val;
use blunt_programs::weakener;

/// The weakener with explicit configurations for `R` and `C`.
#[must_use]
pub fn weakener_system(r: ObjectConfig, c: ObjectConfig) -> AbdSystem {
    AbdSystem::new(AbdSystemDef {
        program: weakener::weakener(),
        objects: vec![r, c],
        purge_stale: true,
        fused_rpc: false,
    })
}

/// The weakener with `R = ABD^k`, `C` atomic, and the fused-RPC reduction
/// enabled — the configuration used for exact exploration. Values computed
/// on this game are lower bounds on the unrestricted adversary's power (see
/// [`AbdSystemDef::fused_rpc`]).
#[must_use]
pub fn weakener_abd_fused(k: u32) -> AbdSystem {
    AbdSystem::new(AbdSystemDef {
        program: weakener::weakener(),
        objects: vec![
            ObjectConfig::abd(k, Val::Nil),
            ObjectConfig::atomic(Val::Int(-1)),
        ],
        purge_stale: true,
        fused_rpc: true,
    })
}

/// `P(O_a)`: both registers atomic (Appendix A.1; bad probability exactly
/// 1/2 under the optimal adversary).
#[must_use]
pub fn weakener_atomic() -> AbdSystem {
    weakener_system(
        ObjectConfig::atomic(Val::Nil),
        ObjectConfig::atomic(Val::Int(-1)),
    )
}

/// `P(O^k)` with `R = ABD^k` (multi-writer) and `C` atomic.
///
/// `k = 1` is `P(O)` — the plain ABD configuration of Appendix A.2 where the
/// Figure 1 adversary forces nontermination with probability 1.
#[must_use]
pub fn weakener_abd(k: u32) -> AbdSystem {
    weakener_system(
        ObjectConfig::abd(k, Val::Nil),
        ObjectConfig::atomic(Val::Int(-1)),
    )
}

/// Both `R` and `C` implemented as `ABD^k` — the literal configuration of
/// Appendix A (larger state space; used for cross-checks).
#[must_use]
pub fn weakener_abd_full(k: u32) -> AbdSystem {
    weakener_system(
        ObjectConfig::abd(k, Val::Nil),
        ObjectConfig::abd(k, Val::Int(-1)),
    )
}

/// The weakener with `R = ABD^k` and purging disabled (for validating that
/// the stale-message purge does not change probabilities).
#[must_use]
pub fn weakener_abd_no_purge(k: u32) -> AbdSystem {
    AbdSystem::new(AbdSystemDef {
        program: weakener::weakener(),
        objects: vec![
            ObjectConfig::abd(k, Val::Nil),
            ObjectConfig::atomic(Val::Int(-1)),
        ],
        purge_stale: false,
        fused_rpc: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_core::ratio::Ratio;
    use blunt_programs::weakener::is_bad;
    use blunt_sim::explore::{worst_case_prob, ExploreBudget};
    use blunt_sim::kernel::run;
    use blunt_sim::rng::{SplitMix64, Tape};
    use blunt_sim::sched::{FirstEnabled, RandomScheduler};
    use blunt_sim::system::System;

    #[test]
    fn atomic_weakener_runs_to_completion() {
        let report = run(
            weakener_atomic(),
            &mut FirstEnabled,
            &mut Tape::new(vec![0]),
            true,
            1_000,
        )
        .unwrap();
        assert_eq!(report.random_draws.len(), 1);
        // All three of p2's reads returned.
        assert!(report.outcome.len() >= 3);
    }

    #[test]
    fn abd_weakener_runs_under_many_random_schedules() {
        for seed in 0..50 {
            let report = run(
                weakener_abd(1),
                &mut RandomScheduler::new(seed),
                &mut SplitMix64::new(seed),
                false,
                10_000,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(report.outcome.len() >= 3, "seed {seed}: incomplete outcome");
        }
    }

    #[test]
    fn abd2_weakener_takes_object_random_steps() {
        let mut saw_object_random = false;
        for seed in 0..20 {
            let report = run(
                weakener_abd(2),
                &mut RandomScheduler::new(seed),
                &mut SplitMix64::new(seed),
                true,
                20_000,
            )
            .unwrap();
            if report.trace.object_random_count() > 0 {
                saw_object_random = true;
            }
        }
        assert!(saw_object_random, "ABD² must flip object coins");
    }

    #[test]
    fn abd1_weakener_takes_no_object_random_steps() {
        for seed in 0..20 {
            let report = run(
                weakener_abd(1),
                &mut RandomScheduler::new(seed),
                &mut SplitMix64::new(seed),
                true,
                10_000,
            )
            .unwrap();
            assert_eq!(
                report.trace.object_random_count(),
                0,
                "ABD¹ must behave exactly like plain ABD"
            );
        }
    }

    #[test]
    fn atomic_weakener_worst_case_is_exactly_one_half() {
        // Appendix A.1: with atomic registers p2 fails to terminate with
        // probability at most 1/2, and the adversary can achieve 1/2.
        let (p, stats) = worst_case_prob(
            &weakener_atomic(),
            &is_bad,
            &ExploreBudget::with_max_states(1_000_000),
        )
        .unwrap();
        assert_eq!(p, Ratio::new(1, 2));
        assert!(stats.states > 10);
    }

    #[test]
    fn crash_of_one_process_does_not_block_abd() {
        // Crash p0 before it does anything; p2's reads must still complete
        // (quorum 2 of {p1, p2} survives). p1 keeps running, so the coin is
        // written and p2 decides.
        use blunt_sim::system::Effects;
        let mut sys = weakener_abd(1);
        let mut fx = Effects::silent();
        sys.crash(blunt_core::ids::Pid(0), &mut fx);
        let report = run(
            sys,
            &mut RandomScheduler::new(7),
            &mut SplitMix64::new(7),
            false,
            10_000,
        )
        .unwrap();
        assert!(report.outcome.len() >= 3);
    }

    #[test]
    fn message_complexity_grows_linearly_in_k() {
        // Each query iteration is one broadcast of n queries answered by n
        // replies; the update phase is independent of k.
        let deliveries = |k: u32| {
            let report = run(
                weakener_abd(k),
                &mut FirstEnabled,
                &mut Tape::new(vec![0, 0, 0, 0, 0, 0, 0, 0]),
                true,
                50_000,
            )
            .unwrap();
            report.trace.delivery_count()
        };
        let d1 = deliveries(1);
        let d2 = deliveries(2);
        let d4 = deliveries(4);
        assert!(d2 > d1, "k = 2 must deliver more messages than k = 1");
        assert!(d4 > d2, "k = 4 must deliver more messages than k = 2");
    }

    #[test]
    fn full_abd_configuration_also_completes() {
        for seed in 0..20 {
            let report = run(
                weakener_abd_full(1),
                &mut RandomScheduler::new(seed),
                &mut SplitMix64::new(seed),
                false,
                20_000,
            )
            .unwrap();
            assert!(report.outcome.len() >= 3);
        }
    }

    #[test]
    fn purge_does_not_change_outcomes_under_fixed_schedules() {
        // The same deterministic scheduler and tape must produce the same
        // outcome with and without purging (purged messages are inert).
        for seed in 0..10 {
            let with = run(
                weakener_abd(2),
                &mut RandomScheduler::new(seed),
                &mut SplitMix64::new(seed),
                false,
                50_000,
            )
            .unwrap();
            let without = run(
                weakener_abd_no_purge(2),
                &mut RandomScheduler::new(seed),
                &mut SplitMix64::new(seed),
                false,
                50_000,
            );
            // Note: schedules are index-based, so the two runs may diverge
            // in *which* messages are delivered when the queues differ; we
            // only require both to complete and produce a decided outcome.
            let without = without.unwrap();
            assert!(with.outcome.len() >= 3);
            assert!(without.outcome.len() >= 3);
        }
    }

    #[test]
    fn enabled_events_are_nonempty_until_done() {
        let mut sys = weakener_abd(1);
        let mut fx = blunt_sim::system::Effects::silent();
        let mut enabled = Vec::new();
        let mut rng = SplitMix64::new(3);
        use blunt_sim::rng::RandomSource;
        for _ in 0..10_000 {
            match sys.status() {
                blunt_sim::system::Status::Done => return,
                blunt_sim::system::Status::AwaitingRandom { choices, .. } => {
                    let c = rng.draw(choices);
                    sys.supply_random(c, &mut fx);
                }
                blunt_sim::system::Status::Running => {
                    sys.enabled(&mut enabled);
                    assert!(!enabled.is_empty(), "running system with no events");
                    let i = rng.draw(enabled.len());
                    let ev = enabled[i];
                    sys.apply(&ev, &mut fx);
                }
            }
        }
        panic!("weakener did not finish in 10k steps");
    }
}
