//! The ABD wire protocol.
//!
//! All registers of a system share one network; messages carry the
//! [`ObjId`] of the register instance they belong to. Sequence numbers (`sn`)
//! identify the message exchange (query phase iteration or update phase)
//! they answer, so that late replies to a superseded exchange are recognized
//! and discarded — exactly the "reply msgs *to this query msg*" bookkeeping
//! of lines 8/16 in Algorithm 3.

use crate::ts::Ts;
use blunt_core::ids::ObjId;
use blunt_core::value::Val;
use std::fmt;

/// A message of the ABD protocol.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AbdMsg {
    /// `⟨"query", sn⟩` — ask a server for its current (value, timestamp).
    Query {
        /// Register instance.
        obj: ObjId,
        /// Exchange identifier.
        sn: u32,
    },
    /// `⟨"reply", val, ts, sn⟩` — a server's answer to a query.
    Reply {
        /// Register instance.
        obj: ObjId,
        /// Exchange this reply answers.
        sn: u32,
        /// The server's current value.
        val: Val,
        /// Its timestamp.
        ts: Ts,
    },
    /// `⟨"update", val, ts, sn⟩` — install (val, ts) if newer.
    Update {
        /// Register instance.
        obj: ObjId,
        /// Exchange identifier.
        sn: u32,
        /// Value to install.
        val: Val,
        /// Its timestamp.
        ts: Ts,
    },
    /// `⟨"ack", sn⟩` — acknowledges an update.
    Ack {
        /// Register instance.
        obj: ObjId,
        /// Exchange this ack answers.
        sn: u32,
    },
}

impl AbdMsg {
    /// The register instance this message belongs to.
    #[must_use]
    pub fn obj(&self) -> ObjId {
        match self {
            AbdMsg::Query { obj, .. }
            | AbdMsg::Reply { obj, .. }
            | AbdMsg::Update { obj, .. }
            | AbdMsg::Ack { obj, .. } => *obj,
        }
    }

    /// The exchange identifier.
    #[must_use]
    pub fn sn(&self) -> u32 {
        match self {
            AbdMsg::Query { sn, .. }
            | AbdMsg::Reply { sn, .. }
            | AbdMsg::Update { sn, .. }
            | AbdMsg::Ack { sn, .. } => *sn,
        }
    }

    /// Returns `true` for the message kinds that can never change the
    /// receiver's protocol state once the exchange `sn` is no longer
    /// current: queries (whose reply would be ignored), replies, and acks.
    /// `Update` messages are *never* stale — a late update still installs
    /// its value at the receiving server.
    #[must_use]
    pub fn is_stale_sensitive(&self) -> bool {
        !matches!(self, AbdMsg::Update { .. })
    }
}

impl fmt::Display for AbdMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbdMsg::Query { obj, sn } => write!(f, "query#{sn}[{obj}]"),
            AbdMsg::Reply { obj, sn, val, ts } => {
                write!(f, "reply#{sn}[{obj}]({val}, {ts})")
            }
            AbdMsg::Update { obj, sn, val, ts } => {
                write!(f, "update#{sn}[{obj}]({val}, {ts})")
            }
            AbdMsg::Ack { obj, sn } => write!(f, "ack#{sn}[{obj}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_core::ids::Pid;

    #[test]
    fn accessors() {
        let m = AbdMsg::Reply {
            obj: ObjId(1),
            sn: 7,
            val: Val::Int(3),
            ts: Ts::new(2, Pid(1)),
        };
        assert_eq!(m.obj(), ObjId(1));
        assert_eq!(m.sn(), 7);
    }

    #[test]
    fn staleness_classification() {
        let q = AbdMsg::Query {
            obj: ObjId(0),
            sn: 0,
        };
        let u = AbdMsg::Update {
            obj: ObjId(0),
            sn: 0,
            val: Val::Int(1),
            ts: Ts::ZERO,
        };
        let a = AbdMsg::Ack {
            obj: ObjId(0),
            sn: 0,
        };
        assert!(q.is_stale_sensitive());
        assert!(a.is_stale_sensitive());
        assert!(!u.is_stale_sensitive(), "updates always take effect");
    }

    #[test]
    fn messages_are_totally_ordered_for_canonical_queues() {
        let mut v = [
            AbdMsg::Ack {
                obj: ObjId(0),
                sn: 2,
            },
            AbdMsg::Query {
                obj: ObjId(1),
                sn: 0,
            },
            AbdMsg::Query {
                obj: ObjId(0),
                sn: 1,
            },
        ];
        v.sort();
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(
            AbdMsg::Query {
                obj: ObjId(0),
                sn: 3
            }
            .to_string(),
            "query#3[obj0]"
        );
        assert_eq!(
            AbdMsg::Update {
                obj: ObjId(0),
                sn: 1,
                val: Val::Int(0),
                ts: Ts::new(1, Pid(0)),
            }
            .to_string(),
            "update#1[obj0](0, (1, 0))"
        );
    }
}
