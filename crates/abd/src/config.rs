//! Per-register configuration: atomic baseline, multi-writer `ABD^k`, or
//! single-writer `ABD^k`.

use blunt_core::ids::Pid;
use blunt_core::value::Val;

/// How one register object is implemented.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ObjectKind {
    /// An atomic register: every invocation takes effect and returns in a
    /// single indivisible step. This is the `O_a` baseline of
    /// Proposition 2.2.
    Atomic,
    /// The ABD register with `k` query-phase iterations (Algorithm 4).
    ///
    /// - `k = 1` is the untransformed Algorithm 3: a single query phase and
    ///   **no** object random step;
    /// - `writer: None` is the multi-writer variant: both `Read` and `Write`
    ///   run the (iterated) query phase;
    /// - `writer: Some(p)` is the original single-writer ABD: only `p` may
    ///   write, and its `Write` skips the query phase entirely (empty
    ///   preamble), stamping values with a local sequence counter. Reads
    ///   still run the iterated query phase.
    Abd {
        /// Number of preamble (query phase) iterations, `k ≥ 1`.
        k: u32,
        /// Designated writer for the single-writer variant.
        writer: Option<Pid>,
    },
}

/// Configuration of one register object.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ObjectConfig {
    /// Implementation choice.
    pub kind: ObjectKind,
    /// Initial register value.
    pub initial: Val,
}

impl ObjectConfig {
    /// An atomic register with the given initial value.
    #[must_use]
    pub fn atomic(initial: Val) -> ObjectConfig {
        ObjectConfig {
            kind: ObjectKind::Atomic,
            initial,
        }
    }

    /// A multi-writer `ABD^k` register with the given initial value.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn abd(k: u32, initial: Val) -> ObjectConfig {
        assert!(k >= 1, "ABD^k requires k ≥ 1");
        ObjectConfig {
            kind: ObjectKind::Abd { k, writer: None },
            initial,
        }
    }

    /// A single-writer `ABD^k` register owned by `writer`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn abd_single_writer(k: u32, writer: Pid, initial: Val) -> ObjectConfig {
        assert!(k >= 1, "ABD^k requires k ≥ 1");
        ObjectConfig {
            kind: ObjectKind::Abd {
                k,
                writer: Some(writer),
            },
            initial,
        }
    }

    /// Returns `true` for atomic configurations.
    #[must_use]
    pub fn is_atomic(&self) -> bool {
        matches!(self.kind, ObjectKind::Atomic)
    }

    /// The iteration count `k` (1 for atomic objects, which have no
    /// preamble to iterate).
    #[must_use]
    pub fn iterations(&self) -> u32 {
        match self.kind {
            ObjectKind::Atomic => 1,
            ObjectKind::Abd { k, .. } => k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_classify_correctly() {
        assert!(ObjectConfig::atomic(Val::Nil).is_atomic());
        assert!(!ObjectConfig::abd(2, Val::Nil).is_atomic());
        assert_eq!(ObjectConfig::abd(3, Val::Nil).iterations(), 3);
        assert_eq!(ObjectConfig::atomic(Val::Nil).iterations(), 1);
        let sw = ObjectConfig::abd_single_writer(2, Pid(0), Val::Int(-1));
        assert_eq!(
            sw.kind,
            ObjectKind::Abd {
                k: 2,
                writer: Some(Pid(0))
            }
        );
        assert_eq!(sw.initial, Val::Int(-1));
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn zero_iterations_panics() {
        let _ = ObjectConfig::abd(0, Val::Nil);
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn zero_iterations_single_writer_panics() {
        let _ = ObjectConfig::abd_single_writer(0, Pid(0), Val::Nil);
    }
}
