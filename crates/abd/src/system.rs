//! The composed message-passing system: a randomized program running over a
//! set of registers (atomic / `ABD^k` / single-writer `ABD^k`) on one shared
//! network.
//!
//! [`AbdSystem`] implements [`blunt_sim::System`], so it can be driven by
//! any scheduler (including the scripted Figure 1 adversary) and explored
//! exhaustively for exact worst-case probabilities. Every process plays two
//! roles, exactly as in the paper's model: it executes its program code
//! *and* acts as a server replica for every ABD register.
//!
//! # State-space reductions (soundness-preserving)
//!
//! - Local program computation is bundled with the next visible step
//!   (see `blunt-programs`): local steps commute with everything.
//! - With [`AbdSystemDef::purge_stale`] (default on), messages that can no
//!   longer affect any process's behaviour — replies/acks to a superseded
//!   exchange, queries whose reply would be ignored — are dropped from the
//!   network as soon as they become stale. Delivering such a message is a
//!   no-op for every process's protocol state, so removing these
//!   "stutter moves" changes no outcome probability; it only collapses
//!   states that are bisimilar. `Update` messages are **never** purged:
//!   a late update still installs its value at a server.

use crate::client::{AckEffect, ActiveOp, OpKind, Phase, ReplyEffect};
use crate::config::{ObjectConfig, ObjectKind};
use crate::msg::AbdMsg;
use crate::server::ServerState;
use crate::ts::Ts;
use blunt_core::ids::{InvId, MethodId, ObjId, Pid};
use blunt_core::outcome::Outcome;
use blunt_core::value::Val;
use blunt_programs::{ProgCmd, ProgState, ProgramDef};
use blunt_sim::network::Network;
use blunt_sim::system::{Effects, RandomKind, Status, System};
use blunt_sim::trace::TraceEvent;
use std::rc::Rc;

/// The immutable definition of a composed system.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AbdSystemDef {
    /// The randomized program.
    pub program: ProgramDef,
    /// One configuration per object id used by the program.
    pub objects: Vec<ObjectConfig>,
    /// Enable the stale-message purge reduction (see module docs).
    pub purge_stale: bool,
    /// Fuse request/response pairs into single adversary events: delivering
    /// a `query` to a server immediately delivers its `reply` back to the
    /// client, and delivering an `update` immediately delivers its `ack`.
    ///
    /// Every fused schedule is realizable in the unfused game (deliver the
    /// request, then immediately its response), so worst-case probabilities
    /// computed on the fused game are **lower bounds** on the true
    /// adversary's power — and the Figure 1 adversary never delays a
    /// response after its request, so it is expressible in the fused game.
    /// The reduction shrinks the explorable state space by removing all
    /// reply/ack in-flight states.
    pub fused_rpc: bool,
}

impl AbdSystemDef {
    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.program.process_count()
    }

    /// The majority quorum `⌈(n+1)/2⌉` used by query and update phases.
    #[must_use]
    pub fn quorum(&self) -> u32 {
        (self.n() as u32) / 2 + 1
    }
}

/// Whose `random(V)` instruction the system is suspended at.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Awaiting {
    /// A program random step (e.g. the weakener's coin flip).
    Program { pid: Pid, choices: usize },
    /// An object random step (`j := random([1..k])` in `ABD^k`).
    Object { pid: Pid, choices: usize },
}

/// A schedulable event of the composed system.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AbdEvent {
    /// Process `pid` takes its next program step (invocation, termination).
    Prog(Pid),
    /// Deliver the in-flight message at the given network slot.
    Deliver(usize),
}

/// The composed system state.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AbdSystem {
    def: Rc<AbdSystemDef>,
    prog: ProgState,
    net: Network<AbdMsg>,
    /// `servers[obj][pid]` — replica state (empty for atomic objects).
    servers: Vec<Vec<ServerState>>,
    /// State of atomic objects (`Val::Nil` placeholder for ABD objects).
    atomics: Vec<Val>,
    /// At most one in-flight register operation per process.
    clients: Vec<Option<ActiveOp>>,
    /// Per-process exchange-number allocators.
    sn_counters: Vec<u32>,
    /// Per-object local sequence counters for single-writer writes.
    writer_seqs: Vec<i64>,
    awaiting: Option<Awaiting>,
    /// Per-process invocation counters. Invocation ids are
    /// `pid << 32 | counter`: numbering is local to each process, so states
    /// reached along different interleavings of *other* processes' steps
    /// still hash equal — a prerequisite for memoization to merge them.
    inv_counters: Vec<u32>,
}

impl AbdSystem {
    /// Builds the initial state of a composed system.
    ///
    /// # Panics
    ///
    /// Panics if the program invokes an object id with no configuration, or
    /// uses a method other than `Read`/`Write` (registers only here; see
    /// `blunt-registers` for snapshots).
    #[must_use]
    pub fn new(def: AbdSystemDef) -> AbdSystem {
        let n = def.n();
        // Validate the program's object references.
        for p in 0..n {
            for instr in def.program.code(Pid(p as u32)) {
                if let blunt_programs::Instr::Invoke { obj, method, .. } = instr {
                    assert!(
                        obj.index() < def.objects.len(),
                        "program invokes unconfigured object {obj}"
                    );
                    assert!(
                        *method == MethodId::READ || *method == MethodId::WRITE,
                        "AbdSystem implements registers; got method {method}"
                    );
                }
            }
        }
        let servers = def
            .objects
            .iter()
            .map(|cfg| match cfg.kind {
                ObjectKind::Atomic => Vec::new(),
                ObjectKind::Abd { .. } => (0..n)
                    .map(|_| ServerState::new(cfg.initial.clone()))
                    .collect(),
            })
            .collect();
        let atomics = def
            .objects
            .iter()
            .map(|cfg| match cfg.kind {
                ObjectKind::Atomic => cfg.initial.clone(),
                ObjectKind::Abd { .. } => Val::Nil,
            })
            .collect();
        let prog = ProgState::new(&def.program);
        let objects = def.objects.len();
        AbdSystem {
            def: Rc::new(def),
            prog,
            net: Network::new(n),
            servers,
            atomics,
            clients: vec![None; n],
            sn_counters: vec![0; n],
            writer_seqs: vec![0; objects],
            awaiting: None,
            inv_counters: vec![0; n],
        }
    }

    /// The system definition.
    #[must_use]
    pub fn def(&self) -> &AbdSystemDef {
        &self.def
    }

    /// The network (for assertions and message-complexity measurements).
    #[must_use]
    pub fn net(&self) -> &Network<AbdMsg> {
        &self.net
    }

    /// The program state (for assertions in tests).
    #[must_use]
    pub fn prog(&self) -> &ProgState {
        &self.prog
    }

    /// Crashes process `pid`: it takes no further steps, messages to it are
    /// never delivered, and any operation it had in flight is abandoned.
    ///
    /// ABD tolerates any minority of crashes; tests drive this directly
    /// (crashes are not adversary events during exploration).
    pub fn crash(&mut self, pid: Pid, fx: &mut Effects) {
        self.prog.crash(pid);
        self.net.crash(pid);
        self.clients[pid.index()] = None;
        fx.push(TraceEvent::Crash { pid });
        self.purge();
    }

    fn fresh_inv(&mut self, pid: Pid) -> InvId {
        let c = &mut self.inv_counters[pid.index()];
        *c += 1;
        InvId((u64::from(pid.0) << 32) | u64::from(*c))
    }

    fn fresh_sn(&mut self, pid: Pid) -> u32 {
        let c = &mut self.sn_counters[pid.index()];
        *c += 1;
        *c
    }

    /// Removes messages that can no longer affect any process (module docs).
    fn purge(&mut self) {
        if !self.def.purge_stale {
            return;
        }
        let clients = &self.clients;
        let net = &mut self.net;
        let crashed: Vec<bool> = (0..clients.len())
            .map(|p| net.is_crashed(Pid(p as u32)))
            .collect();
        net.purge(|env| {
            if crashed[env.dst.index()] {
                return false; // undeliverable forever
            }
            if !env.msg.is_stale_sensitive() {
                return true; // updates always matter
            }
            let owner = match env.msg {
                AbdMsg::Query { .. } => env.src, // reply would go back to src
                _ => env.dst,
            };
            match &clients[owner.index()] {
                Some(op) => op.current_sn() == Some(env.msg.sn()),
                None => false,
            }
        });
    }

    fn handle_invoke(
        &mut self,
        pid: Pid,
        obj: ObjId,
        method: MethodId,
        arg: Val,
        site: blunt_core::ids::CallSite,
        fx: &mut Effects,
    ) {
        let inv = self.fresh_inv(pid);
        // Aggregated over every explorer branch (global registry; see
        // `blunt_sim::network` for the rationale).
        blunt_obs::static_counter!("abd.ops.started").inc();
        fx.push_with(|| TraceEvent::Call {
            inv,
            pid,
            obj,
            method,
            arg: arg.clone(),
            site,
        });
        let cfg = self.def.objects[obj.index()].clone();
        match cfg.kind {
            ObjectKind::Atomic => {
                // Atomic objects execute in a single indivisible step: the
                // invocation returns before any other event is scheduled.
                let ret = match method {
                    MethodId::READ => self.atomics[obj.index()].clone(),
                    MethodId::WRITE => {
                        self.atomics[obj.index()] = arg;
                        Val::Nil
                    }
                    other => panic!("atomic register: unsupported method {other}"),
                };
                fx.push_with(|| TraceEvent::Return {
                    inv,
                    pid,
                    val: ret.clone(),
                });
                self.prog.on_return(pid, ret);
            }
            ObjectKind::Abd { k, writer } => match method {
                MethodId::WRITE if writer == Some(pid) => {
                    // Single-writer fast path: empty preamble; stamp with the
                    // local sequence counter and go straight to the update
                    // phase.
                    self.writer_seqs[obj.index()] += 1;
                    let ts = Ts::new(self.writer_seqs[obj.index()], pid);
                    let sn = self.fresh_sn(pid);
                    let op = ActiveOp::start_sw_write(inv, obj, arg.clone(), ts, sn);
                    self.clients[pid.index()] = Some(op);
                    self.net.broadcast(
                        pid,
                        AbdMsg::Update {
                            obj,
                            sn,
                            val: arg,
                            ts,
                        },
                    );
                }
                MethodId::WRITE if writer.is_some() => {
                    panic!(
                        "process {pid} writes single-writer register {obj} owned by {:?}",
                        writer
                    )
                }
                MethodId::READ | MethodId::WRITE => {
                    let kind = if method == MethodId::READ {
                        OpKind::Read
                    } else {
                        OpKind::Write(arg)
                    };
                    let sn = self.fresh_sn(pid);
                    let op = ActiveOp::start(inv, obj, kind, k, sn);
                    self.clients[pid.index()] = Some(op);
                    self.net.broadcast(pid, AbdMsg::Query { obj, sn });
                }
                other => panic!("ABD register: unsupported method {other}"),
            },
        }
    }

    fn handle_prog_step(&mut self, pid: Pid, fx: &mut Effects) {
        let def = Rc::clone(&self.def);
        match self.prog.step(&def.program, pid) {
            ProgCmd::Invoke {
                site,
                obj,
                method,
                arg,
            } => self.handle_invoke(pid, obj, method, arg, site, fx),
            ProgCmd::Random { choices } => {
                self.awaiting = Some(Awaiting::Program { pid, choices });
            }
            ProgCmd::Halted => {
                fx.push(TraceEvent::Internal {
                    pid,
                    label: "halt".into(),
                });
            }
            ProgCmd::Looping => {
                fx.push(TraceEvent::Internal {
                    pid,
                    label: "loop forever".into(),
                });
            }
        }
    }

    fn complete_op(&mut self, pid: Pid, ret: Val, fx: &mut Effects) {
        let op = self.clients[pid.index()]
            .take()
            .expect("completing without an active op");
        blunt_obs::static_counter!("abd.ops.completed").inc();
        fx.push_with(|| TraceEvent::Return {
            inv: op.inv,
            pid,
            val: ret.clone(),
        });
        self.prog.on_return(pid, ret);
    }

    fn handle_deliver(&mut self, slot: usize, fx: &mut Effects) {
        let env = self.net.take(slot);
        let (src, dst) = (env.src, env.dst);
        fx.push_with(|| TraceEvent::Deliver {
            src,
            dst,
            label: env.msg.to_string(),
        });
        // One macro call site per message kind: `static_counter!` caches a
        // single handle per site, so the name must be a per-site literal.
        match env.msg {
            AbdMsg::Query { .. } => blunt_obs::static_counter!("abd.deliver.query").inc(),
            AbdMsg::Reply { .. } => blunt_obs::static_counter!("abd.deliver.reply").inc(),
            AbdMsg::Update { .. } => blunt_obs::static_counter!("abd.deliver.update").inc(),
            AbdMsg::Ack { .. } => blunt_obs::static_counter!("abd.deliver.ack").inc(),
        }
        match env.msg {
            AbdMsg::Query { obj, sn } => {
                let reply = self.servers[obj.index()][dst.index()].reply(obj, sn);
                if self.def.fused_rpc {
                    // The response travels back in the same adversary event.
                    let AbdMsg::Reply { obj, sn, val, ts } = reply else {
                        unreachable!("server replies with Reply");
                    };
                    fx.push_with(|| TraceEvent::Deliver {
                        src: dst,
                        dst: src,
                        label: format!("reply#{sn}[{obj}] (fused)"),
                    });
                    self.handle_reply(src, dst, obj, sn, &val, ts, fx);
                } else {
                    self.net.send(dst, src, reply);
                }
            }
            AbdMsg::Reply { obj, sn, val, ts } => {
                self.handle_reply(dst, src, obj, sn, &val, ts, fx);
            }
            AbdMsg::Update { obj, sn, val, ts } => {
                self.servers[obj.index()][dst.index()].absorb(val, ts);
                if self.def.fused_rpc {
                    fx.push_with(|| TraceEvent::Deliver {
                        src: dst,
                        dst: src,
                        label: format!("ack#{sn}[{obj}] (fused)"),
                    });
                    self.handle_ack(src, dst, obj, sn, fx);
                } else {
                    self.net.send(dst, src, AbdMsg::Ack { obj, sn });
                }
            }
            AbdMsg::Ack { obj, sn } => {
                self.handle_ack(dst, src, obj, sn, fx);
            }
        }
    }

    /// Feeds a query reply (from `server`) to the client at `client`.
    #[allow(clippy::too_many_arguments)]
    fn handle_reply(
        &mut self,
        client: Pid,
        server: Pid,
        obj: ObjId,
        sn: u32,
        val: &Val,
        ts: Ts,
        fx: &mut Effects,
    ) {
        let quorum = self.def.quorum();
        let Some(op) = self.clients[client.index()].as_mut() else {
            return;
        };
        if op.obj != obj {
            return;
        }
        let effect = op.on_reply(
            server,
            sn,
            val,
            ts,
            quorum,
            client,
            &mut self.sn_counters[client.index()],
        );
        let inv = op.inv;
        if !matches!(effect, ReplyEffect::Ignored | ReplyEffect::Counted) {
            // Every non-trivial effect marks a completed query quorum — one
            // preamble round-trip of the paper's `ABD^k`.
            blunt_obs::static_counter!("abd.quorum.query_rounds").inc();
        }
        match effect {
            ReplyEffect::Ignored | ReplyEffect::Counted => {}
            ReplyEffect::NextQuery { iteration, sn } => {
                fx.push(TraceEvent::PreamblePassed {
                    inv,
                    pid: client,
                    iteration,
                });
                self.net.broadcast(client, AbdMsg::Query { obj, sn });
            }
            ReplyEffect::NeedChoice { iteration, choices } => {
                fx.push(TraceEvent::PreamblePassed {
                    inv,
                    pid: client,
                    iteration,
                });
                self.awaiting = Some(Awaiting::Object {
                    pid: client,
                    choices: choices as usize,
                });
            }
            ReplyEffect::StartUpdate {
                iteration,
                sn,
                val,
                ts,
            } => {
                fx.push(TraceEvent::PreamblePassed {
                    inv,
                    pid: client,
                    iteration,
                });
                self.net
                    .broadcast(client, AbdMsg::Update { obj, sn, val, ts });
            }
        }
    }

    /// Feeds an update ack (from `server`) to the client at `client`.
    fn handle_ack(&mut self, client: Pid, server: Pid, obj: ObjId, sn: u32, fx: &mut Effects) {
        let quorum = self.def.quorum();
        let Some(op) = self.clients[client.index()].as_mut() else {
            return;
        };
        if op.obj != obj {
            return;
        }
        match op.on_ack(server, sn, quorum) {
            AckEffect::Ignored | AckEffect::Counted => {}
            AckEffect::Complete { ret } => {
                blunt_obs::static_counter!("abd.quorum.update_rounds").inc();
                self.complete_op(client, ret, fx);
            }
        }
    }

    /// Returns `true` if process `pid`'s active operation is in some query
    /// phase (its preamble), i.e. its linearization point is not yet fixed.
    #[must_use]
    pub fn in_preamble(&self, pid: Pid) -> bool {
        matches!(
            &self.clients[pid.index()],
            Some(ActiveOp {
                phase: Phase::Query { .. } | Phase::AwaitChoice,
                ..
            })
        )
    }
}

impl System for AbdSystem {
    type Event = AbdEvent;

    fn process_count(&self) -> usize {
        self.def.n()
    }

    fn enabled(&self, out: &mut Vec<AbdEvent>) {
        out.clear();
        if self.status() != Status::Running {
            return;
        }
        for p in 0..self.def.n() {
            let pid = Pid(p as u32);
            if self.prog.can_step(pid) {
                out.push(AbdEvent::Prog(pid));
            }
        }
        for slot in self.net.deliverable() {
            out.push(AbdEvent::Deliver(slot));
        }
    }

    fn apply(&mut self, ev: &AbdEvent, fx: &mut Effects) {
        debug_assert_eq!(self.status(), Status::Running);
        match ev {
            AbdEvent::Prog(pid) => self.handle_prog_step(*pid, fx),
            AbdEvent::Deliver(slot) => self.handle_deliver(*slot, fx),
        }
        self.purge();
    }

    fn supply_random(&mut self, choice: usize, fx: &mut Effects) {
        match self.awaiting.take() {
            Some(Awaiting::Program { pid, choices }) => {
                assert!(choice < choices, "random choice out of range");
                fx.push(TraceEvent::ProgramRandom {
                    pid,
                    choices,
                    chosen: choice,
                });
                self.prog.on_random(pid, choice);
            }
            Some(Awaiting::Object { pid, choices }) => {
                assert!(choice < choices, "random choice out of range");
                let op = self.clients[pid.index()]
                    .as_mut()
                    .expect("object random step without an active op");
                let inv = op.inv;
                let obj = op.obj;
                fx.push(TraceEvent::ObjectRandom {
                    pid,
                    inv,
                    choices,
                    chosen: choice,
                });
                let (sn, val, ts) = op.choose(choice, pid, &mut self.sn_counters[pid.index()]);
                self.net.broadcast(pid, AbdMsg::Update { obj, sn, val, ts });
            }
            None => panic!("supply_random while not awaiting randomness"),
        }
        self.purge();
    }

    fn status(&self) -> Status {
        if self.prog.is_done(&self.def.program) {
            return Status::Done;
        }
        match self.awaiting {
            Some(Awaiting::Program { pid, choices }) => Status::AwaitingRandom {
                pid,
                choices,
                kind: RandomKind::Program,
            },
            Some(Awaiting::Object { pid, choices }) => Status::AwaitingRandom {
                pid,
                choices,
                kind: RandomKind::Object,
            },
            None => Status::Running,
        }
    }

    fn outcome(&self) -> Outcome {
        self.prog.outcome()
    }
}
