//! The server role of ABD (lines 11–12 and 18–20 of Algorithm 3).
//!
//! Every process runs one server per register instance. The two handlers
//! encode the paper's effect-freedom split in their receivers:
//!
//! - [`ServerState::reply`] (query handler) takes **`&self`** — answering a
//!   query cannot change the server, which is why the query phase is an
//!   effect-free preamble and may be iterated;
//! - [`ServerState::absorb`] (update handler) takes **`&mut self`** — it is
//!   the single place where register state changes.

use crate::msg::AbdMsg;
use crate::ts::Ts;
use blunt_core::ids::ObjId;
use blunt_core::value::Val;

/// One server's replica state for one register: the latest value and its
/// timestamp.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ServerState {
    val: Val,
    ts: Ts,
}

impl ServerState {
    /// A replica holding `initial` with timestamp `(0, 0)`.
    #[must_use]
    pub fn new(initial: Val) -> ServerState {
        ServerState {
            val: initial,
            ts: Ts::ZERO,
        }
    }

    /// The current value.
    #[must_use]
    pub fn val(&self) -> &Val {
        &self.val
    }

    /// The current timestamp.
    #[must_use]
    pub fn ts(&self) -> Ts {
        self.ts
    }

    /// Handles `⟨"query", sn⟩`: builds the reply carrying the current
    /// (value, timestamp). Effect-free by construction (`&self`).
    #[must_use]
    pub fn reply(&self, obj: ObjId, sn: u32) -> AbdMsg {
        AbdMsg::Reply {
            obj,
            sn,
            val: self.val.clone(),
            ts: self.ts,
        }
    }

    /// Handles `⟨"update", v, u, sn⟩`: installs `(v, u)` iff `u` is newer
    /// than the stored timestamp (line 19). Returns `true` if the state
    /// changed.
    pub fn absorb(&mut self, val: Val, ts: Ts) -> bool {
        if ts > self.ts {
            self.val = val;
            self.ts = ts;
            true
        } else {
            false
        }
    }

    /// The replica's `(value, timestamp)` pair, for persistence layers that
    /// checkpoint server state (see `blunt_runtime`'s crash-recovery).
    #[must_use]
    pub fn snapshot(&self) -> (Val, Ts) {
        (self.val.clone(), self.ts)
    }

    /// Unconditionally installs `(val, ts)` — the recovery counterpart of
    /// [`ServerState::absorb`], used to reload a replayed checkpoint after
    /// [`ServerState::forget`]. Unlike `absorb` it does not compare
    /// timestamps: recovery knows the restored pair is authoritative.
    pub fn restore(&mut self, val: Val, ts: Ts) {
        self.val = val;
        self.ts = ts;
    }

    /// An amnesia crash: the replica loses its volatile state and is back at
    /// `initial` with timestamp `(0, 0)`, as if freshly constructed.
    pub fn forget(&mut self, initial: Val) {
        self.val = initial;
        self.ts = Ts::ZERO;
    }
}

/// A keyed collection of register replicas: one [`ServerState`] per
/// [`ObjId`], materialized lazily at `initial`. Every ABD message already
/// carries its `obj`, so a server hosting many registers is exactly this
/// map — the protocol handlers stay per-register and unchanged.
///
/// Iteration order is the `ObjId` order (`BTreeMap`), so snapshots and
/// state-transfer payloads built from it are deterministic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StoreState {
    initial: Val,
    regs: std::collections::BTreeMap<ObjId, ServerState>,
}

impl StoreState {
    /// An empty store whose registers all start at `initial`.
    #[must_use]
    pub fn new(initial: Val) -> StoreState {
        StoreState {
            initial,
            regs: std::collections::BTreeMap::new(),
        }
    }

    /// The register for `obj`, materializing it at the initial value. Only
    /// mutating paths materialize; queries on untouched keys answer from a
    /// transient initial replica without growing the map.
    fn entry(&mut self, obj: ObjId) -> &mut ServerState {
        let initial = self.initial.clone();
        self.regs
            .entry(obj)
            .or_insert_with(|| ServerState::new(initial))
    }

    /// Handles `⟨"query", sn⟩` for `obj`. Effect-free: untouched keys
    /// answer `(initial, ts 0)` without materializing a replica.
    #[must_use]
    pub fn reply(&self, obj: ObjId, sn: u32) -> AbdMsg {
        match self.regs.get(&obj) {
            Some(r) => r.reply(obj, sn),
            None => AbdMsg::Reply {
                obj,
                sn,
                val: self.initial.clone(),
                ts: Ts::ZERO,
            },
        }
    }

    /// Handles `⟨"update", v, u, sn⟩` for `obj`; see [`ServerState::absorb`].
    pub fn absorb(&mut self, obj: ObjId, val: Val, ts: Ts) -> bool {
        self.entry(obj).absorb(val, ts)
    }

    /// The stored `(value, timestamp)` of `obj` (initial if untouched).
    #[must_use]
    pub fn get(&self, obj: ObjId) -> (Val, Ts) {
        match self.regs.get(&obj) {
            Some(r) => r.snapshot(),
            None => (self.initial.clone(), Ts::ZERO),
        }
    }

    /// Every materialized register's `(obj, value, timestamp)`, in `ObjId`
    /// order — the payload of a full-state transfer during recovery.
    #[must_use]
    pub fn snapshot_all(&self) -> Vec<(ObjId, Val, Ts)> {
        self.regs
            .iter()
            .map(|(o, r)| {
                let (v, t) = r.snapshot();
                (*o, v, t)
            })
            .collect()
    }

    /// Unconditionally installs `(val, ts)` for `obj`; see
    /// [`ServerState::restore`].
    pub fn restore(&mut self, obj: ObjId, val: Val, ts: Ts) {
        self.entry(obj).restore(val, ts);
    }

    /// Adopts `(val, ts)` for `obj` iff it is newer than what is stored —
    /// the peer-catch-up merge during recovery (same comparison as
    /// [`ServerState::absorb`]).
    pub fn adopt(&mut self, obj: ObjId, val: Val, ts: Ts) -> bool {
        self.entry(obj).absorb(val, ts)
    }

    /// An amnesia crash: every register reverts to the initial value, as if
    /// the store were freshly constructed.
    pub fn forget(&mut self) {
        self.regs.clear();
    }

    /// Number of registers that have been written (materialized).
    #[must_use]
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True when no register has been materialized.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_core::ids::Pid;

    #[test]
    fn new_server_holds_initial_at_ts_zero() {
        let s = ServerState::new(Val::Nil);
        assert_eq!(*s.val(), Val::Nil);
        assert_eq!(s.ts(), Ts::ZERO);
    }

    #[test]
    fn reply_reflects_current_state_without_mutation() {
        let s = ServerState::new(Val::Int(5));
        let before = s.clone();
        let m = s.reply(ObjId(2), 9);
        assert_eq!(
            m,
            AbdMsg::Reply {
                obj: ObjId(2),
                sn: 9,
                val: Val::Int(5),
                ts: Ts::ZERO,
            }
        );
        assert_eq!(s, before, "query handling is effect-free");
    }

    #[test]
    fn absorb_installs_only_newer_timestamps() {
        let mut s = ServerState::new(Val::Nil);
        assert!(s.absorb(Val::Int(1), Ts::new(1, Pid(1))));
        assert_eq!(*s.val(), Val::Int(1));

        // An older or equal timestamp is ignored.
        assert!(!s.absorb(Val::Int(9), Ts::new(1, Pid(1))));
        assert!(!s.absorb(Val::Int(9), Ts::new(0, Pid(0))));
        assert_eq!(*s.val(), Val::Int(1));

        // Same integer, larger pid wins (lexicographic tie-break).
        assert!(s.absorb(Val::Int(2), Ts::new(1, Pid(2))));
        assert_eq!(*s.val(), Val::Int(2));
        assert_eq!(s.ts(), Ts::new(1, Pid(2)));
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut s = ServerState::new(Val::Nil);
        s.absorb(Val::Int(7), Ts::new(3, Pid(1)));
        let (val, ts) = s.snapshot();
        let mut fresh = ServerState::new(Val::Nil);
        fresh.restore(val, ts);
        assert_eq!(fresh, s);
    }

    #[test]
    fn restore_is_unconditional_unlike_absorb() {
        let mut s = ServerState::new(Val::Nil);
        s.absorb(Val::Int(9), Ts::new(5, Pid(2)));
        // absorb rejects an older pair; restore installs it anyway.
        assert!(!s.absorb(Val::Int(1), Ts::new(1, Pid(0))));
        s.restore(Val::Int(1), Ts::new(1, Pid(0)));
        assert_eq!(*s.val(), Val::Int(1));
        assert_eq!(s.ts(), Ts::new(1, Pid(0)));
    }

    #[test]
    fn forget_resets_to_initial_at_ts_zero() {
        let mut s = ServerState::new(Val::Int(42));
        s.absorb(Val::Int(7), Ts::new(3, Pid(1)));
        s.forget(Val::Int(42));
        assert_eq!(s, ServerState::new(Val::Int(42)));
        // After amnesia the replica accepts old timestamps again — the
        // stale-state hazard the runtime's recovery protocol must close.
        assert!(s.absorb(Val::Int(1), Ts::new(1, Pid(0))));
    }

    #[test]
    fn store_state_keeps_registers_independent() {
        let mut s = StoreState::new(Val::Nil);
        assert!(s.is_empty());
        assert!(s.absorb(ObjId(3), Val::Int(30), Ts::new(1, Pid(0))));
        assert!(s.absorb(ObjId(7), Val::Int(70), Ts::new(1, Pid(1))));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(ObjId(3)), (Val::Int(30), Ts::new(1, Pid(0))));
        assert_eq!(s.get(ObjId(7)), (Val::Int(70), Ts::new(1, Pid(1))));
        // A stale update for one key leaves the other untouched.
        assert!(!s.absorb(ObjId(3), Val::Int(9), Ts::ZERO));
        assert_eq!(s.get(ObjId(3)).0, Val::Int(30));
        // Untouched keys answer initial at ts 0 without materializing.
        assert_eq!(s.get(ObjId(99)), (Val::Nil, Ts::ZERO));
        assert_eq!(
            s.reply(ObjId(99), 4),
            AbdMsg::Reply {
                obj: ObjId(99),
                sn: 4,
                val: Val::Nil,
                ts: Ts::ZERO
            }
        );
        assert_eq!(s.len(), 2, "queries do not materialize");
    }

    #[test]
    fn store_snapshot_is_objid_ordered_and_round_trips() {
        let mut s = StoreState::new(Val::Nil);
        s.absorb(ObjId(9), Val::Int(9), Ts::new(2, Pid(0)));
        s.absorb(ObjId(1), Val::Int(1), Ts::new(1, Pid(0)));
        s.absorb(ObjId(5), Val::Int(5), Ts::new(3, Pid(1)));
        let snap = s.snapshot_all();
        let objs: Vec<u32> = snap.iter().map(|(o, _, _)| o.0).collect();
        assert_eq!(objs, vec![1, 5, 9], "snapshot is ObjId-ordered");
        let mut fresh = StoreState::new(Val::Nil);
        for (o, v, t) in snap {
            fresh.restore(o, v, t);
        }
        assert_eq!(fresh, s);
    }

    #[test]
    fn store_forget_and_adopt_model_amnesia_catch_up() {
        let mut s = StoreState::new(Val::Nil);
        s.absorb(ObjId(1), Val::Int(1), Ts::new(5, Pid(2)));
        s.forget();
        assert!(s.is_empty());
        assert_eq!(s.get(ObjId(1)), (Val::Nil, Ts::ZERO));
        // Catch-up merge: newer peer state wins, older is ignored.
        assert!(s.adopt(ObjId(1), Val::Int(1), Ts::new(5, Pid(2))));
        assert!(!s.adopt(ObjId(1), Val::Int(0), Ts::new(4, Pid(0))));
        assert_eq!(s.get(ObjId(1)).0, Val::Int(1));
    }

    #[test]
    fn absorb_is_idempotent_and_monotone() {
        let mut s = ServerState::new(Val::Nil);
        let updates = [
            (Val::Int(1), Ts::new(1, Pid(0))),
            (Val::Int(2), Ts::new(2, Pid(0))),
            (Val::Int(1), Ts::new(1, Pid(0))), // replayed duplicate
        ];
        for (v, t) in updates {
            s.absorb(v, t);
        }
        assert_eq!(*s.val(), Val::Int(2));
        assert_eq!(s.ts(), Ts::new(2, Pid(0)));
    }
}
