//! Adversary strategies against linearizable implementations.
//!
//! This crate turns the paper's Appendix A into executable artifacts:
//!
//! - [`fig1`] — the exact strong adversary of Figure 1, as a scripted
//!   schedule (one per coin value) that forces the weakener's `p2` to loop
//!   forever against plain ABD;
//! - [`search`] — empirical adversary lower bounds: exact game values on the
//!   fused game, plus Monte Carlo sweeps under random scheduling for
//!   comparison;
//! - [`report`] — the Appendix A probability table with paper-vs-measured
//!   columns, used by the experiments harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig1;
pub mod report;
pub mod search;
