//! The strong adversary of the paper's **Figure 1** (Appendix A.2), as an
//! executable schedule.
//!
//! The adversary runs the weakener against plain ABD (`R = ABD¹`, `C`
//! atomic) and forces `p2` to loop forever **for both coin values**: it
//! keeps `p0`'s `Write(0)` and `p2`'s first `Read` inside their query phases
//! across `p1`'s coin flip, then completes them one way or the other
//! depending on the observed coin. A strong adversary is a function from
//! observed random values to schedules — here, literally the two scripts
//! [`fig1_script`]`(0)` and [`fig1_script`]`(1)` sharing the prefix that
//! precedes the flip.

use blunt_abd::msg::AbdMsg;
use blunt_abd::system::{AbdEvent, AbdSystem};
use blunt_core::ids::{ObjId, Pid};
use blunt_sim::sched::Scheduler;
use std::collections::VecDeque;

/// The message kinds a script step can select.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgKind {
    /// A `query` message.
    Query,
    /// A `reply` message.
    Reply,
    /// An `update` message.
    Update,
    /// An `ack` message.
    Ack,
}

impl MsgKind {
    fn matches(self, msg: &AbdMsg) -> bool {
        matches!(
            (self, msg),
            (MsgKind::Query, AbdMsg::Query { .. })
                | (MsgKind::Reply, AbdMsg::Reply { .. })
                | (MsgKind::Update, AbdMsg::Update { .. })
                | (MsgKind::Ack, AbdMsg::Ack { .. })
        )
    }
}

/// One step of a declarative ABD schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Step {
    /// Schedule process `pid`'s next program step.
    Prog(Pid),
    /// Deliver the in-flight message of the given kind for the given object
    /// from `src` to `dst`.
    Deliver {
        /// Sender.
        src: Pid,
        /// Receiver.
        dst: Pid,
        /// Message kind.
        kind: MsgKind,
        /// Register instance the message belongs to.
        obj: ObjId,
    },
}

/// A declarative scripted scheduler over [`AbdSystem`] events.
///
/// Each step names the event to schedule; once the script is exhausted the
/// scheduler falls back to first-enabled (by then the program has decided).
///
/// # Panics
///
/// `pick` panics if a scripted step matches no enabled event — the script
/// has diverged from the system, and the experiment it encodes is void.
#[derive(Debug)]
pub struct AbdScript {
    steps: VecDeque<Step>,
    consumed: usize,
}

impl AbdScript {
    /// Creates a scheduler from a step list.
    #[must_use]
    pub fn new(steps: Vec<Step>) -> AbdScript {
        blunt_obs::static_counter!("adversary.fig1.scripts_built").inc();
        AbdScript {
            steps: steps.into(),
            consumed: 0,
        }
    }

    /// Steps consumed so far.
    #[must_use]
    pub fn consumed(&self) -> usize {
        self.consumed
    }
}

impl Scheduler<AbdSystem> for AbdScript {
    fn pick(&mut self, sys: &AbdSystem, enabled: &[AbdEvent]) -> usize {
        let Some(step) = self.steps.pop_front() else {
            blunt_obs::static_counter!("adversary.fig1.fallback_picks").inc();
            return 0;
        };
        self.consumed += 1;
        blunt_obs::static_counter!("adversary.fig1.scripted_picks").inc();
        let found = enabled.iter().position(|ev| match (step, ev) {
            (Step::Prog(pid), AbdEvent::Prog(p)) => *p == pid,
            (
                Step::Deliver {
                    src,
                    dst,
                    kind,
                    obj,
                },
                AbdEvent::Deliver(slot),
            ) => {
                let env = sys.net().peek(*slot);
                env.src == src && env.dst == dst && env.msg.obj() == obj && kind.matches(&env.msg)
            }
            _ => false,
        });
        found.unwrap_or_else(|| {
            panic!(
                "Figure 1 script diverged at step {} ({step:?}); enabled: {:?}",
                self.consumed,
                enabled
                    .iter()
                    .map(|e| match e {
                        AbdEvent::Prog(p) => format!("Prog({p})"),
                        AbdEvent::Deliver(s) => {
                            let env = sys.net().peek(*s);
                            format!("Deliver({}→{}: {})", env.src, env.dst, env.msg)
                        }
                    })
                    .collect::<Vec<_>>()
            )
        })
    }
}

const P0: Pid = Pid(0);
const P1: Pid = Pid(1);
const P2: Pid = Pid(2);

/// The register `R` of the weakener.
const R: ObjId = ObjId(0);
/// The register `C` of the weakener.
const C: ObjId = ObjId(1);

fn d(src: Pid, dst: Pid, kind: MsgKind) -> Step {
    Step::Deliver {
        src,
        dst,
        kind,
        obj: R,
    }
}

fn dc(src: Pid, dst: Pid, kind: MsgKind) -> Step {
    Step::Deliver {
        src,
        dst,
        kind,
        obj: C,
    }
}

/// A complete, uncontested ABD operation by `pid` against register `C`,
/// answered by `pid` itself and `other`: query exchange then update
/// exchange (8 deliveries).
fn c_op(pid: Pid, other: Pid) -> Vec<Step> {
    use MsgKind::*;
    vec![
        dc(pid, other, Query),
        dc(other, pid, Reply),
        dc(pid, pid, Query),
        dc(pid, pid, Reply),
        dc(pid, other, Update),
        dc(other, pid, Ack),
        dc(pid, pid, Update),
        dc(pid, pid, Ack),
    ]
}

/// The shared schedule prefix, up to and including `p1`'s coin flip: it
/// leaves `p0`'s `Write(0)` with one `⊥` reply and `p2`'s first `Read` with
/// one `⊥` reply, `p1`'s `Write(1)` completed with timestamp `(1, 1)`, and
/// `p1`'s update to `p2` still in flight.
fn prefix() -> Vec<Step> {
    use MsgKind::*;
    vec![
        // p0 invokes Write(R, 0) and answers its own query with (⊥, (0,0)).
        Step::Prog(P0),
        d(P0, P0, Query),
        d(P0, P0, Reply),
        // p1 invokes Write(R, 1); its query completes with (⊥, (0,0)) from
        // p0 and p1, so it picks timestamp (1, 1) and broadcasts its update.
        Step::Prog(P1),
        d(P1, P0, Query),
        d(P0, P1, Reply),
        d(P1, P1, Query),
        d(P1, P1, Reply),
        // p2 invokes its first Read; p0 answers (⊥, (0,0)) — p0 has not yet
        // received p1's update.
        Step::Prog(P2),
        d(P2, P0, Query),
        d(P0, P2, Reply),
        // Now p1's update reaches p0 and p1 (but NOT p2); p1's Write
        // completes.
        d(P1, P0, Update),
        d(P0, P1, Ack),
        d(P1, P1, Update),
        d(P1, P1, Ack),
        // p1 flips the coin (the kernel resolves the random step), writes C
        // (atomic) and halts.
        Step::Prog(P1),
        Step::Prog(P1),
        Step::Prog(P1),
    ]
}

/// Continuation for coin = 0: make `u1 = 0` and `u2 = 1`.
fn case_zero() -> Vec<Step> {
    use MsgKind::*;
    vec![
        // p0's second query reply comes from p2 with (⊥, (0,0)) — p2 has
        // not received p1's update. p0 adopts (1, 0) and updates.
        d(P0, P2, Query),
        d(P2, P0, Reply),
        // p0's update is installed at p0 (where (1,1) already wins) and at
        // p2 (which now holds (0, (1,0))); two acks complete the Write.
        d(P0, P0, Update),
        d(P0, P0, Ack),
        d(P0, P2, Update),
        d(P2, P0, Ack),
        // p2's own reply to its pending Read now carries (0, (1,0)): the
        // Read adopts value 0, writes back, and returns u1 = 0.
        d(P2, P2, Query),
        d(P2, P2, Reply),
        d(P2, P0, Update),
        d(P0, P2, Ack),
        d(P2, P2, Update),
        d(P2, P2, Ack),
        // Drain the read's leftover write-back copy to p1 so it cannot be
        // confused with the second Read's write-back below (its ack is
        // stale and is purged on arrival).
        d(P2, P1, Update),
        // p2's second Read queries p0 and p1, both holding (1, (1,1)):
        // u2 = 1.
        Step::Prog(P2),
        d(P2, P0, Query),
        d(P0, P2, Reply),
        d(P2, P1, Query),
        d(P1, P2, Reply),
        d(P2, P0, Update),
        d(P0, P2, Ack),
        d(P2, P1, Update),
        d(P1, P2, Ack),
        // p2 reads C (atomic, c = 0) and evaluates: 0 = c and 1 = 1 − c —
        // loop forever.
        Step::Prog(P2),
        Step::Prog(P2),
    ]
}

/// Continuation for coin = 1: make `u1 = 1` and `u2 = 0`.
fn case_one() -> Vec<Step> {
    use MsgKind::*;
    vec![
        // p0's second reply comes from p1 with (1, (1,1)): p0 adopts
        // timestamp (2, 0) for its value 0.
        d(P0, P1, Query),
        d(P1, P0, Reply),
        // p2's pending Read gets its second reply from p1 with (1, (1,1)):
        // it adopts value 1, writes back to p0 and p1, and returns u1 = 1.
        d(P2, P1, Query),
        d(P1, P2, Reply),
        d(P2, P0, Update),
        d(P0, P2, Ack),
        d(P2, P1, Update),
        d(P1, P2, Ack),
        // Now p0's update (0, (2,0)) reaches p0 and p1; its Write completes.
        d(P0, P0, Update),
        d(P0, P0, Ack),
        d(P0, P1, Update),
        d(P1, P0, Ack),
        // p2's second Read sees (0, (2,0)) at p0 and p1: u2 = 0.
        Step::Prog(P2),
        d(P2, P0, Query),
        d(P0, P2, Reply),
        d(P2, P1, Query),
        d(P1, P2, Reply),
        d(P2, P0, Update),
        d(P0, P2, Ack),
        d(P2, P1, Update),
        d(P1, P2, Ack),
        // p2 reads C (c = 1): 1 = c and 0 = 1 − c — loop forever.
        Step::Prog(P2),
        Step::Prog(P2),
    ]
}

/// The Figure 1 schedule for the given observed coin value (`0` or `1`),
/// for the `R = ABD¹`, `C` atomic configuration
/// ([`blunt_abd::scenarios::weakener_abd`]`(1)`).
///
/// # Panics
///
/// Panics if `coin` is not 0 or 1.
#[must_use]
pub fn fig1_script(coin: usize) -> AbdScript {
    let mut steps = prefix();
    match coin {
        0 => steps.extend(case_zero()),
        1 => steps.extend(case_one()),
        other => panic!("the weakener's coin is binary; got {other}"),
    }
    AbdScript::new(steps)
}

/// The Figure 1 schedule for the paper's **literal** configuration in which
/// both `R` and `C` are ABD registers
/// ([`blunt_abd::scenarios::weakener_abd_full`]`(1)`): the interactions with
/// `C` are uncontested full ABD exchanges scheduled eagerly; the attack on
/// `R` is unchanged.
///
/// # Panics
///
/// Panics if `coin` is not 0 or 1.
#[must_use]
pub fn fig1_script_full(coin: usize) -> AbdScript {
    let mut steps = prefix();
    // prefix() ends with [Prog(p1): coin, Prog(p1): write C, Prog(p1): halt]
    // where the C write was atomic; replace the last two steps with a full
    // ABD exchange on C.
    steps.truncate(steps.len() - 2);
    steps.push(Step::Prog(P1)); // invoke Write(C, coin)
    steps.extend(c_op(P1, P0));
    steps.push(Step::Prog(P1)); // halt

    let mut cont = match coin {
        0 => case_zero(),
        1 => case_one(),
        other => panic!("the weakener's coin is binary; got {other}"),
    };
    // The continuations end with [Prog(p2): read C, Prog(p2): decide].
    cont.truncate(cont.len() - 2);
    steps.extend(cont);
    steps.push(Step::Prog(P2)); // invoke Read(C)
    steps.extend(c_op(P2, P0));
    steps.push(Step::Prog(P2)); // evaluate: loop forever
    AbdScript::new(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_abd::scenarios::weakener_abd;
    use blunt_core::ids::Pid;
    use blunt_programs::weakener::is_bad;
    use blunt_programs::ProcMode;
    use blunt_sim::kernel::run;
    use blunt_sim::rng::Tape;

    #[test]
    fn fig1_forces_nontermination_for_both_coin_values() {
        for coin in 0..2 {
            let mut sched = fig1_script(coin);
            let report = run(
                weakener_abd(1),
                &mut sched,
                &mut Tape::new(vec![coin]),
                true,
                10_000,
            )
            .unwrap_or_else(|e| panic!("coin {coin}: {e}"));
            assert!(
                is_bad(&report.outcome),
                "coin {coin}: adversary failed; outcome {}",
                report.outcome
            );
        }
    }

    #[test]
    fn fig1_case_zero_reads_zero_then_one() {
        let mut sched = fig1_script(0);
        let report = run(
            weakener_abd(1),
            &mut sched,
            &mut Tape::new(vec![0]),
            true,
            10_000,
        )
        .unwrap();
        use blunt_core::value::Val;
        use blunt_programs::weakener::{site_c, site_u1, site_u2};
        assert_eq!(report.outcome.get(&site_u1()), Some(&Val::Int(0)));
        assert_eq!(report.outcome.get(&site_u2()), Some(&Val::Int(1)));
        assert_eq!(report.outcome.get(&site_c()), Some(&Val::Int(0)));
    }

    #[test]
    fn fig1_case_one_reads_one_then_zero() {
        let mut sched = fig1_script(1);
        let report = run(
            weakener_abd(1),
            &mut sched,
            &mut Tape::new(vec![1]),
            true,
            10_000,
        )
        .unwrap();
        use blunt_core::value::Val;
        use blunt_programs::weakener::{site_c, site_u1, site_u2};
        assert_eq!(report.outcome.get(&site_u1()), Some(&Val::Int(1)));
        assert_eq!(report.outcome.get(&site_u2()), Some(&Val::Int(0)));
        assert_eq!(report.outcome.get(&site_c()), Some(&Val::Int(1)));
    }

    #[test]
    fn fig1_leaves_p2_looping_forever() {
        let mut sched = fig1_script(0);
        // Run manually to inspect final program modes.
        let report = run(
            weakener_abd(1),
            &mut sched,
            &mut Tape::new(vec![0]),
            true,
            10_000,
        )
        .unwrap();
        // The trace must show p2 entering its absorbing loop.
        let looped = report.trace.events().iter().any(|e| {
            matches!(e, blunt_sim::trace::TraceEvent::Internal { pid, label }
                if *pid == Pid(2) && label == "loop forever")
        });
        assert!(looped, "p2 must loop forever");
        let _ = ProcMode::Looping; // referenced for reader clarity
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_coin_panics() {
        let _ = fig1_script(2);
    }
}

#[cfg(test)]
mod full_config_tests {
    use super::*;
    use blunt_abd::scenarios::weakener_abd_full;
    use blunt_programs::weakener::is_bad;
    use blunt_sim::kernel::run;
    use blunt_sim::rng::Tape;

    #[test]
    fn fig1_full_configuration_forces_nontermination_for_both_coins() {
        // The paper's literal setup: BOTH registers are ABD.
        for coin in 0..2usize {
            let mut sched = fig1_script_full(coin);
            let report = run(
                weakener_abd_full(1),
                &mut sched,
                &mut Tape::new(vec![coin]),
                true,
                10_000,
            )
            .unwrap_or_else(|e| panic!("coin {coin}: {e}"));
            assert!(
                is_bad(&report.outcome),
                "coin {coin}: adversary failed; outcome {}",
                report.outcome
            );
        }
    }

    #[test]
    fn fig1_full_reads_the_coin_through_abd() {
        use blunt_core::value::Val;
        use blunt_programs::weakener::site_c;
        for coin in 0..2usize {
            let mut sched = fig1_script_full(coin);
            let report = run(
                weakener_abd_full(1),
                &mut sched,
                &mut Tape::new(vec![coin]),
                true,
                10_000,
            )
            .unwrap();
            assert_eq!(
                report.outcome.get(&site_c()),
                Some(&Val::Int(coin as i64)),
                "p2 must read the flipped coin through the ABD-implemented C"
            );
        }
    }
}
