//! The Appendix A results table: paper claims vs. measured values.

use blunt_core::bound::blunting_bound;
use blunt_core::ratio::Ratio;
use std::fmt;

/// One row of the case-study table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Configuration label (e.g. "atomic", "ABD¹", "ABD²").
    pub config: String,
    /// The paper's claim about the bad-outcome probability.
    pub paper: String,
    /// The measured value (exact game value or bound), if computed.
    pub measured: Option<Ratio>,
    /// How the measurement was obtained.
    pub method: String,
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let measured = self
            .measured
            .map_or_else(|| "—".to_string(), |m| format!("{m} ({:.4})", m.to_f64()));
        write!(
            f,
            "{:<10} | {:<28} | {:<18} | {}",
            self.config, self.paper, measured, self.method
        )
    }
}

/// The paper's claimed values for the weakener case study.
#[must_use]
pub fn paper_claims() -> Vec<(String, String)> {
    vec![
        ("atomic".into(), "bad ≤ 1/2 (A.1)".into()),
        ("ABD¹".into(), "bad = 1 (A.2, Fig. 1)".into()),
        ("ABD²".into(), "bad ≤ 7/8 (Thm 4.2); ≤ 5/8 (A.3.2)".into()),
    ]
}

/// The Theorem 4.2 generic bound instantiated for the weakener
/// (`n = 3`, `r = 1`, `Prob[O_a] = 1/2`, `Prob[O] = 1`).
#[must_use]
pub fn weakener_theorem_bound(k: u32) -> Ratio {
    blunting_bound(Ratio::new(1, 2), Ratio::ONE, 3, 1, k)
}

/// Renders a table of rows with a header.
#[must_use]
pub fn render_table(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} | {:<28} | {:<18} | {}\n",
        "config", "paper", "measured", "method"
    ));
    out.push_str(&"-".repeat(86));
    out.push('\n');
    for r in rows {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_bound_for_the_case_study() {
        assert_eq!(weakener_theorem_bound(1), Ratio::ONE);
        assert_eq!(weakener_theorem_bound(2), Ratio::new(7, 8));
        assert_eq!(weakener_theorem_bound(4), Ratio::new(23, 32));
        // Monotone decreasing toward 1/2.
        let mut prev = Ratio::ONE;
        for k in 1..=64 {
            let b = weakener_theorem_bound(k);
            assert!(b <= prev);
            assert!(b >= Ratio::new(1, 2));
            prev = b;
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let rows: Vec<Row> = paper_claims()
            .into_iter()
            .map(|(config, paper)| Row {
                config,
                paper,
                measured: Some(Ratio::new(5, 8)),
                method: "test".into(),
            })
            .collect();
        let table = render_table(&rows);
        assert_eq!(table.lines().count(), 2 + rows.len());
        assert!(table.contains("ABD²"));
        assert!(table.contains("5/8"));
    }
}
