//! Adversary power measurements for the weakener case study.
//!
//! Three measurement modes, in decreasing strength:
//!
//! 1. [`exact_worst_atomic`] / [`exact_worst_fused`] — exact game values by
//!    exhaustive expectimax. The atomic game is exact outright; the fused
//!    game gives a certified **lower bound** on the unrestricted strong
//!    adversary (every fused schedule is realizable unfused);
//! 2. [`certain_win_unfused`] — the Boolean sure-win check on the full
//!    (unfused) game, used to certify `Prob[bad] = 1` for plain ABD;
//! 3. [`oblivious_estimate`] — Monte Carlo frequency under uniformly random
//!    scheduling, showing how far a *non*-adversarial environment is from
//!    the worst case.

use blunt_abd::scenarios::{weakener_abd, weakener_abd_fused, weakener_atomic};
use blunt_core::ratio::Ratio;
use blunt_programs::weakener::is_bad;
use blunt_sim::explore::{sure_win, worst_case_prob, ExploreBudget, ExploreError, ExploreStats};
use blunt_sim::kernel::RunError;
use blunt_sim::montecarlo::{estimate, Estimate};
use blunt_sim::sched::RandomScheduler;

/// Exact `Prob[P(O_a) → B]` for the weakener over atomic registers
/// (expected: exactly 1/2, Appendix A.1).
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the budget runs out (the
/// atomic game is small; the default budget is ample).
pub fn exact_worst_atomic(budget: &ExploreBudget) -> Result<(Ratio, ExploreStats), ExploreError> {
    let out = blunt_obs::timed("adversary.search.atomic", || {
        worst_case_prob(&weakener_atomic(), &is_bad, budget)
    });
    if let Ok((_, stats)) = &out {
        stats.publish("adversary.search");
    }
    out
}

/// Exact worst-case bad probability on the **fused** `ABD^k` game — a
/// certified lower bound on the unrestricted adversary's power (expected:
/// 1 for `k = 1`, 5/8 for `k = 2`).
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the budget runs out.
pub fn exact_worst_fused(
    k: u32,
    budget: &ExploreBudget,
) -> Result<(Ratio, ExploreStats), ExploreError> {
    let out = blunt_obs::timed("adversary.search.fused", || {
        worst_case_prob(&weakener_abd_fused(k), &is_bad, budget)
    });
    if let Ok((_, stats)) = &out {
        stats.publish("adversary.search");
    }
    out
}

/// Whether the unrestricted adversary can force the bad outcome surely
/// against `ABD^k` (expected: `true` for `k = 1`, Appendix A.2; `false`
/// for `k ≥ 2` — the content of the blunting theorem on this program).
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the budget runs out — the
/// `k = 1` check needs on the order of 10⁷ states.
pub fn certain_win_unfused(
    k: u32,
    budget: &ExploreBudget,
) -> Result<(bool, ExploreStats), ExploreError> {
    let out = blunt_obs::timed("adversary.search.sure_win", || {
        sure_win(&weakener_abd(k), &is_bad, budget)
    });
    if let Ok((_, stats)) = &out {
        stats.publish("adversary.search");
    }
    out
}

/// Monte Carlo estimate of the bad-outcome frequency for `ABD^k` under
/// uniformly random scheduling.
///
/// # Errors
///
/// Propagates kernel [`RunError`]s (none are expected for these systems).
pub fn oblivious_estimate(k: u32, trials: usize, seed: u64) -> Result<Estimate, RunError> {
    estimate(
        || weakener_abd(k),
        RandomScheduler::new,
        is_bad,
        trials,
        seed,
        200_000,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_game_value_is_half() {
        let (p, _) = exact_worst_atomic(&ExploreBudget::default()).unwrap();
        assert_eq!(p, Ratio::new(1, 2));
    }

    #[test]
    #[ignore = "≈15 s release / minutes debug: exact fused k = 1 value; run with --ignored"]
    fn fused_k1_value_is_one() {
        // The fused game already contains the Figure 1 attack.
        let (p, stats) = exact_worst_fused(1, &ExploreBudget::with_max_states(5_000_000)).unwrap();
        assert_eq!(p, Ratio::ONE);
        assert!(stats.states > 100_000);
    }

    #[test]
    #[ignore = "about a minute: the ABD² headline (exact 5/8); run with --ignored"]
    fn fused_k2_value_is_five_eighths() {
        let (p, _) = exact_worst_fused(2, &ExploreBudget::with_max_states(20_000_000)).unwrap();
        assert_eq!(p, Ratio::new(5, 8));
    }

    #[test]
    #[ignore = "several minutes: exhaustive sure-win proof on the unfused game"]
    fn unfused_k1_certain_win() {
        let (w, _) = certain_win_unfused(1, &ExploreBudget::with_max_states(50_000_000)).unwrap();
        assert!(w);
    }

    #[test]
    fn oblivious_environment_is_far_from_the_worst_case() {
        // Under random scheduling the weakener over ABD almost always
        // terminates — the 100% nontermination of Figure 1 is genuinely
        // adversarial, not typical.
        let est = oblivious_estimate(1, 400, 42).unwrap();
        assert!(
            est.mean() < 0.55,
            "random scheduling should not approach the adversarial value 1 (got {})",
            est.mean()
        );
    }
}
