//! Adversary power measurements for the weakener case study.
//!
//! Three measurement modes, in decreasing strength:
//!
//! 1. [`exact_worst_atomic`] / [`exact_worst_fused`] — exact game values by
//!    exhaustive expectimax. The atomic game is exact outright; the fused
//!    game gives a certified **lower bound** on the unrestricted strong
//!    adversary (every fused schedule is realizable unfused);
//! 2. [`certain_win_unfused`] — the Boolean sure-win check on the full
//!    (unfused) game, used to certify `Prob[bad] = 1` for plain ABD;
//! 3. [`oblivious_estimate`] — Monte Carlo frequency under uniformly random
//!    scheduling, showing how far a *non*-adversarial environment is from
//!    the worst case.

use blunt_abd::scenarios::{weakener_abd, weakener_abd_fused, weakener_atomic};
use blunt_abd::system::{AbdEvent, AbdSystem};
use blunt_core::ratio::Ratio;
use blunt_programs::weakener::is_bad;
use blunt_sim::explore::{
    sure_win, worst_case_prob, ExploreBudget, ExploreError, ExploreStats, Pv, SearchTrace, Solver,
};
use blunt_sim::kernel::RunError;
use blunt_sim::montecarlo::{estimate, Estimate};
use blunt_sim::rng::Tape;
use blunt_sim::sched::RandomScheduler;

/// Exact `Prob[P(O_a) → B]` for the weakener over atomic registers
/// (expected: exactly 1/2, Appendix A.1).
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the budget runs out (the
/// atomic game is small; the default budget is ample).
pub fn exact_worst_atomic(budget: &ExploreBudget) -> Result<(Ratio, ExploreStats), ExploreError> {
    let out = blunt_obs::timed("adversary.search.atomic", || {
        worst_case_prob(&weakener_atomic(), &is_bad, budget)
    });
    if let Ok((_, stats)) = &out {
        stats.publish("adversary.search");
    }
    out
}

/// Exact worst-case bad probability on the **fused** `ABD^k` game — a
/// certified lower bound on the unrestricted adversary's power (expected:
/// 1 for `k = 1`, 5/8 for `k = 2`).
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the budget runs out.
pub fn exact_worst_fused(
    k: u32,
    budget: &ExploreBudget,
) -> Result<(Ratio, ExploreStats), ExploreError> {
    let out = blunt_obs::timed("adversary.search.fused", || {
        worst_case_prob(&weakener_abd_fused(k), &is_bad, budget)
    });
    if let Ok((_, stats)) = &out {
        stats.publish("adversary.search");
    }
    out
}

/// Whether the unrestricted adversary can force the bad outcome surely
/// against `ABD^k` (expected: `true` for `k = 1`, Appendix A.2; `false`
/// for `k ≥ 2` — the content of the blunting theorem on this program).
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the budget runs out — the
/// `k = 1` check needs on the order of 10⁷ states.
pub fn certain_win_unfused(
    k: u32,
    budget: &ExploreBudget,
) -> Result<(bool, ExploreStats), ExploreError> {
    let out = blunt_obs::timed("adversary.search.sure_win", || {
        sure_win(&weakener_abd(k), &is_bad, budget)
    });
    if let Ok((_, stats)) = &out {
        stats.publish("adversary.search");
    }
    out
}

/// Labels an [`AbdEvent`] the way Figure 1 narrates it: `Prog(p0)` for a
/// program step, `Deliver(p0→p2: Update(…))` for a delivery — the envelope is
/// read out of the *pre*-step network state, which is exactly what the
/// explainability renderers need.
#[must_use]
pub fn abd_label(sys: &AbdSystem, ev: &AbdEvent) -> String {
    match ev {
        AbdEvent::Prog(pid) => format!("Prog({pid})"),
        AbdEvent::Deliver(slot) => {
            let env = sys.net().peek(*slot);
            format!("Deliver({}→{}: {})", env.src, env.dst, env.msg)
        }
    }
}

fn solve_traced(
    sys: &AbdSystem,
    budget: &ExploreBudget,
    max_nodes: usize,
    timer: &str,
) -> Result<(Ratio, ExploreStats, SearchTrace), ExploreError> {
    let mut solver = Solver::new(&is_bad, *budget)
        .with_labeler(abd_label)
        .record_tree(max_nodes);
    let p = blunt_obs::timed(timer, || solver.solve(sys))?;
    let stats = solver.stats();
    stats.publish("adversary.search");
    Ok((
        p,
        stats,
        solver.take_tree().expect("tree recording was enabled"),
    ))
}

/// [`exact_worst_atomic`] with the adversary's decisions recorded: also
/// returns the (possibly truncated) expectimax game tree, whose edges are
/// labeled by [`abd_label`].
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the budget runs out.
pub fn exact_worst_atomic_traced(
    budget: &ExploreBudget,
    max_nodes: usize,
) -> Result<(Ratio, ExploreStats, SearchTrace), ExploreError> {
    solve_traced(
        &weakener_atomic(),
        budget,
        max_nodes,
        "adversary.search.atomic",
    )
}

/// [`exact_worst_fused`] with the adversary's decisions recorded (see
/// [`exact_worst_atomic_traced`]).
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the budget runs out.
pub fn exact_worst_fused_traced(
    k: u32,
    budget: &ExploreBudget,
    max_nodes: usize,
) -> Result<(Ratio, ExploreStats, SearchTrace), ExploreError> {
    solve_traced(
        &weakener_abd_fused(k),
        budget,
        max_nodes,
        "adversary.search.fused",
    )
}

/// The principal variation of the weakener-over-atomic game: the worst-case
/// schedule itself, with the coin resolved by `coins`.
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the budget runs out, or
/// [`ExploreError::StepLimit`] past `max_steps`.
pub fn atomic_principal_variation(
    coins: Vec<usize>,
    budget: &ExploreBudget,
    max_steps: usize,
) -> Result<Pv, ExploreError> {
    let mut solver = Solver::new(&is_bad, *budget).with_labeler(abd_label);
    solver.principal_variation(&weakener_atomic(), &mut Tape::new(coins), max_steps)
}

/// The principal variation of the fused `ABD^k` game — the expectimax
/// adversary's own Figure-1-style schedule, cross-checkable against the
/// scripted [`crate::fig1`] adversary.
///
/// # Errors
///
/// Returns [`ExploreError::BudgetExceeded`] if the budget runs out, or
/// [`ExploreError::StepLimit`] past `max_steps`.
pub fn fused_principal_variation(
    k: u32,
    coins: Vec<usize>,
    budget: &ExploreBudget,
    max_steps: usize,
) -> Result<Pv, ExploreError> {
    let mut solver = Solver::new(&is_bad, *budget).with_labeler(abd_label);
    solver.principal_variation(&weakener_abd_fused(k), &mut Tape::new(coins), max_steps)
}

/// Monte Carlo estimate of the bad-outcome frequency for `ABD^k` under
/// uniformly random scheduling.
///
/// # Errors
///
/// Propagates kernel [`RunError`]s (none are expected for these systems).
pub fn oblivious_estimate(k: u32, trials: usize, seed: u64) -> Result<Estimate, RunError> {
    estimate(
        || weakener_abd(k),
        RandomScheduler::new,
        is_bad,
        trials,
        seed,
        200_000,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_game_value_is_half() {
        let (p, _) = exact_worst_atomic(&ExploreBudget::default()).unwrap();
        assert_eq!(p, Ratio::new(1, 2));
    }

    #[test]
    #[ignore = "≈15 s release / minutes debug: exact fused k = 1 value; run with --ignored"]
    fn fused_k1_value_is_one() {
        // The fused game already contains the Figure 1 attack.
        let (p, stats) = exact_worst_fused(1, &ExploreBudget::with_max_states(5_000_000)).unwrap();
        assert_eq!(p, Ratio::ONE);
        assert!(stats.states > 100_000);
    }

    #[test]
    #[ignore = "about a minute: the ABD² headline (exact 5/8); run with --ignored"]
    fn fused_k2_value_is_five_eighths() {
        let (p, _) = exact_worst_fused(2, &ExploreBudget::with_max_states(20_000_000)).unwrap();
        assert_eq!(p, Ratio::new(5, 8));
    }

    #[test]
    #[ignore = "several minutes: exhaustive sure-win proof on the unfused game"]
    fn unfused_k1_certain_win() {
        let (w, _) = certain_win_unfused(1, &ExploreBudget::with_max_states(50_000_000)).unwrap();
        assert!(w);
    }

    #[test]
    fn atomic_traced_solve_matches_and_labels_the_tree() {
        let (p, stats, tree) =
            exact_worst_atomic_traced(&ExploreBudget::default(), 100_000).unwrap();
        assert_eq!(p, Ratio::new(1, 2));
        assert!(stats.states > 0);
        let root = tree.root().expect("root recorded");
        assert_eq!(root.value, Ratio::new(1, 2));
        // Every recorded edge label is an ABD narration: a program step or a
        // concrete delivery.
        let mut labels = 0usize;
        for node in tree.nodes() {
            if node.kind != blunt_sim::explore::SearchNodeKind::Adversary {
                continue;
            }
            for edge in &node.edges {
                assert!(
                    edge.label.starts_with("Prog(") || edge.label.starts_with("Deliver("),
                    "unexpected label {:?}",
                    edge.label
                );
                labels += 1;
            }
        }
        assert!(labels > 0, "the atomic game records labeled edges");
    }

    #[test]
    fn atomic_principal_variation_reaches_an_outcome() {
        for coin in 0..2usize {
            let pv =
                atomic_principal_variation(vec![coin], &ExploreBudget::default(), 10_000).unwrap();
            assert_eq!(pv.value, Ratio::new(1, 2), "game value is coin-independent");
            assert!(!pv.steps.is_empty());
            assert!(pv
                .schedule()
                .iter()
                .all(|l| l.starts_with("Prog(") || l.starts_with("Deliver(")));
        }
        // The game value 1/2 means the adversary's fate rests on the coin:
        // exactly one of the two resolutions ends bad.
        let bad_count = (0..2usize)
            .filter(|&coin| {
                let pv = atomic_principal_variation(vec![coin], &ExploreBudget::default(), 10_000)
                    .unwrap();
                is_bad(&pv.outcome)
            })
            .count();
        assert_eq!(bad_count, 1);
    }

    #[test]
    #[ignore = "≈15 s release: traced fused k = 1 — the PV agrees with the Figure 1 script"]
    fn fused_k1_traced_pv_forces_nontermination_like_fig1() {
        let budget = ExploreBudget::with_max_states(5_000_000);
        let (p, _, tree) = exact_worst_fused_traced(1, &budget, 10_000).unwrap();
        assert_eq!(p, Ratio::ONE);
        assert_eq!(tree.root().unwrap().value, Ratio::ONE);
        // Semantic agreement with the scripted fig1 adversary: whatever the
        // coin says, the expectimax schedule also drives the weakener into
        // the bad (nonterminating) outcome — the defining property of the
        // Figure 1 attack.
        for coin in 0..2usize {
            let pv = fused_principal_variation(1, vec![coin], &budget, 10_000).unwrap();
            assert_eq!(pv.value, Ratio::ONE);
            assert!(
                is_bad(&pv.outcome),
                "coin {coin}: expectimax PV must force the bad outcome, like fig1_script({coin})"
            );
        }
    }

    #[test]
    #[ignore = "about a minute: traced ABD² headline — PV value is exactly 5/8"]
    fn fused_k2_traced_pv_value_is_five_eighths() {
        let budget = ExploreBudget::with_max_states(20_000_000);
        let (p, _, tree) = exact_worst_fused_traced(2, &budget, 10_000).unwrap();
        assert_eq!(p, Ratio::new(5, 8));
        assert_eq!(tree.root().unwrap().value, Ratio::new(5, 8));
    }

    #[test]
    fn oblivious_environment_is_far_from_the_worst_case() {
        // Under random scheduling the weakener over ABD almost always
        // terminates — the 100% nontermination of Figure 1 is genuinely
        // adversarial, not typical.
        let est = oblivious_estimate(1, 400, 42).unwrap();
        assert!(
            est.mean() < 0.55,
            "random scheduling should not approach the adversarial value 1 (got {})",
            est.mean()
        );
    }
}
