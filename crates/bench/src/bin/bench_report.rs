//! Diffs a fresh `BENCH_results.json` against the committed baseline and
//! prints the delta table (see `blunt_trace::regress`).
//!
//! ```sh
//! cargo run -p blunt-bench --bin bench-report                  # report only
//! cargo run -p blunt-bench --bin bench-report -- --check       # gate: exit 1
//! cargo run -p blunt-bench --bin bench-report -- \
//!     --baseline crates/bench/baseline.json \
//!     --current target/experiments/BENCH_results.json \
//!     --threshold 0.25 --strict-times
//! ```
//!
//! Exit status: `0` clean (or `--check` not given), `1` when `--check` finds
//! a regression past the threshold, `2` on unreadable or malformed input.

use blunt_trace::regress::{compare, BenchResults, CompareOptions};
use std::process::ExitCode;

fn load(path: &str) -> Result<BenchResults, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json = blunt_obs::Json::parse(&text).map_err(|e| format!("{path}: bad JSON: {e}"))?;
    BenchResults::from_json(&json)
        .ok_or_else(|| format!("{path}: not a bench_results record (see docs/OBS_SCHEMA.md)"))
}

fn main() -> ExitCode {
    let mut baseline_path = String::from("crates/bench/baseline.json");
    let mut current_path = String::from("target/experiments/BENCH_results.json");
    let mut opts = CompareOptions::default();
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        let parsed = match a.as_str() {
            "--baseline" => value("--baseline").map(|v| baseline_path = v),
            "--current" => value("--current").map(|v| current_path = v),
            "--threshold" => value("--threshold").and_then(|v| {
                v.parse()
                    .map(|t| opts.threshold = t)
                    .map_err(|e| format!("--threshold: {e}"))
            }),
            "--strict-times" => {
                opts.strict_times = true;
                Ok(())
            }
            "--check" => {
                check = true;
                Ok(())
            }
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = parsed {
            eprintln!("bench-report: {e}");
            return ExitCode::from(2);
        }
    }

    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench-report: {e}");
            }
            return ExitCode::from(2);
        }
    };

    let report = compare(&baseline, &current, &opts);
    println!(
        "bench-report: {} vs baseline {} (threshold +{:.0}%{})",
        current_path,
        baseline_path,
        opts.threshold * 100.0,
        if opts.strict_times {
            ", strict times"
        } else {
            ""
        }
    );
    print!("{}", report.to_text());
    if check && report.has_regressions() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
