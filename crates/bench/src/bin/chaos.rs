//! chaos — seeded soak runner for the threaded chaos runtime
//! (`blunt_runtime`): ABD and O^k step machines on real OS threads under
//! fault injection, with the online linearizability monitor as the oracle.
//!
//! ```sh
//! cargo run --release -p blunt-bench --bin chaos                 # full soak set
//! cargo run --release -p blunt-bench --bin chaos -- --smoke      # CI-sized
//! cargo run --release -p blunt-bench --bin chaos -- --seed 7
//! cargo run --release -p blunt-bench --bin chaos -- --demo-broken
//! ```
//!
//! Each configuration records the deterministic counters
//! `runtime.chaos.<cfg>.ops` and `runtime.chaos.<cfg>.violations`; the full
//! counter snapshot plus per-config wall-times goes to the schema-versioned
//! `BENCH_results.json` (default `target/chaos/BENCH_results.json`,
//! `--results-out` to redirect) for the `bench-report` gate — the committed
//! baseline pins every `violations` counter at 0, so a single violation
//! fails `--check`.
//!
//! Exit status: `0` when every configuration is violation-free (or, under
//! `--demo-broken`, when the intentionally-broken register IS caught); `1`
//! otherwise.
//!
//! `--demo-broken` replaces the quorum read with an unsound single-server
//! fast read and prints the monitor's first violation window as a
//! space-time diagram — the "show me it actually catches bugs" mode.

use blunt_runtime::{
    run_chaos, run_shm_chaos, ChaosReport, FaultConfig, RuntimeConfig, ShmChaosConfig,
};
use blunt_trace::regress::BenchResults;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// The named message-passing configurations: fault mixes × client counts ×
/// preamble iterations. Smoke mode shrinks ops, not shape variety.
fn abd_configs(smoke: bool, seed: u64) -> Vec<(String, RuntimeConfig)> {
    let mut cfgs = Vec::new();
    let mode = if smoke { "smoke" } else { "soak" };
    for k in [1u32, 2] {
        // Full fault mix at the acceptance shape (8 clients for soak).
        let mut cfg = if smoke {
            RuntimeConfig::smoke(seed ^ u64::from(k))
        } else {
            RuntimeConfig::soak(seed ^ u64::from(k), k)
        };
        cfg.k = k;
        cfgs.push((format!("{mode}.abd_k{k}_chaos"), cfg));
    }
    // A fault-free control at the same shape (k = 1): the protocol under
    // nothing but thread nondeterminism.
    let mut quiet = if smoke {
        RuntimeConfig::smoke(seed ^ 0x71)
    } else {
        RuntimeConfig::soak(seed ^ 0x71, 1)
    };
    quiet.faults = FaultConfig::none();
    cfgs.push((format!("{mode}.abd_k1_quiet"), quiet));
    cfgs
}

fn shm_configs(smoke: bool, seed: u64) -> Vec<(String, ShmChaosConfig)> {
    let mode = if smoke { "smoke" } else { "soak" };
    [1u32, 2]
        .into_iter()
        .map(|k| {
            let mut cfg = ShmChaosConfig::small(seed ^ 0x5113 ^ u64::from(k), k);
            if !smoke {
                cfg.ops_per_thread = 2_000;
            }
            (format!("{mode}.va_k{k}"), cfg)
        })
        .collect()
}

fn record(name: &str, ops: u64, violations: u64) {
    blunt_obs::counter(&format!("runtime.chaos.{name}.ops")).add(ops);
    blunt_obs::counter(&format!("runtime.chaos.{name}.violations")).add(violations);
}

fn print_abd(name: &str, r: &ChaosReport) {
    println!(
        "{name:<24} ops {:>7}  {:>9.0} ops/s  lat p50/p99 {:>4}/{:>5} µs  \
         retrans {:>6}  violations {}",
        r.ops,
        r.ops_per_sec(),
        r.latency_us.p50(),
        r.latency_us.percentile(0.99),
        r.retransmissions,
        r.monitor.violations.len(),
    );
    println!(
        "{:<24} bus: offered {} dropped {} dup {} reorder {} delayed {} \
         crash {} partition {}",
        "",
        r.bus.offered,
        r.bus.dropped,
        r.bus.duplicated,
        r.bus.reordered,
        r.bus.delayed,
        r.bus.crash_dropped,
        r.bus.partition_dropped,
    );
}

fn demo_broken(seed: u64) -> ExitCode {
    let mut cfg = RuntimeConfig::smoke(seed);
    cfg.broken_reads = true;
    cfg.read_per_mille = 400;
    println!("demo: ABD with an unsound single-server fast read (no quorum, no write-back)\n");
    let report = run_chaos(&cfg);
    print_abd("broken_fast_read", &report);
    match report.monitor.violations.first() {
        Some(v) => {
            println!(
                "\nfirst violation window (object {:?}, segment {}):\n",
                v.obj, v.segment
            );
            println!("{}", v.rendered);
            println!(
                "the monitor caught the unsound read: {} violation window(s) total",
                report.monitor.violations.len()
            );
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("\nchaos: the broken register was NOT caught — monitor bug");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut demo = false;
    let mut seed: u64 = 0x0B1D_5EED;
    let mut results_out = PathBuf::from("target/chaos/BENCH_results.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--demo-broken" => demo = true,
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed: not a u64");
            }
            "--results-out" => {
                results_out = args.next().expect("--results-out needs a path").into();
            }
            other => panic!("unknown flag {other}"),
        }
    }
    if demo {
        return demo_broken(seed);
    }

    println!(
        "chaos: {} set, seed {seed:#x} (replay with --seed {seed})\n",
        if smoke { "smoke" } else { "full soak" }
    );
    let mut phases: Vec<(String, f64)> = Vec::new();
    let mut dirty: Vec<String> = Vec::new();

    for (name, cfg) in abd_configs(smoke, seed) {
        let t0 = Instant::now();
        let report = run_chaos(&cfg);
        phases.push((name.clone(), t0.elapsed().as_secs_f64() * 1000.0));
        print_abd(&name, &report);
        record(&name, report.ops, report.monitor.violations.len() as u64);
        if !report.monitor.clean() {
            dirty.push(name);
        }
    }
    for (name, cfg) in shm_configs(smoke, seed) {
        let t0 = Instant::now();
        let report = run_shm_chaos(&cfg);
        phases.push((name.clone(), t0.elapsed().as_secs_f64() * 1000.0));
        println!(
            "{name:<24} ops {:>7}  violations {}",
            report.ops,
            report.monitor.violations.len()
        );
        record(&name, report.ops, report.monitor.violations.len() as u64);
        if !report.monitor.clean() {
            dirty.push(name);
        }
    }

    // The schema-versioned gate input (docs/OBS_SCHEMA.md): per-config
    // wall-times plus the `runtime.chaos.*` counters, seed echoed for
    // replay. Only those counters are kept — they are deterministic for a
    // seed, unlike e.g. the monitor's segment counts (cut placement is
    // scheduling-dependent) or the shared `lincheck.wgl.*` totals, which
    // would collide with the experiments baseline.
    if let Some(parent) = results_out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    let mut results = BenchResults::from_snapshot(phases, &blunt_obs::snapshot());
    results
        .counters
        .retain(|(name, _)| name.starts_with("runtime.chaos."));
    results.seed = Some(seed);
    std::fs::write(&results_out, format!("{}\n", results.to_json()))
        .expect("write BENCH_results.json");
    println!("\nbench results written to {}", results_out.display());

    if dirty.is_empty() {
        println!("verdict: all configurations linearizable (0 violations)");
        ExitCode::SUCCESS
    } else {
        eprintln!("verdict: VIOLATIONS in {}", dirty.join(", "));
        ExitCode::FAILURE
    }
}
