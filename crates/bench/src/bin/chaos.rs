//! chaos — seeded soak runner for the threaded chaos runtime
//! (`blunt_runtime`): ABD and O^k step machines on real OS threads under
//! fault injection, with the online linearizability monitor as the oracle.
//!
//! ```sh
//! cargo run --release -p blunt-bench --bin chaos                 # full soak set
//! cargo run --release -p blunt-bench --bin chaos -- --smoke      # CI-sized
//! cargo run --release -p blunt-bench --bin chaos -- --seed 7
//! cargo run --release -p blunt-bench --bin chaos -- --fault-profile amnesia
//! cargo run --release -p blunt-bench --bin chaos -- --smoke --watch 1s
//! cargo run --release -p blunt-bench --bin chaos -- --demo-broken
//! cargo run --release -p blunt-bench --bin chaos -- --demo-amnesia
//! cargo run --release -p blunt-bench --bin chaos -- --store --smoke --fault-profile amnesia
//! cargo run --release -p blunt-bench --bin chaos -- --store --demo-amnesia
//! ```
//!
//! `--fault-profile none|light|heavy|amnesia` narrows the run to the two
//! ABD shapes (k = 1, 2) under the named fault mix; `amnesia` additionally
//! turns crashes into full volatile-state loss with WAL + peer-catch-up
//! recovery. `--crash-len`/`--crash-period` override the crash window
//! shape; an unusable combination (windows that cannot stagger disjointly,
//! rates past 1000‰) is a *usage* error: the offending numbers go to
//! stderr and the exit status is 2, distinct from a soundness failure.
//!
//! **Live telemetry.** `--watch <interval>` (e.g. `1s`, `250ms`) streams a
//! progress line to stderr every interval: ops/sec, in-flight operations,
//! streaming latency percentiles (a mergeable quantile sketch, not the
//! end-of-run histogram), recoveries, and the monitor's backlog in
//! ops-behind-frontier. Watching is read-only — it never perturbs the
//! fault schedule, so a watched run and a silent run of the same seed
//! produce identical deterministic results.
//!
//! **Flight recorder.** Every run keeps a bounded per-thread event window
//! (bus sends, fault decisions, op boundaries, acks, WAL flushes, crashes,
//! monitor cuts). On a monitor violation the window is captured *at the
//! moment of detection* and written under `--dump-dir` (default
//! `target/chaos/flight/`) as schema-versioned JSONL plus a rendered
//! space-time diagram; a stall (no completed op for 60 s) does the same.
//! The demo modes emit `broken_fast_read.*` / `broken_amnesia.*` dumps.
//!
//! Each configuration records the deterministic counters
//! `runtime.chaos.<cfg>.ops`, `.violations`, `.monitor_actions`, and (for
//! message-passing configs) `.recoveries`; the full counter snapshot plus
//! per-config wall-times — including the monitor-overhead phases
//! `monitor.<cfg>` (time inside `observe`) and `monitor_lag_ops.<cfg>` —
//! goes to the schema-versioned `BENCH_results.json` (default
//! `target/chaos/BENCH_results.json`, `--results-out` to redirect) for the
//! `bench-report` gate — the committed baseline pins every `violations`
//! counter at 0, so a single violation fails `--check`. A machine-readable
//! run summary with per-link fault-schedule **coverage** goes to
//! `--summary-out` (default `target/chaos/RUN_summary.json`); it contains
//! only seed-deterministic fields, so two same-seed runs write identical
//! summaries.
//!
//! Exit status: `0` when every configuration is violation-free (or, under
//! the demo modes, when the intentionally-broken implementation IS caught);
//! `1` on a soundness failure; `2` on a usage error (including an
//! unwritable `--results-out`/`--summary-out`/`--dump-dir` path, reported
//! fail-fast before any run starts).
//!
//! `--demo-broken` replaces the quorum read with an unsound single-server
//! fast read; `--demo-amnesia` makes crash recovery skip WAL replay and
//! peer catch-up — with `--store`, on exactly one shard, whose per-shard
//! monitor must then be the one that fires. All demo modes print the
//! monitor's first violation window as a space-time diagram — the "show
//! me it actually catches bugs" modes.

use blunt_bench::parallel_map;
use blunt_runtime::{
    run_chaos, run_chaos_net, run_net_server, run_shm_chaos, Addr, ChaosReport, FaultConfig,
    NetChaosTopology, NetServeConfig, RecoveryMode, RuntimeConfig, ShmChaosConfig,
};
use blunt_store::{run_store, run_store_net, StoreConfig, StoreReport};
use blunt_trace::regress::BenchResults;
use blunt_trace::{flight_space_time, DiagramOptions};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: chaos [--smoke] [--seed N] [--results-out PATH] \
     [--summary-out PATH] [--dump-dir DIR] [--watch DUR] [--watch-out PATH] \
     [--ops-per-client N] \
     [--fault-profile none|light|heavy|amnesia] [--crash-len N] [--crash-period N] \
     [--connect ADDR,ADDR,...] [--k N] [--recovery stable|amnesia] \
     [--demo-broken | --demo-amnesia]\n\
       chaos --store [--smoke] [--keys N] [--shards N] [--pipeline-depth N] [--batch N] \\\n\
             [--ops-per-client N] [--fault-profile none|light|heavy|amnesia] [--seed N] \\\n\
             [--recovery stable|amnesia] [--crash-len N] [--crash-period N] \\\n\
             [--connect ADDR,...] [--batch-hist-out PATH] [--demo-broken | --demo-amnesia]\n\
       chaos --sweep N [--store] [--smoke] [--seed BASE] [--ops-per-client N] \\\n\
             [--fault-profile ...] [--summary-out PATH]\n\
       chaos serve --listen ADDR --server-id N --peers ADDR,ADDR,... \\\n\
             [--servers N] [--clients N] [--shard-size N] [--seed N] \\\n\
             [--recovery stable|amnesia] \\\n\
             [--fault-profile none|light|heavy|amnesia] [--crash-len N] [--crash-period N] \\\n\
             [--dump-dir DIR]\n\
     ADDR is host:port (TCP) or a filesystem path (Unix-domain socket)";

/// A named fault mix for `--fault-profile`. `Heavy` is the full chaos()
/// mix; `Amnesia` is the same mix with volatile-state-losing crashes and
/// WAL + peer-catch-up recovery.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FaultProfile {
    None,
    Light,
    Heavy,
    Amnesia,
}

impl FaultProfile {
    fn parse(s: &str) -> Option<FaultProfile> {
        match s {
            "none" => Some(FaultProfile::None),
            "light" => Some(FaultProfile::Light),
            "heavy" => Some(FaultProfile::Heavy),
            "amnesia" => Some(FaultProfile::Amnesia),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            FaultProfile::None => "none",
            FaultProfile::Light => "light",
            FaultProfile::Heavy => "heavy",
            FaultProfile::Amnesia => "amnesia",
        }
    }

    fn faults(self) -> FaultConfig {
        match self {
            FaultProfile::None => FaultConfig::none(),
            FaultProfile::Light => FaultConfig::light(),
            FaultProfile::Heavy | FaultProfile::Amnesia => FaultConfig::chaos(),
        }
    }
}

/// Parsed command line. Overrides apply on top of whatever fault mix the
/// selected configurations carry.
struct Cli {
    smoke: bool,
    demo_broken: bool,
    demo_amnesia: bool,
    seed: u64,
    results_out: PathBuf,
    summary_out: PathBuf,
    dump_dir: PathBuf,
    watch: Option<Duration>,
    /// `--watch-out p`: mirror the watch snapshots as schema-versioned
    /// JSONL to `p`, independent of whether `--watch` streams to stderr.
    watch_out: Option<PathBuf>,
    ops_per_client: Option<u64>,
    profile: Option<FaultProfile>,
    crash_len: Option<u64>,
    crash_period: Option<u64>,
    /// `--connect a,b,c`: drive external `chaos serve` processes at these
    /// addresses instead of in-process server threads.
    connect: Option<Vec<Addr>>,
    /// Preamble depth for the single `--connect` configuration.
    k: u32,
    /// `--recovery stable|amnesia`: crash semantics override, applied after
    /// `--fault-profile`. In `--connect` mode this MUST match what the
    /// `chaos serve` processes were started with.
    recovery: Option<RecoveryMode>,
    /// `--store`: run the sharded keyed store (`blunt-store`) instead of
    /// the single-register sets.
    store: bool,
    /// `--sweep N`: run N consecutive seeds in parallel and emit a
    /// machine-readable per-seed pass/fail summary.
    sweep: Option<u64>,
    /// Store workload shape overrides (apply with `--store` only).
    keys: Option<u32>,
    shards: Option<u32>,
    pipeline_depth: Option<u32>,
    batch: Option<usize>,
    /// `--batch-hist-out p`: where the store run writes its batch-size
    /// histogram artifact.
    batch_hist_out: PathBuf,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("chaos: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2)
}

/// A comma-separated address list: `host:port` or socket paths, one per
/// server, index = server pid.
fn parse_addr_list(flag: &str, v: &str) -> Vec<Addr> {
    let addrs: Vec<Addr> = v
        .split(',')
        .filter(|s| !s.is_empty())
        .map(Addr::parse)
        .collect();
    if addrs.is_empty() {
        usage_error(&format!("{flag}: `{v}` has no addresses"));
    }
    addrs
}

/// `1s`, `250ms`, or a bare number of seconds.
fn parse_duration(flag: &str, v: &str) -> Duration {
    let parsed = if let Some(ms) = v.strip_suffix("ms") {
        ms.parse().ok().map(Duration::from_millis)
    } else if let Some(s) = v.strip_suffix('s') {
        s.parse().ok().map(Duration::from_secs)
    } else {
        v.parse().ok().map(Duration::from_secs)
    };
    match parsed.filter(|d| !d.is_zero()) {
        Some(d) => d,
        None => usage_error(&format!(
            "{flag}: `{v}` is not a duration (try `1s` or `250ms`)"
        )),
    }
}

/// Fail-fast output-path validation: create the directory (or the file's
/// parent) now, so a typo'd path is a usage error naming the path — not a
/// panic after minutes of soaking.
fn ensure_dir(flag: &str, dir: &Path) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        usage_error(&format!("{flag}: cannot create `{}`: {e}", dir.display()));
    }
}

fn ensure_parent(flag: &str, file: &Path) {
    if let Some(parent) = file.parent().filter(|p| !p.as_os_str().is_empty()) {
        ensure_dir(flag, parent);
    }
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        smoke: false,
        demo_broken: false,
        demo_amnesia: false,
        seed: 0x0B1D_5EED,
        results_out: PathBuf::from("target/chaos/BENCH_results.json"),
        summary_out: PathBuf::from("target/chaos/RUN_summary.json"),
        dump_dir: PathBuf::from("target/chaos/flight"),
        watch: None,
        watch_out: None,
        ops_per_client: None,
        profile: None,
        crash_len: None,
        crash_period: None,
        connect: None,
        k: 1,
        recovery: None,
        store: false,
        sweep: None,
        keys: None,
        shards: None,
        pipeline_depth: None,
        batch: None,
        batch_hist_out: PathBuf::from("target/chaos/store_batch_hist.json"),
    };
    fn value(flag: &str, args: &mut impl Iterator<Item = String>) -> String {
        args.next()
            .unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
    }
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => cli.smoke = true,
            "--demo-broken" => cli.demo_broken = true,
            "--demo-amnesia" => cli.demo_amnesia = true,
            "--seed" => {
                let v = value("--seed", &mut args);
                cli.seed = v
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("--seed: `{v}` is not a u64")));
            }
            "--results-out" => cli.results_out = value("--results-out", &mut args).into(),
            "--summary-out" => cli.summary_out = value("--summary-out", &mut args).into(),
            "--dump-dir" => cli.dump_dir = value("--dump-dir", &mut args).into(),
            "--watch" => {
                let v = value("--watch", &mut args);
                cli.watch = Some(parse_duration("--watch", &v));
            }
            "--watch-out" => cli.watch_out = Some(value("--watch-out", &mut args).into()),
            "--ops-per-client" => {
                let v = value("--ops-per-client", &mut args);
                cli.ops_per_client = Some(v.parse().ok().filter(|n| *n > 0).unwrap_or_else(|| {
                    usage_error(&format!("--ops-per-client: `{v}` is not a positive u64"))
                }));
            }
            "--fault-profile" => {
                let v = value("--fault-profile", &mut args);
                cli.profile = Some(FaultProfile::parse(&v).unwrap_or_else(|| {
                    usage_error(&format!(
                        "--fault-profile: `{v}` is not one of none|light|heavy|amnesia"
                    ))
                }));
            }
            "--crash-len" => {
                let v = value("--crash-len", &mut args);
                cli.crash_len =
                    Some(v.parse().unwrap_or_else(|_| {
                        usage_error(&format!("--crash-len: `{v}` is not a u64"))
                    }));
            }
            "--crash-period" => {
                let v = value("--crash-period", &mut args);
                cli.crash_period = Some(v.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--crash-period: `{v}` is not a u64"))
                }));
            }
            "--connect" => {
                let v = value("--connect", &mut args);
                cli.connect = Some(parse_addr_list("--connect", &v));
            }
            "--k" => {
                let v = value("--k", &mut args);
                cli.k = v
                    .parse()
                    .ok()
                    .filter(|n| (1..=4).contains(n))
                    .unwrap_or_else(|| {
                        usage_error(&format!("--k: `{v}` is not an integer in 1..=4"))
                    });
            }
            "--recovery" => {
                let v = value("--recovery", &mut args);
                cli.recovery = Some(match v.as_str() {
                    "stable" => RecoveryMode::Stable,
                    "amnesia" => RecoveryMode::amnesia(),
                    _ => usage_error(&format!("--recovery: `{v}` is not one of stable|amnesia")),
                });
            }
            "--store" => cli.store = true,
            "--sweep" => {
                let v = value("--sweep", &mut args);
                cli.sweep = Some(v.parse().ok().filter(|n| *n > 0).unwrap_or_else(|| {
                    usage_error(&format!("--sweep: `{v}` is not a positive seed count"))
                }));
            }
            "--keys" => {
                let v = value("--keys", &mut args);
                cli.keys = Some(v.parse().ok().filter(|n| *n > 0).unwrap_or_else(|| {
                    usage_error(&format!("--keys: `{v}` is not a positive u32"))
                }));
            }
            "--shards" => {
                let v = value("--shards", &mut args);
                cli.shards = Some(v.parse().ok().filter(|n| *n > 0).unwrap_or_else(|| {
                    usage_error(&format!("--shards: `{v}` is not a positive u32"))
                }));
            }
            "--pipeline-depth" => {
                let v = value("--pipeline-depth", &mut args);
                cli.pipeline_depth = Some(v.parse().ok().filter(|n| *n > 0).unwrap_or_else(|| {
                    usage_error(&format!("--pipeline-depth: `{v}` is not a positive u32"))
                }));
            }
            "--batch" => {
                let v = value("--batch", &mut args);
                cli.batch = Some(v.parse().ok().filter(|n| *n > 0).unwrap_or_else(|| {
                    usage_error(&format!("--batch: `{v}` is not a positive batch size"))
                }));
            }
            "--batch-hist-out" => cli.batch_hist_out = value("--batch-hist-out", &mut args).into(),
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    if cli.demo_broken && cli.demo_amnesia {
        usage_error("--demo-broken and --demo-amnesia are mutually exclusive");
    }
    if !cli.store {
        for (flag, set) in [
            ("--keys", cli.keys.is_some()),
            ("--shards", cli.shards.is_some()),
            ("--pipeline-depth", cli.pipeline_depth.is_some()),
            ("--batch", cli.batch.is_some()),
        ] {
            if set {
                usage_error(&format!("{flag} only applies with --store"));
            }
        }
    }
    if cli.store && cli.demo_amnesia && cli.connect.is_some() {
        // The keyed demo pins one shard's recovery to the broken mode,
        // which only the in-process spawner can arrange per shard.
        usage_error("--store --demo-amnesia runs in-process; it does not combine with --connect");
    }
    if cli.sweep.is_some() && (cli.demo_broken || cli.demo_amnesia || cli.connect.is_some()) {
        usage_error("--sweep does not combine with the demo modes or --connect");
    }
    // Validate every output path before the first run starts.
    ensure_parent("--results-out", &cli.results_out);
    ensure_parent("--summary-out", &cli.summary_out);
    ensure_dir("--dump-dir", &cli.dump_dir);
    if let Some(p) = &cli.watch_out {
        ensure_parent("--watch-out", p);
    }
    cli
}

/// The named message-passing configurations. Without a `--fault-profile`
/// this is the default set: the full chaos mix at k = 1, 2 plus a
/// fault-free control. With one, it is the two ABD shapes under that
/// profile only (the control and shm configs are skipped — the profile IS
/// the variable under study). Smoke mode shrinks ops, not shape variety.
fn abd_configs(cli: &Cli) -> Vec<(String, RuntimeConfig)> {
    let mut cfgs = Vec::new();
    let mode = if cli.smoke { "smoke" } else { "soak" };
    let (smoke, seed) = (cli.smoke, cli.seed);
    for k in [1u32, 2] {
        // Full fault mix at the acceptance shape (8 clients for soak).
        let mut cfg = if smoke {
            RuntimeConfig::smoke(seed ^ u64::from(k))
        } else {
            RuntimeConfig::soak(seed ^ u64::from(k), k)
        };
        cfg.k = k;
        let suffix = match cli.profile {
            Some(p) => {
                cfg.faults = p.faults();
                if p == FaultProfile::Amnesia {
                    cfg.recovery = RecoveryMode::amnesia();
                }
                p.name()
            }
            None => "chaos",
        };
        cfgs.push((format!("{mode}.abd_k{k}_{suffix}"), cfg));
    }
    if cli.profile.is_none() {
        // A fault-free control at the same shape (k = 1): the protocol under
        // nothing but thread nondeterminism.
        let mut quiet = if smoke {
            RuntimeConfig::smoke(seed ^ 0x71)
        } else {
            RuntimeConfig::soak(seed ^ 0x71, 1)
        };
        quiet.faults = FaultConfig::none();
        cfgs.push((format!("{mode}.abd_k1_quiet"), quiet));
    }
    for (_, cfg) in &mut cfgs {
        if let Some(len) = cli.crash_len {
            cfg.faults.crash_len = len;
        }
        if let Some(period) = cli.crash_period {
            cfg.faults.crash_period = period;
        }
        if let Some(n) = cli.ops_per_client {
            cfg.ops_per_client = n;
        }
        if let Some(r) = cli.recovery {
            cfg.recovery = r;
        }
        cfg.watch = cli.watch;
        cfg.watch_out = cli.watch_out.clone();
        cfg.flight_dump_dir = Some(cli.dump_dir.clone());
    }
    cfgs
}

fn shm_configs(smoke: bool, seed: u64) -> Vec<(String, ShmChaosConfig)> {
    let mode = if smoke { "smoke" } else { "soak" };
    [1u32, 2]
        .into_iter()
        .map(|k| {
            let mut cfg = ShmChaosConfig::small(seed ^ 0x5113 ^ u64::from(k), k);
            if !smoke {
                cfg.ops_per_thread = 2_000;
            }
            (format!("{mode}.va_k{k}"), cfg)
        })
        .collect()
}

fn record(name: &str, ops: u64, violations: u64, recoveries: Option<u64>, actions: Option<u64>) {
    blunt_obs::counter(&format!("runtime.chaos.{name}.ops")).add(ops);
    blunt_obs::counter(&format!("runtime.chaos.{name}.violations")).add(violations);
    if let Some(r) = recoveries {
        blunt_obs::counter(&format!("runtime.chaos.{name}.recoveries")).add(r);
    }
    if let Some(a) = actions {
        blunt_obs::counter(&format!("runtime.chaos.{name}.monitor_actions")).add(a);
    }
}

fn print_abd(name: &str, r: &ChaosReport) {
    println!(
        "{name:<24} ops {:>7}  {:>9.0} ops/s  lat p50/p99 {:>4}/{:>5} µs  \
         retrans {:>6}  violations {}",
        r.ops,
        r.ops_per_sec(),
        r.latency_us.p50(),
        r.latency_us.percentile(0.99),
        r.retransmissions,
        r.monitor.violations.len(),
    );
    println!(
        "{:<24} bus: offered {} dropped {} dup {} reorder {} delayed {} \
         crash {} partition {}",
        "",
        r.bus.offered,
        r.bus.dropped,
        r.bus.duplicated,
        r.bus.reordered,
        r.bus.delayed,
        r.bus.crash_dropped,
        r.bus.partition_dropped,
    );
    println!(
        "{:<24} coverage: fates [{}] over {} links  monitor: {} actions, \
         {:.1} ms observe, lag hwm {}",
        "",
        r.coverage.fates_exercised().join(" "),
        r.coverage.links.len(),
        r.monitor_overhead.actions,
        r.monitor_overhead.observe_ns as f64 / 1e6,
        r.monitor_overhead.lag_ops_hwm,
    );
    if r.recovery.crashes > 0 {
        println!(
            "{:<24} recovery: crashes {} recovered {} wal lost/replayed {}/{} \
             state queries {}",
            "",
            r.recovery.crashes,
            r.recovery.recoveries,
            r.recovery.wal_records_lost,
            r.recovery.wal_records_replayed,
            r.recovery.state_queries,
        );
    }
}

/// Writes the run's violation flight dump (JSONL + rendered diagram) under
/// `dump_dir` as `<stem>.flight.jsonl` / `<stem>.diagram.txt`. Returns the
/// diagram path when a dump existed.
fn write_flight_artifacts(
    dump_dir: &Path,
    stem: &str,
    report: &ChaosReport,
    lanes: usize,
) -> Option<PathBuf> {
    let dump = report.violation_dump.as_ref()?;
    Some(write_flight_dump_files(dump_dir, stem, dump, lanes))
}

/// Writes one flight dump (JSONL + rendered diagram) under `dump_dir`;
/// shared by the register and store drivers.
fn write_flight_dump_files(
    dump_dir: &Path,
    stem: &str,
    dump: &blunt_obs::FlightDump,
    lanes: usize,
) -> PathBuf {
    let _ = std::fs::create_dir_all(dump_dir);
    // Process-unique stem: a second dump under the same name (e.g. two
    // dirty configs in one run, or a demo retried across seeds) gets a
    // monotonic `.2`, `.3`, … suffix instead of clobbering the first.
    let stem = blunt_obs::flight::unique_dump_stem(stem);
    let jsonl = dump_dir.join(format!("{stem}.flight.jsonl"));
    let diagram = dump_dir.join(format!("{stem}.diagram.txt"));
    let rendered = flight_space_time(&dump.last_n(800), lanes, &DiagramOptions::default());
    std::fs::write(&jsonl, dump.to_jsonl()).expect("write flight dump");
    std::fs::write(&diagram, rendered).expect("write flight diagram");
    println!(
        "flight dump written to {} (+ {})",
        jsonl.display(),
        diagram.display()
    );
    diagram
}

/// Print the first violation window; exit 0 iff the monitor caught the
/// intentionally-broken implementation.
fn report_demo_catch(what: &str, report: &ChaosReport) -> ExitCode {
    match report.monitor.violations.first() {
        Some(v) => {
            println!(
                "\nfirst violation window (object {:?}, segment {}):\n",
                v.obj, v.segment
            );
            println!("{}", v.rendered);
            println!(
                "the monitor caught {what}: {} violation window(s) total",
                report.monitor.violations.len()
            );
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("\nchaos: {what} was NOT caught — monitor bug");
            ExitCode::FAILURE
        }
    }
}

fn demo_broken(cli: &Cli) -> ExitCode {
    let mut cfg = RuntimeConfig::smoke(cli.seed);
    cfg.broken_reads = true;
    cfg.read_per_mille = 400;
    cfg.watch = cli.watch;
    cfg.watch_out = cli.watch_out.clone();
    cfg.flight_dump_dir = Some(cli.dump_dir.clone());
    println!("demo: ABD with an unsound single-server fast read (no quorum, no write-back)\n");
    let report = match run_chaos(&cfg) {
        Ok(r) => r,
        Err(e) => usage_error(&e.to_string()),
    };
    print_abd("broken_fast_read", &report);
    let lanes = (cfg.servers + cfg.clients + 1) as usize;
    write_flight_artifacts(&cli.dump_dir, "broken_fast_read", &report, lanes);
    report_demo_catch("the unsound read", &report)
}

fn demo_amnesia(cli: &Cli) -> ExitCode {
    // The proven catch configuration (mirrors the
    // `broken_amnesia_recovery_is_caught_with_a_rendered_window` test):
    // two clients so per-link crash-window phases stay unsynchronized —
    // an acknowledged write can die in a wipe — while the real-time order
    // stays tight enough that the resulting stale read is provably
    // non-linearizable. Whether a particular run trips the coincidence is
    // scheduling-sensitive (the clients' real-time overlap is wall-clock
    // state), so sweep a few seeds and demand the catch within the budget.
    println!("demo: amnesia crashes with a recovery that skips WAL replay and peer catch-up\n");
    let mut last = None;
    let mut lanes = 0usize;
    for attempt in 0..8u64 {
        let mut cfg = RuntimeConfig::smoke_amnesia(cli.seed + attempt);
        cfg.recovery = RecoveryMode::demo_amnesia();
        cfg.clients = 2;
        cfg.ops_per_client = 2000;
        cfg.read_per_mille = 400;
        cfg.faults.drop_per_mille = 200;
        cfg.faults.delay_per_mille = 100;
        cfg.faults.crash_len = 2;
        cfg.faults.crash_period = 9;
        cfg.watch = cli.watch;
        cfg.watch_out = cli.watch_out.clone();
        cfg.flight_dump_dir = Some(cli.dump_dir.clone());
        lanes = (cfg.servers + cfg.clients + 1) as usize;
        let report = match run_chaos(&cfg) {
            Ok(r) => r,
            Err(e) => usage_error(&e.to_string()),
        };
        print_abd(&format!("broken_amnesia[{}]", cli.seed + attempt), &report);
        if report.recovery.crashes == 0 {
            eprintln!("\nchaos: no crash events fired — demo config is inert");
            return ExitCode::FAILURE;
        }
        let caught = !report.monitor.violations.is_empty();
        last = Some(report);
        if caught {
            break;
        }
    }
    let report = last.expect("at least one attempt runs");
    write_flight_artifacts(&cli.dump_dir, "broken_amnesia", &report, lanes);
    report_demo_catch("the recovery that skips replay and catch-up", &report)
}

/// One config's deterministic summary entry. Timing-dependent numbers
/// (latency, retransmissions, monitor lag/observe time) are deliberately
/// excluded so two same-seed runs write byte-identical summaries.
/// `transport` labels which tier carried the run's messages
/// (`in-process`, `tcp`, or `uds`) — new in schema v2.
fn summary_entry(name: &str, r: &ChaosReport, transport: &str) -> blunt_obs::Json {
    use blunt_obs::Json;
    Json::Obj(vec![
        ("name".into(), Json::Str(name.into())),
        ("transport".into(), Json::Str(transport.into())),
        ("ops".into(), Json::UInt(r.ops)),
        (
            "violations".into(),
            Json::UInt(r.monitor.violations.len() as u64),
        ),
        ("recoveries".into(), Json::UInt(r.recovery.recoveries)),
        (
            "monitor_actions".into(),
            Json::UInt(r.monitor_overhead.actions),
        ),
        (
            "bus".into(),
            Json::Obj(vec![
                ("offered".into(), Json::UInt(r.bus.offered)),
                ("dropped".into(), Json::UInt(r.bus.dropped)),
                ("duplicated".into(), Json::UInt(r.bus.duplicated)),
                ("reordered".into(), Json::UInt(r.bus.reordered)),
                ("delayed".into(), Json::UInt(r.bus.delayed)),
                ("crash_dropped".into(), Json::UInt(r.bus.crash_dropped)),
                (
                    "partition_dropped".into(),
                    Json::UInt(r.bus.partition_dropped),
                ),
                ("crash_events".into(), Json::UInt(r.bus.crash_events)),
            ]),
        ),
        ("coverage".into(), r.coverage.to_json()),
    ])
}

/// The per-server telemetry sections of a net-transport config entry
/// (schema v3): one object per remote `chaos serve` process, carrying the
/// tracing-plane counters it shipped back plus the driver's clock-offset
/// estimate. The fsync p99 and clock offset are timing-dependent; net
/// entries are already excluded from the byte-determinism contract (their
/// transport timing is wall-clock state), in-process entries never carry
/// this section.
fn servers_json(remote: &[blunt_runtime::RemoteServer]) -> blunt_obs::Json {
    use blunt_obs::Json;
    Json::Arr(
        remote
            .iter()
            .enumerate()
            .map(|(sid, r)| {
                let t = r.telemetry.unwrap_or_default();
                Json::Obj(vec![
                    ("proc".into(), Json::Str(format!("s{sid}"))),
                    ("recoveries".into(), Json::UInt(t.recoveries)),
                    ("crashes".into(), Json::UInt(t.crashes)),
                    ("fsync_count".into(), Json::UInt(t.fsync_count)),
                    ("fsync_p99_us".into(), Json::UInt(t.fsync_p99_us)),
                    ("span_events".into(), Json::UInt(t.span_events)),
                    ("events".into(), Json::UInt(t.events)),
                    ("clock_offset_us".into(), Json::Int(r.offset_us)),
                ])
            })
            .collect(),
    )
}

/// The `chaos_summary` envelope. Schema v3 (docs/OBS_SCHEMA.md): v2 plus
/// per-server telemetry sections (`servers`) on net-transport entries;
/// readers treat a missing `transport` label as `in-process` (every v1
/// summary was) and a missing `servers` array as empty.
fn summary_doc(seed: u64, mode: &str, configs: Vec<blunt_obs::Json>) -> blunt_obs::Json {
    use blunt_obs::Json;
    Json::Obj(vec![
        ("type".into(), Json::Str("chaos_summary".into())),
        ("schema_version".into(), Json::UInt(3)),
        ("seed".into(), Json::UInt(seed)),
        ("mode".into(), Json::Str(mode.into())),
        ("configs".into(), Json::Arr(configs)),
    ])
}

/// Parses `chaos serve ...` and runs one server process to completion.
/// The seed, fault profile, and crash-window overrides MUST match the
/// driver's — both sides realize halves of the same per-link schedule.
fn run_serve(args: impl Iterator<Item = String>) -> ExitCode {
    let mut listen: Option<Addr> = None;
    let mut server_id: Option<u32> = None;
    let mut servers: u32 = 3;
    let mut shard_size: Option<u32> = None;
    let mut clients: u32 = 4;
    let mut peers: Option<Vec<Addr>> = None;
    let mut seed: u64 = 0x0B1D_5EED;
    let mut profile = FaultProfile::Heavy;
    let mut crash_len: Option<u64> = None;
    let mut crash_period: Option<u64> = None;
    let mut recovery: Option<RecoveryMode> = None;
    let mut dump_dir: Option<PathBuf> = None;
    fn value(flag: &str, args: &mut impl Iterator<Item = String>) -> String {
        args.next()
            .unwrap_or_else(|| usage_error(&format!("serve {flag} needs a value")))
    }
    fn int<T: std::str::FromStr>(flag: &str, v: &str) -> T {
        v.parse()
            .unwrap_or_else(|_| usage_error(&format!("serve {flag}: `{v}` is not an integer")))
    }
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => listen = Some(Addr::parse(&value("--listen", &mut args))),
            "--server-id" => server_id = Some(int("--server-id", &value("--server-id", &mut args))),
            "--servers" => servers = int("--servers", &value("--servers", &mut args)),
            "--shard-size" => {
                shard_size = Some(int("--shard-size", &value("--shard-size", &mut args)));
            }
            "--clients" => clients = int("--clients", &value("--clients", &mut args)),
            "--peers" => peers = Some(parse_addr_list("--peers", &value("--peers", &mut args))),
            "--seed" => seed = int("--seed", &value("--seed", &mut args)),
            "--fault-profile" => {
                let v = value("--fault-profile", &mut args);
                profile = FaultProfile::parse(&v).unwrap_or_else(|| {
                    usage_error(&format!(
                        "serve --fault-profile: `{v}` is not one of none|light|heavy|amnesia"
                    ))
                });
            }
            "--crash-len" => crash_len = Some(int("--crash-len", &value("--crash-len", &mut args))),
            "--crash-period" => {
                crash_period = Some(int("--crash-period", &value("--crash-period", &mut args)));
            }
            "--recovery" => {
                let v = value("--recovery", &mut args);
                recovery = Some(match v.as_str() {
                    "stable" => RecoveryMode::Stable,
                    "amnesia" => RecoveryMode::amnesia(),
                    _ => usage_error(&format!(
                        "serve --recovery: `{v}` is not one of stable|amnesia"
                    )),
                });
            }
            "--dump-dir" => dump_dir = Some(value("--dump-dir", &mut args).into()),
            other => usage_error(&format!("serve: unknown flag {other}")),
        }
    }
    let listen = listen.unwrap_or_else(|| usage_error("serve needs --listen"));
    let server_id = server_id.unwrap_or_else(|| usage_error("serve needs --server-id"));
    let peers = peers.unwrap_or_else(|| usage_error("serve needs --peers"));
    if peers.len() != servers as usize {
        usage_error(&format!(
            "serve --peers: {} addresses for {servers} servers",
            peers.len()
        ));
    }
    if server_id >= servers {
        usage_error(&format!(
            "serve --server-id: {server_id} is not in 0..{servers}"
        ));
    }
    if let Some(s) = shard_size {
        if s == 0 || s > servers || !servers.is_multiple_of(s) {
            usage_error(&format!(
                "serve --shard-size: {s} does not evenly divide {servers} servers"
            ));
        }
    }
    let mut faults = profile.faults();
    if let Some(len) = crash_len {
        faults.crash_len = len;
    }
    if let Some(period) = crash_period {
        faults.crash_period = period;
    }
    let recovery = recovery.unwrap_or(if profile == FaultProfile::Amnesia {
        RecoveryMode::amnesia()
    } else {
        RecoveryMode::Stable
    });
    if let Some(dir) = &dump_dir {
        ensure_dir("serve --dump-dir", dir);
    }
    let cfg = NetServeConfig {
        listen,
        server_id,
        servers,
        shard_size,
        clients,
        peers,
        seed,
        faults,
        recovery,
        dump_dir,
    };
    eprintln!(
        "chaos serve: server {server_id}/{servers} on {}, seed {seed:#x}",
        cfg.listen
    );
    match run_net_server(&cfg) {
        Ok(r) => {
            eprintln!(
                "chaos serve: server {server_id} done — offered {} crashes {} recoveries {}",
                r.stats.offered, r.recovery.crashes, r.recovery.recoveries
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chaos serve: server {server_id} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `--connect` driver: one configuration over external servers. Same
/// monitor, flight recorder, summary, and exit discipline as the
/// in-process sets — only the transport differs.
fn run_net_driver(cli: &Cli, addrs: &[Addr]) -> ExitCode {
    let seed = cli.seed;
    let transport = addrs[0].kind();
    let suffix = match cli.profile {
        Some(p) => p.name(),
        None => "chaos",
    };
    let name = format!("net.abd_k{}_{suffix}", cli.k);
    let mut cfg = if cli.smoke {
        RuntimeConfig::smoke(seed)
    } else {
        RuntimeConfig::soak(seed, cli.k)
    };
    cfg.k = cli.k;
    cfg.servers = u32::try_from(addrs.len()).expect("server count fits u32");
    if let Some(p) = cli.profile {
        cfg.faults = p.faults();
        if p == FaultProfile::Amnesia {
            cfg.recovery = RecoveryMode::amnesia();
        }
    }
    if let Some(len) = cli.crash_len {
        cfg.faults.crash_len = len;
    }
    if let Some(period) = cli.crash_period {
        cfg.faults.crash_period = period;
    }
    if let Some(n) = cli.ops_per_client {
        cfg.ops_per_client = n;
    }
    if let Some(r) = cli.recovery {
        cfg.recovery = r;
    }
    cfg.watch = cli.watch;
    cfg.watch_out = cli.watch_out.clone();
    cfg.flight_dump_dir = Some(cli.dump_dir.clone());
    println!(
        "chaos: net driver ({transport}), {} servers, seed {seed:#x} (replay with --seed {seed})\n",
        addrs.len()
    );
    let topo = NetChaosTopology {
        servers: addrs.to_vec(),
    };
    let t0 = Instant::now();
    let report = match run_chaos_net(&cfg, &topo) {
        Ok(r) => r,
        Err(e) => usage_error(&e.to_string()),
    };
    let mut phases = vec![
        (name.clone(), t0.elapsed().as_secs_f64() * 1000.0),
        (
            format!("monitor.{name}"),
            report.monitor_overhead.observe_ns as f64 / 1e6,
        ),
        (
            format!("monitor_lag_ops.{name}"),
            report.monitor_overhead.lag_ops_hwm as f64,
        ),
    ];
    let lanes = (cfg.servers + cfg.clients + 1) as usize;
    // The merged cross-process flight dump: the driver's window plus every
    // server's goodbye window, shifted onto the driver clock, rendered with
    // remote-process lanes and span tags. Written unconditionally (clean
    // runs included) — this is the net tier's telemetry artifact, not a
    // violation capture.
    if let Some(merged) = &report.merged_flight {
        let jsonl = cli.dump_dir.join("net.merged.flight.jsonl");
        let diagram = cli.dump_dir.join("net.merged.diagram.txt");
        let opts = DiagramOptions {
            lane_width: 40,
            ..DiagramOptions::default()
        };
        std::fs::write(&jsonl, merged.to_jsonl()).expect("write merged flight dump");
        std::fs::write(
            &diagram,
            flight_space_time(&merged.last_n(800), lanes, &opts),
        )
        .expect("write merged flight diagram");
        println!(
            "merged flight dump written to {} (+ {})",
            jsonl.display(),
            diagram.display()
        );
        // Per-op latency phase medians from the span-attributed timeline —
        // informational bench phases (timing-dependent, never gated).
        let b = blunt_trace::latency_breakdown(merged);
        if b.ops > 0 {
            phases.push((
                format!("breakdown.client_queue_us.{name}"),
                b.client_queue_us as f64,
            ));
            phases.push((format!("breakdown.wire_us.{name}"), b.wire_us as f64));
            phases.push((
                format!("breakdown.server_ack_us.{name}"),
                b.server_ack_us as f64,
            ));
            phases.push((format!("breakdown.fsync_us.{name}"), b.fsync_us as f64));
            phases.push((
                format!("breakdown.quorum_complete_us.{name}"),
                b.quorum_complete_us as f64,
            ));
            println!(
                "latency breakdown ({} ops): client queue {}µs → wire {}µs → \
                 server ack {}µs → fsync {}µs → quorum complete {}µs",
                b.ops,
                b.client_queue_us,
                b.wire_us,
                b.server_ack_us,
                b.fsync_us,
                b.quorum_complete_us,
            );
        }
    }
    phases.sort_by(|a, b| a.0.cmp(&b.0));
    print_abd(&name, &report);
    record(
        &name,
        report.ops,
        report.monitor.violations.len() as u64,
        Some(report.recovery.recoveries),
        Some(report.monitor_overhead.actions),
    );
    let mut entry = summary_entry(&name, &report, transport);
    if let blunt_obs::Json::Obj(fields) = &mut entry {
        fields.push(("servers".into(), servers_json(&report.remote_servers)));
    }
    let summaries = vec![entry];
    if !report.monitor.clean() {
        write_flight_artifacts(&cli.dump_dir, &name, &report, lanes);
    }
    ensure_parent("--results-out", &cli.results_out);
    let mut results = BenchResults::from_snapshot(phases, &blunt_obs::snapshot());
    results
        .counters
        .retain(|(name, _)| name.starts_with("runtime.chaos."));
    results.seed = Some(seed);
    std::fs::write(&cli.results_out, format!("{}\n", results.to_json()))
        .expect("write BENCH_results.json");
    println!("\nbench results written to {}", cli.results_out.display());
    let summary = summary_doc(seed, if cli.smoke { "smoke" } else { "soak" }, summaries);
    ensure_parent("--summary-out", &cli.summary_out);
    std::fs::write(&cli.summary_out, format!("{summary}\n")).expect("write run summary");
    println!("run summary written to {}", cli.summary_out.display());
    if report.monitor.clean() {
        println!("verdict: all configurations linearizable (0 violations)");
        ExitCode::SUCCESS
    } else {
        eprintln!("verdict: VIOLATIONS in {name}");
        ExitCode::FAILURE
    }
}

/// Builds the store run from the CLI: the CI smoke shape or the 1M-op
/// bench shape, with the fault profile and `--keys`/`--shards`/
/// `--pipeline-depth`/`--batch` overrides applied on top. Returns the
/// config name (`smoke.store_light`, `bench.store_none`, …) with it.
fn store_config(cli: &Cli, seed: u64) -> (String, StoreConfig) {
    let mut cfg = if cli.smoke {
        StoreConfig::smoke(seed)
    } else {
        StoreConfig::bench(seed)
    };
    let suffix = match cli.profile {
        Some(p) => {
            cfg.faults = p.faults();
            if p == FaultProfile::Amnesia {
                cfg.recovery = RecoveryMode::amnesia();
            }
            p.name()
        }
        // The constructors' defaults: light faults for smoke, fault-free
        // for the throughput bench.
        None => {
            if cli.smoke {
                "light"
            } else {
                "none"
            }
        }
    };
    if let Some(n) = cli.keys {
        cfg.keys = n;
    }
    if let Some(n) = cli.shards {
        cfg.shards = n;
    }
    if let Some(n) = cli.pipeline_depth {
        cfg.pipeline_depth = n;
    }
    if let Some(n) = cli.batch {
        cfg.batch_max = n;
    }
    if let Some(n) = cli.ops_per_client {
        cfg.ops_per_client = n;
    }
    if cli.profile == Some(FaultProfile::Amnesia) {
        // The register sets' amnesia windows (8 in every 200 link events)
        // assume a handful of servers; a sharded topology runs dozens, and
        // crash windows must stagger disjointly across ALL of them. Scale
        // the period with the server count (and shorten the blackout) so
        // every store shape admits a valid window layout; --crash-len /
        // --crash-period below still override the scaled defaults.
        cfg.faults.crash_len = 4;
        cfg.faults.crash_period = 20 * u64::from(cfg.servers_total());
    }
    if let Some(r) = cli.recovery {
        cfg.recovery = r;
    }
    if let Some(len) = cli.crash_len {
        cfg.faults.crash_len = len;
    }
    if let Some(period) = cli.crash_period {
        cfg.faults.crash_period = period;
    }
    // Turn the config asserts that a CLI user can actually trip into
    // usage errors naming the offending numbers.
    if u64::from(cfg.pipeline_depth) > cfg.burst {
        usage_error(&format!(
            "--pipeline-depth: {} exceeds the burst size {}",
            cfg.pipeline_depth, cfg.burst
        ));
    }
    if cfg.servers_total() > 64 {
        usage_error(&format!(
            "--shards: {} shards × {} replicas = {} servers exceeds the 64-pid ceiling",
            cfg.shards,
            cfg.servers_per_shard,
            cfg.servers_total()
        ));
    }
    let mode = if cli.smoke { "smoke" } else { "bench" };
    (format!("{mode}.store_{suffix}"), cfg)
}

/// The store run's batch-size histogram, from the global registry.
fn batch_histogram() -> blunt_obs::HistogramSnapshot {
    blunt_obs::snapshot()
        .histograms
        .iter()
        .find(|(n, _)| n == "store.batch.envelopes_per_flush")
        .map(|(_, h)| h.clone())
        .unwrap_or_default()
}

fn print_store(name: &str, r: &StoreReport, cfg: &StoreConfig) {
    println!(
        "{name:<24} ops {:>8}  {:>9.0} ops/s  lat p50/p99 {:>4}/{:>5} µs  \
         retrans {:>6}  violations {}",
        r.ops,
        r.ops_per_sec(),
        r.latency_us.p50(),
        r.latency_us.percentile(0.99),
        r.retransmissions,
        r.monitor.violations.len(),
    );
    println!(
        "{:<24} shape: {} shards × {} replicas, {} keys, {} clients, \
         pipeline {}, batch {}",
        "",
        cfg.shards,
        cfg.servers_per_shard,
        cfg.keys,
        cfg.clients,
        cfg.pipeline_depth,
        cfg.batch_max,
    );
    println!(
        "{:<24} net: offered {} dropped {} dup {} reorder {} delayed {} \
         crash {} partition {}",
        "",
        r.stats.offered,
        r.stats.dropped,
        r.stats.duplicated,
        r.stats.reordered,
        r.stats.delayed,
        r.stats.crash_dropped,
        r.stats.partition_dropped,
    );
    let h = batch_histogram();
    if h.count > 0 {
        println!(
            "{:<24} batching: {} flushes carried {} envelopes — per-flush \
             p50/p99/max {}/{}/{} (mean {:.1})",
            "",
            h.count,
            h.sum,
            h.p50(),
            h.percentile(0.99),
            h.max,
            h.mean(),
        );
    }
    println!(
        "{:<24} coverage: fates [{}] over {} links  monitors: {} actions \
         across {} shards",
        "",
        r.coverage.fates_exercised().join(" "),
        r.coverage.links.len(),
        r.monitor_actions,
        cfg.shards,
    );
    if r.recovery.crashes > 0 {
        println!(
            "{:<24} recovery: crashes {} recovered {} wal lost/replayed {}/{} \
             state queries {}  degraded ops {}",
            "",
            r.recovery.crashes,
            r.recovery.recoveries,
            r.recovery.wal_records_lost,
            r.recovery.wal_records_replayed,
            r.recovery.state_queries,
            r.degraded_ops,
        );
        let per: Vec<String> = r
            .shard_recoveries
            .iter()
            .enumerate()
            .map(|(s, (c, rec))| format!("s{s} {c}/{rec}"))
            .collect();
        println!(
            "{:<24} per-shard crashes/recoveries: {}",
            "",
            per.join("  ")
        );
    }
}

/// The store entry for the run summary, same shape contract as
/// [`summary_entry`]. For stable-recovery runs every field is
/// seed-deterministic. Amnesia runs narrow that set: acks leave the
/// per-link schedule (they are exempt), so the reply legs' counts start
/// depending on how the pipelined clients interleave queries and updates
/// — `bus.offered`/`delivered` and the server→client link coverage become
/// timing-dependent (docs/STORE.md § determinism). What stays exact for a
/// seed, and what the tests pin byte-for-byte: `ops`, `violations`,
/// `monitor_actions`, `recoveries`, `shard_recoveries`,
/// `bus.crash_events`, and every client→server link. `degraded_ops` is
/// NOT here at all: deferral depends on wall-clock backoff timing.
fn store_summary_entry(name: &str, r: &StoreReport, transport: &str) -> blunt_obs::Json {
    use blunt_obs::Json;
    let shard_recoveries = r
        .shard_recoveries
        .iter()
        .map(|&(crashes, recoveries)| {
            Json::Obj(vec![
                ("crashes".into(), Json::UInt(crashes)),
                ("recoveries".into(), Json::UInt(recoveries)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("name".into(), Json::Str(name.into())),
        ("transport".into(), Json::Str(transport.into())),
        ("ops".into(), Json::UInt(r.ops)),
        (
            "violations".into(),
            Json::UInt(r.monitor.violations.len() as u64),
        ),
        ("monitor_actions".into(), Json::UInt(r.monitor_actions)),
        ("recoveries".into(), Json::UInt(r.recovery.recoveries)),
        ("shard_recoveries".into(), Json::Arr(shard_recoveries)),
        (
            "bus".into(),
            Json::Obj(vec![
                ("offered".into(), Json::UInt(r.stats.offered)),
                ("dropped".into(), Json::UInt(r.stats.dropped)),
                ("duplicated".into(), Json::UInt(r.stats.duplicated)),
                ("reordered".into(), Json::UInt(r.stats.reordered)),
                ("delayed".into(), Json::UInt(r.stats.delayed)),
                ("crash_dropped".into(), Json::UInt(r.stats.crash_dropped)),
                (
                    "partition_dropped".into(),
                    Json::UInt(r.stats.partition_dropped),
                ),
                ("crash_events".into(), Json::UInt(r.stats.crash_events)),
            ]),
        ),
        ("coverage".into(), r.coverage.to_json()),
    ])
}

/// The CI batch-size artifact: the full per-flush histogram plus its
/// summary statistics and the run's throughput, as one JSON document.
fn write_batch_hist(path: &Path, name: &str, r: &StoreReport) {
    use blunt_obs::Json;
    let h = batch_histogram();
    let buckets = h
        .buckets
        .iter()
        .map(|&(lo, c)| {
            Json::Obj(vec![
                ("ge".into(), Json::UInt(lo)),
                ("count".into(), Json::UInt(c)),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("type".into(), Json::Str("store_batch_histogram".into())),
        ("schema_version".into(), Json::UInt(1)),
        ("config".into(), Json::Str(name.into())),
        ("flushes".into(), Json::UInt(h.count)),
        ("envelopes".into(), Json::UInt(h.sum)),
        ("per_flush_p50".into(), Json::UInt(h.p50())),
        ("per_flush_p99".into(), Json::UInt(h.percentile(0.99))),
        ("per_flush_max".into(), Json::UInt(h.max)),
        ("per_flush_mean".into(), Json::Float(h.mean())),
        ("ops".into(), Json::UInt(r.ops)),
        ("ops_per_sec".into(), Json::Float(r.ops_per_sec())),
        ("buckets".into(), Json::Arr(buckets)),
    ]);
    std::fs::write(path, format!("{doc}\n")).expect("write batch histogram artifact");
    println!("batch histogram written to {}", path.display());
}

/// The keyed `--demo-amnesia` driver: a two-shard store where shard 0's
/// recovery is intentionally broken (no WAL replay, no peer catch-up)
/// while shard 1 recovers soundly. The broken shard's monitor must catch
/// the stale keyed reads. Same two-client rationale as the register demo:
/// per-link crash-window phases stay unsynchronized, so an acknowledged
/// write can die in a wipe while a second client's read stays real-time
/// ordered after the ack — and whether a particular run trips that
/// coincidence is scheduling-sensitive, so sweep a few seeds and demand
/// the catch within the budget.
fn demo_store_amnesia(cli: &Cli) -> ExitCode {
    println!("demo: keyed store where shard 0's recovery skips WAL replay and peer catch-up\n");
    let mut last: Option<(StoreConfig, StoreReport)> = None;
    for attempt in 0..8u64 {
        let mut cfg = StoreConfig::smoke(cli.seed + attempt);
        cfg.shards = 2;
        cfg.clients = 2;
        cfg.ops_per_client = 2000;
        cfg.keys = cli.keys.unwrap_or(4);
        cfg.read_per_mille = 400;
        cfg.recovery = RecoveryMode::amnesia();
        cfg.demo_shard = Some(0);
        cfg.faults = FaultConfig::chaos();
        cfg.faults.drop_per_mille = 200;
        cfg.faults.delay_per_mille = 100;
        cfg.faults.crash_len = 2;
        cfg.faults.crash_period = 3 * u64::from(cfg.servers_total());
        let report = match run_store(&cfg) {
            Ok(r) => r,
            Err(e) => usage_error(&e.to_string()),
        };
        print_store(
            &format!("broken_store_amnesia[{}]", cli.seed + attempt),
            &report,
            &cfg,
        );
        if report.recovery.crashes == 0 {
            eprintln!("\nchaos: no crash events fired — demo config is inert");
            return ExitCode::FAILURE;
        }
        let caught = !report.monitor.violations.is_empty();
        last = Some((cfg, report));
        if caught {
            break;
        }
    }
    let (cfg, report) = last.expect("at least one attempt runs");
    if let Some(dump) = &report.violation_dump {
        let lanes = (cfg.servers_total() + cfg.clients + cfg.shards) as usize;
        write_flight_dump_files(&cli.dump_dir, "broken_store_amnesia", dump, lanes);
    }
    match report.monitor.violations.first() {
        Some(v) => {
            println!(
                "\nfirst violation window (object {:?}, segment {}):\n",
                v.obj, v.segment
            );
            println!("{}", v.rendered);
            println!(
                "the monitor caught the shard that forgot: {} violation window(s) total",
                report.monitor.violations.len()
            );
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "\nchaos: the recovery that skips replay and catch-up was NOT caught — monitor bug"
            );
            ExitCode::FAILURE
        }
    }
}

/// The `--store` driver: one keyed-store run (in-process, or over sockets
/// with `--connect`), with the same results/summary/exit discipline as the
/// register sets plus the batch-size artifact.
fn run_store_mode(cli: &Cli) -> ExitCode {
    if cli.demo_amnesia {
        return demo_store_amnesia(cli);
    }
    let (name, mut cfg) = store_config(cli, cli.seed);
    if cli.demo_broken {
        cfg.broken_reads = true;
        // Concentrate the keyspace and go write-heavy so stale replicas
        // are exposed quickly (mirrors the single-register demo).
        if cli.keys.is_none() {
            cfg.keys = 8;
        }
        cfg.read_per_mille = 400;
    }
    let transport = match &cli.connect {
        Some(addrs) => addrs[0].kind(),
        None => "in-process",
    };
    println!(
        "chaos: keyed store ({transport}), {} shards × {} replicas, {} keys, \
         {} clients × {} ops, seed {seed:#x} (replay with --seed {seed})\n",
        cfg.shards,
        cfg.servers_per_shard,
        cfg.keys,
        cfg.clients,
        cfg.ops_per_client,
        seed = cli.seed,
    );
    let t0 = Instant::now();
    let report = match &cli.connect {
        Some(addrs) => run_store_net(&cfg, addrs),
        None => run_store(&cfg),
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => usage_error(&e.to_string()),
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    print_store(&name, &report, &cfg);
    // Recoveries are gated only under an amnesia recovery mode; stable
    // store runs keep their historical counter set (no `.recoveries` key),
    // so the committed baselines stay byte-identical.
    record(
        &name,
        report.ops,
        report.monitor.violations.len() as u64,
        cfg.recovery
            .is_amnesia()
            .then_some(report.recovery.recoveries),
        Some(report.monitor_actions),
    );
    // Throughput and the batch-size distribution ride as phases: they are
    // timing-dependent, so the gate treats them as informational unless
    // bench-report runs with --strict-times.
    let h = batch_histogram();
    let mut phases = vec![
        (name.clone(), wall_ms),
        (format!("store_ops_per_sec.{name}"), report.ops_per_sec()),
        (format!("store_batch_per_flush_p50.{name}"), h.p50() as f64),
        (
            format!("store_batch_per_flush_p99.{name}"),
            h.percentile(0.99) as f64,
        ),
        (format!("store_batch_per_flush_mean.{name}"), h.mean()),
    ];
    phases.sort_by(|a, b| a.0.cmp(&b.0));
    if !report.monitor.clean() {
        if let Some(dump) = &report.violation_dump {
            let lanes = (cfg.servers_total() + cfg.clients + cfg.shards) as usize;
            write_flight_dump_files(&cli.dump_dir, &name, dump, lanes);
        }
    }
    ensure_parent("--results-out", &cli.results_out);
    let mut results = BenchResults::from_snapshot(phases, &blunt_obs::snapshot());
    results
        .counters
        .retain(|(name, _)| name.starts_with("runtime.chaos."));
    results.seed = Some(cli.seed);
    std::fs::write(&cli.results_out, format!("{}\n", results.to_json()))
        .expect("write BENCH_results.json");
    println!("\nbench results written to {}", cli.results_out.display());
    let summaries = vec![store_summary_entry(&name, &report, transport)];
    let summary = summary_doc(
        cli.seed,
        if cli.smoke { "smoke" } else { "bench" },
        summaries,
    );
    ensure_parent("--summary-out", &cli.summary_out);
    std::fs::write(&cli.summary_out, format!("{summary}\n")).expect("write run summary");
    println!("run summary written to {}", cli.summary_out.display());
    ensure_parent("--batch-hist-out", &cli.batch_hist_out);
    write_batch_hist(&cli.batch_hist_out, &name, &report);
    if cli.demo_broken {
        return match report.monitor.violations.first() {
            Some(v) => {
                println!(
                    "\nfirst violation window (object {:?}, segment {}):\n",
                    v.obj, v.segment
                );
                println!("{}", v.rendered);
                println!(
                    "the monitor caught the unsound keyed read: {} violation window(s) total",
                    report.monitor.violations.len()
                );
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("\nchaos: the unsound keyed read was NOT caught — monitor bug");
                ExitCode::FAILURE
            }
        };
    }
    if report.monitor.clean() {
        println!("verdict: keyed store linearizable per shard (0 violations)");
        ExitCode::SUCCESS
    } else {
        eprintln!("verdict: VIOLATIONS in {name}");
        ExitCode::FAILURE
    }
}

/// The `--sweep N` driver: N consecutive seeds of the smoke-sized
/// configuration (register k = 1, or the store with `--store`), run in
/// parallel via [`parallel_map`], with a machine-readable per-seed
/// pass/fail summary at `--summary-out`. Exit 1 if ANY seed fails.
fn run_sweep(cli: &Cli, n: u64) -> ExitCode {
    use blunt_obs::Json;
    struct SweepRun {
        seed: u64,
        ops: u64,
        violations: u64,
        offered: u64,
        dropped: u64,
        recoveries: u64,
    }
    let seeds: Vec<u64> = (0..n).map(|i| cli.seed.wrapping_add(i)).collect();
    let threads = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(seeds.len());
    let workload = if cli.store { "store" } else { "abd_k1" };
    println!(
        "chaos: sweeping {n} seed(s) from {:#x} on {threads} thread(s) ({workload})\n",
        cli.seed
    );
    let runs: Vec<SweepRun> = parallel_map(seeds, threads, |seed| {
        if cli.store {
            let (_, cfg) = store_config(cli, seed);
            let r = run_store(&cfg).unwrap_or_else(|e| usage_error(&e.to_string()));
            SweepRun {
                seed,
                ops: r.ops,
                violations: r.monitor.violations.len() as u64,
                offered: r.stats.offered,
                dropped: r.stats.dropped,
                recoveries: r.recovery.recoveries,
            }
        } else {
            let mut cfg = RuntimeConfig::smoke(seed);
            if let Some(p) = cli.profile {
                cfg.faults = p.faults();
                if p == FaultProfile::Amnesia {
                    cfg.recovery = RecoveryMode::amnesia();
                }
            }
            if let Some(len) = cli.crash_len {
                cfg.faults.crash_len = len;
            }
            if let Some(period) = cli.crash_period {
                cfg.faults.crash_period = period;
            }
            if let Some(ops) = cli.ops_per_client {
                cfg.ops_per_client = ops;
            }
            if let Some(r) = cli.recovery {
                cfg.recovery = r;
            }
            let r = run_chaos(&cfg).unwrap_or_else(|e| usage_error(&e.to_string()));
            SweepRun {
                seed,
                ops: r.ops,
                violations: r.monitor.violations.len() as u64,
                offered: r.bus.offered,
                dropped: r.bus.dropped,
                recoveries: r.recovery.recoveries,
            }
        }
    });
    let mut entries = Vec::with_capacity(runs.len());
    let mut failed: u64 = 0;
    for r in &runs {
        let pass = r.violations == 0;
        failed += u64::from(!pass);
        println!(
            "seed {:#018x}  ops {:>7}  offered {:>8}  dropped {:>6}  \
             recoveries {:>3}  violations {:>2}  {}",
            r.seed,
            r.ops,
            r.offered,
            r.dropped,
            r.recoveries,
            r.violations,
            if pass { "pass" } else { "FAIL" },
        );
        entries.push(Json::Obj(vec![
            ("seed".into(), Json::UInt(r.seed)),
            ("ops".into(), Json::UInt(r.ops)),
            ("violations".into(), Json::UInt(r.violations)),
            ("offered".into(), Json::UInt(r.offered)),
            ("dropped".into(), Json::UInt(r.dropped)),
            ("recoveries".into(), Json::UInt(r.recoveries)),
            ("pass".into(), Json::Bool(pass)),
        ]));
    }
    // Schema v2: per-run `recoveries` (docs/OBS_SCHEMA.md) — amnesia
    // configs report how many crash-recoveries each seed exercised, so a
    // sweep that never recovered is visible as hollow coverage.
    let doc = Json::Obj(vec![
        ("type".into(), Json::Str("chaos_sweep".into())),
        ("schema_version".into(), Json::UInt(2)),
        ("workload".into(), Json::Str(workload.into())),
        ("base_seed".into(), Json::UInt(cli.seed)),
        ("seeds".into(), Json::UInt(n)),
        ("failed".into(), Json::UInt(failed)),
        ("runs".into(), Json::Arr(entries)),
    ]);
    ensure_parent("--summary-out", &cli.summary_out);
    std::fs::write(&cli.summary_out, format!("{doc}\n")).expect("write sweep summary");
    println!("\nsweep summary written to {}", cli.summary_out.display());
    if failed == 0 {
        println!("verdict: {n}/{n} seeds linearizable");
        ExitCode::SUCCESS
    } else {
        eprintln!("verdict: {failed}/{n} seeds FAILED");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("serve") {
        raw.next();
        return run_serve(raw);
    }
    drop(raw);
    let cli = parse_cli();
    if let Some(n) = cli.sweep {
        return run_sweep(&cli, n);
    }
    if cli.store {
        // Store mode handles --connect and --demo-broken itself.
        return run_store_mode(&cli);
    }
    if let Some(addrs) = cli.connect.clone() {
        if cli.demo_broken || cli.demo_amnesia {
            usage_error("--connect does not combine with the demo modes");
        }
        return run_net_driver(&cli, &addrs);
    }
    if cli.demo_broken {
        return demo_broken(&cli);
    }
    if cli.demo_amnesia {
        return demo_amnesia(&cli);
    }

    let seed = cli.seed;
    println!(
        "chaos: {} set{}, seed {seed:#x} (replay with --seed {seed})\n",
        if cli.smoke { "smoke" } else { "full soak" },
        match cli.profile {
            Some(p) => format!(", fault profile {}", p.name()),
            None => String::new(),
        }
    );
    let mut phases: Vec<(String, f64)> = Vec::new();
    let mut dirty: Vec<String> = Vec::new();
    let mut summaries: Vec<blunt_obs::Json> = Vec::new();

    for (name, cfg) in abd_configs(&cli) {
        let t0 = Instant::now();
        // An unusable fault shape (e.g. a --crash-len/--crash-period pair
        // whose windows cannot stagger disjointly) is a usage error, not a
        // soundness failure: echo the offending numbers and exit 2.
        let report = match run_chaos(&cfg) {
            Ok(r) => r,
            Err(e) => usage_error(&e.to_string()),
        };
        phases.push((name.clone(), t0.elapsed().as_secs_f64() * 1000.0));
        // Monitor-overhead phases for the bench gate: wall time inside
        // `observe` and the backlog high-water mark. Timing-dependent, so
        // informational unless bench-report runs with --strict-times.
        phases.push((
            format!("monitor.{name}"),
            report.monitor_overhead.observe_ns as f64 / 1e6,
        ));
        phases.push((
            format!("monitor_lag_ops.{name}"),
            report.monitor_overhead.lag_ops_hwm as f64,
        ));
        print_abd(&name, &report);
        record(
            &name,
            report.ops,
            report.monitor.violations.len() as u64,
            Some(report.recovery.recoveries),
            Some(report.monitor_overhead.actions),
        );
        summaries.push(summary_entry(&name, &report, "in-process"));
        if !report.monitor.clean() {
            let lanes = (cfg.servers + cfg.clients + 1) as usize;
            write_flight_artifacts(&cli.dump_dir, &name, &report, lanes);
            dirty.push(name);
        }
    }
    if cli.profile.is_none() {
        for (name, cfg) in shm_configs(cli.smoke, seed) {
            let t0 = Instant::now();
            let report = run_shm_chaos(&cfg);
            phases.push((name.clone(), t0.elapsed().as_secs_f64() * 1000.0));
            println!(
                "{name:<24} ops {:>7}  violations {}",
                report.ops,
                report.monitor.violations.len()
            );
            record(
                &name,
                report.ops,
                report.monitor.violations.len() as u64,
                None,
                None,
            );
            summaries.push(blunt_obs::Json::Obj(vec![
                ("name".into(), blunt_obs::Json::Str(name.clone())),
                (
                    "transport".into(),
                    blunt_obs::Json::Str("in-process".into()),
                ),
                ("ops".into(), blunt_obs::Json::UInt(report.ops)),
                (
                    "violations".into(),
                    blunt_obs::Json::UInt(report.monitor.violations.len() as u64),
                ),
            ]));
            if !report.monitor.clean() {
                dirty.push(name);
            }
        }
    }

    // The schema-versioned gate input (docs/OBS_SCHEMA.md): per-config
    // wall-times plus the `runtime.chaos.*` counters, seed echoed for
    // replay. Only those counters are kept — they are deterministic for a
    // seed, unlike e.g. the monitor's segment counts (cut placement is
    // scheduling-dependent) or the shared `lincheck.wgl.*` totals, which
    // would collide with the experiments baseline.
    ensure_parent("--results-out", &cli.results_out);
    let mut results = BenchResults::from_snapshot(phases, &blunt_obs::snapshot());
    results
        .counters
        .retain(|(name, _)| name.starts_with("runtime.chaos."));
    results.seed = Some(seed);
    std::fs::write(&cli.results_out, format!("{}\n", results.to_json()))
        .expect("write BENCH_results.json");
    println!("\nbench results written to {}", cli.results_out.display());

    // The machine-readable run summary: deterministic fields only (see
    // summary_entry), so replaying a seed reproduces it byte-for-byte.
    let summary = summary_doc(seed, if cli.smoke { "smoke" } else { "soak" }, summaries);
    ensure_parent("--summary-out", &cli.summary_out);
    std::fs::write(&cli.summary_out, format!("{summary}\n")).expect("write run summary");
    println!("run summary written to {}", cli.summary_out.display());

    if dirty.is_empty() {
        println!("verdict: all configurations linearizable (0 violations)");
        ExitCode::SUCCESS
    } else {
        eprintln!("verdict: VIOLATIONS in {}", dirty.join(", "));
        ExitCode::FAILURE
    }
}
