//! Regenerates every quantitative claim of the paper (see the experiment
//! index in `DESIGN.md`). Each experiment prints its table; the combined
//! markdown summary is written to `target/experiments/summary.md` and the
//! accumulated observability metrics to `target/experiments/metrics.jsonl`
//! (schema: `docs/OBS_SCHEMA.md`).
//!
//! ```sh
//! cargo run --release -p blunt-bench --bin experiments            # default set
//! cargo run --release -p blunt-bench --bin experiments -- e1 e5   # selection
//! cargo run --release -p blunt-bench --bin experiments -- --heavy # + slow proofs
//! ```
//!
//! Flags: `--metrics-out <path>` and `--results-out <path>` redirect the
//! JSONL metrics and the schema-versioned `BENCH_results.json` (per-phase
//! wall-times + counter totals, consumed by the `bench-report` gate) away
//! from their `target/experiments/` defaults. `--seed <n>` offsets the
//! seeded sweeps (E6, E8) and is echoed into `BENCH_results.json` for
//! replay; `--threads <n>` fans those sweeps out over OS threads
//! ([`blunt_bench::parallel_map`]) — the exact game solves (E1–E4) are
//! single search trees and stay sequential.
//!
//! Runtimes (release): default set ≈ 2–3 minutes (dominated by the exact
//! fused k = 1, 2 games); `--heavy` adds the fused k = 3 game (~5 min) and
//! the exhaustive unfused sure-win proof (~4 min).

use blunt_abd::config::ObjectConfig;
use blunt_abd::scenarios as abds;
use blunt_abd::system::{AbdSystem, AbdSystemDef};
use blunt_adversary::fig1::fig1_script;
use blunt_adversary::report::weakener_theorem_bound;
use blunt_adversary::search;
use blunt_bench::{parallel_map, seeded_history, seeded_run, Table};
use blunt_core::bound::bound_curve;
use blunt_core::ids::{MethodId, ObjId};
use blunt_core::ratio::Ratio;
use blunt_core::spec::{RegisterSpec, SnapshotSpec};
use blunt_core::value::Val;
use blunt_lincheck::strong::check_strong;
use blunt_lincheck::tree::ExecTree;
use blunt_lincheck::wgl::check_linearizable;
use blunt_programs::{ghw, round_based, weakener};
use blunt_registers::scenarios as shms;
use blunt_sim::explore::{sure_win, worst_case_prob, ExploreBudget};
use blunt_sim::kernel::run;
use blunt_sim::rng::Tape;
use blunt_sim::trace::Trace;
use blunt_trace::regress::BenchResults;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Ctx {
    heavy: bool,
    /// Base seed for the seeded sweeps (E6, E8); `--seed`.
    seed: u64,
    /// Worker threads for the seeded sweeps; `--threads`.
    threads: usize,
    summary: String,
    /// `(experiment name, wall milliseconds)` for `BENCH_results.json`.
    phases: Vec<(String, f64)>,
}

impl Ctx {
    fn section(&mut self, title: &str) {
        println!("\n================================================================");
        println!("{title}");
        println!("================================================================");
        let _ = writeln!(self.summary, "\n## {title}\n");
    }

    fn emit(&mut self, text: &str, md: &str) {
        println!("{text}");
        let _ = writeln!(self.summary, "{md}");
    }

    fn table(&mut self, t: &Table) {
        println!("{}", t.to_text());
        let _ = writeln!(self.summary, "{}", t.to_markdown());
    }
}

fn fmt_ratio(r: Ratio) -> String {
    format!("{r} ({:.4})", r.to_f64())
}

/// E1 — Appendix A.1: atomic registers, exact adversarial value 1/2.
fn e1(ctx: &mut Ctx) {
    ctx.section("E1  Atomic registers: exact worst-case bad probability (App. A.1)");
    let t0 = Instant::now();
    let (p, stats) = search::exact_worst_atomic(&ExploreBudget::default()).unwrap();
    let (best, _) = blunt_sim::explore::best_case_prob(
        &abds::weakener_atomic(),
        &weakener::is_bad,
        &ExploreBudget::default(),
    )
    .unwrap();
    let mut t = Table::new(["quantity", "paper", "measured"]);
    t.row([
        "Prob[bad], atomic, worst adversary".into(),
        "≤ 1/2, attained".into(),
        fmt_ratio(p),
    ]);
    t.row([
        "Prob[bad], atomic, best scheduler".into(),
        "—".into(),
        fmt_ratio(best),
    ]);
    ctx.table(&t);
    ctx.emit(
        &format!("({} states, {:?})", stats.states, t0.elapsed()),
        &format!("*{} states explored in {:?}.*", stats.states, t0.elapsed()),
    );
    assert_eq!(p, Ratio::new(1, 2));
}

/// E2 — Appendix A.2 / Figure 1: plain ABD, nontermination forced surely.
fn e2(ctx: &mut Ctx) {
    ctx.section("E2  Plain ABD: the Figure 1 adversary forces nontermination (App. A.2)");
    let mut t = Table::new(["coin", "u1", "u2", "c", "p2 loops?"]);
    for coin in 0..2usize {
        let report = run(
            abds::weakener_abd(1),
            &mut fig1_script(coin),
            &mut Tape::new(vec![coin]),
            true,
            10_000,
        )
        .unwrap();
        let get = |s| {
            report
                .outcome
                .get(&s)
                .map_or("—".into(), ToString::to_string)
        };
        let bad = weakener::is_bad(&report.outcome);
        t.row([
            coin.to_string(),
            get(weakener::site_u1()),
            get(weakener::site_u2()),
            get(weakener::site_c()),
            bad.to_string(),
        ]);
        assert!(bad);
    }
    ctx.table(&t);
    ctx.emit(
        "Scripted Figure 1 schedule wins for BOTH coin values ⇒ Prob[bad] = 1.",
        "Scripted Figure 1 schedule wins for **both** coin values ⇒ `Prob[bad] = 1`.",
    );

    // Independent exact certificates.
    let t0 = Instant::now();
    let (p, stats) =
        search::exact_worst_fused(1, &ExploreBudget::with_max_states(5_000_000)).unwrap();
    ctx.emit(
        &format!(
            "Exact fused-game value for k = 1: {p} ({} states, {:?}).",
            stats.states,
            t0.elapsed()
        ),
        &format!(
            "Exact fused-game value for k = 1: **{p}** ({} states, {:?}).",
            stats.states,
            t0.elapsed()
        ),
    );
    assert_eq!(p, Ratio::ONE);

    if ctx.heavy {
        let t0 = Instant::now();
        let (w, stats) = sure_win(
            &abds::weakener_abd(1),
            &weakener::is_bad,
            &ExploreBudget::with_max_states(50_000_000).fingerprinted(),
        )
        .unwrap();
        ctx.emit(
            &format!(
                "Exhaustive UNFUSED sure-win proof: {w} ({} states, {:?}).",
                stats.states,
                t0.elapsed()
            ),
            &format!(
                "Exhaustive unfused sure-win proof: **{w}** ({} states, {:?}).",
                stats.states,
                t0.elapsed()
            ),
        );
        assert!(w);
    }
}

/// E3/E4 — the ABD^k table: theorem bound vs exact game values.
fn e3_e4(ctx: &mut Ctx) {
    ctx.section("E3/E4  ABD^k: Theorem 4.2 bound vs exact game values (App. A.3)");
    let mut t = Table::new([
        "k",
        "Thm 4.2 bound",
        "paper detailed",
        "measured exact (fused)",
        "states",
        "time",
    ]);
    let ks: Vec<u32> = if ctx.heavy { vec![1, 2, 3] } else { vec![1, 2] };
    for k in ks {
        let t0 = Instant::now();
        let budget = ExploreBudget::with_max_states(150_000_000).fingerprinted();
        let (p, stats) = search::exact_worst_fused(k, &budget).unwrap();
        let detailed = match k {
            1 => "= 1".to_string(),
            2 => "≤ 5/8".to_string(),
            _ => "—".to_string(),
        };
        t.row([
            k.to_string(),
            fmt_ratio(weakener_theorem_bound(k)),
            detailed,
            fmt_ratio(p),
            stats.states.to_string(),
            format!("{:?}", t0.elapsed()),
        ]);
        assert!(p <= weakener_theorem_bound(k), "bound violated at k = {k}");
        if k == 2 {
            assert_eq!(p, Ratio::new(5, 8), "the 5/8 of App. A.3.2 is tight");
        }
    }
    ctx.table(&t);
    ctx.emit(
        "Measured values follow (k² + 1)/(2k²): 1, 5/8, 5/9, … — the paper's \
         specialized 5/8 bound is TIGHT, and the generic Theorem 4.2 bound \
         (7/8 at k = 2) is sound but loose on this program.",
        "Measured values follow `(k² + 1)/(2k²)`: 1, 5/8, 5/9, … — the paper's \
         specialized 5/8 bound is **tight**, and the generic Theorem 4.2 bound \
         (7/8 at k = 2) is sound but loose on this program.",
    );
}

/// E5 — Theorem 4.2 bound curves.
fn e5(ctx: &mut Ctx) {
    ctx.section("E5  Theorem 4.2 bound curves (bad ≤ bound; Pa = 1/2, P = 1)");
    let mut t = Table::new(["n", "r", "k=1", "k=2", "k=4", "k=8", "k=16", "k=64"]);
    for n in [2u32, 3, 4, 8] {
        for r in [1u32, 2, 4] {
            let curve = bound_curve(Ratio::new(1, 2), Ratio::ONE, n, r, 64);
            let at = |k: u32| curve[(k - 1) as usize].bound.to_string();
            t.row([
                n.to_string(),
                r.to_string(),
                at(1),
                at(2),
                at(4),
                at(8),
                at(16),
                at(64),
            ]);
        }
    }
    ctx.table(&t);
}

/// E6 — linearizability sweep: every implementation, many schedules.
fn e6(ctx: &mut Ctx) {
    ctx.section("E6  Linearizability of sampled histories (Theorem 4.1 equivalence)");
    let seeds = 30u64;
    let (base, threads) = (ctx.seed, ctx.threads);
    let mut t = Table::new(["implementation", "schedules", "linearizable"]);
    let reg = RegisterSpec::new(Val::Nil);
    let check_reg = |name: &str, mk: &(dyn Fn() -> AbdSystem + Sync), t: &mut Table| {
        let ok = parallel_map((0..seeds).collect(), threads, |s| {
            check_linearizable(&seeded_history(mk(), base + s, ObjId(0), 300_000), &reg).is_ok()
        })
        .into_iter()
        .all(|ok| ok);
        t.row([name.into(), seeds.to_string(), ok.to_string()]);
        assert!(ok, "{name}: non-linearizable history found");
    };
    check_reg("ABD (k = 1)", &|| abds::weakener_abd(1), &mut t);
    check_reg("ABD²", &|| abds::weakener_abd(2), &mut t);
    check_reg("ABD³", &|| abds::weakener_abd(3), &mut t);
    check_reg("ABD² (fused)", &|| abds::weakener_abd_fused(2), &mut t);

    for (name, k) in [("Vitányi–Awerbuch (k = 1)", 1u32), ("VA²", 2)] {
        let ok = parallel_map((0..seeds).collect(), threads, |s| {
            check_linearizable(
                &seeded_history(shms::weakener_va(k), base + s, ObjId(0), 300_000),
                &reg,
            )
            .is_ok()
        })
        .into_iter()
        .all(|ok| ok);
        t.row([name.into(), seeds.to_string(), ok.to_string()]);
        assert!(ok);
    }
    for (name, k) in [("Israeli–Li (k = 1)", 1u32), ("IL²", 2)] {
        let ok = parallel_map((0..seeds).collect(), threads, |s| {
            check_linearizable(
                &seeded_history(shms::sw_weakener_il(k), base + s, ObjId(0), 300_000),
                &reg,
            )
            .is_ok()
        })
        .into_iter()
        .all(|ok| ok);
        t.row([name.into(), seeds.to_string(), ok.to_string()]);
        assert!(ok);
    }
    let snap = SnapshotSpec::new(3, Val::Nil);
    for (name, k) in [("Afek snapshot (k = 1)", 1u32), ("snapshot²", 2)] {
        let ok = parallel_map((0..seeds).collect(), threads, |s| {
            check_linearizable(
                &seeded_history(shms::ghw_snapshot(k), base + s, ObjId(0), 300_000),
                &snap,
            )
            .is_ok()
        })
        .into_iter()
        .all(|ok| ok);
        t.row([name.into(), seeds.to_string(), ok.to_string()]);
        assert!(ok);
    }
    ctx.table(&t);
}

/// E7 — strong vs tail-strong linearizability on real Figure 1 traces.
fn e7(ctx: &mut Ctx) {
    ctx.section("E7  Strong vs tail strong linearizability (Thm 5.1 on real traces)");
    let traces: Vec<Trace> = (0..2usize)
        .map(|coin| {
            run(
                abds::weakener_abd(1),
                &mut fig1_script(coin),
                &mut Tape::new(vec![coin]),
                true,
                10_000,
            )
            .unwrap()
            .trace
        })
        .collect();
    let reg = RegisterSpec::new(Val::Nil);
    let tree_pi0 = ExecTree::build(&traces, ObjId(0), |_| false);
    let strong = check_strong(&tree_pi0, &reg);
    let tree_pi = ExecTree::build(&traces, ObjId(0), |m| {
        m == MethodId::READ || m == MethodId::WRITE
    });
    let tail = check_strong(&tree_pi, &reg);
    let mut t = Table::new(["property", "paper", "measured on Fig. 1 tree"]);
    t.row([
        "strongly linearizable (Π₀)".into(),
        "impossible for ABD".into(),
        strong.to_string(),
    ]);
    t.row([
        "tail strongly linearizable (Π_ABD)".into(),
        "Theorem 5.1: yes".into(),
        tail.to_string(),
    ]);
    ctx.table(&t);
    assert!(!strong && tail);
    ctx.emit(
        &format!(
            "(execution tree: {} nodes from the two Figure 1 branches)",
            tree_pi0.len()
        ),
        &format!(
            "*Execution tree: {} nodes from the two Figure 1 branches.*",
            tree_pi0.len()
        ),
    );
}

/// E8 — the cost of blunting: messages and steps per run vs k.
fn e8(ctx: &mut Ctx) {
    ctx.section("E8  Cost of blunting: messages / events per weakener run vs k");
    let mut t = Table::new(["k", "deliveries (mean)", "events (mean)", "object coins"]);
    for k in [1u32, 2, 4, 8, 16] {
        let seeds = 20u64;
        let per_seed = parallel_map((0..seeds).collect(), ctx.threads, |s| {
            let r = seeded_run(abds::weakener_abd(k), ctx.seed + s, 2_000_000);
            (
                r.trace.delivery_count(),
                r.steps,
                r.trace.object_random_count(),
            )
        });
        let (mut deliv, mut steps, mut coins) = (0usize, 0usize, 0usize);
        for (d, st, c) in per_seed {
            deliv += d;
            steps += st;
            coins += c;
        }
        t.row([
            k.to_string(),
            format!("{:.1}", deliv as f64 / seeds as f64),
            format!("{:.1}", steps as f64 / seeds as f64),
            format!("{:.1}", coins as f64 / seeds as f64),
        ]);
    }
    ctx.table(&t);
    ctx.emit(
        "Message cost grows linearly in k (one query exchange per iteration); \
         the update phase is k-independent.",
        "Message cost grows linearly in `k` (one query exchange per iteration); \
         the update phase is `k`-independent.",
    );
}

/// E9 — shared-memory constructions: exact values.
fn e9(ctx: &mut Ctx) {
    ctx.section("E9  Shared-memory constructions: exact adversarial values");
    let budget = ExploreBudget::with_max_states(5_000_000);
    let mut t = Table::new(["system", "program", "exact worst Prob[bad]"]);
    let cases: Vec<(&str, &str, Ratio)> = vec![
        (
            "atomic snapshot",
            "snapshot-weakener",
            worst_case_prob(&shms::ghw_atomic(), &ghw::is_bad, &budget)
                .unwrap()
                .0,
        ),
        (
            "Afek snapshot (k = 1)",
            "snapshot-weakener",
            worst_case_prob(&shms::ghw_snapshot(1), &ghw::is_bad, &budget)
                .unwrap()
                .0,
        ),
        (
            "Afek snapshot²",
            "snapshot-weakener",
            worst_case_prob(&shms::ghw_snapshot(2), &ghw::is_bad, &budget)
                .unwrap()
                .0,
        ),
        (
            "atomic register",
            "weakener",
            worst_case_prob(&shms::weakener_shm_atomic(), &weakener::is_bad, &budget)
                .unwrap()
                .0,
        ),
        (
            "Vitányi–Awerbuch (k = 1)",
            "weakener",
            worst_case_prob(&shms::weakener_va(1), &weakener::is_bad, &budget)
                .unwrap()
                .0,
        ),
        (
            "Vitányi–Awerbuch²",
            "weakener",
            worst_case_prob(&shms::weakener_va(2), &weakener::is_bad, &budget)
                .unwrap()
                .0,
        ),
        (
            "Israeli–Li (k = 1)",
            "sw-weakener",
            worst_case_prob(&shms::sw_weakener_il(1), &weakener::is_bad, &budget)
                .unwrap()
                .0,
        ),
        (
            "Israeli–Li²",
            "sw-weakener",
            worst_case_prob(&shms::sw_weakener_il(2), &weakener::is_bad, &budget)
                .unwrap()
                .0,
        ),
    ];
    for (sys, prog, p) in cases {
        t.row([sys.into(), prog.into(), fmt_ratio(p)]);
    }
    ctx.table(&t);
    ctx.emit(
        "Finding: on weakener-style programs these register-based constructions \
         show NO adversarial amplification (all exactly 1/2 = atomic). The ABD \
         amplification exploits the adversary's post-flip choice of WHICH \
         quorum answers a query; shared-memory reads have no such choice — \
         each read returns the current cell value. This matches the paper: it \
         proves these objects tail strongly linearizable (E7) and the \
         transformation applicable, but the weakener-specific amplification is \
         a message-passing phenomenon.",
        "**Finding:** on weakener-style programs these register-based \
         constructions show *no* adversarial amplification (all exactly 1/2 = \
         atomic). The ABD amplification exploits the adversary's post-flip \
         choice of *which quorum answers a query*; shared-memory reads have no \
         such choice. This matches the paper: it proves these objects tail \
         strongly linearizable (E7) and the transformation applicable, but the \
         weakener-specific amplification is a message-passing phenomenon.",
    );
}

/// E10 — the round-based extension (Section 7).
fn e10(ctx: &mut Ctx) {
    ctx.section("E10  Round-based programs (Section 7: pick k > T·s)");
    let mut t = Table::new(["T", "exact atomic value", "expected 2^-T"]);
    for rounds in 1..=3u32 {
        let objects = (0..round_based::object_count(rounds))
            .map(|i| {
                if i % 2 == 0 {
                    ObjectConfig::atomic(Val::Nil)
                } else {
                    ObjectConfig::atomic(Val::Int(-1))
                }
            })
            .collect();
        let sys = AbdSystem::new(AbdSystemDef {
            program: round_based::round_based(rounds),
            objects,
            purge_stale: true,
            fused_rpc: false,
        });
        let bad = move |o: &blunt_core::outcome::Outcome| round_based::is_bad(rounds, o);
        let (p, _) =
            worst_case_prob(&sys, &bad, &ExploreBudget::with_max_states(30_000_000)).unwrap();
        let expected = Ratio::new(1, 1 << rounds);
        t.row([rounds.to_string(), fmt_ratio(p), expected.to_string()]);
        assert_eq!(p, expected);
    }
    ctx.table(&t);

    let mut t = Table::new(["T", "k", "Thm 4.2 bound (r = T, n = 3)"]);
    for rounds in [1u32, 2, 4] {
        let pa = Ratio::new(1, i128::from(1u32 << rounds));
        for k in [rounds, rounds + 1, 2 * rounds, 4 * rounds] {
            t.row([
                rounds.to_string(),
                k.to_string(),
                blunt_core::bound::blunting_bound(pa, Ratio::ONE, 3, rounds, k).to_string(),
            ]);
        }
    }
    ctx.table(&t);
    ctx.emit(
        "With k ≤ T·s the bound is vacuous (= 1); k > T·s starts paying off — \
         the paper's Section 7 recommendation.",
        "With `k ≤ T·s` the bound is vacuous (= 1); `k > T·s` starts paying \
         off — the paper's Section 7 recommendation.",
    );
}

/// Runs one experiment and records its wall-time as a named phase.
fn run_phase(ctx: &mut Ctx, name: &str, f: fn(&mut Ctx)) {
    let t0 = Instant::now();
    f(ctx);
    ctx.phases
        .push((name.to_string(), t0.elapsed().as_secs_f64() * 1000.0));
}

fn main() {
    let mut heavy = false;
    let mut seed = 0u64;
    let mut threads = 1usize;
    let mut metrics_out = PathBuf::from("target/experiments/metrics.jsonl");
    let mut results_out = PathBuf::from("target/experiments/BENCH_results.json");
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--heavy" => heavy = true,
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed: not a u64");
            }
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads needs a value")
                    .parse()
                    .expect("--threads: not a usize");
            }
            "--metrics-out" => {
                metrics_out = args.next().expect("--metrics-out needs a path").into();
            }
            "--results-out" => {
                results_out = args.next().expect("--results-out needs a path").into();
            }
            other if other.starts_with("--") => panic!("unknown flag {other}"),
            other => selected.push(other.to_string()),
        }
    }
    let want = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);

    let mut ctx = Ctx {
        heavy,
        seed,
        threads,
        summary: String::from("# Experiment results (regenerated by `blunt-bench/experiments`)\n"),
        phases: Vec::new(),
    };

    let t0 = Instant::now();
    if want("e1") {
        run_phase(&mut ctx, "e1", e1);
    }
    if want("e2") {
        run_phase(&mut ctx, "e2", e2);
    }
    if want("e3") || want("e4") {
        run_phase(&mut ctx, "e3_e4", e3_e4);
    }
    if want("e5") {
        run_phase(&mut ctx, "e5", e5);
    }
    if want("e6") {
        run_phase(&mut ctx, "e6", e6);
    }
    if want("e7") {
        run_phase(&mut ctx, "e7", e7);
    }
    if want("e8") {
        run_phase(&mut ctx, "e8", e8);
    }
    if want("e9") {
        run_phase(&mut ctx, "e9", e9);
    }
    if want("e10") {
        run_phase(&mut ctx, "e10", e10);
    }

    println!("\nTotal: {:?}", t0.elapsed());
    let dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(dir).expect("create target/experiments");
    let path = dir.join("summary.md");
    std::fs::write(&path, &ctx.summary).expect("write summary");
    println!("Markdown summary written to {}", path.display());

    // Every metric accumulated across the experiments, one JSONL record per
    // metric (schema: docs/OBS_SCHEMA.md).
    if let Some(parent) = metrics_out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("create metrics dir");
    }
    let snap = blunt_obs::snapshot();
    let mut sink = blunt_obs::JsonlSink::create(&metrics_out).expect("create metrics.jsonl");
    for record in snap.to_jsonl_records() {
        blunt_obs::Recorder::record(&mut sink, &record);
    }
    println!(
        "Metrics written to {} ({} records)",
        metrics_out.display(),
        sink.lines()
    );

    // The regression-gate input: phase wall-times + final counter totals
    // (schema: docs/OBS_SCHEMA.md, `bench_results`; consumed by
    // `bench-report`).
    if let Some(parent) = results_out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    let mut results = BenchResults::from_snapshot(ctx.phases.clone(), &snap);
    results.seed = Some(seed);
    std::fs::write(&results_out, format!("{}\n", results.to_json()))
        .expect("write BENCH_results.json");
    println!(
        "Bench results written to {} ({} phases, {} counters)",
        results_out.display(),
        results.phases.len(),
        results.counters.len()
    );
}
