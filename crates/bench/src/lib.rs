//! Shared helpers for the experiment harness and benchmarks.
//!
//! The `experiments` binary (`cargo run --release -p blunt-bench --bin
//! experiments`) regenerates every quantitative claim indexed in
//! `DESIGN.md`/`EXPERIMENTS.md`; the benches under `benches/` measure the
//! cost of the moving parts (exploration, checking, per-operation protocol
//! cost) using the self-contained [`timing`] harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use blunt_core::history::History;
use blunt_core::ids::ObjId;
use blunt_sim::kernel::{run, RunReport};
use blunt_sim::rng::SplitMix64;
use blunt_sim::sched::RandomScheduler;
use blunt_sim::system::System;

/// Runs `sys` under a seeded random schedule and returns the report.
///
/// # Panics
///
/// Panics if the run errors (these systems always complete).
pub fn seeded_run<S: System>(sys: S, seed: u64, max_steps: usize) -> RunReport {
    run(
        sys,
        &mut RandomScheduler::new(seed),
        &mut SplitMix64::new(seed ^ 0x5EED),
        true,
        max_steps,
    )
    .unwrap_or_else(|e| panic!("seed {seed}: {e}"))
}

/// Extracts the history of one object from a seeded run.
///
/// # Panics
///
/// Panics if the run errors.
pub fn seeded_history<S: System>(sys: S, seed: u64, obj: ObjId, max_steps: usize) -> History {
    seeded_run(sys, seed, max_steps)
        .trace
        .history()
        .project(obj)
}

/// Maps `f` over `items` on up to `threads` OS threads, preserving input
/// order in the output. With `threads <= 1` this degenerates to a plain
/// sequential map — callers don't need a separate code path.
///
/// Used by the seeded sweeps in the `experiments` binary (`--threads`):
/// each seed is an independent simulator run, so the sweep is embarrassingly
/// parallel.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers).
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::collections::VecDeque;
    use std::sync::Mutex;

    let n = items.len();
    let workers = threads.clamp(1, n.max(1));
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = work.lock().expect("work queue").pop_front();
                let Some((i, item)) = next else { break };
                let r = f(item);
                slots.lock().expect("result slots")[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .expect("result slots")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// A minimal self-contained wall-clock benchmark harness.
///
/// The container has no external benchmark framework, so the `benches/`
/// binaries (`harness = false`) drive this instead: warm up, calibrate an
/// iteration count for a fixed time budget, measure, and print one line per
/// benchmark. Each measurement is also recorded under the global
/// `blunt-obs` timer `bench.<name>` so a metrics snapshot taken after a
/// bench run carries the numbers.
pub mod timing {
    use std::time::{Duration, Instant};

    /// One benchmark result.
    #[derive(Clone, Debug)]
    pub struct Measurement {
        /// Benchmark name as printed.
        pub name: String,
        /// Measured iterations (after warmup).
        pub iters: u64,
        /// Mean wall time per iteration, in nanoseconds.
        pub ns_per_iter: f64,
    }

    /// Runs `f` with the default ~200 ms measurement budget.
    pub fn bench(name: &str, f: impl FnMut()) -> Measurement {
        bench_with_budget(name, Duration::from_millis(200), f)
    }

    /// Warm up, calibrate an iteration count that fills `budget`, measure,
    /// print one aligned line, and record the span under `bench.<name>`.
    pub fn bench_with_budget(name: &str, budget: Duration, mut f: impl FnMut()) -> Measurement {
        // Warmup + calibration: time a single iteration.
        f();
        let t0 = Instant::now();
        f();
        let one = t0.elapsed().max(Duration::from_nanos(50));
        let iters = (budget.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let total = start.elapsed();
        blunt_obs::timer(&format!("bench.{name}")).record(total / iters as u32);

        let ns_per_iter = total.as_nanos() as f64 / iters as f64;
        let (scaled, unit) = if ns_per_iter >= 1e6 {
            (ns_per_iter / 1e6, "ms")
        } else if ns_per_iter >= 1e3 {
            (ns_per_iter / 1e3, "µs")
        } else {
            (ns_per_iter, "ns")
        };
        println!("{name:<52} {iters:>8} iters  {scaled:>10.3} {unit}/iter");
        Measurement {
            name: name.to_string(),
            iters,
            ns_per_iter,
        }
    }
}

/// Simple aligned-table printer for experiment outputs.
#[derive(Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    #[must_use]
    pub fn new<I: IntoIterator<Item = &'static str>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().collect());
    }

    /// Renders as GitHub-flavored markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }

    /// Renders as an aligned plain-text table.
    #[must_use]
    pub fn to_text(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// One remote server's telemetry section in a `chaos_summary` config entry
/// (schema v3, net-transport entries only): the per-process tracing-plane
/// counters the server shipped back over its driver connection, plus the
/// driver's clock-offset estimate for that process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosServerTelemetry {
    /// Process label (`s0`, `s1`, …) — matches the `proc` field of merged
    /// flight-dump events.
    pub proc: String,
    /// Crash recoveries the server completed.
    pub recoveries: u64,
    /// Crash events the server processed.
    pub crashes: u64,
    /// p99 WAL fsync latency at the server, in µs (timing-dependent).
    pub fsync_p99_us: u64,
    /// Flight events the server recorded that carry a trace span.
    pub span_events: u64,
    /// Flight events the server recorded, total.
    pub events: u64,
    /// Estimated offset of the server's flight clock relative to the
    /// driver's, in µs (timing-dependent).
    pub clock_offset_us: i64,
}

/// One config entry of a parsed `chaos_summary` document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosSummaryConfig {
    /// The configuration name (`smoke.abd_k1_chaos`, `net.abd_k1_light`, …).
    pub name: String,
    /// Which tier carried the run's messages: `in-process`, `tcp`, or
    /// `uds`. Schema v1 predates the field; v1 entries read as
    /// `in-process` (every v1 run was).
    pub transport: String,
    /// Operations completed.
    pub ops: u64,
    /// Linearizability violations (0 on a sound run).
    pub violations: u64,
    /// Crash recoveries completed (0 where the config has none).
    pub recoveries: u64,
    /// Per-server telemetry sections (schema v3, net entries only; empty
    /// for in-process entries and pre-v3 documents).
    pub servers: Vec<ChaosServerTelemetry>,
}

/// A parsed `chaos_summary` document (schema v1, v2, or v3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosSummary {
    /// The schema version the document was written with (1, 2, or 3).
    pub schema_version: u64,
    /// The run seed the summary is deterministic in.
    pub seed: u64,
    /// `smoke` or `soak`.
    pub mode: String,
    /// Per-configuration entries, in run order.
    pub configs: Vec<ChaosSummaryConfig>,
}

/// Parses a `chaos_summary` JSON document, accepting schema v1 (no
/// `transport` label — read as `in-process`), v2, and v3 (adds per-server
/// telemetry sections on net entries) alike; later schemas are rejected
/// rather than misread.
///
/// # Errors
///
/// A human-readable message naming the missing/malformed field.
pub fn parse_chaos_summary(text: &str) -> Result<ChaosSummary, String> {
    use blunt_obs::Json;
    let doc = Json::parse(text.trim()).map_err(|e| e.to_string())?;
    if doc.get("type").and_then(Json::as_str) != Some("chaos_summary") {
        return Err("not a chaos_summary document".into());
    }
    let schema_version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or_else(|| "chaos_summary missing schema_version".to_string())?;
    if !(1..=3).contains(&schema_version) {
        return Err(format!(
            "chaos_summary schema v{schema_version}, this build reads v1–v3"
        ));
    }
    let seed = doc
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or_else(|| "chaos_summary missing seed".to_string())?;
    let mode = doc
        .get("mode")
        .and_then(Json::as_str)
        .ok_or_else(|| "chaos_summary missing mode".to_string())?
        .to_string();
    let entries = doc
        .get("configs")
        .and_then(Json::as_arr)
        .ok_or_else(|| "chaos_summary missing configs".to_string())?;
    let mut configs = Vec::with_capacity(entries.len());
    for e in entries {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| "config entry missing name".to_string())?
            .to_string();
        let transport = match e.get("transport") {
            Some(t) => t
                .as_str()
                .ok_or_else(|| format!("config `{name}`: transport is not a string"))?
                .to_string(),
            // v1 had no transport tier; everything ran in process.
            None => "in-process".to_string(),
        };
        let ops = e
            .get("ops")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("config `{name}` missing ops"))?;
        let violations = e
            .get("violations")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("config `{name}` missing violations"))?;
        let recoveries = e.get("recoveries").and_then(Json::as_u64).unwrap_or(0);
        let mut servers = Vec::new();
        if let Some(list) = e.get("servers").and_then(Json::as_arr) {
            for s in list {
                let proc = s
                    .get("proc")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("config `{name}`: server entry missing proc"))?
                    .to_string();
                let field = |key: &str| -> Result<u64, String> {
                    s.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("config `{name}`: server `{proc}` missing {key}"))
                };
                servers.push(ChaosServerTelemetry {
                    recoveries: field("recoveries")?,
                    crashes: field("crashes")?,
                    fsync_p99_us: field("fsync_p99_us")?,
                    span_events: field("span_events")?,
                    events: field("events")?,
                    clock_offset_us: s.get("clock_offset_us").and_then(Json::as_i64).unwrap_or(0),
                    proc,
                });
            }
        }
        configs.push(ChaosSummaryConfig {
            name,
            transport,
            ops,
            violations,
            recoveries,
            servers,
        });
    }
    Ok(ChaosSummary {
        schema_version,
        seed,
        mode,
        configs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_abd::scenarios::weakener_abd;

    #[test]
    fn seeded_runs_are_deterministic() {
        let a = seeded_run(weakener_abd(1), 3, 100_000);
        let b = seeded_run(weakener_abd(1), 3, 100_000);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn seeded_history_projects_single_object() {
        let h = seeded_history(weakener_abd(1), 5, ObjId(0), 100_000);
        assert!(h.is_well_formed());
        assert_eq!(h.objects(), vec![ObjId(0)]);
    }

    #[test]
    fn parallel_map_preserves_order_at_any_width() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [0usize, 1, 3, 8, 64] {
            assert_eq!(
                parallel_map(items.clone(), threads, |x| x * x),
                expect,
                "threads = {threads}"
            );
        }
        assert!(parallel_map(Vec::<u64>::new(), 4, |x| x).is_empty());
    }

    #[test]
    fn parallel_map_matches_a_sequential_seeded_sweep() {
        let seeds: Vec<u64> = (0..6).collect();
        let seq: Vec<usize> = seeds
            .iter()
            .map(|&s| seeded_run(weakener_abd(1), s, 100_000).steps)
            .collect();
        let par = parallel_map(seeds, 3, |s| seeded_run(weakener_abd(1), s, 100_000).steps);
        assert_eq!(par, seq);
    }

    #[test]
    fn table_renders_both_formats() {
        let mut t = Table::new(["k", "bound"]);
        t.row(["1".into(), "1".into()]);
        t.row(["2".into(), "7/8".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| k | bound |"));
        assert!(md.lines().count() == 4);
        let txt = t.to_text();
        assert!(txt.contains("7/8"));
    }
}
