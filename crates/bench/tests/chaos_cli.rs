//! End-to-end tests of the `chaos` binary's observability surface: flight
//! dumps from the demo modes, deterministic `--watch` summaries, and
//! fail-fast usage errors for unwritable output paths.

use std::path::PathBuf;
use std::process::Command;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blunt-chaos-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn chaos(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_chaos"))
        .args(args)
        .output()
        .expect("chaos runs")
}

/// `ret <int>` tokens in the rendered violation window after `marker` —
/// the concrete values the violating operations returned.
fn returned_values(stdout: &str, marker: &str) -> Vec<String> {
    let window = match stdout.split_once(marker) {
        Some((_, rest)) => rest,
        None => return Vec::new(),
    };
    let mut vals = Vec::new();
    let mut rest = window;
    while let Some(at) = rest.find("ret ") {
        rest = &rest[at + 4..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if !digits.is_empty() && !vals.contains(&digits) {
            vals.push(digits);
        }
    }
    vals
}

#[test]
fn unwritable_results_out_is_a_fail_fast_usage_error() {
    let dir = tmp_dir("unwritable");
    // A *file* used as a parent directory makes create_dir_all fail.
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, b"not a dir").expect("write blocker");
    let bad = blocker.join("sub").join("BENCH_results.json");
    let out = chaos(&["--smoke", "--results-out", bad.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "an unwritable --results-out is a usage error, not a panic"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--results-out") && stderr.contains(blocker.join("sub").to_str().unwrap()),
        "the error names the flag and the path: {stderr}"
    );

    // Same discipline for the flight-dump directory.
    let bad_dump = blocker.join("flight");
    let out = chaos(&["--smoke", "--dump-dir", bad_dump.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--dump-dir"));

    // And for the watch JSONL mirror.
    let bad_watch = blocker.join("sub").join("watch.jsonl");
    let out = chaos(&["--smoke", "--watch-out", bad_watch.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "an unwritable --watch-out parent is a usage error, not a silent drop"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--watch-out") && stderr.contains(blocker.join("sub").to_str().unwrap()),
        "the error names the flag and the path: {stderr}"
    );
}

#[test]
fn watch_out_writes_a_schema_versioned_jsonl_mirror() {
    let dir = tmp_dir("watch-out");
    let watch_path = dir.join("watch.jsonl");
    let out = chaos(&[
        "--smoke",
        "--watch",
        "50ms",
        "--watch-out",
        watch_path.to_str().unwrap(),
        "--seed",
        "7",
        "--ops-per-client",
        "200",
        "--results-out",
        dir.join("BENCH.json").to_str().unwrap(),
        "--summary-out",
        dir.join("SUM.json").to_str().unwrap(),
        "--dump-dir",
        dir.join("flight").to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&watch_path).expect("watch JSONL written");
    let mut lines = text.lines();
    // Header line: document type, schema version, and the run seed. Each
    // in-process config reopens the file, so take the first header and
    // check every line parses as JSON of a known type.
    let header = blunt_obs::Json::parse(lines.next().expect("header line")).expect("header JSON");
    assert_eq!(
        header.get("type").and_then(blunt_obs::Json::as_str),
        Some("chaos_watch")
    );
    assert_eq!(
        header
            .get("schema_version")
            .and_then(blunt_obs::Json::as_u64),
        Some(blunt_runtime::WATCH_SCHEMA_VERSION)
    );
    assert!(header
        .get("seed")
        .and_then(blunt_obs::Json::as_u64)
        .is_some());
    let mut ticks = 0u64;
    for line in text.lines() {
        let doc = blunt_obs::Json::parse(line).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
        match doc.get("type").and_then(blunt_obs::Json::as_str) {
            Some("chaos_watch") => {}
            Some("watch_tick") => {
                ticks += 1;
                for key in [
                    "t_ms",
                    "ops",
                    "in_flight",
                    "lat_p50_us",
                    "lat_p99_us",
                    "recoveries",
                ] {
                    assert!(
                        doc.get(key).and_then(blunt_obs::Json::as_u64).is_some(),
                        "tick missing {key}: {line}"
                    );
                }
            }
            other => panic!("unknown record type {other:?}: {line}"),
        }
    }
    assert!(ticks > 0, "at least one tick was mirrored:\n{text}");
}

#[test]
fn zero_watch_is_a_usage_error_naming_the_flag() {
    let out = chaos(&["--smoke", "--watch", "0"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "--watch 0 is a usage error, not a hang or a silent default"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--watch"), "error names the flag: {stderr}");

    let out = chaos(&["--smoke", "--watch", "0ms"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--watch"));
}

#[test]
fn zero_ops_per_client_is_a_usage_error_naming_the_flag() {
    let out = chaos(&["--smoke", "--ops-per-client", "0"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "--ops-per-client 0 is a usage error, not a degenerate run"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--ops-per-client"),
        "error names the flag: {stderr}"
    );
}

#[test]
fn demo_broken_emits_a_flight_dump_whose_diagram_contains_the_violating_ops() {
    let dir = tmp_dir("demo-broken");
    let dump_dir = dir.join("flight");
    let out = chaos(&[
        "--demo-broken",
        "--seed",
        "195911405", // 0x0BAD_5EED, the proven catch seed
        "--dump-dir",
        dump_dir.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "the monitor must catch the broken read:\n{stdout}"
    );

    let jsonl = dump_dir.join("broken_fast_read.flight.jsonl");
    let diagram = dump_dir.join("broken_fast_read.diagram.txt");
    let dump_text = std::fs::read_to_string(&jsonl).expect("flight dump written");
    let dump = blunt_obs::FlightDump::parse(&dump_text).expect("dump parses");
    assert!(!dump.is_empty());
    let rendered = std::fs::read_to_string(&diagram).expect("diagram written");
    assert!(rendered.contains("VIOLATION seg"), "{rendered}");

    // The ops of the printed violation window are in the rendered flight
    // window: the dump was captured at the moment of detection.
    let vals = returned_values(&stdout, "first violation window");
    assert!(
        !vals.is_empty(),
        "violation window returns values:\n{stdout}"
    );
    for v in &vals {
        assert!(
            rendered.contains(&format!("ret {v}")),
            "violating op returning {v} missing from {}",
            diagram.display()
        );
    }
}

#[test]
fn demo_amnesia_emits_a_flight_dump_whose_diagram_contains_the_violating_ops() {
    let dir = tmp_dir("demo-amnesia");
    let dump_dir = dir.join("flight");
    let out = chaos(&["--demo-amnesia", "--dump-dir", dump_dir.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "the monitor must catch the broken recovery:\n{stdout}"
    );
    let rendered = std::fs::read_to_string(dump_dir.join("broken_amnesia.diagram.txt"))
        .expect("diagram written");
    assert!(rendered.contains("VIOLATION seg"), "{rendered}");
    let vals = returned_values(&stdout, "first violation window");
    assert!(
        !vals.is_empty(),
        "violation window returns values:\n{stdout}"
    );
    for v in &vals {
        assert!(
            rendered.contains(&format!("ret {v}")),
            "violating op returning {v} missing from the amnesia diagram"
        );
    }
    // The dump parses and includes crash/recovery lifecycle events.
    let dump_text = std::fs::read_to_string(dump_dir.join("broken_amnesia.flight.jsonl"))
        .expect("flight dump written");
    let dump = blunt_obs::FlightDump::parse(&dump_text).expect("dump parses");
    assert!(dump
        .events
        .iter()
        .any(|e| e.kind == blunt_obs::FlightKind::ServerCrash));
}

#[test]
fn watched_smoke_runs_reproduce_identical_summaries_and_coverage() {
    let dir = tmp_dir("watch-determinism");
    let run = |tag: &str| {
        let summary = dir.join(format!("SUM_{tag}.json"));
        let out = chaos(&[
            "--smoke",
            "--watch",
            "100ms",
            "--seed",
            "7",
            "--ops-per-client",
            "120",
            "--results-out",
            dir.join(format!("BENCH_{tag}.json")).to_str().unwrap(),
            "--summary-out",
            summary.to_str().unwrap(),
            "--dump-dir",
            dir.join(format!("flight_{tag}")).to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("chaos[watch]"),
            "watch lines stream to stderr"
        );
        std::fs::read_to_string(summary).expect("summary written")
    };
    let a = run("a");
    let b = run("b");
    assert_eq!(a, b, "same-seed watched runs write identical summaries");
    assert!(a.contains("\"type\":\"chaos_summary\""));
    assert!(a.contains("\"coverage\""));
    assert!(a.contains("\"monitor_actions\""));
    assert!(a.contains("\"window_shape\""));
    // The summary round-trips through the JSON parser.
    assert!(blunt_obs::Json::parse(a.trim()).is_ok());
}
