//! The multi-process acceptance run, end-to-end through the real binary:
//! three `chaos serve` processes on loopback Unix-domain sockets plus a
//! `chaos --connect` driver, light faults with amnesia crash windows. The
//! run must complete ≥ 10k operations with zero violations, survive
//! server crashes and recoveries mid-run, and write a schema-v3 summary
//! labeled with the socket transport and carrying per-server telemetry
//! sections. The driver must also write the merged cross-process flight
//! dump (span-attributed events from all three server processes) plus its
//! rendered diagram, and each serve process must leave its own
//! `serve-<id>.flight.jsonl` under `--dump-dir` at shutdown.
//!
//! This is the same topology the `net-smoke` CI job runs; keeping it as a
//! test too means `cargo test` alone exercises the process boundary.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use blunt_bench::parse_chaos_summary;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blunt-net-loop-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

/// Waits up to `limit` for `child`; kills it and panics on timeout.
fn wait_with_timeout(child: &mut Child, what: &str, limit: Duration) {
    let deadline = Instant::now() + limit;
    loop {
        match child.try_wait().expect("poll child") {
            Some(status) => {
                assert!(status.success(), "{what} exited with {status}");
                return;
            }
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                panic!("{what} still running after {limit:?}");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[test]
fn three_serve_processes_and_a_driver_survive_crashes_with_zero_violations() {
    let dir = tmp_dir("uds");
    let socks: Vec<String> = (0..3)
        .map(|i| dir.join(format!("s{i}.sock")).to_str().unwrap().to_string())
        .collect();
    let peers = socks.join(",");
    let fault_args = [
        "--fault-profile",
        "light",
        "--crash-len",
        "6",
        "--crash-period",
        "60",
        "--recovery",
        "amnesia",
        "--seed",
        "48879",
    ];

    let serve_dumps = dir.join("serve-dumps");
    let mut servers: Vec<Child> = (0..3)
        .map(|i| {
            Command::new(env!("CARGO_BIN_EXE_chaos"))
                .arg("serve")
                .args(["--listen", &socks[i]])
                .args(["--server-id", &i.to_string()])
                .args(["--servers", "3", "--clients", "4"])
                .args(["--peers", &peers])
                .args(["--dump-dir", serve_dumps.to_str().unwrap()])
                .args(fault_args)
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn chaos serve")
        })
        .collect();

    let summary_path = dir.join("SUM.json");
    let out = Command::new(env!("CARGO_BIN_EXE_chaos"))
        .args(["--smoke", "--connect", &peers])
        .args(fault_args)
        .args(["--ops-per-client", "2600"]) // 4 clients × 2 600 = 10 400 ops
        .args(["--summary-out", summary_path.to_str().unwrap()])
        .args(["--results-out", dir.join("BENCH.json").to_str().unwrap()])
        .args(["--dump-dir", dir.join("flight").to_str().unwrap()])
        .output()
        .expect("chaos driver runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "driver failed:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );

    for (i, s) in servers.iter_mut().enumerate() {
        wait_with_timeout(s, &format!("server {i}"), Duration::from_secs(30));
    }

    let summary = parse_chaos_summary(&std::fs::read_to_string(&summary_path).expect("summary"))
        .expect("summary parses");
    assert_eq!(summary.schema_version, 3);
    assert_eq!(summary.seed, 48879);
    assert_eq!(summary.configs.len(), 1);
    let cfg = &summary.configs[0];
    assert_eq!(cfg.name, "net.abd_k1_light");
    assert_eq!(cfg.transport, "uds", "loopback sockets are labeled uds");
    assert_eq!(cfg.ops, 10_400, "≥ 10k ops completed");
    assert_eq!(cfg.violations, 0, "linearizable over real sockets");
    assert!(
        cfg.recoveries >= 1,
        "at least one server crashed and recovered mid-run: {cfg:?}"
    );
    assert!(stdout.contains("verdict: all configurations linearizable"));

    // Schema v3: every server process shipped a telemetry section with
    // span-attributed flight events.
    assert_eq!(cfg.servers.len(), 3, "one telemetry section per server");
    for s in &cfg.servers {
        assert!(
            s.events > 0,
            "server {} telemetry counted no events",
            s.proc
        );
        assert!(
            s.span_events > 0,
            "server {} counted no span-attributed events",
            s.proc
        );
    }

    // The merged cross-process dump and its rendered diagram: events from
    // all three remote processes, span-attributed, on one timeline.
    let merged_text = std::fs::read_to_string(dir.join("flight").join("net.merged.flight.jsonl"))
        .expect("merged flight dump written");
    let merged = blunt_obs::FlightDump::parse(&merged_text).expect("merged dump parses");
    for sid in 0..3 {
        let proc = format!("s{sid}");
        assert!(
            merged
                .events
                .iter()
                .any(|e| e.proc == proc && e.span != blunt_obs::flight::SPAN_NONE),
            "merged dump has no span-attributed events from process {proc}"
        );
    }
    let diagram = std::fs::read_to_string(dir.join("flight").join("net.merged.diagram.txt"))
        .expect("merged diagram written");
    assert!(
        diagram.contains("[s0]"),
        "remote lanes are labeled:\n{diagram}"
    );

    // Satellite: each serve process drained its flight ring into
    // `serve-<id>.flight.jsonl` before exiting on Shutdown.
    for sid in 0..3 {
        let path = serve_dumps.join(format!("serve-{sid}.flight.jsonl"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("serve dump {} missing: {e}", path.display()));
        let dump = blunt_obs::FlightDump::parse(&text).expect("serve dump parses");
        assert!(!dump.is_empty(), "serve {sid} dump is empty");
    }
}
