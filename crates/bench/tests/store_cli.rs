//! End-to-end tests of the `chaos` binary's keyed-store and sweep modes:
//! the `--store --smoke` artifact set (bench results, run summary, batch
//! histogram), the `--sweep N` machine-readable per-seed verdict, and the
//! fail-fast usage errors guarding the new flags.

use std::path::PathBuf;
use std::process::Command;

use blunt_obs::Json;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blunt-store-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn chaos(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_chaos"))
        .args(args)
        .output()
        .expect("chaos runs")
}

fn read_json(path: &PathBuf) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    Json::parse(text.trim()).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

#[test]
fn store_smoke_writes_gated_counters_summary_and_batch_histogram() {
    let dir = tmp_dir("store-smoke");
    let results = dir.join("BENCH.json");
    let summary = dir.join("SUM.json");
    let hist = dir.join("hist.json");
    let out = chaos(&[
        "--store",
        "--smoke",
        "--seed",
        "42",
        "--ops-per-client",
        "150",
        "--results-out",
        results.to_str().unwrap(),
        "--summary-out",
        summary.to_str().unwrap(),
        "--batch-hist-out",
        hist.to_str().unwrap(),
        "--dump-dir",
        dir.join("flight").to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "store smoke must stay clean:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("keyed store linearizable per shard"),
        "{stdout}"
    );

    // The bench results hold exactly the gateable counters: deterministic
    // runtime.chaos.* values for ops / violations / monitor_actions.
    let bench = blunt_trace::regress::BenchResults::from_json(&read_json(&results))
        .expect("bench results parse");
    // StoreConfig::smoke has 4 clients; 4 × 150 ops.
    assert_eq!(
        bench.counter("runtime.chaos.smoke.store_light.ops"),
        Some(600)
    );
    assert_eq!(
        bench.counter("runtime.chaos.smoke.store_light.violations"),
        Some(0)
    );
    assert_eq!(
        bench.counter("runtime.chaos.smoke.store_light.monitor_actions"),
        Some(1_200)
    );
    assert!(bench
        .counters
        .iter()
        .all(|(name, _)| name.starts_with("runtime.chaos.")));
    // Throughput and batch-shape ride as phases (informational unless
    // --strict-times), never as gated counters.
    assert!(bench.phase("store_ops_per_sec.smoke.store_light").is_some());
    assert!(bench
        .phase("store_batch_per_flush_p50.smoke.store_light")
        .is_some());

    let sum = read_json(&summary);
    assert_eq!(
        sum.get("type").and_then(Json::as_str),
        Some("chaos_summary")
    );
    let configs = sum
        .get("configs")
        .and_then(Json::as_arr)
        .expect("configs array");
    assert_eq!(configs.len(), 1);
    assert_eq!(
        configs[0].get("name").and_then(Json::as_str),
        Some("smoke.store_light")
    );
    assert_eq!(
        configs[0].get("transport").and_then(Json::as_str),
        Some("in-process")
    );
    assert_eq!(configs[0].get("violations").and_then(Json::as_u64), Some(0));
    assert_eq!(configs[0].get("ops").and_then(Json::as_u64), Some(600));

    // The batch-size artifact: every flushed envelope is accounted for,
    // and a batch never exceeds the configured maximum (smoke's is 8).
    let h = read_json(&hist);
    assert_eq!(
        h.get("type").and_then(Json::as_str),
        Some("store_batch_histogram")
    );
    assert_eq!(h.get("schema_version").and_then(Json::as_u64), Some(1));
    let flushes = h.get("flushes").and_then(Json::as_u64).expect("flushes");
    let envelopes = h
        .get("envelopes")
        .and_then(Json::as_u64)
        .expect("envelopes");
    assert!(flushes > 0, "batches actually formed");
    assert!(envelopes >= flushes, "each flush carries ≥ 1 envelope");
    assert!(h.get("per_flush_max").and_then(Json::as_u64).unwrap() <= 8);
    assert!(!h.get("buckets").and_then(Json::as_arr).unwrap().is_empty());
}

#[test]
fn sweep_small_n_reports_every_seed_and_passes() {
    let dir = tmp_dir("sweep");
    let summary = dir.join("sweep.json");
    let out = chaos(&[
        "--sweep",
        "3",
        "--smoke",
        "--seed",
        "11",
        "--ops-per-client",
        "100",
        "--summary-out",
        summary.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "all smoke seeds linearize:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("3/3 seeds linearizable"), "{stdout}");

    let doc = read_json(&summary);
    assert_eq!(doc.get("type").and_then(Json::as_str), Some("chaos_sweep"));
    assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("workload").and_then(Json::as_str), Some("abd_k1"));
    assert_eq!(doc.get("base_seed").and_then(Json::as_u64), Some(11));
    assert_eq!(doc.get("seeds").and_then(Json::as_u64), Some(3));
    assert_eq!(doc.get("failed").and_then(Json::as_u64), Some(0));
    let runs = doc.get("runs").and_then(Json::as_arr).expect("runs array");
    assert_eq!(runs.len(), 3);
    for (i, run) in runs.iter().enumerate() {
        assert_eq!(
            run.get("seed").and_then(Json::as_u64),
            Some(11 + i as u64),
            "seeds are consecutive from the base"
        );
        assert_eq!(run.get("violations").and_then(Json::as_u64), Some(0));
        assert_eq!(run.get("pass").and_then(Json::as_bool), Some(true));
        assert!(run.get("ops").and_then(Json::as_u64).unwrap() > 0);
        assert!(run.get("offered").and_then(Json::as_u64).unwrap() > 0);
        // Stable-recovery sweeps report the field at zero; amnesia
        // sweeps fill it in (covered below for the keyed store).
        assert_eq!(run.get("recoveries").and_then(Json::as_u64), Some(0));
    }
}

#[test]
fn sweep_covers_the_keyed_store_too() {
    let dir = tmp_dir("sweep-store");
    let summary = dir.join("sweep.json");
    let out = chaos(&[
        "--sweep",
        "2",
        "--store",
        "--smoke",
        "--seed",
        "21",
        "--ops-per-client",
        "75",
        "--summary-out",
        summary.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = read_json(&summary);
    assert_eq!(doc.get("workload").and_then(Json::as_str), Some("store"));
    assert_eq!(doc.get("failed").and_then(Json::as_u64), Some(0));
    let runs = doc.get("runs").and_then(Json::as_arr).expect("runs array");
    assert_eq!(runs.len(), 2);
    // StoreConfig::smoke has 4 clients; 4 × 75 ops per seed.
    for run in runs {
        assert_eq!(run.get("ops").and_then(Json::as_u64), Some(300));
    }
}

#[test]
fn sweep_accepts_amnesia_store_configs_and_reports_per_seed_recoveries() {
    let dir = tmp_dir("sweep-amnesia");
    let summary = dir.join("sweep.json");
    let out = chaos(&[
        "--sweep",
        "2",
        "--store",
        "--smoke",
        "--fault-profile",
        "amnesia",
        "--seed",
        "48879",
        "--ops-per-client",
        "500",
        "--summary-out",
        summary.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "amnesia store sweep must stay clean:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = read_json(&summary);
    assert_eq!(doc.get("workload").and_then(Json::as_str), Some("store"));
    assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("failed").and_then(Json::as_u64), Some(0));
    let runs = doc.get("runs").and_then(Json::as_arr).expect("runs array");
    assert_eq!(runs.len(), 2);
    for run in runs {
        assert_eq!(run.get("violations").and_then(Json::as_u64), Some(0));
        // Crash windows fired and every crash was recovered from — a
        // sweep where no server ever forgot would vacuously pass.
        assert!(
            run.get("recoveries").and_then(Json::as_u64).unwrap() >= 1,
            "amnesia sweep run recovered nothing"
        );
    }
}

#[test]
fn store_flags_without_store_mode_are_usage_errors() {
    for flag in [
        ["--smoke", "--keys", "64"],
        ["--smoke", "--shards", "4"],
        ["--smoke", "--pipeline-depth", "2"],
        ["--smoke", "--batch", "8"],
    ] {
        let out = chaos(&flag);
        assert_eq!(
            out.status.code(),
            Some(2),
            "`{}` without --store is a usage error",
            flag[1]
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(flag[1]),
            "the error names the flag {}",
            flag[1]
        );
    }
}

#[test]
fn store_mode_rejects_remote_demo_and_oversized_topologies() {
    // The keyed amnesia demo pins one shard's recovery to the broken
    // mode, which only the in-process spawner can arrange per shard.
    let out = chaos(&[
        "--store",
        "--demo-amnesia",
        "--connect",
        "/tmp/nonexistent.sock",
    ]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "--store --demo-amnesia over --connect is a usage error"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("in-process") && err.contains("--connect"),
        "the error explains the in-process restriction: {err}"
    );

    // 22 shards × 3 replicas = 66 > the 64-pid responder ceiling.
    let out = chaos(&["--store", "--smoke", "--shards", "22"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("64-pid"),
        "the error explains the ceiling"
    );
}

#[test]
fn store_demo_amnesia_is_caught_by_the_forgetful_shards_monitor() {
    let dir = tmp_dir("store-demo-amnesia");
    let out = chaos(&[
        "--store",
        "--demo-amnesia",
        "--seed",
        "48879",
        "--results-out",
        dir.join("BENCH.json").to_str().unwrap(),
        "--summary-out",
        dir.join("SUM.json").to_str().unwrap(),
        "--batch-hist-out",
        dir.join("hist.json").to_str().unwrap(),
        "--dump-dir",
        dir.join("flight").to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "the per-shard monitor must catch the recovery that forgets:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("caught the shard that forgot"), "{stdout}");
    // The violation window renders operation intervals.
    assert!(stdout.contains('┌') && stdout.contains('└'), "{stdout}");
    // The flight dump was written at the moment of detection.
    let jsonl = dir.join("flight").join("broken_store_amnesia.flight.jsonl");
    let dump_text = std::fs::read_to_string(&jsonl).expect("flight dump written");
    assert!(blunt_obs::FlightDump::parse(&dump_text).is_ok());
}

#[test]
fn store_demo_broken_is_caught_by_the_per_shard_monitor() {
    let dir = tmp_dir("store-demo");
    let out = chaos(&[
        "--store",
        "--smoke",
        "--demo-broken",
        "--results-out",
        dir.join("BENCH.json").to_str().unwrap(),
        "--summary-out",
        dir.join("SUM.json").to_str().unwrap(),
        "--batch-hist-out",
        dir.join("hist.json").to_str().unwrap(),
        "--dump-dir",
        dir.join("flight").to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "the monitor must catch the keyed broken read:\n{stdout}"
    );
    assert!(stdout.contains("caught the unsound keyed read"), "{stdout}");
    // The violation window renders operation intervals.
    assert!(stdout.contains('┌') && stdout.contains('└'), "{stdout}");
    // The flight dump was written at the moment of detection.
    let jsonl = dir.join("flight").join("smoke.store_light.flight.jsonl");
    let dump_text = std::fs::read_to_string(&jsonl).expect("flight dump written");
    assert!(blunt_obs::FlightDump::parse(&dump_text).is_ok());
}
