//! Schema compatibility for the `chaos_summary` document: the v2 reader
//! must keep reading committed v1 summaries (no `transport` label) and
//! must refuse schemas it does not know.

use blunt_bench::parse_chaos_summary;

/// A real v1 summary written by the pre-transport `chaos --smoke --seed
/// 48879` binary, committed verbatim.
const V1_FIXTURE: &str = include_str!("fixtures/chaos_summary_v1.json");

#[test]
fn v1_fixture_reads_with_in_process_transport_default() {
    let s = parse_chaos_summary(V1_FIXTURE).expect("v1 summary parses");
    assert_eq!(s.schema_version, 1);
    assert_eq!(s.seed, 48879);
    assert_eq!(s.mode, "smoke");
    assert!(!s.configs.is_empty());
    for c in &s.configs {
        assert_eq!(
            c.transport, "in-process",
            "v1 entries predate the transport label and were all in-process: {}",
            c.name
        );
        assert_eq!(c.violations, 0, "{} had violations in the fixture", c.name);
        assert!(c.ops > 0, "{} has no ops", c.name);
    }
    assert!(s.configs.iter().any(|c| c.name == "smoke.abd_k1_chaos"));
}

#[test]
fn v2_transport_labels_are_honored() {
    let v2 = r#"{"type":"chaos_summary","schema_version":2,"seed":7,"mode":"smoke",
        "configs":[
            {"name":"net.abd_k1_light","transport":"uds","ops":10400,"violations":0,"recoveries":3},
            {"name":"smoke.abd_k1_chaos","transport":"in-process","ops":2000,"violations":0,"recoveries":0}
        ]}"#;
    let s = parse_chaos_summary(v2).expect("v2 summary parses");
    assert_eq!(s.schema_version, 2);
    assert_eq!(s.configs[0].transport, "uds");
    assert_eq!(s.configs[0].recoveries, 3);
    assert_eq!(s.configs[1].transport, "in-process");
}

#[test]
fn unknown_future_schema_is_rejected_not_misread() {
    let v3 = r#"{"type":"chaos_summary","schema_version":3,"seed":7,"mode":"smoke","configs":[]}"#;
    let err = parse_chaos_summary(v3).expect_err("v3 must be rejected");
    assert!(err.contains("v3"), "error names the version: {err}");
}

#[test]
fn non_summary_documents_are_rejected() {
    assert!(parse_chaos_summary(r#"{"type":"coverage"}"#).is_err());
    assert!(parse_chaos_summary("not json").is_err());
}
