//! Schema compatibility for the `chaos_summary` document: the v3 reader
//! must keep reading committed v1 summaries (no `transport` label) and v2
//! summaries (no per-server telemetry sections), and must refuse schemas
//! it does not know.

use blunt_bench::parse_chaos_summary;

/// A real v1 summary written by the pre-transport `chaos --smoke --seed
/// 48879` binary, committed verbatim.
const V1_FIXTURE: &str = include_str!("fixtures/chaos_summary_v1.json");

/// A real v2 summary written by the pre-tracing `chaos --smoke --seed
/// 48879` binary (transport labels, no `servers` sections), committed
/// verbatim.
const V2_FIXTURE: &str = include_str!("fixtures/chaos_summary_v2.json");

#[test]
fn v1_fixture_reads_with_in_process_transport_default() {
    let s = parse_chaos_summary(V1_FIXTURE).expect("v1 summary parses");
    assert_eq!(s.schema_version, 1);
    assert_eq!(s.seed, 48879);
    assert_eq!(s.mode, "smoke");
    assert!(!s.configs.is_empty());
    for c in &s.configs {
        assert_eq!(
            c.transport, "in-process",
            "v1 entries predate the transport label and were all in-process: {}",
            c.name
        );
        assert_eq!(c.violations, 0, "{} had violations in the fixture", c.name);
        assert!(c.ops > 0, "{} has no ops", c.name);
        assert!(
            c.servers.is_empty(),
            "v1 entries predate per-server telemetry: {}",
            c.name
        );
    }
    assert!(s.configs.iter().any(|c| c.name == "smoke.abd_k1_chaos"));
}

#[test]
fn v2_fixture_reads_with_empty_server_sections() {
    let s = parse_chaos_summary(V2_FIXTURE).expect("v2 summary parses");
    assert_eq!(s.schema_version, 2);
    assert_eq!(s.seed, 48879);
    assert_eq!(s.mode, "smoke");
    assert!(!s.configs.is_empty());
    for c in &s.configs {
        assert_eq!(
            c.transport, "in-process",
            "the fixture run was all in-process: {}",
            c.name
        );
        assert_eq!(c.violations, 0, "{} had violations in the fixture", c.name);
        assert!(
            c.servers.is_empty(),
            "v2 entries predate per-server telemetry: {}",
            c.name
        );
    }
    assert!(s.configs.iter().any(|c| c.name == "smoke.abd_k1_chaos"));
}

#[test]
fn v2_transport_labels_are_honored() {
    let v2 = r#"{"type":"chaos_summary","schema_version":2,"seed":7,"mode":"smoke",
        "configs":[
            {"name":"net.abd_k1_light","transport":"uds","ops":10400,"violations":0,"recoveries":3},
            {"name":"smoke.abd_k1_chaos","transport":"in-process","ops":2000,"violations":0,"recoveries":0}
        ]}"#;
    let s = parse_chaos_summary(v2).expect("v2 summary parses");
    assert_eq!(s.schema_version, 2);
    assert_eq!(s.configs[0].transport, "uds");
    assert_eq!(s.configs[0].recoveries, 3);
    assert_eq!(s.configs[1].transport, "in-process");
}

#[test]
fn v3_per_server_telemetry_sections_are_parsed() {
    let v3 = r#"{"type":"chaos_summary","schema_version":3,"seed":7,"mode":"smoke",
        "configs":[
            {"name":"net.abd_k1_light","transport":"uds","ops":10400,"violations":0,"recoveries":3,
             "servers":[
                {"proc":"s0","recoveries":2,"crashes":2,"fsync_count":40,"fsync_p99_us":180,
                 "span_events":900,"events":1000,"clock_offset_us":-42},
                {"proc":"s1","recoveries":1,"crashes":1,"fsync_count":38,"fsync_p99_us":210,
                 "span_events":870,"events":950,"clock_offset_us":17}
             ]},
            {"name":"smoke.abd_k1_chaos","transport":"in-process","ops":2000,"violations":0,"recoveries":0}
        ]}"#;
    let s = parse_chaos_summary(v3).expect("v3 summary parses");
    assert_eq!(s.schema_version, 3);
    let net = &s.configs[0];
    assert_eq!(net.servers.len(), 2);
    assert_eq!(net.servers[0].proc, "s0");
    assert_eq!(net.servers[0].recoveries, 2);
    assert_eq!(net.servers[0].fsync_p99_us, 180);
    assert_eq!(net.servers[0].span_events, 900);
    assert_eq!(net.servers[0].clock_offset_us, -42);
    assert_eq!(net.servers[1].proc, "s1");
    assert_eq!(net.servers[1].clock_offset_us, 17);
    assert!(
        s.configs[1].servers.is_empty(),
        "in-process entries carry none"
    );
}

#[test]
fn unknown_future_schema_is_rejected_not_misread() {
    let v4 = r#"{"type":"chaos_summary","schema_version":4,"seed":7,"mode":"smoke","configs":[]}"#;
    let err = parse_chaos_summary(v4).expect_err("v4 must be rejected");
    assert!(err.contains("v4"), "error names the version: {err}");
}

#[test]
fn non_summary_documents_are_rejected() {
    assert!(parse_chaos_summary(r#"{"type":"coverage"}"#).is_err());
    assert!(parse_chaos_summary("not json").is_err());
}
