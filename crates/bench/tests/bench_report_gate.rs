//! End-to-end test of the `bench-report` regression gate: the compiled
//! binary must exit nonzero under `--check` when fed a doctored
//! `BENCH_results.json` whose counters regressed past the threshold, and
//! cleanly otherwise.

use std::path::PathBuf;
use std::process::Command;

const BASELINE: &str = r#"{"type":"bench_results","schema_version":1,
    "phases":[{"name":"e1","wall_ms":100.0}],
    "counters":[{"name":"sim.explore.states","value":1000}]}"#;

const DOCTORED: &str = r#"{"type":"bench_results","schema_version":1,
    "phases":[{"name":"e1","wall_ms":100.0}],
    "counters":[{"name":"sim.explore.states","value":2000}]}"#;

fn write_fixture(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blunt-bench-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write fixture");
    path
}

fn bench_report(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench-report"))
        .args(args)
        .output()
        .expect("bench-report runs")
}

#[test]
fn check_fails_on_a_doctored_regression() {
    let baseline = write_fixture("baseline.json", BASELINE);
    let doctored = write_fixture("doctored.json", DOCTORED);
    let out = bench_report(&[
        "--check",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        doctored.to_str().unwrap(),
    ]);
    assert!(
        !out.status.success(),
        "--check must exit nonzero on a 2x counter regression: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("verdict: REGRESSION"), "{stdout}");
}

#[test]
fn identical_results_pass_and_report_only_mode_never_fails() {
    let baseline = write_fixture("clean-baseline.json", BASELINE);
    let same = write_fixture("clean-current.json", BASELINE);
    let paths = [
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        same.to_str().unwrap(),
    ];
    let out = bench_report(&[&["--check"], &paths[..]].concat());
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("verdict: OK"));

    // Without --check a regression is reported but does not gate.
    let doctored = write_fixture("report-only.json", DOCTORED);
    let out = bench_report(&[
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        doctored.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("verdict: REGRESSION"));
}

#[test]
fn unreadable_input_exits_with_usage_error() {
    let out = bench_report(&["--baseline", "/nonexistent/baseline.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let out = bench_report(&["--bogus-flag"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn threshold_flag_is_honored() {
    let baseline = write_fixture("thr-baseline.json", BASELINE);
    let doctored = write_fixture("thr-current.json", DOCTORED);
    let out = bench_report(&[
        "--check",
        "--threshold",
        "1.5",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        doctored.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "a +150% threshold tolerates a 2x counter: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}
