//! End-to-end test of the `bench-report` regression gate: the compiled
//! binary must exit nonzero under `--check` when fed a doctored
//! `BENCH_results.json` whose counters regressed past the threshold, and
//! cleanly otherwise.

use std::path::PathBuf;
use std::process::Command;

const BASELINE: &str = r#"{"type":"bench_results","schema_version":1,
    "phases":[{"name":"e1","wall_ms":100.0}],
    "counters":[{"name":"sim.explore.states","value":1000}]}"#;

const DOCTORED: &str = r#"{"type":"bench_results","schema_version":1,
    "phases":[{"name":"e1","wall_ms":100.0}],
    "counters":[{"name":"sim.explore.states","value":2000}]}"#;

fn write_fixture(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blunt-bench-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write fixture");
    path
}

fn bench_report(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench-report"))
        .args(args)
        .output()
        .expect("bench-report runs")
}

#[test]
fn check_fails_on_a_doctored_regression() {
    let baseline = write_fixture("baseline.json", BASELINE);
    let doctored = write_fixture("doctored.json", DOCTORED);
    let out = bench_report(&[
        "--check",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        doctored.to_str().unwrap(),
    ]);
    assert!(
        !out.status.success(),
        "--check must exit nonzero on a 2x counter regression: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("verdict: REGRESSION"), "{stdout}");
}

#[test]
fn identical_results_pass_and_report_only_mode_never_fails() {
    let baseline = write_fixture("clean-baseline.json", BASELINE);
    let same = write_fixture("clean-current.json", BASELINE);
    let paths = [
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        same.to_str().unwrap(),
    ];
    let out = bench_report(&[&["--check"], &paths[..]].concat());
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("verdict: OK"));

    // Without --check a regression is reported but does not gate.
    let doctored = write_fixture("report-only.json", DOCTORED);
    let out = bench_report(&[
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        doctored.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("verdict: REGRESSION"));
}

#[test]
fn unreadable_input_exits_with_usage_error() {
    let out = bench_report(&["--baseline", "/nonexistent/baseline.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let out = bench_report(&["--bogus-flag"]);
    assert_eq!(out.status.code(), Some(2));
}

/// A baseline with the chaos runner's monitor-overhead quantities: the
/// deterministic `monitor_actions` counter (blocking) and the
/// timing-dependent `monitor.*` observe-time phase (gates only under
/// `--strict-times`).
const MONITOR_BASELINE: &str = r#"{"type":"bench_results","schema_version":1,
    "phases":[{"name":"smoke.abd_k1_chaos","wall_ms":400.0},
              {"name":"monitor.smoke.abd_k1_chaos","wall_ms":2.0},
              {"name":"monitor_lag_ops.smoke.abd_k1_chaos","wall_ms":40.0}],
    "counters":[{"name":"runtime.chaos.smoke.abd_k1_chaos.ops","value":2000},
                {"name":"runtime.chaos.smoke.abd_k1_chaos.violations","value":0},
                {"name":"runtime.chaos.smoke.abd_k1_chaos.monitor_actions","value":4000}]}"#;

#[test]
fn monitor_actions_counter_regression_blocks() {
    let baseline = write_fixture("mon-baseline.json", MONITOR_BASELINE);
    // The monitor silently observing twice per op more than it should —
    // e.g. duplicated action reporting — doubles the deterministic counter.
    let doctored = write_fixture(
        "mon-doctored.json",
        &MONITOR_BASELINE.replace(
            r#"monitor_actions","value":4000"#,
            r#"monitor_actions","value":8000"#,
        ),
    );
    let out = bench_report(&[
        "--check",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        doctored.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("monitor_actions") && stdout.contains("REGRESSED"),
        "{stdout}"
    );

    // The regenerated baseline compared against itself is clean.
    let same = write_fixture("mon-same.json", MONITOR_BASELINE);
    let out = bench_report(&[
        "--check",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        same.to_str().unwrap(),
    ]);
    assert!(out.status.success());
}

#[test]
fn monitor_observe_phase_gates_only_under_strict_times() {
    let baseline = write_fixture("mon-phase-baseline.json", MONITOR_BASELINE);
    // Monitor observe time blowing up 10x: a real overhead regression, but
    // wall-time, so informational by default.
    let doctored = write_fixture(
        "mon-phase-doctored.json",
        &MONITOR_BASELINE.replace(
            r#""monitor.smoke.abd_k1_chaos","wall_ms":2.0"#,
            r#""monitor.smoke.abd_k1_chaos","wall_ms":20.0"#,
        ),
    );
    let paths = [
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        doctored.to_str().unwrap(),
    ];
    let out = bench_report(&[&["--check"], &paths[..]].concat());
    assert!(
        out.status.success(),
        "times are informational without --strict-times: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let out = bench_report(&[&["--check", "--strict-times"], &paths[..]].concat());
    assert_eq!(
        out.status.code(),
        Some(1),
        "--strict-times gates the monitor-overhead phase"
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("monitor.smoke.abd_k1_chaos"));
}

#[test]
fn threshold_flag_is_honored() {
    let baseline = write_fixture("thr-baseline.json", BASELINE);
    let doctored = write_fixture("thr-current.json", DOCTORED);
    let out = bench_report(&[
        "--check",
        "--threshold",
        "1.5",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        doctored.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "a +150% threshold tolerates a 2x counter: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}
