//! Benchmarks for the linearizability checkers (experiments E6/E7).

use blunt_abd::scenarios::weakener_abd;
use blunt_bench::seeded_history;
use blunt_core::history::History;
use blunt_core::ids::{MethodId, ObjId};
use blunt_core::spec::RegisterSpec;
use blunt_core::value::Val;
use blunt_lincheck::strong::check_strong;
use blunt_lincheck::tree::ExecTree;
use blunt_lincheck::wgl::check_linearizable;
use blunt_sim::kernel::run;
use blunt_sim::rng::Tape;
use blunt_sim::trace::Trace;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn sample_histories(count: u64) -> Vec<History> {
    (0..count)
        .map(|s| seeded_history(weakener_abd(2), s, ObjId(0), 300_000))
        .collect()
}

fn bench_wgl(c: &mut Criterion) {
    let mut g = c.benchmark_group("lincheck/wgl");
    let spec = RegisterSpec::new(Val::Nil);
    let histories = sample_histories(16);
    g.bench_function("abd2_weakener_histories", |b| {
        b.iter(|| {
            for h in &histories {
                assert!(check_linearizable(black_box(h), &spec).is_ok());
            }
        });
    });
    g.finish();
}

fn fig1_traces() -> Vec<Trace> {
    (0..2usize)
        .map(|coin| {
            run(
                weakener_abd(1),
                &mut blunt_adversary::fig1::fig1_script(coin),
                &mut Tape::new(vec![coin]),
                true,
                10_000,
            )
            .unwrap()
            .trace
        })
        .collect()
}

fn bench_strong(c: &mut Criterion) {
    let mut g = c.benchmark_group("lincheck/strong");
    let traces = fig1_traces();
    let spec = RegisterSpec::new(Val::Nil);
    g.bench_function("fig1_tree_refutation_pi0", |b| {
        let tree = ExecTree::build(&traces, ObjId(0), |_| false);
        b.iter(|| assert!(!check_strong(black_box(&tree), &spec)));
    });
    g.bench_function("fig1_tree_tail_pi_abd", |b| {
        let tree = ExecTree::build(&traces, ObjId(0), |m| {
            m == MethodId::READ || m == MethodId::WRITE
        });
        b.iter(|| assert!(check_strong(black_box(&tree), &spec)));
    });
    g.finish();
}

fn bench_tree_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("lincheck/tree-build");
    let traces = fig1_traces();
    for n in [2usize, 8, 16] {
        // Repeat the two traces to simulate larger sampled forests.
        let many: Vec<Trace> = traces.iter().cycle().take(n).cloned().collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &many, |b, many| {
            b.iter(|| ExecTree::build(black_box(many), ObjId(0), |_| false));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_wgl, bench_strong, bench_tree_build);
criterion_main!(benches);
