//! Benchmarks for the linearizability checkers (experiments E6/E7).
//!
//! Run with `cargo bench -p blunt-bench --bench lincheck`.

use blunt_abd::scenarios::weakener_abd;
use blunt_bench::seeded_history;
use blunt_bench::timing::bench;
use blunt_core::history::History;
use blunt_core::ids::{MethodId, ObjId};
use blunt_core::spec::RegisterSpec;
use blunt_core::value::Val;
use blunt_lincheck::strong::check_strong;
use blunt_lincheck::tree::ExecTree;
use blunt_lincheck::wgl::check_linearizable;
use blunt_sim::kernel::run;
use blunt_sim::rng::Tape;
use blunt_sim::trace::Trace;
use std::hint::black_box;

fn sample_histories(count: u64) -> Vec<History> {
    (0..count)
        .map(|s| seeded_history(weakener_abd(2), s, ObjId(0), 300_000))
        .collect()
}

fn fig1_traces() -> Vec<Trace> {
    (0..2usize)
        .map(|coin| {
            run(
                weakener_abd(1),
                &mut blunt_adversary::fig1::fig1_script(coin),
                &mut Tape::new(vec![coin]),
                true,
                10_000,
            )
            .unwrap()
            .trace
        })
        .collect()
}

fn main() {
    let spec = RegisterSpec::new(Val::Nil);

    let histories = sample_histories(16);
    bench("lincheck/wgl/abd2_weakener_histories", || {
        for h in &histories {
            assert!(check_linearizable(black_box(h), &spec).is_ok());
        }
    });

    let traces = fig1_traces();
    let tree_pi0 = ExecTree::build(&traces, ObjId(0), |_| false);
    bench("lincheck/strong/fig1_tree_refutation_pi0", || {
        assert!(!check_strong(black_box(&tree_pi0), &spec));
    });
    let tree_abd = ExecTree::build(&traces, ObjId(0), |m| {
        m == MethodId::READ || m == MethodId::WRITE
    });
    bench("lincheck/strong/fig1_tree_tail_pi_abd", || {
        assert!(check_strong(black_box(&tree_abd), &spec));
    });

    for n in [2usize, 8, 16] {
        // Repeat the two traces to simulate larger sampled forests.
        let many: Vec<Trace> = traces.iter().cycle().take(n).cloned().collect();
        bench(&format!("lincheck/tree-build/{n}"), || {
            ExecTree::build(black_box(&many), ObjId(0), |_| false);
        });
    }
}
