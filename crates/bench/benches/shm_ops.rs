//! Per-operation cost of the shared-memory constructions and the network
//! substrate — the microbenchmarks behind experiment E8's shared-memory
//! columns.
//!
//! Run with `cargo bench -p blunt-bench --bench shm_ops`.

use blunt_bench::timing::bench;
use blunt_core::ids::Pid;
use blunt_core::value::Val;
use blunt_registers::israeli_li::{self, IlOp};
use blunt_registers::shm::{CellSpec, Shm, ShmLayout};
use blunt_registers::snapshot::{self, SnapshotOp};
use blunt_registers::twophase::{IterEffect, IteratedOp, ShmOp};
use blunt_registers::vitanyi_awerbuch::{self, VaOp};
use blunt_sim::network::Network;
use std::hint::black_box;

const N: usize = 3;

fn snapshot_layout() -> (ShmLayout, Shm) {
    let mut l = ShmLayout::new();
    for i in 0..N {
        l.push(CellSpec::single_writer(
            Pid(i as u32),
            N,
            snapshot::make_cell(Val::Nil, 0, vec![Val::Nil; N]),
            format!("M[{i}]"),
        ));
    }
    let m = l.initial_memory();
    (l, m)
}

fn va_layout() -> (ShmLayout, Shm) {
    let mut l = ShmLayout::new();
    for i in 0..N {
        l.push(CellSpec::single_writer(
            Pid(i as u32),
            N,
            vitanyi_awerbuch::make_cell(Val::Nil, 0, 0),
            format!("Val[{i}]"),
        ));
    }
    let m = l.initial_memory();
    (l, m)
}

fn il_layout() -> (ShmLayout, Shm) {
    let mut l = ShmLayout::new();
    for i in 0..N {
        l.push(CellSpec::single_reader(
            Pid(0),
            Pid(i as u32),
            israeli_li::make_cell(Val::Nil, 0),
            format!("Val[{i}]"),
        ));
    }
    for i in 0..N {
        for j in 0..N {
            l.push(CellSpec::single_reader(
                Pid(i as u32),
                Pid(j as u32),
                israeli_li::make_cell(Val::Nil, 0),
                format!("Report[{i}][{j}]"),
            ));
        }
    }
    let m = l.initial_memory();
    (l, m)
}

fn drive<O: ShmOp>(mut op: IteratedOp<O>, shm: &mut Shm, layout: &ShmLayout) -> Val {
    loop {
        match op.step(shm, layout) {
            IterEffect::Complete(v) => return v,
            IterEffect::NeedChoice { .. } => op.choose(0),
            _ => {}
        }
    }
}

fn main() {
    for k in [1u32, 2, 4, 8] {
        {
            let (l, mut m) = snapshot_layout();
            bench(&format!("shm/op-vs-k/snapshot-scan/{k}"), || {
                drive(
                    IteratedOp::new(SnapshotOp::scan(Pid(2), 0, N), black_box(k)),
                    &mut m,
                    &l,
                );
            });
        }
        {
            let (l, mut m) = va_layout();
            bench(&format!("shm/op-vs-k/va-read/{k}"), || {
                drive(
                    IteratedOp::new(VaOp::read(Pid(2), 0, N), black_box(k)),
                    &mut m,
                    &l,
                );
            });
        }
        {
            let (l, mut m) = il_layout();
            bench(&format!("shm/op-vs-k/il-read/{k}"), || {
                drive(
                    IteratedOp::new(IlOp::read(Pid(2), 0, N), black_box(k)),
                    &mut m,
                    &l,
                );
            });
        }
    }

    {
        let (l, mut m) = va_layout();
        bench("shm/write-ops/va-write", || {
            drive(
                IteratedOp::new(VaOp::write(Pid(0), 0, N, Val::Int(7)), 1),
                &mut m,
                &l,
            );
        });
    }
    {
        let (l, mut m) = il_layout();
        let mut seq = 0i64;
        bench("shm/write-ops/il-write", || {
            seq += 1;
            drive(
                IteratedOp::new(IlOp::write(Pid(0), 0, N, Val::Int(7), seq), 1),
                &mut m,
                &l,
            );
        });
    }
    {
        let (l, mut m) = snapshot_layout();
        let mut seq = 0i64;
        bench("shm/write-ops/snapshot-update", || {
            seq += 1;
            drive(
                IteratedOp::new(
                    SnapshotOp::update(Pid(0), 0, N, 0, Val::Int(7), seq, false),
                    1,
                ),
                &mut m,
                &l,
            );
        });
    }

    bench("shm/network-substrate/broadcast-deliver-roundtrip", || {
        let mut net: Network<u32> = Network::new(8);
        for i in 0..8u32 {
            net.broadcast(Pid(i % 8), black_box(i));
        }
        while let Some(&slot) = net.deliverable().first() {
            let _ = net.take(slot);
        }
        black_box(&net);
    });
}
