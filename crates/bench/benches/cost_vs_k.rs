//! The time-complexity side of the paper's trade-off (Sections 4.2 & 7,
//! experiment E8): the cost of one weakener run grows with the number of
//! preamble iterations `k`.
//!
//! Run with `cargo bench -p blunt-bench --bench cost_vs_k`.

use blunt_abd::scenarios::{weakener_abd, weakener_abd_fused};
use blunt_bench::timing::bench;
use blunt_registers::scenarios::{sw_weakener_il, weakener_va};
use blunt_sim::kernel::run;
use blunt_sim::rng::SplitMix64;
use blunt_sim::sched::RandomScheduler;
use std::hint::black_box;

fn main() {
    for k in [1u32, 2, 4, 8, 16] {
        let mut seed = 0u64;
        bench(&format!("cost/abd-weakener-run/{k}"), || {
            seed += 1;
            run(
                black_box(weakener_abd(k)),
                &mut RandomScheduler::new(seed),
                &mut SplitMix64::new(seed),
                false,
                2_000_000,
            )
            .unwrap();
        });
    }

    for k in [1u32, 2, 4] {
        let mut seed = 0u64;
        bench(&format!("cost/fused-abd-weakener-run/{k}"), || {
            seed += 1;
            run(
                black_box(weakener_abd_fused(k)),
                &mut RandomScheduler::new(seed),
                &mut SplitMix64::new(seed),
                false,
                2_000_000,
            )
            .unwrap();
        });
    }

    for k in [1u32, 2, 4] {
        let mut seed = 0u64;
        bench(&format!("cost/shm-weakener-run/va/{k}"), || {
            seed += 1;
            run(
                black_box(weakener_va(k)),
                &mut RandomScheduler::new(seed),
                &mut SplitMix64::new(seed),
                false,
                2_000_000,
            )
            .unwrap();
        });
        let mut seed = 0u64;
        bench(&format!("cost/shm-weakener-run/il/{k}"), || {
            seed += 1;
            run(
                black_box(sw_weakener_il(k)),
                &mut RandomScheduler::new(seed),
                &mut SplitMix64::new(seed),
                false,
                2_000_000,
            )
            .unwrap();
        });
    }
}
