//! The time-complexity side of the paper's trade-off (Sections 4.2 & 7,
//! experiment E8): the cost of one weakener run grows with the number of
//! preamble iterations `k`.

use blunt_abd::scenarios::{weakener_abd, weakener_abd_fused};
use blunt_registers::scenarios::{sw_weakener_il, weakener_va};
use blunt_sim::kernel::run;
use blunt_sim::rng::SplitMix64;
use blunt_sim::sched::RandomScheduler;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_abd_run_vs_k(c: &mut Criterion) {
    let mut g = c.benchmark_group("cost/abd-weakener-run");
    for k in [1u32, 2, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run(
                    black_box(weakener_abd(k)),
                    &mut RandomScheduler::new(seed),
                    &mut SplitMix64::new(seed),
                    false,
                    2_000_000,
                )
                .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_fused_abd_run_vs_k(c: &mut Criterion) {
    let mut g = c.benchmark_group("cost/fused-abd-weakener-run");
    for k in [1u32, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run(
                    black_box(weakener_abd_fused(k)),
                    &mut RandomScheduler::new(seed),
                    &mut SplitMix64::new(seed),
                    false,
                    2_000_000,
                )
                .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_shm_runs_vs_k(c: &mut Criterion) {
    let mut g = c.benchmark_group("cost/shm-weakener-run");
    for k in [1u32, 2, 4] {
        g.bench_with_input(BenchmarkId::new("va", k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run(
                    black_box(weakener_va(k)),
                    &mut RandomScheduler::new(seed),
                    &mut SplitMix64::new(seed),
                    false,
                    2_000_000,
                )
                .unwrap()
            });
        });
        g.bench_with_input(BenchmarkId::new("il", k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run(
                    black_box(sw_weakener_il(k)),
                    &mut RandomScheduler::new(seed),
                    &mut SplitMix64::new(seed),
                    false,
                    2_000_000,
                )
                .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_abd_run_vs_k,
    bench_fused_abd_run_vs_k,
    bench_shm_runs_vs_k
);
criterion_main!(benches);
