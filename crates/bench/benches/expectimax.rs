//! Benchmarks for the exact adversary explorer — the performance-critical
//! piece behind experiments E1–E4 (DESIGN.md, design decision 1).
//!
//! Run with `cargo bench -p blunt-bench --bench expectimax`.

use blunt_abd::scenarios::{weakener_abd_fused, weakener_atomic};
use blunt_bench::timing::bench;
use blunt_programs::weakener::is_bad;
use blunt_sim::explore::{best_case_prob, worst_case_prob, ExploreBudget};
use blunt_sim::toy::{BranchGame, TwoCoinGame};
use std::hint::black_box;

fn main() {
    // Toy games.
    bench("expectimax/toy/branch_game", || {
        worst_case_prob(
            black_box(&BranchGame::new()),
            &BranchGame::is_bad,
            &ExploreBudget::default(),
        )
        .unwrap();
    });
    bench("expectimax/toy/two_coin_game", || {
        worst_case_prob(
            black_box(&TwoCoinGame::new()),
            &TwoCoinGame::is_bad,
            &ExploreBudget::default(),
        )
        .unwrap();
    });

    // Atomic weakener, worst and best case.
    bench("expectimax/atomic-weakener/worst_case", || {
        worst_case_prob(
            black_box(&weakener_atomic()),
            &is_bad,
            &ExploreBudget::default(),
        )
        .unwrap();
    });
    bench("expectimax/atomic-weakener/best_case", || {
        best_case_prob(
            black_box(&weakener_atomic()),
            &is_bad,
            &ExploreBudget::default(),
        )
        .unwrap();
    });

    // Fingerprint vs exact memoization on the same (small) game; the
    // trade-off motivating ExploreBudget::fingerprinted.
    bench("expectimax/memo-mode/exact_memo", || {
        worst_case_prob(
            black_box(&weakener_atomic()),
            &is_bad,
            &ExploreBudget::with_max_states(1_000_000),
        )
        .unwrap();
    });
    bench("expectimax/memo-mode/fingerprint_memo", || {
        worst_case_prob(
            black_box(&weakener_atomic()),
            &is_bad,
            &ExploreBudget::with_max_states(1_000_000).fingerprinted(),
        )
        .unwrap();
    });

    // A budget-capped partial exploration of the fused ABD game: measures
    // raw state-expansion throughput (states/second) on the real system.
    bench("expectimax/fused-abd-partial/k1_40k_states", || {
        let _ = worst_case_prob(
            black_box(&weakener_abd_fused(1)),
            &is_bad,
            &ExploreBudget::with_max_states(40_000),
        );
    });
}
