//! Benchmarks for the exact adversary explorer — the performance-critical
//! piece behind experiments E1–E4 (DESIGN.md, design decision 1).

use blunt_abd::scenarios::{weakener_abd_fused, weakener_atomic};
use blunt_programs::weakener::is_bad;
use blunt_sim::explore::{best_case_prob, worst_case_prob, ExploreBudget};
use blunt_sim::toy::{BranchGame, TwoCoinGame};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_toy_games(c: &mut Criterion) {
    let mut g = c.benchmark_group("expectimax/toy");
    g.bench_function("branch_game", |b| {
        b.iter(|| {
            worst_case_prob(
                black_box(&BranchGame::new()),
                &BranchGame::is_bad,
                &ExploreBudget::default(),
            )
            .unwrap()
        });
    });
    g.bench_function("two_coin_game", |b| {
        b.iter(|| {
            worst_case_prob(
                black_box(&TwoCoinGame::new()),
                &TwoCoinGame::is_bad,
                &ExploreBudget::default(),
            )
            .unwrap()
        });
    });
    g.finish();
}

fn bench_atomic_weakener(c: &mut Criterion) {
    let mut g = c.benchmark_group("expectimax/atomic-weakener");
    g.sample_size(20);
    g.bench_function("worst_case", |b| {
        b.iter(|| {
            worst_case_prob(
                black_box(&weakener_atomic()),
                &is_bad,
                &ExploreBudget::default(),
            )
            .unwrap()
        });
    });
    g.bench_function("best_case", |b| {
        b.iter(|| {
            best_case_prob(
                black_box(&weakener_atomic()),
                &is_bad,
                &ExploreBudget::default(),
            )
            .unwrap()
        });
    });
    g.finish();
}

fn bench_memo_modes(c: &mut Criterion) {
    // Fingerprint vs exact memoization on the same (small) game; the
    // trade-off motivating ExploreBudget::fingerprinted.
    let mut g = c.benchmark_group("expectimax/memo-mode");
    g.sample_size(20);
    g.bench_function("exact_memo", |b| {
        b.iter(|| {
            worst_case_prob(
                black_box(&weakener_atomic()),
                &is_bad,
                &ExploreBudget::with_max_states(1_000_000),
            )
            .unwrap()
        });
    });
    g.bench_function("fingerprint_memo", |b| {
        b.iter(|| {
            worst_case_prob(
                black_box(&weakener_atomic()),
                &is_bad,
                &ExploreBudget::with_max_states(1_000_000).fingerprinted(),
            )
            .unwrap()
        });
    });
    g.finish();
}

fn bench_fused_partial(c: &mut Criterion) {
    // A budget-capped partial exploration of the fused ABD game: measures
    // raw state-expansion throughput (states/second) on the real system.
    let mut g = c.benchmark_group("expectimax/fused-abd-partial");
    g.sample_size(10);
    g.bench_function("k1_40k_states", |b| {
        b.iter(|| {
            let _ = worst_case_prob(
                black_box(&weakener_abd_fused(1)),
                &is_bad,
                &ExploreBudget::with_max_states(40_000),
            );
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_toy_games,
    bench_atomic_weakener,
    bench_memo_modes,
    bench_fused_partial
);
criterion_main!(benches);
