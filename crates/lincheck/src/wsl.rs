//! Write strong linearizability (WSL) — the weakening of strong
//! linearizability discussed in the paper's Section 6 (Hadzilacos, Hu,
//! Toueg, PODC 2021).
//!
//! WSL requires executions to map to linearizations whose **projections
//! onto write operations** are prefix-preserving; reads may be re-linearized
//! freely between executions. The paper notes that neither the multi-writer
//! ABD nor its preamble-iterated version is WSL — which this checker
//! confirms on the Figure 1 execution tree (see the crate's tests and the
//! root-level integration tests).
//!
//! The search mirrors [`crate::strong`]: at each node, choose a
//! linearization of the node's history whose write order extends the
//! committed write order inherited from the parent (existential), such that
//! every child can extend it further (universal). Only the write order is
//! inherited — the per-node reads are re-chosen each time.

use crate::tree::{ExecTree, NodeId};
use blunt_core::history::{Action, History};
use blunt_core::ids::{InvId, MethodId};
use blunt_core::spec::SequentialSpec;
use blunt_core::value::Val;
use std::collections::BTreeSet;

struct OpView {
    inv: InvId,
    method: MethodId,
    arg: Val,
    ret: Option<Val>,
    call_pos: usize,
    ret_pos: Option<usize>,
}

fn ops_of(history: &History) -> Vec<OpView> {
    let mut ops: Vec<OpView> = history
        .invocations()
        .into_iter()
        .map(|r| OpView {
            inv: r.inv,
            method: r.method,
            arg: r.arg,
            ret: r.ret,
            call_pos: 0,
            ret_pos: None,
        })
        .collect();
    for (pos, a) in history.actions().iter().enumerate() {
        match a {
            Action::Call { inv, .. } => {
                if let Some(o) = ops.iter_mut().find(|o| o.inv == *inv) {
                    o.call_pos = pos;
                }
            }
            Action::Return { inv, .. } => {
                if let Some(o) = ops.iter_mut().find(|o| o.inv == *inv) {
                    o.ret_pos = Some(pos);
                }
            }
        }
    }
    ops
}

/// Which methods count as *writes* for the projection.
pub type WritePredicate = fn(MethodId) -> bool;

struct Checker<'a, S: SequentialSpec> {
    tree: &'a ExecTree,
    spec: &'a S,
    is_write: WritePredicate,
    /// DFS states tried, in a `Cell` because the recursion takes `&self`;
    /// flushed to the global registry once per [`check_wsl`] call.
    states_tried: std::cell::Cell<u64>,
}

impl<'a, S: SequentialSpec> Checker<'a, S> {
    fn node_ok(&self, id: NodeId, committed: &[InvId]) -> bool {
        let history = self.tree.history_at(id);
        let ops = ops_of(&history);
        self.search(id, &ops, &history, committed)
    }

    /// Searches for a linearization of `history` whose write projection
    /// starts with `committed`, then recurses into children with the
    /// resulting (possibly longer) write commitment.
    fn search(&self, id: NodeId, ops: &[OpView], history: &History, committed: &[InvId]) -> bool {
        // DFS over linearization prefixes: (placed set, spec state, how many
        // committed writes already emitted, write order emitted so far).
        self.dfs(
            id,
            ops,
            history,
            committed,
            &BTreeSet::new(),
            &self.spec.init(),
            0,
            &mut Vec::new(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        id: NodeId,
        ops: &[OpView],
        history: &History,
        committed: &[InvId],
        placed: &BTreeSet<InvId>,
        state: &S::State,
        committed_used: usize,
        writes_emitted: &mut Vec<InvId>,
    ) -> bool {
        self.states_tried.set(self.states_tried.get() + 1);
        // Stop condition: all completed ops placed AND the full committed
        // write prefix consumed — then this linearization candidate is
        // valid for the node; try the children with the emitted write order.
        let all_completed_placed = ops
            .iter()
            .all(|o| o.ret_pos.is_none() || placed.contains(&o.inv));
        if all_completed_placed && committed_used == committed.len() {
            let node = self.tree.node(id);
            if node
                .children
                .iter()
                .all(|&c| self.node_ok(c, writes_emitted))
            {
                return true;
            }
        }
        let _ = history;
        let frontier = ops
            .iter()
            .filter(|o| !placed.contains(&o.inv) && o.ret_pos.is_some())
            .map(|o| o.ret_pos.unwrap())
            .min()
            .unwrap_or(usize::MAX);
        for o in ops {
            if placed.contains(&o.inv) || o.call_pos > frontier {
                continue;
            }
            let is_w = (self.is_write)(o.method);
            if is_w {
                // Writes must follow the committed order while it lasts.
                if committed_used < committed.len() && committed[committed_used] != o.inv {
                    continue;
                }
            }
            let Some((next_state, val)) = self.spec.apply(state, o.method, &o.arg) else {
                continue;
            };
            if let Some(actual) = &o.ret {
                if *actual != val {
                    continue;
                }
            }
            let mut placed2 = placed.clone();
            placed2.insert(o.inv);
            let next_used = committed_used + usize::from(is_w && committed_used < committed.len());
            if is_w {
                writes_emitted.push(o.inv);
            }
            let ok = self.dfs(
                id,
                ops,
                history,
                committed,
                &placed2,
                &next_state,
                next_used,
                writes_emitted,
            );
            if is_w {
                writes_emitted.pop();
            }
            if ok {
                return true;
            }
        }
        false
    }
}

/// Decides write strong linearizability of the execution tree w.r.t.
/// `spec`, with `is_write` classifying the write-like methods.
///
/// Note: unlike [`crate::strong::check_strong`], completeness flags are
/// ignored — WSL is defined over all executions.
#[must_use]
pub fn check_wsl<S: SequentialSpec>(tree: &ExecTree, spec: &S, is_write: WritePredicate) -> bool {
    let checker = Checker {
        tree,
        spec,
        is_write,
        states_tried: std::cell::Cell::new(0),
    };
    let ok = checker.node_ok(tree.root(), &[]);
    blunt_obs::static_counter!("lincheck.wsl.checks").inc();
    blunt_obs::static_counter!("lincheck.wsl.states_tried").add(checker.states_tried.get());
    ok
}

/// The conventional write predicate for registers.
#[must_use]
pub fn register_writes(m: MethodId) -> bool {
    m == MethodId::WRITE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ExecTree;
    use blunt_core::ids::{CallSite, ObjId, Pid};
    use blunt_core::spec::RegisterSpec;
    use blunt_sim::trace::{Trace, TraceEvent};

    fn call_ev(inv: u64, method: MethodId, arg: Val) -> TraceEvent {
        TraceEvent::Call {
            inv: InvId(inv),
            pid: Pid((inv % 3) as u32),
            obj: ObjId(0),
            method,
            arg,
            site: CallSite::new(Pid(0), 1, 0),
        }
    }

    fn ret_ev(inv: u64, val: Val) -> TraceEvent {
        TraceEvent::Return {
            inv: InvId(inv),
            pid: Pid((inv % 3) as u32),
            val,
        }
    }

    fn trace(events: Vec<TraceEvent>) -> Trace {
        let mut t = Trace::new();
        t.extend(events);
        t
    }

    fn reg() -> RegisterSpec {
        RegisterSpec::new(Val::Nil)
    }

    #[test]
    fn sequential_trace_is_wsl() {
        let t = trace(vec![
            call_ev(0, MethodId::WRITE, Val::Int(1)),
            ret_ev(0, Val::Nil),
            call_ev(1, MethodId::READ, Val::Nil),
            ret_ev(1, Val::Int(1)),
        ]);
        let tree = ExecTree::build(&[t], ObjId(0), |_| false);
        assert!(check_wsl(&tree, &reg(), register_writes));
    }

    #[test]
    fn read_branches_are_wsl_even_when_not_strongly_linearizable() {
        // A read pending across a branch may resolve differently per branch
        // without committing any write order: WSL holds where strong
        // linearizability can fail.
        let prefix = vec![
            call_ev(0, MethodId::WRITE, Val::Int(1)),
            call_ev(1, MethodId::READ, Val::Nil),
        ];
        let mut a = prefix.clone();
        a.push(ret_ev(1, Val::Int(1)));
        let mut b = prefix;
        b.push(ret_ev(1, Val::Nil));
        let tree = ExecTree::build(&[trace(a), trace(b)], ObjId(0), |_| false);
        assert!(check_wsl(&tree, &reg(), register_writes));
    }

    #[test]
    fn conflicting_write_orders_refute_wsl() {
        // Two pending writes; branch A's reads force W0 < W1, branch B's
        // force W1 < W0 — both observed through reads that come AFTER the
        // branch point, so the write order must be committed at the shared
        // prefix. No write-prefix-preserving f exists.
        let prefix = vec![
            call_ev(0, MethodId::WRITE, Val::Int(0)),
            call_ev(1, MethodId::WRITE, Val::Int(1)),
            ret_ev(0, Val::Nil),
            ret_ev(1, Val::Nil),
        ];
        let mut a = prefix.clone();
        a.extend(vec![
            call_ev(2, MethodId::READ, Val::Nil),
            ret_ev(2, Val::Int(1)), // final value 1 ⇒ W0 < W1
        ]);
        let mut b = prefix;
        b.extend(vec![
            call_ev(2, MethodId::READ, Val::Nil),
            ret_ev(2, Val::Int(0)), // final value 0 ⇒ W1 < W0
        ]);
        let tree = ExecTree::build(&[trace(a), trace(b)], ObjId(0), |_| false);
        // NOTE: both writes RETURNED in the shared prefix, so f(e) must
        // already contain both — in some order — and each branch contradicts
        // one order.
        assert!(!check_wsl(&tree, &reg(), register_writes));
        // For contrast: strong linearizability fails too, a fortiori.
        assert!(!crate::strong::check_strong(&tree, &reg()));
    }

    #[test]
    fn pending_write_orders_can_stay_uncommitted() {
        // Same shape but the writes are still PENDING at the branch point
        // (a coin splits the executions before they return): f(e) may omit
        // them, and each branch linearizes them in its own order — WSL
        // holds where it failed above.
        let coin = |chosen| TraceEvent::ProgramRandom {
            pid: Pid(2),
            choices: 2,
            chosen,
        };
        let prefix = vec![
            call_ev(0, MethodId::WRITE, Val::Int(0)),
            call_ev(1, MethodId::WRITE, Val::Int(1)),
        ];
        let mut a = prefix.clone();
        a.push(coin(0));
        a.extend(vec![
            ret_ev(0, Val::Nil),
            ret_ev(1, Val::Nil),
            call_ev(2, MethodId::READ, Val::Nil),
            ret_ev(2, Val::Int(1)),
        ]);
        let mut b = prefix;
        b.push(coin(1));
        b.extend(vec![
            ret_ev(0, Val::Nil),
            ret_ev(1, Val::Nil),
            call_ev(2, MethodId::READ, Val::Nil),
            ret_ev(2, Val::Int(0)),
        ]);
        let tree = ExecTree::build(&[trace(a), trace(b)], ObjId(0), |_| false);
        assert!(check_wsl(&tree, &reg(), register_writes));
    }

    #[test]
    fn value_mismatch_refutes_wsl() {
        let t = trace(vec![
            call_ev(0, MethodId::WRITE, Val::Int(1)),
            ret_ev(0, Val::Nil),
            call_ev(1, MethodId::READ, Val::Nil),
            ret_ev(1, Val::Int(9)),
        ]);
        let tree = ExecTree::build(&[t], ObjId(0), |_| false);
        assert!(!check_wsl(&tree, &reg(), register_writes));
    }
}
