//! Execution prefix trees.
//!
//! Strong linearizability is a property of a *set* of executions closed
//! under prefixes — equivalently, of a tree whose nodes are execution
//! prefixes. [`ExecTree`] builds such a tree from recorded traces (merging
//! common prefixes) and annotates each node with:
//!
//! - the history events (calls/returns) accumulated so far, and
//! - whether the node is **Π-complete**: every invocation that has been
//!   called has passed its preamble (Section 3). Completeness depends on a
//!   caller-supplied predicate saying which methods have non-trivial
//!   preambles, combined with the `PreamblePassed` markers emitted by the
//!   protocol implementations.
//!
//! The tree is single-object: build it from traces already filtered to the
//! object of interest (locality, Theorem 3.1, justifies checking objects
//! separately).

use blunt_core::history::{Action, History};
use blunt_core::ids::{InvId, MethodId, ObjId};
use blunt_sim::trace::{Trace, TraceEvent};
use std::collections::BTreeSet;

/// Index of a node in an [`ExecTree`].
pub type NodeId = usize;

/// One node of the execution tree.
#[derive(Clone, Debug)]
pub struct Node {
    /// Parent node (`None` for the root).
    pub parent: Option<NodeId>,
    /// The history action added by this node, if any (nodes created by
    /// `PreamblePassed` markers add none).
    pub action: Option<Action>,
    /// Children, in insertion order.
    pub children: Vec<NodeId>,
    /// Whether every called invocation has passed its preamble here.
    pub complete: bool,
    /// The edge label (used to merge identical prefixes across traces).
    key: Option<String>,
}

/// A prefix tree of executions, annotated for the strong-linearizability
/// checkers.
#[derive(Clone, Debug)]
pub struct ExecTree {
    nodes: Vec<Node>,
}

/// The tree-relevant events of one execution, extracted from a trace.
#[derive(Clone, PartialEq, Eq, Debug)]
enum TreeEvent {
    Call(InvId, Action),
    Return(InvId, Action),
    Preamble(InvId),
    /// A branch marker: random steps split executions even though they add
    /// no history event (two executions that differ only in a coin value
    /// are different executions).
    Branch(usize, usize),
}

fn extract_events<F>(trace: &Trace, obj: ObjId, has_preamble: &F) -> Vec<TreeEvent>
where
    F: Fn(MethodId) -> bool,
{
    let mut owned: BTreeSet<InvId> = BTreeSet::new();
    let mut out = Vec::new();
    for ev in trace.events() {
        match ev {
            TraceEvent::Call {
                inv,
                pid,
                obj: o,
                method,
                arg,
                ..
            } if *o == obj => {
                owned.insert(*inv);
                let _ = has_preamble; // used below for completeness, kept for parity
                out.push(TreeEvent::Call(
                    *inv,
                    Action::Call {
                        inv: *inv,
                        pid: *pid,
                        obj: *o,
                        method: *method,
                        arg: arg.clone(),
                    },
                ));
            }
            TraceEvent::Return { inv, val, .. } if owned.contains(inv) => {
                out.push(TreeEvent::Return(
                    *inv,
                    Action::Return {
                        inv: *inv,
                        val: val.clone(),
                    },
                ));
            }
            TraceEvent::PreamblePassed { inv, iteration, .. }
                if owned.contains(inv) && *iteration == 1 =>
            {
                // The base object's preamble ends at the first iteration's
                // control point; later iterations exist only in O^k.
                out.push(TreeEvent::Preamble(*inv));
            }
            TraceEvent::ProgramRandom {
                choices, chosen, ..
            } => {
                out.push(TreeEvent::Branch(*choices, *chosen));
            }
            TraceEvent::ObjectRandom {
                choices, chosen, ..
            } => {
                out.push(TreeEvent::Branch(*choices, *chosen));
            }
            _ => {}
        }
    }
    out
}

impl ExecTree {
    /// Builds the tree for object `obj` from a set of traces, merging common
    /// prefixes. `has_preamble(m)` says whether method `m` has a non-trivial
    /// preamble under the mapping `Π` being checked (methods with trivial
    /// preambles are complete from their call transition onward; pass
    /// `|_| false` for `Π₀`, i.e. plain strong linearizability).
    pub fn build<F>(traces: &[Trace], obj: ObjId, has_preamble: F) -> ExecTree
    where
        F: Fn(MethodId) -> bool,
    {
        let mut tree = ExecTree {
            nodes: vec![Node {
                parent: None,
                action: None,
                children: Vec::new(),
                complete: true,
                key: None,
            }],
        };
        // Per-branch bookkeeping is recomputed per trace.
        for trace in traces {
            let events = extract_events(trace, obj, &has_preamble);
            let mut cursor: NodeId = 0;
            // Invocations currently inside their preamble.
            let mut in_preamble: BTreeSet<InvId> = BTreeSet::new();
            // Edge labels are TreeEvents; store them alongside children via
            // re-derivation: we track (event, node) pairs in `edge_keys`.
            for ev in events {
                match &ev {
                    TreeEvent::Call(inv, a) => {
                        if let Action::Call { method, .. } = a {
                            if has_preamble(*method) {
                                in_preamble.insert(*inv);
                            }
                        }
                    }
                    TreeEvent::Return(inv, _) | TreeEvent::Preamble(inv) => {
                        in_preamble.remove(inv);
                    }
                    TreeEvent::Branch(..) => {}
                }
                let action = match &ev {
                    TreeEvent::Call(_, a) | TreeEvent::Return(_, a) => Some(a.clone()),
                    _ => None,
                };
                let complete = in_preamble.is_empty();
                cursor = tree.child_for(cursor, &ev, action, complete);
            }
        }
        blunt_obs::static_counter!("lincheck.tree.builds").inc();
        blunt_obs::static_counter!("lincheck.tree.traces_merged").add(traces.len() as u64);
        blunt_obs::static_counter!("lincheck.tree.nodes_built").add(tree.nodes.len() as u64);
        blunt_obs::static_gauge!("lincheck.tree.nodes_hwm").record_max(tree.nodes.len() as i64);
        tree
    }

    /// Finds or creates the child of `node` reached by `ev`.
    fn child_for(
        &mut self,
        node: NodeId,
        ev: &TreeEvent,
        action: Option<Action>,
        complete: bool,
    ) -> NodeId {
        // Children are keyed by their edge event; store the key in a side
        // table derived from (action, synthetic key for non-action events).
        // For simplicity the key is the Debug rendering of the event, which
        // is injective for our event payloads.
        let key = format!("{ev:?}");
        for &c in &self.nodes[node].children {
            if self.nodes[c].edge_key() == key {
                return c;
            }
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            parent: Some(node),
            action,
            children: Vec::new(),
            complete,
            key: Some(key),
        });
        self.nodes[node].children.push(id);
        id
    }

    /// The root node.
    #[must_use]
    pub fn root(&self) -> NodeId {
        0
    }

    /// Node accessor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tree has only the root.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The history at a node: the actions along the root path.
    #[must_use]
    pub fn history_at(&self, id: NodeId) -> History {
        let mut path = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            path.push(n);
            cur = self.nodes[n].parent;
        }
        path.reverse();
        path.iter()
            .filter_map(|&n| self.nodes[n].action.clone())
            .collect()
    }

    /// All leaf nodes.
    #[must_use]
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].children.is_empty())
            .collect()
    }
}

impl Node {
    fn edge_key(&self) -> &str {
        self.key.as_deref().unwrap_or("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_core::ids::{CallSite, Pid};
    use blunt_core::value::Val;

    fn call_ev(inv: u64, obj: u32, method: MethodId) -> TraceEvent {
        TraceEvent::Call {
            inv: InvId(inv),
            pid: Pid(0),
            obj: ObjId(obj),
            method,
            arg: Val::Nil,
            site: CallSite::new(Pid(0), 1, 0),
        }
    }

    fn ret_ev(inv: u64, val: Val) -> TraceEvent {
        TraceEvent::Return {
            inv: InvId(inv),
            pid: Pid(0),
            val,
        }
    }

    fn preamble_ev(inv: u64) -> TraceEvent {
        TraceEvent::PreamblePassed {
            inv: InvId(inv),
            pid: Pid(0),
            iteration: 1,
        }
    }

    fn trace(events: Vec<TraceEvent>) -> Trace {
        let mut t = Trace::new();
        t.extend(events);
        t
    }

    #[test]
    fn common_prefixes_merge() {
        let t1 = trace(vec![
            call_ev(0, 0, MethodId::WRITE),
            ret_ev(0, Val::Nil),
            call_ev(1, 0, MethodId::READ),
            ret_ev(1, Val::Int(1)),
        ]);
        let t2 = trace(vec![
            call_ev(0, 0, MethodId::WRITE),
            ret_ev(0, Val::Nil),
            call_ev(1, 0, MethodId::READ),
            ret_ev(1, Val::Int(2)),
        ]);
        let tree = ExecTree::build(&[t1, t2], ObjId(0), |_| false);
        // root + 3 shared + 2 distinct returns.
        assert_eq!(tree.len(), 6);
        assert_eq!(tree.leaves().len(), 2);
    }

    #[test]
    fn other_objects_are_filtered_out() {
        let t = trace(vec![
            call_ev(0, 0, MethodId::WRITE),
            call_ev(1, 1, MethodId::WRITE),
            ret_ev(1, Val::Nil),
            ret_ev(0, Val::Nil),
        ]);
        let tree = ExecTree::build(&[t], ObjId(0), |_| false);
        let h = tree.history_at(tree.leaves()[0]);
        assert_eq!(h.len(), 2);
        assert_eq!(h.objects(), vec![ObjId(0)]);
    }

    #[test]
    fn completeness_tracks_preamble_markers() {
        let t = trace(vec![
            call_ev(0, 0, MethodId::READ), // enters preamble
            preamble_ev(0),                // passes it
            ret_ev(0, Val::Nil),
        ]);
        let tree = ExecTree::build(&[t], ObjId(0), |m| m == MethodId::READ);
        // Path: root(complete) -> call(incomplete) -> preamble(complete)
        //       -> return(complete).
        let mut cur = tree.root();
        let mut flags = vec![tree.node(cur).complete];
        while let Some(&c) = tree.node(cur).children.first() {
            flags.push(tree.node(c).complete);
            cur = c;
        }
        assert_eq!(flags, vec![true, false, true, true]);
    }

    #[test]
    fn trivial_preamble_methods_are_always_complete() {
        let t = trace(vec![call_ev(0, 0, MethodId::WRITE), ret_ev(0, Val::Nil)]);
        let tree = ExecTree::build(&[t], ObjId(0), |_| false);
        assert!((0..tree.len()).all(|i| tree.node(i).complete));
    }

    #[test]
    fn random_branch_markers_split_executions() {
        let coin = |chosen| TraceEvent::ProgramRandom {
            pid: Pid(1),
            choices: 2,
            chosen,
        };
        let t1 = trace(vec![
            call_ev(0, 0, MethodId::READ),
            coin(0),
            ret_ev(0, Val::Nil),
        ]);
        let t2 = trace(vec![
            call_ev(0, 0, MethodId::READ),
            coin(1),
            ret_ev(0, Val::Nil),
        ]);
        let tree = ExecTree::build(&[t1, t2], ObjId(0), |_| false);
        assert_eq!(tree.leaves().len(), 2, "coin branches must not merge");
    }

    #[test]
    fn history_at_reconstructs_prefix() {
        let t = trace(vec![
            call_ev(0, 0, MethodId::WRITE),
            call_ev(1, 0, MethodId::READ),
            ret_ev(0, Val::Nil),
            ret_ev(1, Val::Int(1)),
        ]);
        let tree = ExecTree::build(&[t], ObjId(0), |_| false);
        let leaf = tree.leaves()[0];
        let h = tree.history_at(leaf);
        assert_eq!(h.len(), 4);
        assert!(h.is_well_formed());
        let parent = tree.node(leaf).parent.unwrap();
        assert!(tree.history_at(parent).is_prefix_of(&h));
    }
}
