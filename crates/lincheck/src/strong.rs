//! The (tail) strong linearizability checker.
//!
//! Given an [`ExecTree`] and a deterministic sequential specification, decide
//! whether there is a **prefix-preserving** function `f` mapping each
//! Π-complete node `e` to a linearization `f(e)` of its history:
//!
//! - `hist(e) ⊑ f(e)`: `f(e)` contains every invocation completed in `e`
//!   (and possibly some pending ones), respects the real-time order, and the
//!   specification accepts its values;
//! - if `e₁` is a prefix of `e₂`, then `f(e₁)` is a prefix of `f(e₂)`.
//!
//! The search is AND–OR: at each complete node the checker *chooses* how to
//! extend the inherited linearization (existential), and the choice must
//! work for *all* children (universal). Incomplete nodes pass the inherited
//! linearization through unchanged — `f` is simply not defined on them,
//! which is exactly the relaxation tail strong linearizability grants.
//!
//! With the trivial preamble predicate (every node complete) this decides
//! plain strong linearizability; with a protocol's real preamble markers it
//! decides tail strong linearizability w.r.t. that `Π`.

use crate::tree::{ExecTree, NodeId};
use blunt_core::history::{Action, History};
use blunt_core::ids::InvId;
use blunt_core::spec::SequentialSpec;
use std::collections::BTreeSet;

/// Per-invocation view of a history used during extension search.
struct OpView {
    inv: InvId,
    method: blunt_core::ids::MethodId,
    arg: blunt_core::value::Val,
    ret: Option<blunt_core::value::Val>,
    call_pos: usize,
    ret_pos: Option<usize>,
}

fn ops_of(history: &History) -> Vec<OpView> {
    let mut ops: Vec<OpView> = history
        .invocations()
        .into_iter()
        .map(|r| OpView {
            inv: r.inv,
            method: r.method,
            arg: r.arg,
            ret: r.ret,
            call_pos: 0,
            ret_pos: None,
        })
        .collect();
    for (pos, a) in history.actions().iter().enumerate() {
        match a {
            Action::Call { inv, .. } => {
                if let Some(o) = ops.iter_mut().find(|o| o.inv == *inv) {
                    o.call_pos = pos;
                }
            }
            Action::Return { inv, .. } => {
                if let Some(o) = ops.iter_mut().find(|o| o.inv == *inv) {
                    o.ret_pos = Some(pos);
                }
            }
        }
    }
    ops
}

struct Checker<'a, S: SequentialSpec> {
    tree: &'a ExecTree,
    spec: &'a S,
    /// Tree nodes visited / extension-search states tried, in `Cell`s
    /// because the AND–OR recursion takes `&self`; flushed to the global
    /// registry once per [`check_strong`] call.
    nodes_visited: std::cell::Cell<u64>,
    extensions_tried: std::cell::Cell<u64>,
}

impl<'a, S: SequentialSpec> Checker<'a, S> {
    /// Tries to satisfy node `id` and its whole subtree, given the
    /// linearization `sigma` — ordered (invocation, destined return value)
    /// pairs — committed by the nearest complete ancestor, and the spec
    /// state after `sigma`.
    fn node_ok(
        &self,
        id: NodeId,
        sigma: &[(InvId, blunt_core::value::Val)],
        state: &S::State,
    ) -> bool {
        self.nodes_visited.set(self.nodes_visited.get() + 1);
        let node = self.tree.node(id);
        if !node.complete {
            // f is not defined here; children inherit sigma directly.
            return node.children.iter().all(|&c| self.node_ok(c, sigma, state));
        }
        let history = self.tree.history_at(id);
        let ops = ops_of(&history);
        // An op linearized while pending was assigned its *destined* value
        // by the specification; if it has since returned with a different
        // value, this committed prefix cannot serve this subtree.
        for (inv, destined) in sigma {
            if let Some(op) = ops.iter().find(|o| o.inv == *inv) {
                if let Some(actual) = &op.ret {
                    if actual != destined {
                        return false;
                    }
                }
            }
        }
        let in_sigma: BTreeSet<InvId> = sigma.iter().map(|(i, _)| *i).collect();
        self.extend_ok(id, &ops, sigma.to_vec(), in_sigma, state.clone())
    }

    /// Extension search at a complete node: append zero or more ops to the
    /// inherited linearization; once every completed-but-unplaced op is
    /// placed, the children may be attempted.
    fn extend_ok(
        &self,
        id: NodeId,
        ops: &[OpView],
        sigma: Vec<(InvId, blunt_core::value::Val)>,
        placed: BTreeSet<InvId>,
        state: S::State,
    ) -> bool {
        self.extensions_tried.set(self.extensions_tried.get() + 1);
        let node = self.tree.node(id);
        // May we stop extending here? Only if every completed op is placed.
        let all_completed_placed = ops
            .iter()
            .all(|o| o.ret_pos.is_none() || placed.contains(&o.inv));
        if all_completed_placed {
            let ok_children = node
                .children
                .iter()
                .all(|&c| self.node_ok(c, &sigma, &state));
            if ok_children {
                return true;
            }
        }
        // Otherwise (or if stopping failed), try appending one more op.
        // Candidate rule: an unplaced op may be appended iff every op whose
        // return precedes its call is already placed.
        let frontier = ops
            .iter()
            .filter(|o| !placed.contains(&o.inv) && o.ret_pos.is_some())
            .map(|o| o.ret_pos.unwrap())
            .min()
            .unwrap_or(usize::MAX);
        for o in ops {
            if placed.contains(&o.inv) || o.call_pos > frontier {
                continue;
            }
            let Some((next_state, val)) = self.spec.apply(&state, o.method, &o.arg) else {
                continue;
            };
            if let Some(actual) = &o.ret {
                if *actual != val {
                    continue;
                }
            }
            let mut sigma2 = sigma.clone();
            sigma2.push((o.inv, val));
            let mut placed2 = placed.clone();
            placed2.insert(o.inv);
            if self.extend_ok(id, ops, sigma2, placed2, next_state) {
                return true;
            }
        }
        false
    }
}

/// Decides whether the execution tree is (tail) strongly linearizable
/// w.r.t. `spec`.
///
/// The tree's completeness flags (set by [`ExecTree::build`]'s preamble
/// predicate) determine which notion is decided: all-complete ⇒ plain
/// strong linearizability; Π-completeness ⇒ tail strong linearizability
/// w.r.t. Π.
#[must_use]
pub fn check_strong<S: SequentialSpec>(tree: &ExecTree, spec: &S) -> bool {
    let checker = Checker {
        tree,
        spec,
        nodes_visited: std::cell::Cell::new(0),
        extensions_tried: std::cell::Cell::new(0),
    };
    let ok = checker.node_ok(tree.root(), &[], &spec.init());
    blunt_obs::static_counter!("lincheck.strong.checks").inc();
    blunt_obs::static_counter!("lincheck.strong.nodes_visited").add(checker.nodes_visited.get());
    blunt_obs::static_counter!("lincheck.strong.extensions_tried")
        .add(checker.extensions_tried.get());
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ExecTree;
    use blunt_core::ids::{CallSite, MethodId, ObjId, Pid};
    use blunt_core::spec::RegisterSpec;
    use blunt_core::value::Val;
    use blunt_sim::trace::{Trace, TraceEvent};

    fn call_ev(inv: u64, method: MethodId, arg: Val) -> TraceEvent {
        TraceEvent::Call {
            inv: InvId(inv),
            pid: Pid((inv % 3) as u32),
            obj: ObjId(0),
            method,
            arg,
            site: CallSite::new(Pid(0), 1, 0),
        }
    }

    fn ret_ev(inv: u64, val: Val) -> TraceEvent {
        TraceEvent::Return {
            inv: InvId(inv),
            pid: Pid((inv % 3) as u32),
            val,
        }
    }

    fn preamble_ev(inv: u64) -> TraceEvent {
        TraceEvent::PreamblePassed {
            inv: InvId(inv),
            pid: Pid((inv % 3) as u32),
            iteration: 1,
        }
    }

    fn trace(events: Vec<TraceEvent>) -> Trace {
        let mut t = Trace::new();
        t.extend(events);
        t
    }

    fn reg() -> RegisterSpec {
        RegisterSpec::new(Val::Nil)
    }

    /// The classic witness that ABD-style behaviour is not strongly
    /// linearizable, in the shape of the paper's Figure 1:
    ///
    /// Common prefix `e`: W0 = Write(0) pending, W1 = Write(1) returned,
    /// R = Read pending (R's call precedes W1's return).
    ///
    /// - Branch A: R returns 0, then a second read R2 returns 1
    ///   ⇒ forces W0 < R < W1.
    /// - Branch B: R returns 1, then R2 returns 0
    ///   ⇒ forces W1 < R and W1 < W0.
    ///
    /// Any prefix-preserving f must commit at `e` to a linearization that is
    /// a prefix of both branch linearizations — impossible, since branch A
    /// needs W0 and R *before* W1 while branch B needs W1 first.
    fn fig1_witness_traces() -> Vec<Trace> {
        // Invocations: 0 = W0 (Write 0), 1 = W1 (Write 1), 2 = R, 3 = R2.
        let prefix = vec![
            call_ev(0, MethodId::WRITE, Val::Int(0)),
            call_ev(1, MethodId::WRITE, Val::Int(1)),
            call_ev(2, MethodId::READ, Val::Nil),
            ret_ev(1, Val::Nil), // W1 returns; W0 and R still pending
        ];
        let mut branch_a = prefix.clone();
        branch_a.extend(vec![
            ret_ev(2, Val::Int(0)), // R = 0
            ret_ev(0, Val::Nil),    // W0 returns
            call_ev(3, MethodId::READ, Val::Nil),
            ret_ev(3, Val::Int(1)), // R2 = 1
        ]);
        let mut branch_b = prefix.clone();
        branch_b.extend(vec![
            ret_ev(2, Val::Int(1)), // R = 1
            ret_ev(0, Val::Nil),    // W0 returns
            call_ev(3, MethodId::READ, Val::Nil),
            ret_ev(3, Val::Int(0)), // R2 = 0
        ]);
        vec![trace(branch_a), trace(branch_b)]
    }

    #[test]
    fn single_sequential_trace_is_strongly_linearizable() {
        let t = trace(vec![
            call_ev(0, MethodId::WRITE, Val::Int(1)),
            ret_ev(0, Val::Nil),
            call_ev(1, MethodId::READ, Val::Nil),
            ret_ev(1, Val::Int(1)),
        ]);
        let tree = ExecTree::build(&[t], ObjId(0), |_| false);
        assert!(check_strong(&tree, &reg()));
    }

    #[test]
    fn fig1_witness_refutes_strong_linearizability() {
        let tree = ExecTree::build(&fig1_witness_traces(), ObjId(0), |_| false);
        assert!(
            !check_strong(&tree, &reg()),
            "the Figure 1 branch pair admits no prefix-preserving linearization"
        );
    }

    #[test]
    fn fig1_witness_with_preambles_is_tail_strongly_linearizable() {
        // Under Π_ABD the pending operations in the common prefix have NOT
        // passed their preambles (no PreamblePassed marker before the
        // branch point), so the problematic node is not Π-complete and f
        // need not commit there. The leaves are complete and each branch is
        // linearizable on its own, so the check passes.
        let traces: Vec<Trace> = fig1_witness_traces()
            .into_iter()
            .map(|t| {
                // Insert preamble markers only right before each return —
                // i.e. operations pass their query phase "late".
                let mut evs: Vec<TraceEvent> = Vec::new();
                for ev in t.events() {
                    if let TraceEvent::Return { inv, .. } = ev {
                        evs.push(preamble_ev(inv.0));
                    }
                    evs.push(ev.clone());
                }
                trace(evs)
            })
            .collect();
        let tree = ExecTree::build(&traces, ObjId(0), |m| {
            m == MethodId::READ || m == MethodId::WRITE
        });
        assert!(
            check_strong(&tree, &reg()),
            "restricted to Π-complete executions the tree is fine"
        );
    }

    #[test]
    fn early_preambles_restore_the_violation() {
        // If every operation passes its preamble immediately after its call
        // (as a strongly-linearizable implementation effectively would),
        // tail strong linearizability w.r.t. that Π coincides with strong
        // linearizability on this tree and the violation reappears.
        let traces: Vec<Trace> = fig1_witness_traces()
            .into_iter()
            .map(|t| {
                let mut evs: Vec<TraceEvent> = Vec::new();
                for ev in t.events() {
                    let call_inv = match ev {
                        TraceEvent::Call { inv, .. } => Some(inv.0),
                        _ => None,
                    };
                    evs.push(ev.clone());
                    if let Some(i) = call_inv {
                        evs.push(preamble_ev(i));
                    }
                }
                trace(evs)
            })
            .collect();
        let tree = ExecTree::build(&traces, ObjId(0), |m| {
            m == MethodId::READ || m == MethodId::WRITE
        });
        assert!(!check_strong(&tree, &reg()));
    }

    #[test]
    fn value_mismatch_fails_even_on_a_single_trace() {
        let t = trace(vec![
            call_ev(0, MethodId::WRITE, Val::Int(1)),
            ret_ev(0, Val::Nil),
            call_ev(1, MethodId::READ, Val::Nil),
            ret_ev(1, Val::Int(9)),
        ]);
        let tree = ExecTree::build(&[t], ObjId(0), |_| false);
        assert!(!check_strong(&tree, &reg()));
    }

    #[test]
    fn pending_op_branches_with_different_destinies_are_fine() {
        // W pending; branch A: read returns 1 (W linearized);
        // branch B: read returns ⊥ (W not yet linearized). A prefix-
        // preserving f exists: commit nothing at the branch point.
        let prefix = vec![
            call_ev(0, MethodId::WRITE, Val::Int(1)),
            call_ev(1, MethodId::READ, Val::Nil),
        ];
        let mut a = prefix.clone();
        a.push(ret_ev(1, Val::Int(1)));
        let mut b = prefix;
        b.push(ret_ev(1, Val::Nil));
        let tree = ExecTree::build(&[trace(a), trace(b)], ObjId(0), |_| false);
        assert!(check_strong(&tree, &reg()));
    }

    #[test]
    fn committed_read_value_constrains_the_future() {
        // Branchless chain: read returns ⊥ while W pending, then W returns,
        // then a read returns 1 — fine (W linearizes between the reads).
        let t = trace(vec![
            call_ev(0, MethodId::WRITE, Val::Int(1)),
            call_ev(1, MethodId::READ, Val::Nil),
            ret_ev(1, Val::Nil),
            ret_ev(0, Val::Nil),
            call_ev(2, MethodId::READ, Val::Nil),
            ret_ev(2, Val::Int(1)),
        ]);
        let tree = ExecTree::build(&[t], ObjId(0), |_| false);
        assert!(check_strong(&tree, &reg()));

        // But returning ⊥ *after* W returned is not linearizable at all.
        let t = trace(vec![
            call_ev(0, MethodId::WRITE, Val::Int(1)),
            ret_ev(0, Val::Nil),
            call_ev(1, MethodId::READ, Val::Nil),
            ret_ev(1, Val::Nil),
        ]);
        let tree = ExecTree::build(&[t], ObjId(0), |_| false);
        assert!(!check_strong(&tree, &reg()));
    }
}
