//! Linearizability, strong linearizability, and tail strong linearizability
//! checkers (Sections 2.2 and 3 of the paper).
//!
//! Three related questions, in increasing strength:
//!
//! 1. **Linearizability** of a single history — answered by a Wing–Gong
//!    style search with memoization ([`wgl`]);
//! 2. **Strong linearizability** of a *set* of executions, organized as a
//!    prefix tree — is there a prefix-preserving map `f` from executions to
//!    linearizations? Answered by an AND–OR search over the tree
//!    ([`strong`]): choosing `f(e)`'s extension at a node is existential,
//!    while satisfying all of the node's futures is universal;
//! 3. **Tail strong linearizability** w.r.t. a preamble mapping `Π` — the
//!    same question restricted to the `Π`-complete executions (those where
//!    every invocation has passed its preamble). Implemented by the same
//!    search, skipping incomplete nodes ([`strong`] with completeness flags
//!    from [`tree`]).
//!
//! The checkers work on deterministic [`SequentialSpec`]s, which makes the
//! "destined" return value of a linearized-while-pending invocation unique —
//! a significant simplification over the general case.
//!
//! [`SequentialSpec`]: blunt_core::spec::SequentialSpec

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strong;
pub mod tree;
pub mod wgl;
pub mod wsl;

pub use strong::check_strong;
pub use tree::{ExecTree, NodeId};
pub use wgl::{check_linearizable, check_linearizable_from, feasible_final_states, LinResult};
pub use wsl::check_wsl;
