//! Linearizability checking for a single history — the Wing–Gong search
//! with Lowe-style memoization.
//!
//! Given a (single-object) history and a deterministic sequential
//! specification, [`check_linearizable`] searches for a permutation of (a
//! completion of) the history that the specification accepts and that
//! preserves the real-time order between returns and calls. Pending
//! invocations may be completed (assigned their destined spec value) or
//! dropped — both are explored.
//!
//! Multi-object histories should be projected per object first
//! ([`blunt_core::history::History::project`]); linearizability is local, so
//! checking each projection suffices.

use blunt_core::history::{Action, History, InvocationRecord};
use blunt_core::ids::InvId;
use blunt_core::spec::SequentialSpec;
use std::collections::HashSet;

/// The verdict of a linearizability check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LinResult {
    /// A witness linearization, as the order of invocation ids (pending
    /// invocations that were dropped do not appear).
    Linearizable(Vec<InvId>),
    /// No linearization exists.
    NotLinearizable,
}

impl LinResult {
    /// Returns `true` if the history is linearizable.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, LinResult::Linearizable(_))
    }
}

struct Op {
    rec: InvocationRecord,
    call_pos: usize,
    ret_pos: Option<usize>,
}

struct Search<'a, S: SequentialSpec> {
    spec: &'a S,
    ops: Vec<Op>,
    /// Failed (linearized-mask, dropped-mask, state) combinations.
    seen: HashSet<(u64, u64, S::State)>,
    /// Search nodes entered (accumulated locally, flushed to the global
    /// registry once per check — a per-node atomic would dominate the
    /// search's own work).
    states: u64,
    /// Nodes cut off by the memoization table.
    memo_prunes: u64,
}

impl<'a, S: SequentialSpec> Search<'a, S> {
    /// `linearized`: ops already placed; `dropped`: pending ops decided to
    /// be removed. Returns a witness order (reversed) on success.
    fn go(
        &mut self,
        linearized: u64,
        dropped: u64,
        state: &S::State,
        witness: &mut Vec<InvId>,
    ) -> bool {
        let done = linearized | dropped;
        self.states += 1;
        if done == (1u64 << self.ops.len()) - 1 {
            return true;
        }
        if !self.seen.insert((linearized, dropped, state.clone())) {
            self.memo_prunes += 1;
            return false;
        }
        let frontier = self.frontier(done);
        for i in 0..self.ops.len() {
            let bit = 1u64 << i;
            if done & bit != 0 || self.ops[i].call_pos > frontier {
                continue;
            }
            let op = &self.ops[i];
            // Try linearizing op i next.
            if let Some((next, val)) = self.spec.apply(state, op.rec.method, &op.rec.arg) {
                let matches = match &op.rec.ret {
                    Some(actual) => *actual == val,
                    None => true, // pending: destined value is free
                };
                if matches {
                    witness.push(op.rec.inv);
                    if self.go(linearized | bit, dropped, &next, witness) {
                        return true;
                    }
                    witness.pop();
                }
            }
            // If pending, also try dropping it.
            if self.ops[i].ret_pos.is_none() && self.go(linearized, dropped | bit, state, witness) {
                return true;
            }
        }
        false
    }

    /// Exhaustive variant of [`Search::go`]: explores *every* linearization
    /// (the visited set deduplicates subtrees) and collects each object
    /// state reachable when all invocations are placed or dropped.
    fn go_all(
        &mut self,
        linearized: u64,
        dropped: u64,
        state: &S::State,
        finals: &mut Vec<S::State>,
    ) {
        let done = linearized | dropped;
        self.states += 1;
        if done == (1u64 << self.ops.len()) - 1 {
            if !finals.contains(state) {
                finals.push(state.clone());
            }
            return;
        }
        if !self.seen.insert((linearized, dropped, state.clone())) {
            // Already explored from this node; its reachable finals are in
            // the set.
            self.memo_prunes += 1;
            return;
        }
        let frontier = self.frontier(done);
        for i in 0..self.ops.len() {
            let bit = 1u64 << i;
            if done & bit != 0 || self.ops[i].call_pos > frontier {
                continue;
            }
            let op = &self.ops[i];
            if let Some((next, val)) = self.spec.apply(state, op.rec.method, &op.rec.arg) {
                let matches = match &op.rec.ret {
                    Some(actual) => *actual == val,
                    None => true,
                };
                if matches {
                    self.go_all(linearized | bit, dropped, &next, finals);
                }
            }
            if self.ops[i].ret_pos.is_none() {
                self.go_all(linearized, dropped | bit, state, finals);
            }
        }
    }

    /// The linearization frontier: the earliest return position among
    /// unplaced completed ops. An op whose call is after that return cannot
    /// be linearized next (the completed op must precede it).
    fn frontier(&self, done: u64) -> usize {
        self.ops
            .iter()
            .enumerate()
            .filter(|(i, o)| done & (1 << i) == 0 && o.ret_pos.is_some())
            .map(|(_, o)| o.ret_pos.unwrap())
            .min()
            .unwrap_or(usize::MAX)
    }
}

/// Checks whether `history` is linearizable w.r.t. `spec`.
///
/// # Panics
///
/// Panics if the history is not well-formed or has more than 64
/// invocations (the bitmask width; far beyond any history produced here).
#[must_use]
pub fn check_linearizable<S: SequentialSpec>(history: &History, spec: &S) -> LinResult {
    check_linearizable_from(history, spec, spec.init())
}

/// Checks whether `history` is linearizable w.r.t. `spec` started from an
/// explicit object state instead of [`SequentialSpec::init`].
///
/// This is the segmented form used by incremental monitors (see
/// `blunt_runtime::monitor`): a long history is split at *cuts* — points
/// with no pending invocation — and each segment is checked from the state
/// reached by the witness linearization of the previous one. Cuts respect
/// real-time order, so the concatenation of segment witnesses is a witness
/// for the whole history.
///
/// # Panics
///
/// Panics if the history is not well-formed or has more than 64
/// invocations.
#[must_use]
pub fn check_linearizable_from<S: SequentialSpec>(
    history: &History,
    spec: &S,
    initial: S::State,
) -> LinResult {
    let mut search = Search {
        spec,
        ops: build_ops(history),
        seen: HashSet::new(),
        states: 0,
        memo_prunes: 0,
    };
    let mut witness = Vec::new();
    let ok = search.go(0, 0, &initial, &mut witness);
    flush_counters(search.states, search.memo_prunes);
    if ok {
        LinResult::Linearizable(witness)
    } else {
        LinResult::NotLinearizable
    }
}

/// Returns every object state reachable as the final state of *some*
/// linearization of `history` started from `initial`. The result is empty
/// iff the history is not linearizable from that state.
///
/// This is what an incremental monitor must thread across segment cuts:
/// a history split at cuts is linearizable iff there is a **chain** of
/// feasible states through the segments, so committing a single witness's
/// final state (when overlapping operations admit several) would reject
/// correct continuations. See `blunt_runtime::monitor`.
///
/// # Panics
///
/// Panics if the history is not well-formed or has more than 64
/// invocations.
#[must_use]
pub fn feasible_final_states<S: SequentialSpec>(
    history: &History,
    spec: &S,
    initial: S::State,
) -> Vec<S::State> {
    let mut search = Search {
        spec,
        ops: build_ops(history),
        seen: HashSet::new(),
        states: 0,
        memo_prunes: 0,
    };
    let mut finals = Vec::new();
    search.go_all(0, 0, &initial, &mut finals);
    flush_counters(search.states, search.memo_prunes);
    finals
}

fn build_ops(history: &History) -> Vec<Op> {
    assert!(history.is_well_formed(), "history must be well-formed");
    let recs = history.invocations();
    assert!(recs.len() <= 64, "history too large for the checker");

    // Recover call/return positions.
    let mut ops: Vec<Op> = Vec::with_capacity(recs.len());
    for rec in recs {
        ops.push(Op {
            rec,
            call_pos: 0,
            ret_pos: None,
        });
    }
    for (pos, action) in history.actions().iter().enumerate() {
        match action {
            Action::Call { inv, .. } => {
                if let Some(op) = ops.iter_mut().find(|o| o.rec.inv == *inv) {
                    op.call_pos = pos;
                }
            }
            Action::Return { inv, .. } => {
                if let Some(op) = ops.iter_mut().find(|o| o.rec.inv == *inv) {
                    op.ret_pos = Some(pos);
                }
            }
        }
    }
    ops
}

fn flush_counters(states: u64, memo_prunes: u64) {
    blunt_obs::static_counter!("lincheck.wgl.checks").inc();
    blunt_obs::static_counter!("lincheck.wgl.states").add(states);
    blunt_obs::static_counter!("lincheck.wgl.memo_prunes").add(memo_prunes);
    blunt_obs::static_gauge!("lincheck.wgl.states_hwm").record_max(states as i64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_core::ids::{MethodId, ObjId, Pid};
    use blunt_core::spec::RegisterSpec;
    use blunt_core::value::Val;

    fn call(inv: u64, pid: u32, method: MethodId, arg: Val) -> Action {
        Action::Call {
            inv: InvId(inv),
            pid: Pid(pid),
            obj: ObjId(0),
            method,
            arg,
        }
    }

    fn ret(inv: u64, val: Val) -> Action {
        Action::Return {
            inv: InvId(inv),
            val,
        }
    }

    fn reg() -> RegisterSpec {
        RegisterSpec::new(Val::Nil)
    }

    #[test]
    fn sequential_read_after_write_is_linearizable() {
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            ret(0, Val::Nil),
            call(1, 1, MethodId::READ, Val::Nil),
            ret(1, Val::Int(1)),
        ]
        .into_iter()
        .collect();
        let r = check_linearizable(&h, &reg());
        assert_eq!(r, LinResult::Linearizable(vec![InvId(0), InvId(1)]));
    }

    #[test]
    fn stale_read_after_write_returned_is_not_linearizable() {
        // Write(1) returns, then a later read returns the initial value.
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            ret(0, Val::Nil),
            call(1, 1, MethodId::READ, Val::Nil),
            ret(1, Val::Nil),
        ]
        .into_iter()
        .collect();
        assert_eq!(check_linearizable(&h, &reg()), LinResult::NotLinearizable);
    }

    #[test]
    fn overlapping_read_may_return_either_value() {
        // Read overlaps Write(1): both ⊥ and 1 are fine.
        for v in [Val::Nil, Val::Int(1)] {
            let h: History = vec![
                call(0, 0, MethodId::WRITE, Val::Int(1)),
                call(1, 1, MethodId::READ, Val::Nil),
                ret(1, v),
                ret(0, Val::Nil),
            ]
            .into_iter()
            .collect();
            assert!(check_linearizable(&h, &reg()).is_ok());
        }
        // But not an unrelated value.
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            call(1, 1, MethodId::READ, Val::Nil),
            ret(1, Val::Int(9)),
            ret(0, Val::Nil),
        ]
        .into_iter()
        .collect();
        assert_eq!(check_linearizable(&h, &reg()), LinResult::NotLinearizable);
    }

    #[test]
    fn new_old_inversion_is_rejected() {
        // Two sequential reads observing w1 then w0 (both writes completed
        // before the reads began) — the classic non-linearizable pattern.
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(0)),
            ret(0, Val::Nil),
            call(1, 1, MethodId::WRITE, Val::Int(1)),
            ret(1, Val::Nil),
            call(2, 2, MethodId::READ, Val::Nil),
            ret(2, Val::Int(1)),
            call(3, 2, MethodId::READ, Val::Nil),
            ret(3, Val::Int(0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(check_linearizable(&h, &reg()), LinResult::NotLinearizable);
    }

    #[test]
    fn concurrent_writes_allow_either_read_order_but_not_both() {
        // W(0) ∥ W(1), then reads 0, 1 in sequence: requires W(1) to
        // linearize between the two reads — impossible once both writes
        // returned before the reads started.
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(0)),
            call(1, 1, MethodId::WRITE, Val::Int(1)),
            ret(0, Val::Nil),
            ret(1, Val::Nil),
            call(2, 2, MethodId::READ, Val::Nil),
            ret(2, Val::Int(0)),
            call(3, 2, MethodId::READ, Val::Nil),
            ret(3, Val::Int(1)),
        ]
        .into_iter()
        .collect();
        assert_eq!(check_linearizable(&h, &reg()), LinResult::NotLinearizable);

        // If the second read overlaps the writes, it becomes linearizable.
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(0)),
            call(1, 1, MethodId::WRITE, Val::Int(1)),
            call(2, 2, MethodId::READ, Val::Nil),
            ret(2, Val::Int(0)),
            call(3, 2, MethodId::READ, Val::Nil),
            ret(3, Val::Int(1)),
            ret(0, Val::Nil),
            ret(1, Val::Nil),
        ]
        .into_iter()
        .collect();
        assert!(check_linearizable(&h, &reg()).is_ok());
    }

    #[test]
    fn pending_write_may_take_effect_or_not() {
        // A pending Write(1) justifies a read of 1...
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            call(1, 1, MethodId::READ, Val::Nil),
            ret(1, Val::Int(1)),
        ]
        .into_iter()
        .collect();
        assert!(check_linearizable(&h, &reg()).is_ok());

        // ...and equally a read of ⊥ (the write is dropped).
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            call(1, 1, MethodId::READ, Val::Nil),
            ret(1, Val::Nil),
        ]
        .into_iter()
        .collect();
        assert!(check_linearizable(&h, &reg()).is_ok());
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h = History::new();
        assert_eq!(
            check_linearizable(&h, &reg()),
            LinResult::Linearizable(vec![])
        );
    }

    #[test]
    fn witness_respects_real_time_order() {
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            ret(0, Val::Nil),
            call(1, 1, MethodId::WRITE, Val::Int(2)),
            ret(1, Val::Nil),
            call(2, 2, MethodId::READ, Val::Nil),
            ret(2, Val::Int(2)),
        ]
        .into_iter()
        .collect();
        match check_linearizable(&h, &reg()) {
            LinResult::Linearizable(w) => {
                assert_eq!(w, vec![InvId(0), InvId(1), InvId(2)]);
            }
            LinResult::NotLinearizable => panic!("must be linearizable"),
        }
    }

    #[test]
    fn explicit_initial_state_shifts_the_verdict() {
        // A lone read of 7 is NOT linearizable from the default ⊥ ...
        let h: History = vec![call(0, 0, MethodId::READ, Val::Nil), ret(0, Val::Int(7))]
            .into_iter()
            .collect();
        assert_eq!(check_linearizable(&h, &reg()), LinResult::NotLinearizable);
        // ... but IS from a committed state of 7 — the segmented-monitor
        // contract.
        assert!(check_linearizable_from(&h, &reg(), Val::Int(7)).is_ok());
        assert_eq!(
            check_linearizable_from(&h, &reg(), Val::Int(8)),
            LinResult::NotLinearizable
        );
    }

    #[test]
    fn segment_concatenation_equals_whole_history_check() {
        // Split a history at a cut and thread the witness state through:
        // both halves accept iff the whole does.
        let whole: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(3)),
            ret(0, Val::Nil),
            call(1, 1, MethodId::READ, Val::Nil),
            ret(1, Val::Int(3)),
        ]
        .into_iter()
        .collect();
        assert!(check_linearizable(&whole, &reg()).is_ok());

        let first = whole.prefix(2);
        let spec = reg();
        let LinResult::Linearizable(w) = check_linearizable(&first, &spec) else {
            panic!("prefix must be linearizable");
        };
        // Apply the witness to compute the committed state at the cut.
        let mut state = spec.init();
        for inv in w {
            let rec = first
                .invocations()
                .into_iter()
                .find(|r| r.inv == inv)
                .unwrap();
            state = spec.apply(&state, rec.method, &rec.arg).unwrap().0;
        }
        let second: History = whole.actions()[2..].iter().cloned().collect();
        assert!(check_linearizable_from(&second, &spec, state).is_ok());
    }

    #[test]
    fn overlapping_writes_admit_both_final_states() {
        // W(1) ∥ W(2), both completed: either order linearizes, so both 1
        // and 2 are feasible final states — a segmented monitor must keep
        // both alive, not commit one witness's choice.
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            call(1, 1, MethodId::WRITE, Val::Int(2)),
            ret(0, Val::Nil),
            ret(1, Val::Nil),
        ]
        .into_iter()
        .collect();
        let mut finals = feasible_final_states(&h, &reg(), Val::Nil);
        finals.sort();
        assert_eq!(finals, vec![Val::Int(1), Val::Int(2)]);
    }

    #[test]
    fn sequential_writes_admit_exactly_one_final_state() {
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            ret(0, Val::Nil),
            call(1, 1, MethodId::WRITE, Val::Int(2)),
            ret(1, Val::Nil),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            feasible_final_states(&h, &reg(), Val::Nil),
            vec![Val::Int(2)]
        );
    }

    #[test]
    fn feasible_finals_is_empty_iff_not_linearizable() {
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            ret(0, Val::Nil),
            call(1, 1, MethodId::READ, Val::Nil),
            ret(1, Val::Nil), // stale
        ]
        .into_iter()
        .collect();
        assert!(feasible_final_states(&h, &reg(), Val::Nil).is_empty());
        // An empty segment keeps the incoming state.
        assert_eq!(
            feasible_final_states(&History::new(), &reg(), Val::Int(7)),
            vec![Val::Int(7)]
        );
    }

    #[test]
    fn a_pending_write_yields_both_took_effect_and_dropped_states() {
        let h: History = vec![call(0, 0, MethodId::WRITE, Val::Int(5))]
            .into_iter()
            .collect();
        let mut finals = feasible_final_states(&h, &reg(), Val::Nil);
        finals.sort();
        assert_eq!(finals, vec![Val::Nil, Val::Int(5)]);
    }

    #[test]
    fn counter_spec_histories_also_check() {
        use blunt_core::spec::CounterSpec;
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Nil),
            call(1, 1, MethodId::WRITE, Val::Nil),
            ret(0, Val::Nil),
            ret(1, Val::Nil),
            call(2, 2, MethodId::READ, Val::Nil),
            ret(2, Val::Int(2)),
        ]
        .into_iter()
        .collect();
        assert!(check_linearizable(&h, &CounterSpec).is_ok());

        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Nil),
            ret(0, Val::Nil),
            call(2, 2, MethodId::READ, Val::Nil),
            ret(2, Val::Int(5)),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            check_linearizable(&h, &CounterSpec),
            LinResult::NotLinearizable
        );
    }
}
