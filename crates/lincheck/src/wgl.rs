//! Linearizability checking for a single history — the Wing–Gong search
//! with Lowe-style memoization.
//!
//! Given a (single-object) history and a deterministic sequential
//! specification, [`check_linearizable`] searches for a permutation of (a
//! completion of) the history that the specification accepts and that
//! preserves the real-time order between returns and calls. Pending
//! invocations may be completed (assigned their destined spec value) or
//! dropped — both are explored.
//!
//! Multi-object histories should be projected per object first
//! ([`blunt_core::history::History::project`]); linearizability is local, so
//! checking each projection suffices.

use blunt_core::history::{Action, History, InvocationRecord};
use blunt_core::ids::InvId;
use blunt_core::spec::SequentialSpec;
use std::collections::HashSet;

/// The verdict of a linearizability check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LinResult {
    /// A witness linearization, as the order of invocation ids (pending
    /// invocations that were dropped do not appear).
    Linearizable(Vec<InvId>),
    /// No linearization exists.
    NotLinearizable,
}

impl LinResult {
    /// Returns `true` if the history is linearizable.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, LinResult::Linearizable(_))
    }
}

struct Op {
    rec: InvocationRecord,
    call_pos: usize,
    ret_pos: Option<usize>,
}

struct Search<'a, S: SequentialSpec> {
    spec: &'a S,
    ops: Vec<Op>,
    /// Failed (linearized-mask, dropped-mask, state) combinations.
    seen: HashSet<(u64, u64, S::State)>,
    /// Search nodes entered (accumulated locally, flushed to the global
    /// registry once per check — a per-node atomic would dominate the
    /// search's own work).
    states: u64,
    /// Nodes cut off by the memoization table.
    memo_prunes: u64,
}

impl<'a, S: SequentialSpec> Search<'a, S> {
    /// `linearized`: ops already placed; `dropped`: pending ops decided to
    /// be removed. Returns a witness order (reversed) on success.
    fn go(
        &mut self,
        linearized: u64,
        dropped: u64,
        state: &S::State,
        witness: &mut Vec<InvId>,
    ) -> bool {
        let done = linearized | dropped;
        self.states += 1;
        if done == (1u64 << self.ops.len()) - 1 {
            return true;
        }
        if !self.seen.insert((linearized, dropped, state.clone())) {
            self.memo_prunes += 1;
            return false;
        }
        // Frontier: the earliest return position among unplaced completed
        // ops. Any op whose call is after that return cannot be linearized
        // yet (the completed op must come first).
        let frontier = self
            .ops
            .iter()
            .enumerate()
            .filter(|(i, o)| done & (1 << i) == 0 && o.ret_pos.is_some())
            .map(|(_, o)| o.ret_pos.unwrap())
            .min()
            .unwrap_or(usize::MAX);
        for i in 0..self.ops.len() {
            let bit = 1u64 << i;
            if done & bit != 0 {
                continue;
            }
            let op = &self.ops[i];
            if op.call_pos > frontier {
                continue;
            }
            // Try linearizing op i next.
            if let Some((next, val)) = self.spec.apply(state, op.rec.method, &op.rec.arg) {
                let matches = match &op.rec.ret {
                    Some(actual) => *actual == val,
                    None => true, // pending: destined value is free
                };
                if matches {
                    witness.push(op.rec.inv);
                    if self.go(linearized | bit, dropped, &next, witness) {
                        return true;
                    }
                    witness.pop();
                }
            }
            // If pending, also try dropping it.
            if self.ops[i].ret_pos.is_none() && self.go(linearized, dropped | bit, state, witness) {
                return true;
            }
        }
        false
    }
}

/// Checks whether `history` is linearizable w.r.t. `spec`.
///
/// # Panics
///
/// Panics if the history is not well-formed or has more than 64
/// invocations (the bitmask width; far beyond any history produced here).
#[must_use]
pub fn check_linearizable<S: SequentialSpec>(history: &History, spec: &S) -> LinResult {
    assert!(history.is_well_formed(), "history must be well-formed");
    let recs = history.invocations();
    assert!(recs.len() <= 64, "history too large for the checker");

    // Recover call/return positions.
    let mut ops: Vec<Op> = Vec::with_capacity(recs.len());
    for rec in recs {
        ops.push(Op {
            rec,
            call_pos: 0,
            ret_pos: None,
        });
    }
    for (pos, action) in history.actions().iter().enumerate() {
        match action {
            Action::Call { inv, .. } => {
                if let Some(op) = ops.iter_mut().find(|o| o.rec.inv == *inv) {
                    op.call_pos = pos;
                }
            }
            Action::Return { inv, .. } => {
                if let Some(op) = ops.iter_mut().find(|o| o.rec.inv == *inv) {
                    op.ret_pos = Some(pos);
                }
            }
        }
    }

    let mut search = Search {
        spec,
        ops,
        seen: HashSet::new(),
        states: 0,
        memo_prunes: 0,
    };
    let mut witness = Vec::new();
    let ok = search.go(0, 0, &spec.init(), &mut witness);
    blunt_obs::static_counter!("lincheck.wgl.checks").inc();
    blunt_obs::static_counter!("lincheck.wgl.states").add(search.states);
    blunt_obs::static_counter!("lincheck.wgl.memo_prunes").add(search.memo_prunes);
    blunt_obs::static_gauge!("lincheck.wgl.states_hwm").record_max(search.states as i64);
    if ok {
        LinResult::Linearizable(witness)
    } else {
        LinResult::NotLinearizable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_core::ids::{MethodId, ObjId, Pid};
    use blunt_core::spec::RegisterSpec;
    use blunt_core::value::Val;

    fn call(inv: u64, pid: u32, method: MethodId, arg: Val) -> Action {
        Action::Call {
            inv: InvId(inv),
            pid: Pid(pid),
            obj: ObjId(0),
            method,
            arg,
        }
    }

    fn ret(inv: u64, val: Val) -> Action {
        Action::Return {
            inv: InvId(inv),
            val,
        }
    }

    fn reg() -> RegisterSpec {
        RegisterSpec::new(Val::Nil)
    }

    #[test]
    fn sequential_read_after_write_is_linearizable() {
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            ret(0, Val::Nil),
            call(1, 1, MethodId::READ, Val::Nil),
            ret(1, Val::Int(1)),
        ]
        .into_iter()
        .collect();
        let r = check_linearizable(&h, &reg());
        assert_eq!(r, LinResult::Linearizable(vec![InvId(0), InvId(1)]));
    }

    #[test]
    fn stale_read_after_write_returned_is_not_linearizable() {
        // Write(1) returns, then a later read returns the initial value.
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            ret(0, Val::Nil),
            call(1, 1, MethodId::READ, Val::Nil),
            ret(1, Val::Nil),
        ]
        .into_iter()
        .collect();
        assert_eq!(check_linearizable(&h, &reg()), LinResult::NotLinearizable);
    }

    #[test]
    fn overlapping_read_may_return_either_value() {
        // Read overlaps Write(1): both ⊥ and 1 are fine.
        for v in [Val::Nil, Val::Int(1)] {
            let h: History = vec![
                call(0, 0, MethodId::WRITE, Val::Int(1)),
                call(1, 1, MethodId::READ, Val::Nil),
                ret(1, v),
                ret(0, Val::Nil),
            ]
            .into_iter()
            .collect();
            assert!(check_linearizable(&h, &reg()).is_ok());
        }
        // But not an unrelated value.
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            call(1, 1, MethodId::READ, Val::Nil),
            ret(1, Val::Int(9)),
            ret(0, Val::Nil),
        ]
        .into_iter()
        .collect();
        assert_eq!(check_linearizable(&h, &reg()), LinResult::NotLinearizable);
    }

    #[test]
    fn new_old_inversion_is_rejected() {
        // Two sequential reads observing w1 then w0 (both writes completed
        // before the reads began) — the classic non-linearizable pattern.
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(0)),
            ret(0, Val::Nil),
            call(1, 1, MethodId::WRITE, Val::Int(1)),
            ret(1, Val::Nil),
            call(2, 2, MethodId::READ, Val::Nil),
            ret(2, Val::Int(1)),
            call(3, 2, MethodId::READ, Val::Nil),
            ret(3, Val::Int(0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(check_linearizable(&h, &reg()), LinResult::NotLinearizable);
    }

    #[test]
    fn concurrent_writes_allow_either_read_order_but_not_both() {
        // W(0) ∥ W(1), then reads 0, 1 in sequence: requires W(1) to
        // linearize between the two reads — impossible once both writes
        // returned before the reads started.
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(0)),
            call(1, 1, MethodId::WRITE, Val::Int(1)),
            ret(0, Val::Nil),
            ret(1, Val::Nil),
            call(2, 2, MethodId::READ, Val::Nil),
            ret(2, Val::Int(0)),
            call(3, 2, MethodId::READ, Val::Nil),
            ret(3, Val::Int(1)),
        ]
        .into_iter()
        .collect();
        assert_eq!(check_linearizable(&h, &reg()), LinResult::NotLinearizable);

        // If the second read overlaps the writes, it becomes linearizable.
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(0)),
            call(1, 1, MethodId::WRITE, Val::Int(1)),
            call(2, 2, MethodId::READ, Val::Nil),
            ret(2, Val::Int(0)),
            call(3, 2, MethodId::READ, Val::Nil),
            ret(3, Val::Int(1)),
            ret(0, Val::Nil),
            ret(1, Val::Nil),
        ]
        .into_iter()
        .collect();
        assert!(check_linearizable(&h, &reg()).is_ok());
    }

    #[test]
    fn pending_write_may_take_effect_or_not() {
        // A pending Write(1) justifies a read of 1...
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            call(1, 1, MethodId::READ, Val::Nil),
            ret(1, Val::Int(1)),
        ]
        .into_iter()
        .collect();
        assert!(check_linearizable(&h, &reg()).is_ok());

        // ...and equally a read of ⊥ (the write is dropped).
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            call(1, 1, MethodId::READ, Val::Nil),
            ret(1, Val::Nil),
        ]
        .into_iter()
        .collect();
        assert!(check_linearizable(&h, &reg()).is_ok());
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h = History::new();
        assert_eq!(
            check_linearizable(&h, &reg()),
            LinResult::Linearizable(vec![])
        );
    }

    #[test]
    fn witness_respects_real_time_order() {
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Int(1)),
            ret(0, Val::Nil),
            call(1, 1, MethodId::WRITE, Val::Int(2)),
            ret(1, Val::Nil),
            call(2, 2, MethodId::READ, Val::Nil),
            ret(2, Val::Int(2)),
        ]
        .into_iter()
        .collect();
        match check_linearizable(&h, &reg()) {
            LinResult::Linearizable(w) => {
                assert_eq!(w, vec![InvId(0), InvId(1), InvId(2)]);
            }
            LinResult::NotLinearizable => panic!("must be linearizable"),
        }
    }

    #[test]
    fn counter_spec_histories_also_check() {
        use blunt_core::spec::CounterSpec;
        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Nil),
            call(1, 1, MethodId::WRITE, Val::Nil),
            ret(0, Val::Nil),
            ret(1, Val::Nil),
            call(2, 2, MethodId::READ, Val::Nil),
            ret(2, Val::Int(2)),
        ]
        .into_iter()
        .collect();
        assert!(check_linearizable(&h, &CounterSpec).is_ok());

        let h: History = vec![
            call(0, 0, MethodId::WRITE, Val::Nil),
            ret(0, Val::Nil),
            call(2, 2, MethodId::READ, Val::Nil),
            ret(2, Val::Int(5)),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            check_linearizable(&h, &CounterSpec),
            LinResult::NotLinearizable
        );
    }
}
