//! The workload driver: real OS threads running the ABD client/server step
//! machines over the fault-injecting [`Bus`], observed by the
//! [`OnlineMonitor`].
//!
//! Topology: pids `0..servers` are server threads, `servers..servers+clients`
//! are client threads. Clients issue `ops_per_client` sequential register
//! operations each, reporting `Call` before the first broadcast and `Return`
//! after the quorum completes; per-op latency goes into a thread-local
//! [`Histogram`] that is [`Histogram::merge`]d into the shared one exactly
//! once at thread exit (no hot-path contention).
//!
//! Liveness under faults comes from retransmission: when a client waits
//! longer than `retransmit_after` for a response, it rebroadcasts the
//! in-flight exchange ([`ActiveOp::retransmission`]) as an *exempt* message
//! that bypasses the injector. Exempt traffic consumes no fault-schedule
//! indices, keeping the schedule a pure function of the seed.
//!
//! Clients run in barrier-separated **bursts** of `burst` ops: at each
//! barrier every in-flight operation has returned, so the monitor is
//! guaranteed a cut at least every `clients × burst` invocations — kept
//! under the checker's 64-invocation window by construction (asserted).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use blunt_abd::client::{AckEffect, ActiveOp, OpKind, ReplyEffect};
use blunt_abd::msg::AbdMsg;
use blunt_abd::server::ServerState;
use blunt_core::history::Action;
use blunt_core::ids::{InvId, MethodId, ObjId, Pid};
use blunt_core::value::Val;
use blunt_obs::{Histogram, HistogramSnapshot};
use blunt_sim::rng::{RandomSource, SplitMix64};

use crate::bus::{Bus, BusStats, Envelope};
use crate::fault::FaultConfig;
use crate::monitor::{MonitorReport, OnlineMonitor};

/// Configuration of one chaos run.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of ABD server threads (replicas). Quorum is `⌊n/2⌋ + 1`.
    pub servers: u32,
    /// Number of client threads.
    pub clients: u32,
    /// Operations issued by each client.
    pub ops_per_client: u64,
    /// Preamble iterations (`k = 1` is plain ABD; `k = 2` is O² of
    /// Algorithm 2).
    pub k: u32,
    /// Ops per client between barriers. `clients × burst ≤ 64` is required
    /// (the monitor's window bound).
    pub burst: u64,
    /// ‰ of operations that are reads.
    pub read_per_mille: u16,
    /// The run seed: fault schedule, op mix, and object random choices all
    /// derive from it.
    pub seed: u64,
    /// Fault mix.
    pub faults: FaultConfig,
    /// Replace reads with the intentionally-broken single-server fast read
    /// (no quorum, no write-back) — the monitor must catch this.
    pub broken_reads: bool,
    /// How long a client waits for a response before retransmitting.
    pub retransmit_after: Duration,
}

impl RuntimeConfig {
    /// A small smoke configuration: faults on, a few thousand ops.
    #[must_use]
    pub fn smoke(seed: u64) -> RuntimeConfig {
        RuntimeConfig {
            servers: 3,
            clients: 4,
            ops_per_client: 500,
            k: 1,
            burst: 8,
            read_per_mille: 500,
            seed,
            faults: FaultConfig::chaos(),
            broken_reads: false,
            retransmit_after: Duration::from_millis(1),
        }
    }

    /// The acceptance soak shape: ≥ 8 clients, ≥ 100k total ops, full fault
    /// mix.
    #[must_use]
    pub fn soak(seed: u64, k: u32) -> RuntimeConfig {
        RuntimeConfig {
            servers: 3,
            clients: 8,
            ops_per_client: 13_000,
            k,
            burst: 4,
            read_per_mille: 500,
            seed,
            faults: FaultConfig::chaos(),
            broken_reads: false,
            retransmit_after: Duration::from_millis(1),
        }
    }
}

/// The outcome of a chaos run.
#[derive(Debug)]
pub struct ChaosReport {
    /// Operations completed (= `clients × ops_per_client`).
    pub ops: u64,
    /// Deterministic fault counters from the bus.
    pub bus: BusStats,
    /// The monitor's verdict.
    pub monitor: MonitorReport,
    /// Exempt rebroadcasts issued (timing-dependent; excluded from
    /// regression gating).
    pub retransmissions: u64,
    /// Merged per-op latency distribution, in microseconds.
    pub latency_us: HistogramSnapshot,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl ChaosReport {
    /// Throughput in completed operations per second.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.ops as f64 / secs
        } else {
            0.0
        }
    }
}

fn client_rng(seed: u64, client: u32) -> SplitMix64 {
    SplitMix64::new(
        seed ^ 0xC11E_4775_0000_0000 ^ u64::from(client).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}

/// Runs one seeded chaos configuration to completion.
///
/// # Panics
///
/// Panics if the configuration is degenerate (no servers/clients/ops) or if
/// `clients × burst` exceeds the monitor's 64-invocation window bound.
#[must_use]
pub fn run_chaos(cfg: &RuntimeConfig) -> ChaosReport {
    assert!(cfg.servers >= 1 && cfg.clients >= 1 && cfg.ops_per_client >= 1);
    assert!(cfg.k >= 1, "ABD^k requires k ≥ 1");
    assert!(cfg.burst >= 1);
    assert!(
        u64::from(cfg.clients) * cfg.burst <= 64,
        "clients × burst must fit the monitor's 64-invocation window"
    );
    let started = Instant::now();
    let nodes = cfg.servers + cfg.clients;
    let quorum = cfg.servers / 2 + 1;
    let (bus, receivers) = Bus::new(cfg.seed, cfg.faults, cfg.servers, nodes);
    let bus = Arc::new(bus);
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(cfg.clients as usize));
    let retransmissions = Arc::new(AtomicU64::new(0));
    let latency = Histogram::unregistered();

    let (mon_tx, mon_rx) = mpsc::channel::<Action>();
    let lanes = nodes as usize;
    let monitor = thread::spawn(move || {
        let mut m = OnlineMonitor::new(Val::Nil, lanes);
        while let Ok(a) = mon_rx.recv() {
            m.observe(a);
        }
        m.finish()
    });

    let mut rx_iter = receivers.into_iter();
    let mut servers = Vec::new();
    for s in 0..cfg.servers {
        let rx = rx_iter.next().expect("one receiver per node");
        let bus = Arc::clone(&bus);
        let stop = Arc::clone(&stop);
        servers.push(thread::spawn(move || server_loop(Pid(s), rx, &bus, &stop)));
    }
    let mut clients = Vec::new();
    for c in 0..cfg.clients {
        let rx = rx_iter.next().expect("one receiver per node");
        let bus = Arc::clone(&bus);
        let barrier = Arc::clone(&barrier);
        let retransmissions = Arc::clone(&retransmissions);
        let latency = latency.clone();
        let mon_tx = mon_tx.clone();
        let cfg = cfg.clone();
        clients.push(thread::spawn(move || {
            client_loop(
                c,
                &cfg,
                quorum,
                rx,
                &bus,
                &barrier,
                &mon_tx,
                &retransmissions,
                &latency,
            );
        }));
    }
    drop(mon_tx);

    for c in clients {
        c.join().expect("client thread");
    }
    stop.store(true, Ordering::Relaxed);
    for s in servers {
        s.join().expect("server thread");
    }
    bus.flush();
    let monitor = monitor.join().expect("monitor thread");

    let ops = u64::from(cfg.clients) * cfg.ops_per_client;
    blunt_obs::static_counter!("runtime.ops.completed").add(ops);
    ChaosReport {
        ops,
        bus: bus.stats(),
        monitor,
        retransmissions: retransmissions.load(Ordering::Relaxed),
        latency_us: latency.snapshot(),
        elapsed: started.elapsed(),
    }
}

/// One ABD replica: replies to queries, absorbs updates. Responses inherit
/// the triggering envelope's exemption so retransmitted exchanges complete
/// without consuming fault indices.
fn server_loop(me: Pid, rx: Receiver<Envelope>, bus: &Bus, stop: &AtomicBool) {
    let mut state = ServerState::new(Val::Nil);
    loop {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(env) => match env.msg {
                AbdMsg::Query { obj, sn } => {
                    let msg = state.reply(obj, sn);
                    bus.send(Envelope {
                        src: me,
                        dst: env.src,
                        msg,
                        exempt: env.exempt,
                    });
                }
                AbdMsg::Update { obj, sn, val, ts } => {
                    state.absorb(val, ts);
                    bus.send(Envelope {
                        src: me,
                        dst: env.src,
                        msg: AbdMsg::Ack { obj, sn },
                        exempt: env.exempt,
                    });
                }
                // Replies and acks are client-bound; a misrouted one is
                // ignorable.
                AbdMsg::Reply { .. } | AbdMsg::Ack { .. } => {}
            },
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[allow(clippy::too_many_arguments)] // a thread entry point, not an API
fn client_loop(
    c: u32,
    cfg: &RuntimeConfig,
    quorum: u32,
    rx: Receiver<Envelope>,
    bus: &Bus,
    barrier: &Barrier,
    mon_tx: &Sender<Action>,
    retransmissions: &AtomicU64,
    latency: &Histogram,
) {
    let me = Pid(cfg.servers + c);
    let obj = ObjId(0);
    let mut rng = client_rng(cfg.seed, c);
    let mut sn_counter: u32 = 0;
    let local = Histogram::unregistered();
    let mut retrans: u64 = 0;

    for op_idx in 0..cfg.ops_per_client {
        if op_idx > 0 && op_idx % cfg.burst == 0 {
            barrier.wait();
        }
        let inv = InvId(u64::from(c) * 10_000_000 + op_idx);
        let is_read = rng.draw(1000) < usize::from(cfg.read_per_mille);
        let (method, arg) = if is_read {
            (MethodId::READ, Val::Nil)
        } else {
            // Unique write values keep the checker's search shallow and
            // make stale reads unambiguous.
            let v = i64::from(c) * 1_000_000 + i64::try_from(op_idx).expect("op index fits i64");
            (MethodId::WRITE, Val::Int(v))
        };
        let _ = mon_tx.send(Action::Call {
            inv,
            pid: me,
            obj,
            method,
            arg: arg.clone(),
        });
        let t0 = Instant::now();
        let ret = if cfg.broken_reads && is_read {
            broken_read(
                me,
                obj,
                op_idx,
                cfg,
                &rx,
                bus,
                &mut sn_counter,
                &mut retrans,
            )
        } else {
            let kind = if is_read {
                OpKind::Read
            } else {
                OpKind::Write(arg)
            };
            abd_op(
                me,
                obj,
                inv,
                kind,
                cfg,
                quorum,
                &rx,
                bus,
                &mut rng,
                &mut sn_counter,
                &mut retrans,
            )
        };
        local.record(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
        let _ = mon_tx.send(Action::Return { inv, val: ret });
    }
    latency.merge(&local);
    retransmissions.fetch_add(retrans, Ordering::Relaxed);
}

fn server_pids(cfg: &RuntimeConfig) -> impl Iterator<Item = Pid> {
    (0..cfg.servers).map(Pid)
}

/// Drives one full ABD (or ABD^k) operation through the client step machine
/// to completion, retransmitting on timeout.
#[allow(clippy::too_many_arguments)] // mirrors the thread context it runs in
fn abd_op(
    me: Pid,
    obj: ObjId,
    inv: InvId,
    kind: OpKind,
    cfg: &RuntimeConfig,
    quorum: u32,
    rx: &Receiver<Envelope>,
    bus: &Bus,
    rng: &mut SplitMix64,
    sn_counter: &mut u32,
    retrans: &mut u64,
) -> Val {
    *sn_counter += 1;
    let sn = *sn_counter;
    let mut op = ActiveOp::start(inv, obj, kind, cfg.k, sn);
    bus.broadcast(me, server_pids(cfg), &AbdMsg::Query { obj, sn }, false);
    loop {
        match rx.recv_timeout(cfg.retransmit_after) {
            Ok(env) => match env.msg {
                AbdMsg::Reply {
                    obj: o,
                    sn: msg_sn,
                    val,
                    ts,
                } if o == obj => {
                    match op.on_reply(env.src, msg_sn, &val, ts, quorum, me, sn_counter) {
                        ReplyEffect::NextQuery { sn, .. } => {
                            bus.broadcast(me, server_pids(cfg), &AbdMsg::Query { obj, sn }, false);
                        }
                        ReplyEffect::NeedChoice { choices, .. } => {
                            // The object random step, drawn from the
                            // client's seeded stream: one draw per op, so
                            // the stream position is schedule-independent.
                            let choice = rng.draw(choices as usize);
                            let (sn, val, ts) = op.choose(choice, me, sn_counter);
                            bus.broadcast(
                                me,
                                server_pids(cfg),
                                &AbdMsg::Update { obj, sn, val, ts },
                                false,
                            );
                        }
                        ReplyEffect::StartUpdate { sn, val, ts, .. } => {
                            bus.broadcast(
                                me,
                                server_pids(cfg),
                                &AbdMsg::Update { obj, sn, val, ts },
                                false,
                            );
                        }
                        ReplyEffect::Ignored | ReplyEffect::Counted => {}
                    }
                }
                AbdMsg::Ack { obj: o, sn: msg_sn } if o == obj => {
                    if let AckEffect::Complete { ret } = op.on_ack(env.src, msg_sn, quorum) {
                        return ret;
                    }
                }
                _ => {}
            },
            Err(RecvTimeoutError::Timeout) => {
                if let Some(msg) = op.retransmission() {
                    *retrans += 1;
                    blunt_obs::static_counter!("runtime.client.retransmissions").inc();
                    bus.broadcast(me, server_pids(cfg), &msg, true);
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                panic!("bus closed while an operation was in flight")
            }
        }
    }
}

/// The intentionally-broken read: query ONE server (rotating), return the
/// first reply's value, skip the write-back. Under drops a replica can miss
/// an update forever, so a client that writes and then fast-reads a stale
/// replica observes a new-old inversion in its own program order — exactly
/// what the monitor exists to catch.
#[allow(clippy::too_many_arguments)] // mirrors the thread context it runs in
fn broken_read(
    me: Pid,
    obj: ObjId,
    op_idx: u64,
    cfg: &RuntimeConfig,
    rx: &Receiver<Envelope>,
    bus: &Bus,
    sn_counter: &mut u32,
    retrans: &mut u64,
) -> Val {
    *sn_counter += 1;
    let sn = *sn_counter;
    let target = Pid(u32::try_from(op_idx % u64::from(cfg.servers)).expect("server index"));
    let msg = AbdMsg::Query { obj, sn };
    bus.send(Envelope {
        src: me,
        dst: target,
        msg: msg.clone(),
        exempt: false,
    });
    loop {
        match rx.recv_timeout(cfg.retransmit_after) {
            Ok(env) => {
                if let AbdMsg::Reply {
                    obj: o,
                    sn: msg_sn,
                    val,
                    ..
                } = env.msg
                {
                    if o == obj && msg_sn == sn {
                        return val;
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                *retrans += 1;
                bus.send(Envelope {
                    src: me,
                    dst: target,
                    msg: msg.clone(),
                    exempt: true,
                });
            }
            Err(RecvTimeoutError::Disconnected) => {
                panic!("bus closed while a read was in flight")
            }
        }
    }
}
