//! The workload driver: real OS threads running the ABD client/server step
//! machines over a fault-injecting [`Transport`] (the in-process [`Bus`] or
//! the socket tier — see `crate::netrun`), observed by the
//! [`OnlineMonitor`].
//!
//! Topology: pids `0..servers` are server threads, `servers..servers+clients`
//! are client threads. Clients issue `ops_per_client` sequential register
//! operations each, reporting `Call` before the first broadcast and `Return`
//! after the quorum completes; per-op latency goes into a thread-local
//! [`Histogram`] that is [`Histogram::merge`]d into the shared one exactly
//! once at thread exit (no hot-path contention).
//!
//! Liveness under faults comes from retransmission: when a client waits
//! longer than its current backoff for a response, it rebroadcasts the
//! in-flight exchange ([`ActiveOp::retransmission`]) as an *exempt* message
//! that bypasses the injector. The backoff is deterministic exponential —
//! starting at `retransmit_after`, doubling per consecutive timeout, capped
//! at `retransmit_cap`, reset by any received message — so a crashed or
//! slow quorum is probed geometrically rather than hammered. Exempt traffic
//! consumes no fault-schedule indices, keeping the schedule a pure function
//! of the seed.
//!
//! **Crash recovery.** Under [`RecoveryMode::Amnesia`] every server keeps a
//! write-ahead log ([`MultiWal`]) and obeys the *write-ahead ack discipline*: an
//! update is acknowledged only once a WAL record with a timestamp covering
//! it is fsynced (group commit: a batch fills, the server goes idle, or an
//! exempt retransmission applies pressure). When the bus raises the amnesia
//! signal ([`Payload::Crash`]) at a crash window's exit, the server erases
//! its volatile state and its unsynced WAL suffix, then recovers — the
//! blackout window models the outage itself; the power loss materializes at
//! the reboot, when peers are reachable again for catch-up and the
//! recovered (or, under `--demo-amnesia`, unrecovered) state is actually
//! observable by clients. Recovery: replay the durable checkpoint, then
//! catch up from `quorum − 1` peers via exempt [`Payload::StateQuery`]
//! state transfer (mirroring the ABD read phase) before serving buffered
//! traffic. The discipline makes replay alone sound — every *acked* update
//! is durable, and unacked state a reader observed is re-made durable by
//! that reader's own write-back quorum — so concurrent recoveries need no
//! coordination; the catch-up phase only restores freshness. The argument
//! lives in `docs/RUNTIME.md`.
//!
//! Clients run in barrier-separated **bursts** of `burst` ops: at each
//! barrier every in-flight operation has returned, so the monitor is
//! guaranteed a cut at least every `clients × burst` invocations — kept
//! under the checker's 64-invocation window by construction (asserted).

use std::collections::{BTreeMap, HashMap};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use blunt_abd::client::{AckEffect, ActiveOp, OpKind, ReplyEffect};
use blunt_abd::msg::AbdMsg;
use blunt_abd::server::StoreState;
use blunt_abd::ts::Ts;
use blunt_core::history::Action;
use blunt_core::ids::{InvId, MethodId, ObjId, Pid};
use blunt_core::value::Val;
use blunt_obs::flight::{encode_val, KEY_NONE};
use blunt_obs::{
    FlightDump, FlightKind, FlightRecorder, FlightRing, Histogram, HistogramSnapshot,
    QuantileSketch,
};
use blunt_sim::rng::{RandomSource, SplitMix64};

use blunt_net::{SpanCtx, Transport};

use crate::bus::{Bus, BusStats, Envelope, Payload};
use crate::coverage::Coverage;
use crate::fault::{FaultConfig, FaultConfigError};
use crate::monitor::{MonitorReport, OnlineMonitor};
use crate::recovery::{RecoveryMode, RecoverySink, RecoveryStats};
use crate::storage::MultiWal;

/// Configuration of one chaos run.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of ABD server threads (replicas). Quorum is `⌊n/2⌋ + 1`.
    pub servers: u32,
    /// Number of client threads.
    pub clients: u32,
    /// Operations issued by each client.
    pub ops_per_client: u64,
    /// Preamble iterations (`k = 1` is plain ABD; `k = 2` is O² of
    /// Algorithm 2).
    pub k: u32,
    /// Ops per client between barriers. `clients × burst ≤ 64` is required
    /// (the monitor's window bound).
    pub burst: u64,
    /// Number of distinct registers (keys) the clients operate on, drawn
    /// uniformly per op from the client's seeded stream. `keys = 1` is the
    /// classic single-register workload and consumes **no** extra rng
    /// draws, so pre-keyed seeds replay byte-identically.
    pub keys: u32,
    /// ‰ of operations that are reads.
    pub read_per_mille: u16,
    /// The run seed: fault schedule, op mix, and object random choices all
    /// derive from it.
    pub seed: u64,
    /// Fault mix.
    pub faults: FaultConfig,
    /// Replace reads with the intentionally-broken single-server fast read
    /// (no quorum, no write-back) — the monitor must catch this.
    pub broken_reads: bool,
    /// Initial client wait for a response before retransmitting; doubles
    /// per consecutive timeout.
    pub retransmit_after: Duration,
    /// Upper bound on the exponential backoff.
    pub retransmit_cap: Duration,
    /// What a crash means for server state (see [`RecoveryMode`]).
    pub recovery: RecoveryMode,
    /// Emit a live progress snapshot to stderr every interval (`None` =
    /// silent). Read-only observation: never perturbs the fault schedule.
    pub watch: Option<Duration>,
    /// Mirror the watch snapshots as machine-readable JSONL to this path
    /// (schema-versioned; one `watch_tick` record per tick). Works with or
    /// without the stderr `watch` line; ticks use the `watch` interval when
    /// set, the default cadence otherwise.
    pub watch_out: Option<PathBuf>,
    /// Watchdog: if no operation completes for this long, mark the run
    /// stalled and capture a flight dump (written under
    /// [`RuntimeConfig::flight_dump_dir`] when set).
    pub stall_after: Option<Duration>,
    /// Directory for watchdog stall dumps (`stall.flight.jsonl` plus a
    /// rendered `stall.diagram.txt`). `None` keeps the stall in-memory only.
    pub flight_dump_dir: Option<PathBuf>,
}

impl RuntimeConfig {
    /// A small smoke configuration: faults on, a few thousand ops.
    #[must_use]
    pub fn smoke(seed: u64) -> RuntimeConfig {
        RuntimeConfig {
            servers: 3,
            clients: 4,
            ops_per_client: 500,
            k: 1,
            burst: 8,
            keys: 1,
            read_per_mille: 500,
            seed,
            faults: FaultConfig::chaos(),
            broken_reads: false,
            retransmit_after: Duration::from_millis(1),
            retransmit_cap: Duration::from_millis(16),
            recovery: RecoveryMode::Stable,
            watch: None,
            watch_out: None,
            stall_after: Some(Duration::from_secs(60)),
            flight_dump_dir: None,
        }
    }

    /// The acceptance soak shape: ≥ 8 clients, ≥ 100k total ops, full fault
    /// mix.
    #[must_use]
    pub fn soak(seed: u64, k: u32) -> RuntimeConfig {
        RuntimeConfig {
            servers: 3,
            clients: 8,
            ops_per_client: 13_000,
            k,
            burst: 4,
            keys: 1,
            read_per_mille: 500,
            seed,
            faults: FaultConfig::chaos(),
            broken_reads: false,
            retransmit_after: Duration::from_millis(1),
            retransmit_cap: Duration::from_millis(16),
            recovery: RecoveryMode::Stable,
            watch: None,
            watch_out: None,
            stall_after: Some(Duration::from_secs(60)),
            flight_dump_dir: None,
        }
    }

    /// The smoke shape with amnesia crashes and sound recovery.
    #[must_use]
    pub fn smoke_amnesia(seed: u64) -> RuntimeConfig {
        let mut cfg = RuntimeConfig::smoke(seed);
        cfg.recovery = RecoveryMode::amnesia();
        cfg
    }

    /// The acceptance soak shape with amnesia crashes and sound recovery.
    #[must_use]
    pub fn soak_amnesia(seed: u64, k: u32) -> RuntimeConfig {
        let mut cfg = RuntimeConfig::soak(seed, k);
        cfg.recovery = RecoveryMode::amnesia();
        cfg
    }
}

/// What the online monitor cost this run.
#[derive(Clone, Copy, Debug, Default)]
pub struct MonitorOverhead {
    /// Actions the monitor observed (= `2 × ops`; deterministic).
    pub actions: u64,
    /// Total wall time spent inside [`OnlineMonitor::observe`]
    /// (timing-dependent; bench-gated only under `--strict-times`).
    pub observe_ns: u64,
    /// High-water mark of the monitor's backlog — actions enqueued by
    /// clients but not yet observed, i.e. how far the monitor ran behind
    /// the frontier (timing-dependent).
    pub lag_ops_hwm: u64,
}

/// Live counters shared with the watch/watchdog thread. Pure observation:
/// nothing here feeds back into scheduling or the fault plan.
pub(crate) struct Telemetry {
    /// Operations completed so far.
    ops: AtomicU64,
    /// Operations invoked but not yet returned.
    in_flight: AtomicU64,
    /// Actions enqueued to the monitor channel.
    actions_sent: AtomicU64,
    /// Actions the monitor has observed.
    actions_seen: AtomicU64,
    /// Streaming per-op latency (µs), mergeable across threads.
    sketch: QuantileSketch,
}

impl Telemetry {
    pub(crate) fn new() -> Telemetry {
        Telemetry {
            ops: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            actions_sent: AtomicU64::new(0),
            actions_seen: AtomicU64::new(0),
            sketch: QuantileSketch::new(),
        }
    }

    /// Actions the monitor has observed (for the report's overhead block).
    pub(crate) fn actions_seen(&self) -> u64 {
        self.actions_seen.load(Ordering::Relaxed)
    }
}

/// The outcome of a chaos run.
#[derive(Debug)]
pub struct ChaosReport {
    /// Operations completed (= `clients × ops_per_client`).
    pub ops: u64,
    /// Deterministic fault counters from the bus.
    pub bus: BusStats,
    /// Which fault patterns the schedule actually exercised, per link
    /// (deterministic for a fixed seed and configuration).
    pub coverage: Coverage,
    /// The monitor's verdict.
    pub monitor: MonitorReport,
    /// What the monitor cost (`actions` deterministic, times not).
    pub monitor_overhead: MonitorOverhead,
    /// The flight-recorder window captured at the *first* monitor
    /// violation (`None` on clean runs).
    pub violation_dump: Option<FlightDump>,
    /// `true` iff the watchdog saw no completed operation for
    /// [`RuntimeConfig::stall_after`].
    pub stalled: bool,
    /// Crash-recovery counters (`crashes`/`recoveries` deterministic, the
    /// WAL-shaped ones timing-dependent — see [`RecoveryStats`]).
    pub recovery: RecoveryStats,
    /// Exempt rebroadcasts issued (timing-dependent; excluded from
    /// regression gating).
    pub retransmissions: u64,
    /// Merged per-op latency distribution, in microseconds.
    pub latency_us: HistogramSnapshot,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-server remote state — clock offset, last telemetry snapshot,
    /// goodbye-piggybacked dump — in multi-process runs (index = server
    /// pid). Empty for in-process runs, where no state is remote.
    pub remote_servers: Vec<blunt_net::RemoteServer>,
    /// The cross-process merged flight dump (driver events plus every
    /// remote server's dump, clock-aligned and process-labeled).
    /// `None` for in-process runs — the ordinary flight recorder already
    /// sees every event there.
    pub merged_flight: Option<FlightDump>,
}

impl ChaosReport {
    /// Throughput in completed operations per second.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.ops as f64 / secs
        } else {
            0.0
        }
    }
}

fn client_rng(seed: u64, client: u32) -> SplitMix64 {
    SplitMix64::new(
        seed ^ 0xC11E_4775_0000_0000 ^ u64::from(client).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}

/// Runs one seeded chaos configuration to completion.
///
/// # Errors
///
/// Returns a [`FaultConfigError`] when `cfg.faults` is unusable for this
/// topology (overlapping crash stagger, zero periods, oversubscribed
/// rates) — the numbers are in the error.
///
/// # Panics
///
/// Panics if the configuration is degenerate (no servers/clients/ops) or if
/// `clients × burst` exceeds the monitor's 64-invocation window bound —
/// programmer errors, unlike the recoverable fault-config validation.
pub fn run_chaos(cfg: &RuntimeConfig) -> Result<ChaosReport, FaultConfigError> {
    assert!(cfg.servers >= 1 && cfg.clients >= 1 && cfg.ops_per_client >= 1);
    assert!(cfg.k >= 1, "ABD^k requires k ≥ 1");
    assert!(cfg.burst >= 1);
    assert!(
        cfg.keys >= 1,
        "the keyed workload needs at least one register"
    );
    assert!(
        u64::from(cfg.clients) * cfg.burst <= 64,
        "clients × burst must fit the monitor's 64-invocation window"
    );
    let started = Instant::now();
    let nodes = cfg.servers + cfg.clients;
    let quorum = cfg.servers / 2 + 1;
    let recorder = Arc::new(FlightRecorder::new(4096));
    let (bus, receivers) = Bus::new(
        cfg.seed,
        cfg.faults,
        cfg.servers,
        nodes,
        cfg.recovery.is_amnesia(),
        Arc::clone(&recorder),
    )?;
    let bus = Arc::new(bus);
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(cfg.clients as usize));
    let retransmissions = Arc::new(AtomicU64::new(0));
    let recovery_sink = Arc::new(RecoverySink::default());
    let latency = Histogram::unregistered();
    let telemetry = Arc::new(Telemetry::new());

    let (mon_tx, mon_rx) = mpsc::channel::<Action>();
    let monitor = spawn_monitor(
        Arc::clone(&recorder),
        Arc::clone(&telemetry),
        nodes as usize,
        mon_rx,
    );

    let (watch_stop_tx, watch_stop_rx) = mpsc::channel::<()>();
    let stalled = Arc::new(AtomicBool::new(false));
    let watcher = if cfg.watch.is_some() || cfg.watch_out.is_some() || cfg.stall_after.is_some() {
        let telemetry = Arc::clone(&telemetry);
        let recorder = Arc::clone(&recorder);
        let sink = Arc::clone(&recovery_sink);
        let stalled = Arc::clone(&stalled);
        let cfg = cfg.clone();
        Some(thread::spawn(move || {
            watch_loop(
                &cfg,
                started,
                &telemetry,
                &recorder,
                &sink,
                &stalled,
                &watch_stop_rx,
                None,
            );
        }))
    } else {
        None
    };

    let mut rx_iter = receivers.into_iter();
    let mut servers = Vec::new();
    for s in 0..cfg.servers {
        let rx = rx_iter.next().expect("one receiver per node");
        let bus = Arc::clone(&bus);
        let stop = Arc::clone(&stop);
        let sink = Arc::clone(&recovery_sink);
        let recorder = Arc::clone(&recorder);
        let mode = cfg.recovery;
        // Single-shard topology: every server replicates with every other.
        let group: Vec<Pid> = (0..cfg.servers).map(Pid).collect();
        servers.push(thread::spawn(move || {
            server_loop(
                Pid(s),
                group,
                mode,
                rx,
                bus.as_ref(),
                &stop,
                &sink,
                &recorder,
            );
        }));
    }
    let mut clients = Vec::new();
    for c in 0..cfg.clients {
        let rx = rx_iter.next().expect("one receiver per node");
        let bus = Arc::clone(&bus);
        let barrier = Arc::clone(&barrier);
        let retransmissions = Arc::clone(&retransmissions);
        let latency = latency.clone();
        let mon_tx = mon_tx.clone();
        let recorder = Arc::clone(&recorder);
        let telemetry = Arc::clone(&telemetry);
        let cfg = cfg.clone();
        clients.push(thread::spawn(move || {
            client_loop(
                c,
                &cfg,
                quorum,
                rx,
                bus.as_ref(),
                &barrier,
                &mon_tx,
                &retransmissions,
                &latency,
                &recorder,
                &telemetry,
            );
        }));
    }
    drop(mon_tx);

    for c in clients {
        c.join().expect("client thread");
    }
    // Every amnesia signal is enqueued synchronously inside a client's send,
    // so by this point all crash events are in server mailboxes; servers
    // drain them before honoring `stop`, which keeps the recovery counters
    // deterministic.
    stop.store(true, Ordering::Relaxed);
    for s in servers {
        s.join().expect("server thread");
    }
    bus.flush();
    let (monitor, observe_ns, lag_ops_hwm, violation_dump) =
        monitor.join().expect("monitor thread");
    drop(watch_stop_tx);
    if let Some(w) = watcher {
        w.join().expect("watch thread");
    }

    let ops = u64::from(cfg.clients) * cfg.ops_per_client;
    blunt_obs::static_counter!("runtime.ops.completed").add(ops);
    Ok(ChaosReport {
        ops,
        bus: bus.stats(),
        coverage: bus.coverage(),
        monitor,
        monitor_overhead: MonitorOverhead {
            actions: telemetry.actions_seen.load(Ordering::Relaxed),
            observe_ns,
            lag_ops_hwm,
        },
        violation_dump,
        stalled: stalled.load(Ordering::Relaxed),
        recovery: recovery_sink.snapshot(),
        retransmissions: retransmissions.load(Ordering::Relaxed),
        latency_us: latency.snapshot(),
        elapsed: started.elapsed(),
        remote_servers: Vec::new(),
        merged_flight: None,
    })
}

/// Spawns the online-monitor thread: it consumes the action stream, feeds
/// the incremental checker, and captures a flight dump at the first
/// violation. Returns `(report, observe_ns, lag_hwm, dump)` on join.
/// Shared by the in-process and multi-process drivers.
pub(crate) fn spawn_monitor(
    recorder: Arc<FlightRecorder>,
    telemetry: Arc<Telemetry>,
    lanes: usize,
    mon_rx: Receiver<Action>,
) -> thread::JoinHandle<(MonitorReport, u64, u64, Option<FlightDump>)> {
    thread::spawn(move || {
        let ring = recorder.register_current("monitor");
        let mon_pid = u32::try_from(lanes).expect("node count fits u32");
        let mut m = OnlineMonitor::new(Val::Nil, lanes);
        let mut observe_ns: u64 = 0;
        let mut lag_hwm: u64 = 0;
        let mut cuts: u64 = 0;
        let mut dump: Option<FlightDump> = None;
        while let Ok(a) = mon_rx.recv() {
            let t0 = Instant::now();
            let ok = m.observe(a);
            observe_ns = observe_ns
                .saturating_add(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            let seen = telemetry.actions_seen.fetch_add(1, Ordering::Relaxed) + 1;
            let lag = telemetry
                .actions_sent
                .load(Ordering::Relaxed)
                .saturating_sub(seen);
            lag_hwm = lag_hwm.max(lag);
            let checked = m.segments_checked();
            if checked > cuts {
                cuts = checked;
                ring.record(FlightKind::MonitorCut, mon_pid, checked, 0);
            }
            if !ok {
                if dump.is_none() {
                    // A lagging monitor may flag a window whose op
                    // events the clients' bounded rings have already
                    // evicted — replay the window into this ring so
                    // the dump always carries its own evidence.
                    if let Some(v) = m.violations().last() {
                        replay_window(&ring, v.window.actions());
                    }
                }
                ring.record(
                    FlightKind::MonitorViolation,
                    mon_pid,
                    m.violations_found().saturating_sub(1),
                    0,
                );
                if dump.is_none() {
                    // Capture now, while the offending ops are still
                    // in the rings.
                    dump = Some(recorder.dump());
                }
            }
        }
        (m.finish(), observe_ns, lag_hwm, dump)
    })
}

/// Re-records a violation window's actions into the monitor's ring,
/// attributed to their original client pids. By the time a lagging monitor
/// closes and rejects a segment, the clients may have recorded thousands
/// of newer events — enough to evict the offending ops from their bounded
/// rings — so the dump taken at detection replays the window itself
/// (≤ 64 invocations) immediately before the `monitor_violation` marker.
fn replay_window(ring: &FlightRing, actions: &[Action]) {
    let mut invs: HashMap<InvId, (u32, bool)> = HashMap::new();
    for action in actions {
        match action {
            Action::Call {
                inv,
                pid,
                method,
                arg,
                ..
            } => {
                let is_read = *method == MethodId::READ;
                invs.insert(*inv, (pid.0, is_read));
                ring.record(
                    if is_read {
                        FlightKind::OpStartRead
                    } else {
                        FlightKind::OpStartWrite
                    },
                    pid.0,
                    inv.0,
                    encode_val(match arg {
                        Val::Int(v) => Some(*v),
                        _ => None,
                    }),
                );
            }
            Action::Return { inv, val } => {
                let (pid, is_read) = invs.get(inv).copied().unwrap_or((0, true));
                ring.record(
                    if is_read {
                        FlightKind::OpCompleteRead
                    } else {
                        FlightKind::OpCompleteWrite
                    },
                    pid,
                    inv.0,
                    encode_val(match val {
                        Val::Int(v) => Some(*v),
                        _ => None,
                    }),
                );
            }
        }
    }
}

/// Schema version of the `--watch-out` JSONL mirror: a `chaos_watch`
/// header record followed by one `watch_tick` record per tick.
pub const WATCH_SCHEMA_VERSION: u64 = 1;

/// The combined watch/watchdog thread: prints a progress line every
/// [`RuntimeConfig::watch`] interval, mirrors it as JSONL to
/// [`RuntimeConfig::watch_out`], and captures a flight dump if no
/// operation completes for [`RuntimeConfig::stall_after`]. Exits when the
/// run drops its end of `stop_rx`. `remote_recoveries` lets multi-process
/// drivers fold live server-side telemetry into the recovery count (the
/// driver's own sink never sees a remote server's crashes).
#[allow(clippy::too_many_arguments)] // a thread entry point, not an API
pub(crate) fn watch_loop(
    cfg: &RuntimeConfig,
    started: Instant,
    t: &Telemetry,
    recorder: &FlightRecorder,
    sink: &RecoverySink,
    stalled: &AtomicBool,
    stop_rx: &Receiver<()>,
    remote_recoveries: Option<&(dyn Fn() -> u64 + Send + Sync)>,
) {
    let tick = cfg.watch.unwrap_or(Duration::from_millis(250));
    let mut last_ops: u64 = 0;
    let mut last_tick = started;
    let mut progressed_at = Instant::now();
    let mut dumped = false;
    let mut watch_file = cfg.watch_out.as_ref().and_then(|p| {
        let mut f = std::fs::File::create(p).ok()?;
        writeln!(
            f,
            "{{\"type\":\"chaos_watch\",\"schema_version\":{WATCH_SCHEMA_VERSION},\"seed\":{}}}",
            cfg.seed
        )
        .ok()?;
        Some(f)
    });
    loop {
        // A stopping run still writes one last tick: the mirror always
        // carries the run's final counters, even when the whole run fits
        // inside a single tick interval.
        let stopping = match stop_rx.recv_timeout(tick) {
            Ok(()) | Err(RecvTimeoutError::Disconnected) => true,
            Err(RecvTimeoutError::Timeout) => false,
        };
        let now = Instant::now();
        let ops = t.ops.load(Ordering::Relaxed);
        let dt = now.duration_since(last_tick).as_secs_f64().max(1e-9);
        let rate = (ops.saturating_sub(last_ops)) as f64 / dt;
        let lag = t
            .actions_sent
            .load(Ordering::Relaxed)
            .saturating_sub(t.actions_seen.load(Ordering::Relaxed));
        let recoveries = sink.snapshot().recoveries + remote_recoveries.map_or(0, |f| f());
        if cfg.watch.is_some() {
            eprintln!(
                "chaos[watch] t={:.1}s ops={ops} (+{rate:.0}/s) in_flight={} \
                 lat p50/p99={}µs/{}µs recoveries={recoveries} monitor_lag={lag}",
                now.duration_since(started).as_secs_f64(),
                t.in_flight.load(Ordering::Relaxed),
                t.sketch.quantile(0.5),
                t.sketch.quantile(0.99),
            );
        }
        if let Some(f) = watch_file.as_mut() {
            let write_tick = writeln!(
                f,
                "{{\"type\":\"watch_tick\",\"t_ms\":{},\"ops\":{ops},\"ops_per_sec\":{},\
                 \"in_flight\":{},\"lat_p50_us\":{},\"lat_p99_us\":{},\
                 \"recoveries\":{recoveries},\"monitor_lag\":{lag}}}",
                now.duration_since(started).as_millis(),
                rate.round().max(0.0) as u64,
                t.in_flight.load(Ordering::Relaxed),
                t.sketch.quantile(0.5),
                t.sketch.quantile(0.99),
            )
            .and_then(|()| f.flush());
            if write_tick.is_err() {
                // A dead mirror (disk full, deleted parent) must not kill
                // the watchdog; drop the file and keep watching.
                watch_file = None;
            }
        }
        if stopping {
            return;
        }
        if ops != last_ops {
            progressed_at = now;
        }
        last_ops = ops;
        last_tick = now;
        if let Some(limit) = cfg.stall_after {
            if !dumped && now.duration_since(progressed_at) >= limit {
                dumped = true;
                stalled.store(true, Ordering::Relaxed);
                eprintln!(
                    "chaos[watchdog] no operation completed for {limit:?}; capturing flight dump"
                );
                let dump = recorder.dump();
                if let Some(dir) = &cfg.flight_dump_dir {
                    let lanes = (cfg.servers + cfg.clients + 1) as usize;
                    let rendered = blunt_trace::flight_space_time(
                        &dump.last_n(800),
                        lanes,
                        &blunt_trace::DiagramOptions::default(),
                    );
                    let _ = std::fs::create_dir_all(dir);
                    // Process-unique stem: a second stalling run in the same
                    // process (e.g. a seed sweep) must not clobber the first
                    // dump's evidence.
                    let stem = blunt_obs::flight::unique_dump_stem("stall");
                    let _ =
                        std::fs::write(dir.join(format!("{stem}.flight.jsonl")), dump.to_jsonl());
                    let _ = std::fs::write(dir.join(format!("{stem}.diagram.txt")), rendered);
                }
            }
        }
    }
}

/// An acknowledgment withheld until the WAL covers its timestamp (the
/// write-ahead ack discipline).
struct PendingAck {
    ts: Ts,
    dst: Pid,
    obj: ObjId,
    sn: u32,
    /// The request frame's tag, echoed so socket transports can route the
    /// ack back to the issuing client lane.
    re: u64,
    /// The update's trace context, echoed (as the reply hop) on the
    /// released ack so the exchange stays span-attributed end to end.
    span: SpanCtx,
}

/// One ABD replica with its durable storage and recovery machinery.
struct Server<'a> {
    me: Pid,
    /// The replica group `me` belongs to (including `me`): recovery
    /// catch-up queries exactly these peers, and the catch-up quorum is
    /// derived from the group size. In single-shard runs this is all
    /// servers; in the sharded store it is one shard's replicas.
    group: Vec<Pid>,
    bus: &'a dyn Transport,
    stop: &'a AtomicBool,
    sink: &'a RecoverySink,
    state: StoreState,
    wal: MultiWal,
    pending_acks: Vec<PendingAck>,
    amnesia: bool,
    demo_skip: bool,
    /// Exchange counter for recovery state transfer, scoped to this server.
    catchup_sn: u64,
    /// This thread's flight-recorder ring (`server-<pid>`).
    ring: Arc<FlightRing>,
}

/// One ABD replica: replies to queries, absorbs updates, and (under
/// amnesia) crashes and recovers on the bus's signal. Responses inherit
/// the triggering envelope's exemption so retransmitted exchanges complete
/// without consuming fault indices.
///
/// The replica is **keyed throughout** ([`StoreState`]/[`MultiWal`]): every
/// ABD message names its [`ObjId`], so the same loop serves the classic
/// single-register workload and a sharded keyed store (`blunt-store`)
/// without a mode switch. Public so store runners can reuse it as-is.
///
/// `group` is the replica group this server belongs to (including `me`):
/// recovery catch-up queries exactly these peers and derives its quorum
/// from the group size, so a sharded store passes one shard's replicas and
/// a recovering server never wastes catch-up rounds on servers that hold
/// none of its keys.
#[allow(clippy::too_many_arguments)] // a thread entry point, not an API
pub fn server_loop(
    me: Pid,
    group: Vec<Pid>,
    mode: RecoveryMode,
    rx: Receiver<Envelope>,
    bus: &dyn Transport,
    stop: &AtomicBool,
    sink: &RecoverySink,
    recorder: &FlightRecorder,
) {
    assert!(group.contains(&me), "a replica group includes its own pid");
    let ring = recorder.register_current(&format!("server-{}", me.0));
    let (amnesia, fsync_interval, demo_skip) = match mode {
        RecoveryMode::Stable => (false, 1, false),
        RecoveryMode::Amnesia {
            fsync_interval,
            demo_skip_recovery,
        } => (true, fsync_interval, demo_skip_recovery),
    };
    let mut srv = Server {
        me,
        group,
        bus,
        stop,
        sink,
        state: StoreState::new(Val::Nil),
        wal: MultiWal::new(fsync_interval),
        pending_acks: Vec::new(),
        amnesia,
        demo_skip,
        catchup_sn: 0,
        ring,
    };
    loop {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(env) => {
                let exempt = env.exempt;
                srv.ring.record_span(
                    FlightKind::BusDeliver,
                    me.0,
                    u64::from(env.src.0),
                    env.msg.flight_label(),
                    env.span.flight_word(),
                );
                srv.handle(env, &rx);
                if exempt && srv.amnesia {
                    // Retransmission pressure: an exempt arrival means some
                    // client is stuck waiting, plausibly on a withheld ack —
                    // group-commit now.
                    srv.flush_wal();
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if srv.amnesia {
                    // Idle flush: no batch will fill soon, sync what's
                    // pending so withheld acks go out.
                    srv.flush_wal();
                }
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

impl Server<'_> {
    fn handle(&mut self, env: Envelope, rx: &Receiver<Envelope>) {
        match env.msg {
            Payload::Abd(msg) => self.handle_abd(env.src, msg, env.exempt, env.reply_to, env.span),
            Payload::Crash { .. } => self.handle_crash(rx),
            Payload::StateQuery { sn } => self.answer_state_query(env.src, sn, env.reply_to),
            // A reply to a catch-up exchange that already completed (or was
            // aborted): stale, ignorable.
            Payload::StateReply { .. } => {}
        }
    }

    fn handle_abd(&mut self, src: Pid, msg: AbdMsg, exempt: bool, re: u64, span: SpanCtx) {
        match msg {
            AbdMsg::Query { obj, sn } => {
                // Queries may serve volatile (unsynced) state: a reader that
                // returns it first re-makes it durable at an ack-quorum via
                // its own write-back, so a later crash here cannot un-happen
                // an observed read (docs/RUNTIME.md).
                let reply = self.state.reply(obj, sn);
                self.bus.send(
                    Envelope::abd(self.me, src, reply, exempt)
                        .in_reply_to(re)
                        .with_span(span.reply()),
                );
            }
            AbdMsg::Update { obj, sn, val, ts } => {
                if !self.amnesia {
                    self.state.absorb(obj, val, ts);
                    self.ring.record_span(
                        FlightKind::ServerAck,
                        self.me.0,
                        u64::from(src.0),
                        u64::from(sn),
                        span.flight_word(),
                    );
                    self.bus.send(
                        Envelope::abd(self.me, src, AbdMsg::Ack { obj, sn }, exempt)
                            .in_reply_to(re)
                            .with_span(span.reply()),
                    );
                    return;
                }
                // Amnesia-mode acks are always exempt: group commit makes
                // an ack's timing — and, when a crash clears a withheld
                // ack, its very existence — depend on flush scheduling, so
                // routing acks through the per-link schedule would make
                // `BusStats::offered` timing-dependent and break replay.
                // The injector still exercises this exchange through the
                // update leg, which drives the same retransmission path.
                self.state.absorb(obj, val.clone(), ts);
                if self.wal.durable_ts(obj) >= ts {
                    // A durable record already covers this timestamp —
                    // replay would restore state at least this new, so the
                    // ack is safe immediately.
                    self.ring.record_span(
                        FlightKind::ServerAck,
                        self.me.0,
                        u64::from(src.0),
                        u64::from(sn),
                        span.flight_word(),
                    );
                    self.bus.send(
                        Envelope::abd(self.me, src, AbdMsg::Ack { obj, sn }, true)
                            .in_reply_to(re)
                            .with_span(span.reply()),
                    );
                } else {
                    // Write-ahead ack discipline: log first, ack after the
                    // covering fsync. (Re-appending a retransmitted update
                    // whose record is still unsynced is harmless — the
                    // checkpoint keeps the max.)
                    self.wal.append(obj, val, ts);
                    self.pending_acks.push(PendingAck {
                        ts,
                        dst: src,
                        obj,
                        sn,
                        re,
                        span,
                    });
                    if self.wal.batch_full() {
                        self.flush_wal();
                    }
                }
            }
            // Replies and acks are client-bound; a misrouted one is
            // ignorable.
            AbdMsg::Reply { .. } | AbdMsg::Ack { .. } => {}
        }
    }

    /// Group commit: one fsync covers every register's pending records
    /// (the shards share the storage file), then release every
    /// acknowledgment the new per-register durable frontiers cover —
    /// which is all of them, since each frontier is that register's max
    /// appended timestamp. The single fsync amortizes across keys: that
    /// is the batched-WAL half of the store's group commit.
    fn flush_wal(&mut self) {
        let t0 = Instant::now();
        self.wal.fsync();
        let fsync_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        if self.pending_acks.is_empty() {
            return;
        }
        self.ring.record(
            FlightKind::WalFlush,
            self.me.0,
            self.pending_acks.len() as u64,
            fsync_us,
        );
        let mut i = 0;
        while i < self.pending_acks.len() {
            if self.pending_acks[i].ts <= self.wal.durable_ts(self.pending_acks[i].obj) {
                let a = self.pending_acks.swap_remove(i);
                self.ring.record_span(
                    FlightKind::ServerAck,
                    self.me.0,
                    u64::from(a.dst.0),
                    u64::from(a.sn),
                    a.span.flight_word(),
                );
                // Exempt like every amnesia-mode ack (see `handle_abd`).
                self.bus.send(
                    Envelope::abd(
                        self.me,
                        a.dst,
                        AbdMsg::Ack {
                            obj: a.obj,
                            sn: a.sn,
                        },
                        true,
                    )
                    .in_reply_to(a.re)
                    .with_span(a.span.reply()),
                );
            } else {
                i += 1;
            }
        }
    }

    fn answer_state_query(&self, peer: Pid, sn: u64, re: u64) {
        self.bus.send(Envelope {
            src: self.me,
            dst: peer,
            msg: Payload::StateReply {
                sn,
                snap: self.state.snapshot_all(),
            },
            exempt: true,
            reply_to: re,
            span: SpanCtx::NONE,
        });
    }

    /// The amnesia signal arrived: crash, recover, and only then serve the
    /// traffic that queued up behind the recovery. Crashes that land
    /// *during* a recovery's catch-up are counted and processed iteratively
    /// here rather than recursively.
    fn handle_crash(&mut self, rx: &Receiver<Envelope>) {
        if !self.amnesia {
            // Stable-mode replicas keep their memory across crash windows;
            // a stray signal (e.g. a driver misconfigured relative to its
            // servers in multi-process mode) is ignorable, not fatal.
            return;
        }
        let mut crashes: u64 = 1;
        let mut buffered: Vec<Envelope> = Vec::new();
        while crashes > 0 {
            crashes -= 1;
            crashes += self.crash_and_recover(rx, &mut buffered);
        }
        // FIFO-replay the protocol traffic that arrived mid-recovery.
        for env in buffered {
            let re = env.reply_to;
            let span = env.span;
            if let Payload::Abd(msg) = env.msg {
                self.handle_abd(env.src, msg, env.exempt, re, span);
            }
        }
    }

    /// One crash + recovery cycle. Returns the number of *further* crash
    /// signals that arrived while catching up; protocol envelopes received
    /// meanwhile are pushed to `buffered` in arrival order.
    fn crash_and_recover(&mut self, rx: &Receiver<Envelope>, buffered: &mut Vec<Envelope>) -> u64 {
        // The crash: unsynced WAL suffix and all volatile state are gone.
        // Withheld acks die with their records — the clients retransmit and
        // the updates are re-logged.
        let lost = self.wal.lose_unsynced();
        self.pending_acks.clear();
        self.state.forget();
        // Volatile transport-side state (socket dedup windows) dies with
        // the server too; the in-process bus keeps none and no-ops this.
        self.bus.on_crash();
        self.sink.on_crash(lost as u64);
        self.ring
            .record(FlightKind::ServerCrash, self.me.0, lost as u64, 0);

        if self.demo_skip {
            // The intentionally-broken recovery: no replay, no catch-up —
            // and storage itself wiped, modeling a server that comes back
            // blank and immediately serves timestamp (0, 0). The monitor
            // must flag the stale reads this produces.
            self.wal.wipe();
            return 0;
        }
        let t0 = Instant::now();

        // Phase 1 — WAL replay: restore every register's newest durable
        // record. Every acknowledged update is covered by this (write-ahead
        // ack discipline), so the replica is already *sound* here; what it
        // may lack is freshness.
        let checkpoints = self.wal.replay();
        if !checkpoints.is_empty() {
            for (obj, val, ts) in checkpoints {
                self.state.restore(obj, val, ts);
            }
            self.sink.on_replay();
        }

        // Phase 2 — peer catch-up, mirroring the ABD read phase: ask every
        // peer, wait for quorum−1 answers (self completes the majority),
        // adopt the newest. Exempt traffic: recovery never perturbs the
        // fault schedule.
        let mut nested: u64 = 0;
        let peers: Vec<Pid> = self
            .group
            .iter()
            .copied()
            .filter(|p| *p != self.me)
            .collect();
        let quorum = u32::try_from(self.group.len()).expect("group fits u32") / 2 + 1;
        let needed = (quorum.saturating_sub(1) as usize).min(peers.len());
        if needed > 0 {
            self.catchup_sn += 1;
            let sn = self.catchup_sn;
            for p in &peers {
                self.bus.send(Envelope {
                    src: self.me,
                    dst: *p,
                    msg: Payload::StateQuery { sn },
                    exempt: true,
                    reply_to: 0,
                    span: SpanCtx::NONE,
                });
            }
            self.sink.on_state_queries(peers.len() as u64);
            let mut got = 0usize;
            // Per-register freshest answer across the quorum of snapshots.
            let mut best: BTreeMap<ObjId, (Val, Ts)> = BTreeMap::new();
            while got < needed {
                match rx.recv_timeout(Duration::from_millis(5)) {
                    Ok(env) => match env.msg {
                        Payload::StateReply { sn: rsn, snap } if rsn == sn => {
                            got += 1;
                            for (obj, val, ts) in snap {
                                match best.entry(obj) {
                                    std::collections::btree_map::Entry::Vacant(e) => {
                                        e.insert((val, ts));
                                    }
                                    std::collections::btree_map::Entry::Occupied(mut e) => {
                                        if ts > e.get().1 {
                                            e.insert((val, ts));
                                        }
                                    }
                                }
                            }
                        }
                        Payload::StateReply { .. } => {}
                        // Another server recovering concurrently: answer
                        // inline or the two recoveries deadlock.
                        Payload::StateQuery { sn: qsn } => {
                            self.answer_state_query(env.src, qsn, env.reply_to);
                        }
                        Payload::Crash { .. } => nested += 1,
                        Payload::Abd(_) => buffered.push(env),
                    },
                    Err(RecvTimeoutError::Timeout) => {
                        if self.stop.load(Ordering::Relaxed) {
                            // Shutdown: peers may already be gone. The
                            // replayed checkpoint stands — truncating
                            // catch-up costs freshness, never soundness.
                            self.sink.on_catchup_aborted();
                            break;
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        self.sink.on_catchup_aborted();
                        break;
                    }
                }
            }
            for (obj, (val, ts)) in best {
                // Freshness only: install iff newer than the replayed
                // checkpoint (absorb's own rule), register by register.
                self.state.absorb(obj, val, ts);
            }
        }
        let recovery_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.sink.on_recovery(recovery_us);
        self.ring
            .record(FlightKind::ServerRecover, self.me.0, recovery_us, 0);
        nested
    }
}

#[allow(clippy::too_many_arguments)] // a thread entry point, not an API
pub(crate) fn client_loop(
    c: u32,
    cfg: &RuntimeConfig,
    quorum: u32,
    rx: Receiver<Envelope>,
    bus: &dyn Transport,
    barrier: &Barrier,
    mon_tx: &Sender<Action>,
    retransmissions: &AtomicU64,
    latency: &Histogram,
    recorder: &FlightRecorder,
    telemetry: &Telemetry,
) {
    let me = Pid(cfg.servers + c);
    let dsts: Vec<Pid> = server_pids(cfg).collect();
    let ring = recorder.register_current(&format!("client-{}", me.0));
    let mut rng = client_rng(cfg.seed, c);
    let mut sn_counter: u32 = 0;
    let local = Histogram::unregistered();
    let mut retrans: u64 = 0;

    for op_idx in 0..cfg.ops_per_client {
        if op_idx > 0 && op_idx % cfg.burst == 0 {
            barrier.wait();
        }
        // Retire the previous op's reply tags so late replies to finished
        // rounds count as tag mismatches, not deliveries (socket backends).
        bus.on_op_start(me);
        let inv = InvId(u64::from(c) * 10_000_000 + op_idx);
        // The key draw comes before the read/write draw and is *skipped
        // entirely* at `keys = 1`: a single-register config consumes the
        // exact rng stream it did before keys existed, so historical seeds
        // (and their gated baselines) replay byte-identically.
        let obj = if cfg.keys > 1 {
            ObjId(u32::try_from(rng.draw(cfg.keys as usize)).expect("key fits u32"))
        } else {
            ObjId(0)
        };
        let is_read = rng.draw(1000) < usize::from(cfg.read_per_mille);
        let (method, arg) = if is_read {
            (MethodId::READ, Val::Nil)
        } else {
            // Unique write values keep the checker's search shallow and
            // make stale reads unambiguous.
            let v = i64::from(c) * 1_000_000 + i64::try_from(op_idx).expect("op index fits i64");
            (MethodId::WRITE, Val::Int(v))
        };
        telemetry.actions_sent.fetch_add(1, Ordering::Relaxed);
        let _ = mon_tx.send(Action::Call {
            inv,
            pid: me,
            obj,
            method,
            arg: arg.clone(),
        });
        telemetry.in_flight.fetch_add(1, Ordering::Relaxed);
        // Every message this op sends — and every server-side event it
        // triggers, across process boundaries — carries this span.
        let span = SpanCtx::request(me.0, inv.0);
        // Op events carry their target register in keyed runs; the
        // single-register default stays `KEY_NONE` so pre-keyed dumps
        // serialize byte-identically (the field is elided).
        let key = if cfg.keys > 1 {
            u64::from(obj.0)
        } else {
            KEY_NONE
        };
        ring.record_span_key(
            if is_read {
                FlightKind::OpStartRead
            } else {
                FlightKind::OpStartWrite
            },
            me.0,
            inv.0,
            encode_val(match &arg {
                Val::Int(v) => Some(*v),
                _ => None,
            }),
            span.flight_word(),
            key,
        );
        let t0 = Instant::now();
        let ret = if cfg.broken_reads && is_read {
            broken_read(
                me,
                obj,
                op_idx,
                cfg,
                &rx,
                bus,
                &mut sn_counter,
                &mut retrans,
                &ring,
                span,
            )
        } else {
            let kind = if is_read {
                OpKind::Read
            } else {
                OpKind::Write(arg)
            };
            abd_op(
                me,
                obj,
                inv,
                kind,
                cfg,
                quorum,
                &rx,
                bus,
                &dsts,
                &mut rng,
                &mut sn_counter,
                &mut retrans,
                &ring,
                span,
            )
        };
        let lat_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        local.record(lat_us);
        telemetry.sketch.record(lat_us);
        ring.record_span_key(
            if is_read {
                FlightKind::OpCompleteRead
            } else {
                FlightKind::OpCompleteWrite
            },
            me.0,
            inv.0,
            encode_val(match &ret {
                Val::Int(v) => Some(*v),
                _ => None,
            }),
            span.flight_word(),
            key,
        );
        telemetry.in_flight.fetch_sub(1, Ordering::Relaxed);
        telemetry.ops.fetch_add(1, Ordering::Relaxed);
        telemetry.actions_sent.fetch_add(1, Ordering::Relaxed);
        let _ = mon_tx.send(Action::Return { inv, val: ret });
    }
    latency.merge(&local);
    retransmissions.fetch_add(retrans, Ordering::Relaxed);
}

fn server_pids(cfg: &RuntimeConfig) -> impl Iterator<Item = Pid> {
    (0..cfg.servers).map(Pid)
}

/// The client's deterministic exponential backoff: doubles per consecutive
/// timeout from `retransmit_after`, saturating at `retransmit_cap`; any
/// received message resets it (evidence of progress). Returns the next wait
/// and bumps the saturation counter on the transition to the cap.
fn next_backoff(wait: Duration, cfg: &RuntimeConfig) -> Duration {
    let next = wait.saturating_mul(2).min(cfg.retransmit_cap);
    if next == cfg.retransmit_cap && wait < cfg.retransmit_cap {
        blunt_obs::static_counter!("runtime.client.backoff_max_reached").inc();
    }
    next
}

/// Drives one full ABD (or ABD^k) operation through the client step machine
/// to completion, retransmitting with exponential backoff on timeout.
#[allow(clippy::too_many_arguments)] // mirrors the thread context it runs in
fn abd_op(
    me: Pid,
    obj: ObjId,
    inv: InvId,
    kind: OpKind,
    cfg: &RuntimeConfig,
    quorum: u32,
    rx: &Receiver<Envelope>,
    bus: &dyn Transport,
    dsts: &[Pid],
    rng: &mut SplitMix64,
    sn_counter: &mut u32,
    retrans: &mut u64,
    ring: &FlightRing,
    span: SpanCtx,
) -> Val {
    *sn_counter += 1;
    let sn = *sn_counter;
    let mut op = ActiveOp::start(inv, obj, kind, cfg.k, sn);
    bus.broadcast_span(me, dsts, &AbdMsg::Query { obj, sn }, false, span);
    let mut wait = cfg.retransmit_after.min(cfg.retransmit_cap);
    loop {
        match rx.recv_timeout(wait) {
            Ok(env) => {
                wait = cfg.retransmit_after.min(cfg.retransmit_cap);
                ring.record_span(
                    FlightKind::BusDeliver,
                    me.0,
                    u64::from(env.src.0),
                    env.msg.flight_label(),
                    env.span.flight_word(),
                );
                let Payload::Abd(msg) = env.msg else {
                    continue; // control traffic never targets clients
                };
                match msg {
                    AbdMsg::Reply {
                        obj: o,
                        sn: msg_sn,
                        val,
                        ts,
                    } if o == obj => {
                        match op.on_reply(env.src, msg_sn, &val, ts, quorum, me, sn_counter) {
                            ReplyEffect::NextQuery { sn, .. } => {
                                bus.broadcast_span(
                                    me,
                                    dsts,
                                    &AbdMsg::Query { obj, sn },
                                    false,
                                    span,
                                );
                            }
                            ReplyEffect::NeedChoice { choices, .. } => {
                                // The object random step, drawn from the
                                // client's seeded stream: one draw per op, so
                                // the stream position is schedule-independent.
                                let choice = rng.draw(choices as usize);
                                let (sn, val, ts) = op.choose(choice, me, sn_counter);
                                bus.broadcast_span(
                                    me,
                                    dsts,
                                    &AbdMsg::Update { obj, sn, val, ts },
                                    false,
                                    span,
                                );
                            }
                            ReplyEffect::StartUpdate { sn, val, ts, .. } => {
                                bus.broadcast_span(
                                    me,
                                    dsts,
                                    &AbdMsg::Update { obj, sn, val, ts },
                                    false,
                                    span,
                                );
                            }
                            ReplyEffect::Ignored | ReplyEffect::Counted => {}
                        }
                    }
                    AbdMsg::Ack { obj: o, sn: msg_sn } if o == obj => {
                        if let AckEffect::Complete { ret } = op.on_ack(env.src, msg_sn, quorum) {
                            return ret;
                        }
                    }
                    _ => {}
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if let Some(msg) = op.retransmission() {
                    *retrans += 1;
                    blunt_obs::static_counter!("runtime.client.retransmissions").inc();
                    let rsn = match &msg {
                        AbdMsg::Query { sn, .. }
                        | AbdMsg::Reply { sn, .. }
                        | AbdMsg::Update { sn, .. }
                        | AbdMsg::Ack { sn, .. } => *sn,
                    };
                    ring.record_span(
                        FlightKind::OpRetransmit,
                        me.0,
                        u64::from(rsn),
                        0,
                        span.flight_word(),
                    );
                    bus.broadcast_span(me, dsts, &msg, true, span);
                }
                wait = next_backoff(wait, cfg);
            }
            Err(RecvTimeoutError::Disconnected) => {
                panic!("bus closed while an operation was in flight")
            }
        }
    }
}

/// The intentionally-broken read: query ONE server (rotating), return the
/// first reply's value, skip the write-back. Under drops a replica can miss
/// an update forever, so a client that writes and then fast-reads a stale
/// replica observes a new-old inversion in its own program order — exactly
/// what the monitor exists to catch.
#[allow(clippy::too_many_arguments)] // mirrors the thread context it runs in
fn broken_read(
    me: Pid,
    obj: ObjId,
    op_idx: u64,
    cfg: &RuntimeConfig,
    rx: &Receiver<Envelope>,
    bus: &dyn Transport,
    sn_counter: &mut u32,
    retrans: &mut u64,
    ring: &FlightRing,
    span: SpanCtx,
) -> Val {
    *sn_counter += 1;
    let sn = *sn_counter;
    let target = Pid(u32::try_from(op_idx % u64::from(cfg.servers)).expect("server index"));
    let msg = AbdMsg::Query { obj, sn };
    bus.send(Envelope::abd(me, target, msg.clone(), false).with_span(span));
    let mut wait = cfg.retransmit_after.min(cfg.retransmit_cap);
    loop {
        match rx.recv_timeout(wait) {
            Ok(env) => {
                wait = cfg.retransmit_after.min(cfg.retransmit_cap);
                ring.record_span(
                    FlightKind::BusDeliver,
                    me.0,
                    u64::from(env.src.0),
                    env.msg.flight_label(),
                    env.span.flight_word(),
                );
                if let Payload::Abd(AbdMsg::Reply {
                    obj: o,
                    sn: msg_sn,
                    val,
                    ..
                }) = env.msg
                {
                    if o == obj && msg_sn == sn {
                        return val;
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                *retrans += 1;
                ring.record_span(
                    FlightKind::OpRetransmit,
                    me.0,
                    u64::from(sn),
                    0,
                    span.flight_word(),
                );
                bus.send(Envelope::abd(me, target, msg.clone(), true).with_span(span));
                wait = next_backoff(wait, cfg);
            }
            Err(RecvTimeoutError::Disconnected) => {
                panic!("bus closed while a read was in flight")
            }
        }
    }
}
