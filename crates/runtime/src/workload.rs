//! The workload driver: real OS threads running the ABD client/server step
//! machines over the fault-injecting [`Bus`], observed by the
//! [`OnlineMonitor`].
//!
//! Topology: pids `0..servers` are server threads, `servers..servers+clients`
//! are client threads. Clients issue `ops_per_client` sequential register
//! operations each, reporting `Call` before the first broadcast and `Return`
//! after the quorum completes; per-op latency goes into a thread-local
//! [`Histogram`] that is [`Histogram::merge`]d into the shared one exactly
//! once at thread exit (no hot-path contention).
//!
//! Liveness under faults comes from retransmission: when a client waits
//! longer than its current backoff for a response, it rebroadcasts the
//! in-flight exchange ([`ActiveOp::retransmission`]) as an *exempt* message
//! that bypasses the injector. The backoff is deterministic exponential —
//! starting at `retransmit_after`, doubling per consecutive timeout, capped
//! at `retransmit_cap`, reset by any received message — so a crashed or
//! slow quorum is probed geometrically rather than hammered. Exempt traffic
//! consumes no fault-schedule indices, keeping the schedule a pure function
//! of the seed.
//!
//! **Crash recovery.** Under [`RecoveryMode::Amnesia`] every server keeps a
//! write-ahead log ([`Wal`]) and obeys the *write-ahead ack discipline*: an
//! update is acknowledged only once a WAL record with a timestamp covering
//! it is fsynced (group commit: a batch fills, the server goes idle, or an
//! exempt retransmission applies pressure). When the bus raises the amnesia
//! signal ([`Payload::Crash`]) at a crash window's exit, the server erases
//! its volatile state and its unsynced WAL suffix, then recovers — the
//! blackout window models the outage itself; the power loss materializes at
//! the reboot, when peers are reachable again for catch-up and the
//! recovered (or, under `--demo-amnesia`, unrecovered) state is actually
//! observable by clients. Recovery: replay the durable checkpoint, then
//! catch up from `quorum − 1` peers via exempt [`Payload::StateQuery`]
//! state transfer (mirroring the ABD read phase) before serving buffered
//! traffic. The discipline makes replay alone sound — every *acked* update
//! is durable, and unacked state a reader observed is re-made durable by
//! that reader's own write-back quorum — so concurrent recoveries need no
//! coordination; the catch-up phase only restores freshness. The argument
//! lives in `docs/RUNTIME.md`.
//!
//! Clients run in barrier-separated **bursts** of `burst` ops: at each
//! barrier every in-flight operation has returned, so the monitor is
//! guaranteed a cut at least every `clients × burst` invocations — kept
//! under the checker's 64-invocation window by construction (asserted).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use blunt_abd::client::{AckEffect, ActiveOp, OpKind, ReplyEffect};
use blunt_abd::msg::AbdMsg;
use blunt_abd::server::ServerState;
use blunt_abd::ts::Ts;
use blunt_core::history::Action;
use blunt_core::ids::{InvId, MethodId, ObjId, Pid};
use blunt_core::value::Val;
use blunt_obs::{Histogram, HistogramSnapshot};
use blunt_sim::rng::{RandomSource, SplitMix64};

use crate::bus::{Bus, BusStats, Envelope, Payload};
use crate::fault::{FaultConfig, FaultConfigError};
use crate::monitor::{MonitorReport, OnlineMonitor};
use crate::recovery::{RecoveryMode, RecoverySink, RecoveryStats};
use crate::storage::Wal;

/// Configuration of one chaos run.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of ABD server threads (replicas). Quorum is `⌊n/2⌋ + 1`.
    pub servers: u32,
    /// Number of client threads.
    pub clients: u32,
    /// Operations issued by each client.
    pub ops_per_client: u64,
    /// Preamble iterations (`k = 1` is plain ABD; `k = 2` is O² of
    /// Algorithm 2).
    pub k: u32,
    /// Ops per client between barriers. `clients × burst ≤ 64` is required
    /// (the monitor's window bound).
    pub burst: u64,
    /// ‰ of operations that are reads.
    pub read_per_mille: u16,
    /// The run seed: fault schedule, op mix, and object random choices all
    /// derive from it.
    pub seed: u64,
    /// Fault mix.
    pub faults: FaultConfig,
    /// Replace reads with the intentionally-broken single-server fast read
    /// (no quorum, no write-back) — the monitor must catch this.
    pub broken_reads: bool,
    /// Initial client wait for a response before retransmitting; doubles
    /// per consecutive timeout.
    pub retransmit_after: Duration,
    /// Upper bound on the exponential backoff.
    pub retransmit_cap: Duration,
    /// What a crash means for server state (see [`RecoveryMode`]).
    pub recovery: RecoveryMode,
}

impl RuntimeConfig {
    /// A small smoke configuration: faults on, a few thousand ops.
    #[must_use]
    pub fn smoke(seed: u64) -> RuntimeConfig {
        RuntimeConfig {
            servers: 3,
            clients: 4,
            ops_per_client: 500,
            k: 1,
            burst: 8,
            read_per_mille: 500,
            seed,
            faults: FaultConfig::chaos(),
            broken_reads: false,
            retransmit_after: Duration::from_millis(1),
            retransmit_cap: Duration::from_millis(16),
            recovery: RecoveryMode::Stable,
        }
    }

    /// The acceptance soak shape: ≥ 8 clients, ≥ 100k total ops, full fault
    /// mix.
    #[must_use]
    pub fn soak(seed: u64, k: u32) -> RuntimeConfig {
        RuntimeConfig {
            servers: 3,
            clients: 8,
            ops_per_client: 13_000,
            k,
            burst: 4,
            read_per_mille: 500,
            seed,
            faults: FaultConfig::chaos(),
            broken_reads: false,
            retransmit_after: Duration::from_millis(1),
            retransmit_cap: Duration::from_millis(16),
            recovery: RecoveryMode::Stable,
        }
    }

    /// The smoke shape with amnesia crashes and sound recovery.
    #[must_use]
    pub fn smoke_amnesia(seed: u64) -> RuntimeConfig {
        let mut cfg = RuntimeConfig::smoke(seed);
        cfg.recovery = RecoveryMode::amnesia();
        cfg
    }

    /// The acceptance soak shape with amnesia crashes and sound recovery.
    #[must_use]
    pub fn soak_amnesia(seed: u64, k: u32) -> RuntimeConfig {
        let mut cfg = RuntimeConfig::soak(seed, k);
        cfg.recovery = RecoveryMode::amnesia();
        cfg
    }
}

/// The outcome of a chaos run.
#[derive(Debug)]
pub struct ChaosReport {
    /// Operations completed (= `clients × ops_per_client`).
    pub ops: u64,
    /// Deterministic fault counters from the bus.
    pub bus: BusStats,
    /// The monitor's verdict.
    pub monitor: MonitorReport,
    /// Crash-recovery counters (`crashes`/`recoveries` deterministic, the
    /// WAL-shaped ones timing-dependent — see [`RecoveryStats`]).
    pub recovery: RecoveryStats,
    /// Exempt rebroadcasts issued (timing-dependent; excluded from
    /// regression gating).
    pub retransmissions: u64,
    /// Merged per-op latency distribution, in microseconds.
    pub latency_us: HistogramSnapshot,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl ChaosReport {
    /// Throughput in completed operations per second.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.ops as f64 / secs
        } else {
            0.0
        }
    }
}

fn client_rng(seed: u64, client: u32) -> SplitMix64 {
    SplitMix64::new(
        seed ^ 0xC11E_4775_0000_0000 ^ u64::from(client).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}

/// Runs one seeded chaos configuration to completion.
///
/// # Errors
///
/// Returns a [`FaultConfigError`] when `cfg.faults` is unusable for this
/// topology (overlapping crash stagger, zero periods, oversubscribed
/// rates) — the numbers are in the error.
///
/// # Panics
///
/// Panics if the configuration is degenerate (no servers/clients/ops) or if
/// `clients × burst` exceeds the monitor's 64-invocation window bound —
/// programmer errors, unlike the recoverable fault-config validation.
pub fn run_chaos(cfg: &RuntimeConfig) -> Result<ChaosReport, FaultConfigError> {
    assert!(cfg.servers >= 1 && cfg.clients >= 1 && cfg.ops_per_client >= 1);
    assert!(cfg.k >= 1, "ABD^k requires k ≥ 1");
    assert!(cfg.burst >= 1);
    assert!(
        u64::from(cfg.clients) * cfg.burst <= 64,
        "clients × burst must fit the monitor's 64-invocation window"
    );
    let started = Instant::now();
    let nodes = cfg.servers + cfg.clients;
    let quorum = cfg.servers / 2 + 1;
    let (bus, receivers) = Bus::new(
        cfg.seed,
        cfg.faults,
        cfg.servers,
        nodes,
        cfg.recovery.is_amnesia(),
    )?;
    let bus = Arc::new(bus);
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(cfg.clients as usize));
    let retransmissions = Arc::new(AtomicU64::new(0));
    let recovery_sink = Arc::new(RecoverySink::default());
    let latency = Histogram::unregistered();

    let (mon_tx, mon_rx) = mpsc::channel::<Action>();
    let lanes = nodes as usize;
    let monitor = thread::spawn(move || {
        let mut m = OnlineMonitor::new(Val::Nil, lanes);
        while let Ok(a) = mon_rx.recv() {
            m.observe(a);
        }
        m.finish()
    });

    let mut rx_iter = receivers.into_iter();
    let mut servers = Vec::new();
    for s in 0..cfg.servers {
        let rx = rx_iter.next().expect("one receiver per node");
        let bus = Arc::clone(&bus);
        let stop = Arc::clone(&stop);
        let sink = Arc::clone(&recovery_sink);
        let mode = cfg.recovery;
        let server_count = cfg.servers;
        servers.push(thread::spawn(move || {
            server_loop(Pid(s), server_count, mode, rx, &bus, &stop, &sink);
        }));
    }
    let mut clients = Vec::new();
    for c in 0..cfg.clients {
        let rx = rx_iter.next().expect("one receiver per node");
        let bus = Arc::clone(&bus);
        let barrier = Arc::clone(&barrier);
        let retransmissions = Arc::clone(&retransmissions);
        let latency = latency.clone();
        let mon_tx = mon_tx.clone();
        let cfg = cfg.clone();
        clients.push(thread::spawn(move || {
            client_loop(
                c,
                &cfg,
                quorum,
                rx,
                &bus,
                &barrier,
                &mon_tx,
                &retransmissions,
                &latency,
            );
        }));
    }
    drop(mon_tx);

    for c in clients {
        c.join().expect("client thread");
    }
    // Every amnesia signal is enqueued synchronously inside a client's send,
    // so by this point all crash events are in server mailboxes; servers
    // drain them before honoring `stop`, which keeps the recovery counters
    // deterministic.
    stop.store(true, Ordering::Relaxed);
    for s in servers {
        s.join().expect("server thread");
    }
    bus.flush();
    let monitor = monitor.join().expect("monitor thread");

    let ops = u64::from(cfg.clients) * cfg.ops_per_client;
    blunt_obs::static_counter!("runtime.ops.completed").add(ops);
    Ok(ChaosReport {
        ops,
        bus: bus.stats(),
        monitor,
        recovery: recovery_sink.snapshot(),
        retransmissions: retransmissions.load(Ordering::Relaxed),
        latency_us: latency.snapshot(),
        elapsed: started.elapsed(),
    })
}

/// An acknowledgment withheld until the WAL covers its timestamp (the
/// write-ahead ack discipline).
struct PendingAck {
    ts: Ts,
    dst: Pid,
    obj: ObjId,
    sn: u32,
}

/// One ABD replica with its durable storage and recovery machinery.
struct Server<'a> {
    me: Pid,
    servers: u32,
    bus: &'a Bus,
    stop: &'a AtomicBool,
    sink: &'a RecoverySink,
    state: ServerState,
    wal: Wal,
    pending_acks: Vec<PendingAck>,
    amnesia: bool,
    demo_skip: bool,
    /// Exchange counter for recovery state transfer, scoped to this server.
    catchup_sn: u64,
}

/// One ABD replica: replies to queries, absorbs updates, and (under
/// amnesia) crashes and recovers on the bus's signal. Responses inherit
/// the triggering envelope's exemption so retransmitted exchanges complete
/// without consuming fault indices.
fn server_loop(
    me: Pid,
    servers: u32,
    mode: RecoveryMode,
    rx: Receiver<Envelope>,
    bus: &Bus,
    stop: &AtomicBool,
    sink: &RecoverySink,
) {
    let (amnesia, fsync_interval, demo_skip) = match mode {
        RecoveryMode::Stable => (false, 1, false),
        RecoveryMode::Amnesia {
            fsync_interval,
            demo_skip_recovery,
        } => (true, fsync_interval, demo_skip_recovery),
    };
    let mut srv = Server {
        me,
        servers,
        bus,
        stop,
        sink,
        state: ServerState::new(Val::Nil),
        wal: Wal::new(fsync_interval),
        pending_acks: Vec::new(),
        amnesia,
        demo_skip,
        catchup_sn: 0,
    };
    loop {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(env) => {
                let exempt = env.exempt;
                srv.handle(env, &rx);
                if exempt && srv.amnesia {
                    // Retransmission pressure: an exempt arrival means some
                    // client is stuck waiting, plausibly on a withheld ack —
                    // group-commit now.
                    srv.flush_wal();
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if srv.amnesia {
                    // Idle flush: no batch will fill soon, sync what's
                    // pending so withheld acks go out.
                    srv.flush_wal();
                }
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

impl Server<'_> {
    fn handle(&mut self, env: Envelope, rx: &Receiver<Envelope>) {
        match env.msg {
            Payload::Abd(msg) => self.handle_abd(env.src, msg, env.exempt),
            Payload::Crash { .. } => self.handle_crash(rx),
            Payload::StateQuery { sn } => self.answer_state_query(env.src, sn),
            // A reply to a catch-up exchange that already completed (or was
            // aborted): stale, ignorable.
            Payload::StateReply { .. } => {}
        }
    }

    fn handle_abd(&mut self, src: Pid, msg: AbdMsg, exempt: bool) {
        match msg {
            AbdMsg::Query { obj, sn } => {
                // Queries may serve volatile (unsynced) state: a reader that
                // returns it first re-makes it durable at an ack-quorum via
                // its own write-back, so a later crash here cannot un-happen
                // an observed read (docs/RUNTIME.md).
                let reply = self.state.reply(obj, sn);
                self.bus.send(Envelope::abd(self.me, src, reply, exempt));
            }
            AbdMsg::Update { obj, sn, val, ts } => {
                if !self.amnesia {
                    self.state.absorb(val, ts);
                    self.bus
                        .send(Envelope::abd(self.me, src, AbdMsg::Ack { obj, sn }, exempt));
                    return;
                }
                // Amnesia-mode acks are always exempt: group commit makes
                // an ack's timing — and, when a crash clears a withheld
                // ack, its very existence — depend on flush scheduling, so
                // routing acks through the per-link schedule would make
                // `BusStats::offered` timing-dependent and break replay.
                // The injector still exercises this exchange through the
                // update leg, which drives the same retransmission path.
                self.state.absorb(val.clone(), ts);
                if self.wal.durable_ts() >= ts {
                    // A durable record already covers this timestamp —
                    // replay would restore state at least this new, so the
                    // ack is safe immediately.
                    self.bus
                        .send(Envelope::abd(self.me, src, AbdMsg::Ack { obj, sn }, true));
                } else {
                    // Write-ahead ack discipline: log first, ack after the
                    // covering fsync. (Re-appending a retransmitted update
                    // whose record is still unsynced is harmless — the
                    // checkpoint keeps the max.)
                    self.wal.append(val, ts);
                    self.pending_acks.push(PendingAck {
                        ts,
                        dst: src,
                        obj,
                        sn,
                    });
                    if self.wal.batch_full() {
                        self.flush_wal();
                    }
                }
            }
            // Replies and acks are client-bound; a misrouted one is
            // ignorable.
            AbdMsg::Reply { .. } | AbdMsg::Ack { .. } => {}
        }
    }

    /// Group commit: fsync the WAL, then release every acknowledgment the
    /// new durable frontier covers (which is all of them — the frontier is
    /// the max appended timestamp).
    fn flush_wal(&mut self) {
        self.wal.fsync();
        if self.pending_acks.is_empty() {
            return;
        }
        let durable = self.wal.durable_ts();
        let mut i = 0;
        while i < self.pending_acks.len() {
            if self.pending_acks[i].ts <= durable {
                let a = self.pending_acks.swap_remove(i);
                // Exempt like every amnesia-mode ack (see `handle_abd`).
                self.bus.send(Envelope::abd(
                    self.me,
                    a.dst,
                    AbdMsg::Ack {
                        obj: a.obj,
                        sn: a.sn,
                    },
                    true,
                ));
            } else {
                i += 1;
            }
        }
    }

    fn answer_state_query(&self, peer: Pid, sn: u64) {
        let (val, ts) = self.state.snapshot();
        self.bus.send(Envelope {
            src: self.me,
            dst: peer,
            msg: Payload::StateReply { sn, val, ts },
            exempt: true,
        });
    }

    /// The amnesia signal arrived: crash, recover, and only then serve the
    /// traffic that queued up behind the recovery. Crashes that land
    /// *during* a recovery's catch-up are counted and processed iteratively
    /// here rather than recursively.
    fn handle_crash(&mut self, rx: &Receiver<Envelope>) {
        debug_assert!(self.amnesia, "stable-mode buses never signal crashes");
        let mut crashes: u64 = 1;
        let mut buffered: Vec<Envelope> = Vec::new();
        while crashes > 0 {
            crashes -= 1;
            crashes += self.crash_and_recover(rx, &mut buffered);
        }
        // FIFO-replay the protocol traffic that arrived mid-recovery.
        for env in buffered {
            if let Payload::Abd(msg) = env.msg {
                self.handle_abd(env.src, msg, env.exempt);
            }
        }
    }

    /// One crash + recovery cycle. Returns the number of *further* crash
    /// signals that arrived while catching up; protocol envelopes received
    /// meanwhile are pushed to `buffered` in arrival order.
    fn crash_and_recover(&mut self, rx: &Receiver<Envelope>, buffered: &mut Vec<Envelope>) -> u64 {
        // The crash: unsynced WAL suffix and all volatile state are gone.
        // Withheld acks die with their records — the clients retransmit and
        // the updates are re-logged.
        let lost = self.wal.lose_unsynced();
        self.pending_acks.clear();
        self.state.forget(Val::Nil);
        self.sink.on_crash(lost as u64);

        if self.demo_skip {
            // The intentionally-broken recovery: no replay, no catch-up —
            // and storage itself wiped, modeling a server that comes back
            // blank and immediately serves timestamp (0, 0). The monitor
            // must flag the stale reads this produces.
            self.wal.wipe();
            return 0;
        }
        let t0 = Instant::now();

        // Phase 1 — WAL replay: restore the newest durable record. Every
        // acknowledged update is covered by this (write-ahead ack
        // discipline), so the replica is already *sound* here; what it may
        // lack is freshness.
        if let Some((val, ts)) = self.wal.replay() {
            self.state.restore(val, ts);
            self.sink.on_replay();
        }

        // Phase 2 — peer catch-up, mirroring the ABD read phase: ask every
        // peer, wait for quorum−1 answers (self completes the majority),
        // adopt the newest. Exempt traffic: recovery never perturbs the
        // fault schedule.
        let mut nested: u64 = 0;
        let peers: Vec<Pid> = (0..self.servers)
            .map(Pid)
            .filter(|p| *p != self.me)
            .collect();
        let quorum = self.servers / 2 + 1;
        let needed = (quorum.saturating_sub(1) as usize).min(peers.len());
        if needed > 0 {
            self.catchup_sn += 1;
            let sn = self.catchup_sn;
            for p in &peers {
                self.bus.send(Envelope {
                    src: self.me,
                    dst: *p,
                    msg: Payload::StateQuery { sn },
                    exempt: true,
                });
            }
            self.sink.on_state_queries(peers.len() as u64);
            let mut got = 0usize;
            let mut best: Option<(Val, Ts)> = None;
            while got < needed {
                match rx.recv_timeout(Duration::from_millis(5)) {
                    Ok(env) => match env.msg {
                        Payload::StateReply { sn: rsn, val, ts } if rsn == sn => {
                            got += 1;
                            if best.as_ref().is_none_or(|(_, bt)| ts > *bt) {
                                best = Some((val, ts));
                            }
                        }
                        Payload::StateReply { .. } => {}
                        // Another server recovering concurrently: answer
                        // inline or the two recoveries deadlock.
                        Payload::StateQuery { sn: qsn } => self.answer_state_query(env.src, qsn),
                        Payload::Crash { .. } => nested += 1,
                        Payload::Abd(_) => buffered.push(env),
                    },
                    Err(RecvTimeoutError::Timeout) => {
                        if self.stop.load(Ordering::Relaxed) {
                            // Shutdown: peers may already be gone. The
                            // replayed checkpoint stands — truncating
                            // catch-up costs freshness, never soundness.
                            self.sink.on_catchup_aborted();
                            break;
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        self.sink.on_catchup_aborted();
                        break;
                    }
                }
            }
            if let Some((val, ts)) = best {
                // Freshness only: install iff newer than the replayed
                // checkpoint (absorb's own rule).
                self.state.absorb(val, ts);
            }
        }
        self.sink
            .on_recovery(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
        nested
    }
}

#[allow(clippy::too_many_arguments)] // a thread entry point, not an API
fn client_loop(
    c: u32,
    cfg: &RuntimeConfig,
    quorum: u32,
    rx: Receiver<Envelope>,
    bus: &Bus,
    barrier: &Barrier,
    mon_tx: &Sender<Action>,
    retransmissions: &AtomicU64,
    latency: &Histogram,
) {
    let me = Pid(cfg.servers + c);
    let obj = ObjId(0);
    let mut rng = client_rng(cfg.seed, c);
    let mut sn_counter: u32 = 0;
    let local = Histogram::unregistered();
    let mut retrans: u64 = 0;

    for op_idx in 0..cfg.ops_per_client {
        if op_idx > 0 && op_idx % cfg.burst == 0 {
            barrier.wait();
        }
        let inv = InvId(u64::from(c) * 10_000_000 + op_idx);
        let is_read = rng.draw(1000) < usize::from(cfg.read_per_mille);
        let (method, arg) = if is_read {
            (MethodId::READ, Val::Nil)
        } else {
            // Unique write values keep the checker's search shallow and
            // make stale reads unambiguous.
            let v = i64::from(c) * 1_000_000 + i64::try_from(op_idx).expect("op index fits i64");
            (MethodId::WRITE, Val::Int(v))
        };
        let _ = mon_tx.send(Action::Call {
            inv,
            pid: me,
            obj,
            method,
            arg: arg.clone(),
        });
        let t0 = Instant::now();
        let ret = if cfg.broken_reads && is_read {
            broken_read(
                me,
                obj,
                op_idx,
                cfg,
                &rx,
                bus,
                &mut sn_counter,
                &mut retrans,
            )
        } else {
            let kind = if is_read {
                OpKind::Read
            } else {
                OpKind::Write(arg)
            };
            abd_op(
                me,
                obj,
                inv,
                kind,
                cfg,
                quorum,
                &rx,
                bus,
                &mut rng,
                &mut sn_counter,
                &mut retrans,
            )
        };
        local.record(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
        let _ = mon_tx.send(Action::Return { inv, val: ret });
    }
    latency.merge(&local);
    retransmissions.fetch_add(retrans, Ordering::Relaxed);
}

fn server_pids(cfg: &RuntimeConfig) -> impl Iterator<Item = Pid> {
    (0..cfg.servers).map(Pid)
}

/// The client's deterministic exponential backoff: doubles per consecutive
/// timeout from `retransmit_after`, saturating at `retransmit_cap`; any
/// received message resets it (evidence of progress). Returns the next wait
/// and bumps the saturation counter on the transition to the cap.
fn next_backoff(wait: Duration, cfg: &RuntimeConfig) -> Duration {
    let next = wait.saturating_mul(2).min(cfg.retransmit_cap);
    if next == cfg.retransmit_cap && wait < cfg.retransmit_cap {
        blunt_obs::static_counter!("runtime.client.backoff_max_reached").inc();
    }
    next
}

/// Drives one full ABD (or ABD^k) operation through the client step machine
/// to completion, retransmitting with exponential backoff on timeout.
#[allow(clippy::too_many_arguments)] // mirrors the thread context it runs in
fn abd_op(
    me: Pid,
    obj: ObjId,
    inv: InvId,
    kind: OpKind,
    cfg: &RuntimeConfig,
    quorum: u32,
    rx: &Receiver<Envelope>,
    bus: &Bus,
    rng: &mut SplitMix64,
    sn_counter: &mut u32,
    retrans: &mut u64,
) -> Val {
    *sn_counter += 1;
    let sn = *sn_counter;
    let mut op = ActiveOp::start(inv, obj, kind, cfg.k, sn);
    bus.broadcast(me, server_pids(cfg), &AbdMsg::Query { obj, sn }, false);
    let mut wait = cfg.retransmit_after.min(cfg.retransmit_cap);
    loop {
        match rx.recv_timeout(wait) {
            Ok(env) => {
                wait = cfg.retransmit_after.min(cfg.retransmit_cap);
                let Payload::Abd(msg) = env.msg else {
                    continue; // control traffic never targets clients
                };
                match msg {
                    AbdMsg::Reply {
                        obj: o,
                        sn: msg_sn,
                        val,
                        ts,
                    } if o == obj => {
                        match op.on_reply(env.src, msg_sn, &val, ts, quorum, me, sn_counter) {
                            ReplyEffect::NextQuery { sn, .. } => {
                                bus.broadcast(
                                    me,
                                    server_pids(cfg),
                                    &AbdMsg::Query { obj, sn },
                                    false,
                                );
                            }
                            ReplyEffect::NeedChoice { choices, .. } => {
                                // The object random step, drawn from the
                                // client's seeded stream: one draw per op, so
                                // the stream position is schedule-independent.
                                let choice = rng.draw(choices as usize);
                                let (sn, val, ts) = op.choose(choice, me, sn_counter);
                                bus.broadcast(
                                    me,
                                    server_pids(cfg),
                                    &AbdMsg::Update { obj, sn, val, ts },
                                    false,
                                );
                            }
                            ReplyEffect::StartUpdate { sn, val, ts, .. } => {
                                bus.broadcast(
                                    me,
                                    server_pids(cfg),
                                    &AbdMsg::Update { obj, sn, val, ts },
                                    false,
                                );
                            }
                            ReplyEffect::Ignored | ReplyEffect::Counted => {}
                        }
                    }
                    AbdMsg::Ack { obj: o, sn: msg_sn } if o == obj => {
                        if let AckEffect::Complete { ret } = op.on_ack(env.src, msg_sn, quorum) {
                            return ret;
                        }
                    }
                    _ => {}
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if let Some(msg) = op.retransmission() {
                    *retrans += 1;
                    blunt_obs::static_counter!("runtime.client.retransmissions").inc();
                    bus.broadcast(me, server_pids(cfg), &msg, true);
                }
                wait = next_backoff(wait, cfg);
            }
            Err(RecvTimeoutError::Disconnected) => {
                panic!("bus closed while an operation was in flight")
            }
        }
    }
}

/// The intentionally-broken read: query ONE server (rotating), return the
/// first reply's value, skip the write-back. Under drops a replica can miss
/// an update forever, so a client that writes and then fast-reads a stale
/// replica observes a new-old inversion in its own program order — exactly
/// what the monitor exists to catch.
#[allow(clippy::too_many_arguments)] // mirrors the thread context it runs in
fn broken_read(
    me: Pid,
    obj: ObjId,
    op_idx: u64,
    cfg: &RuntimeConfig,
    rx: &Receiver<Envelope>,
    bus: &Bus,
    sn_counter: &mut u32,
    retrans: &mut u64,
) -> Val {
    *sn_counter += 1;
    let sn = *sn_counter;
    let target = Pid(u32::try_from(op_idx % u64::from(cfg.servers)).expect("server index"));
    let msg = AbdMsg::Query { obj, sn };
    bus.send(Envelope::abd(me, target, msg.clone(), false));
    let mut wait = cfg.retransmit_after.min(cfg.retransmit_cap);
    loop {
        match rx.recv_timeout(wait) {
            Ok(env) => {
                wait = cfg.retransmit_after.min(cfg.retransmit_cap);
                if let Payload::Abd(AbdMsg::Reply {
                    obj: o,
                    sn: msg_sn,
                    val,
                    ..
                }) = env.msg
                {
                    if o == obj && msg_sn == sn {
                        return val;
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                *retrans += 1;
                bus.send(Envelope::abd(me, target, msg.clone(), true));
                wait = next_backoff(wait, cfg);
            }
            Err(RecvTimeoutError::Disconnected) => {
                panic!("bus closed while a read was in flight")
            }
        }
    }
}
