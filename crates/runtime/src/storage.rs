//! The simulated durable-storage layer: a per-server, checkpointing
//! write-ahead log with explicit fsync points.
//!
//! Real crash-recovery hinges on one distinction the message-blackout crash
//! model erases: state that has reached stable storage survives a crash,
//! state that has not does not. [`Wal`] models exactly that boundary. A
//! server [`Wal::append`]s every update it absorbs; records accumulate in a
//! volatile *pending* suffix until [`Wal::fsync`] folds them into the
//! durable checkpoint. On an amnesia crash the fault layer calls
//! [`Wal::lose_unsynced`] — the pending suffix vanishes, the checkpoint
//! survives — and recovery calls [`Wal::replay`] to reload the newest
//! durable `(value, timestamp)` pair.
//!
//! Because an ABD register's recoverable state is fully described by its
//! maximum-timestamp record, the log self-compacts: `fsync` keeps only the
//! newest durable record rather than the full history, so replay is O(1)
//! and memory stays bounded over arbitrarily long runs. This is the
//! checkpoint form of a WAL, not a departure from one — a full log replayed
//! from the start would reach the same `(value, timestamp)` pair.
//!
//! The soundness contract consumed by `workload.rs` is the **write-ahead
//! ack discipline**: a server may acknowledge an update with timestamp `t`
//! only once [`Wal::durable_ts`] `≥ t`. Then every *acknowledged* update
//! survives any crash by replay alone, which is what makes recovery sound
//! without coordination (see `docs/RUNTIME.md`).

use blunt_abd::ts::Ts;
use blunt_core::ids::ObjId;
use blunt_core::value::Val;
use std::collections::BTreeMap;

/// One logged update: the `(value, timestamp)` pair a server absorbed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WalRecord {
    /// The written value.
    pub val: Val,
    /// Its ABD timestamp.
    pub ts: Ts,
}

/// A per-server write-ahead log with explicit fsync points and
/// checkpoint-style self-compaction.
#[derive(Debug)]
pub struct Wal {
    /// The newest record covered by an fsync; survives crashes.
    checkpoint: Option<WalRecord>,
    /// Appended but not yet fsynced; lost by [`Wal::lose_unsynced`].
    pending: Vec<WalRecord>,
    /// Group-commit batch size: the server flushes once this many records
    /// are pending (plus on idle and on retransmission pressure).
    fsync_interval: u32,
}

impl Wal {
    /// An empty log that group-commits every `fsync_interval` appends
    /// (clamped to ≥ 1).
    #[must_use]
    pub fn new(fsync_interval: u32) -> Wal {
        Wal {
            checkpoint: None,
            pending: Vec::new(),
            fsync_interval: fsync_interval.max(1),
        }
    }

    /// The configured group-commit batch size.
    #[must_use]
    pub fn fsync_interval(&self) -> u32 {
        self.fsync_interval
    }

    /// Appends one record to the volatile suffix.
    pub fn append(&mut self, val: Val, ts: Ts) {
        self.pending.push(WalRecord { val, ts });
        blunt_obs::static_counter!("runtime.storage.wal_appends").inc();
    }

    /// Number of appended-but-unsynced records.
    #[must_use]
    pub fn unsynced_len(&self) -> usize {
        self.pending.len()
    }

    /// Whether the pending suffix has reached the group-commit batch size.
    #[must_use]
    pub fn batch_full(&self) -> bool {
        self.pending.len() >= self.fsync_interval as usize
    }

    /// An explicit fsync point: every pending record becomes durable,
    /// compacted into the maximum-timestamp checkpoint. Returns the number
    /// of records made durable (0 for a no-op fsync, which is not counted).
    pub fn fsync(&mut self) -> usize {
        let n = self.pending.len();
        if n == 0 {
            return 0;
        }
        for rec in self.pending.drain(..) {
            match &self.checkpoint {
                Some(cp) if cp.ts >= rec.ts => {}
                _ => self.checkpoint = Some(rec),
            }
        }
        blunt_obs::static_counter!("runtime.storage.fsyncs").inc();
        n
    }

    /// The largest timestamp known durable — the write-ahead ack
    /// discipline's threshold. `Ts::ZERO` for an empty log (the initial
    /// value needs no logging: every replica is constructed with it).
    #[must_use]
    pub fn durable_ts(&self) -> Ts {
        self.checkpoint.as_ref().map_or(Ts::ZERO, |cp| cp.ts)
    }

    /// The crash: the unsynced suffix is gone. Returns how many records
    /// were lost.
    pub fn lose_unsynced(&mut self) -> usize {
        let n = self.pending.len();
        self.pending.clear();
        blunt_obs::static_counter!("runtime.storage.records_lost").add(n as u64);
        n
    }

    /// Recovery replay: the newest durable `(value, timestamp)` pair, if
    /// any update ever reached an fsync point.
    #[must_use]
    pub fn replay(&self) -> Option<(Val, Ts)> {
        self.checkpoint.as_ref().map(|cp| (cp.val.clone(), cp.ts))
    }

    /// Total storage loss — checkpoint and suffix both gone. Used by the
    /// `--demo-amnesia` broken mode to model a server whose recovery
    /// ignores durable state entirely.
    pub fn wipe(&mut self) {
        self.checkpoint = None;
        self.pending.clear();
    }
}

/// The multi-register form of [`Wal`]: one storage file per server shared
/// by every register it hosts, with **per-object checkpoints** and a single
/// volatile pending suffix. Appends from all shards interleave in one
/// suffix, so a single [`MultiWal::fsync`] group-commits across shards —
/// the amortization the keyed store's write path relies on. The write-ahead
/// ack discipline becomes per-object: an update on `obj` with timestamp `t`
/// may be acknowledged once [`MultiWal::durable_ts`]`(obj) ≥ t`.
///
/// For a store hosting a single register this degenerates to [`Wal`]
/// exactly: same append/fsync cadence, same counters, same recovery.
#[derive(Debug)]
pub struct MultiWal {
    /// Newest durable record per object; survives crashes.
    checkpoints: BTreeMap<ObjId, WalRecord>,
    /// Appended but not yet fsynced, across all objects.
    pending: Vec<(ObjId, WalRecord)>,
    fsync_interval: u32,
}

impl MultiWal {
    /// An empty log that group-commits every `fsync_interval` appends
    /// (clamped to ≥ 1), counting appends across all objects.
    #[must_use]
    pub fn new(fsync_interval: u32) -> MultiWal {
        MultiWal {
            checkpoints: BTreeMap::new(),
            pending: Vec::new(),
            fsync_interval: fsync_interval.max(1),
        }
    }

    /// The configured group-commit batch size (shared by all objects).
    #[must_use]
    pub fn fsync_interval(&self) -> u32 {
        self.fsync_interval
    }

    /// Appends one record for `obj` to the shared volatile suffix.
    pub fn append(&mut self, obj: ObjId, val: Val, ts: Ts) {
        self.pending.push((obj, WalRecord { val, ts }));
        blunt_obs::static_counter!("runtime.storage.wal_appends").inc();
    }

    /// Number of appended-but-unsynced records, across all objects.
    #[must_use]
    pub fn unsynced_len(&self) -> usize {
        self.pending.len()
    }

    /// Whether the shared suffix has reached the group-commit batch size.
    #[must_use]
    pub fn batch_full(&self) -> bool {
        self.pending.len() >= self.fsync_interval as usize
    }

    /// One fsync point covering every object with pending records: each
    /// object's checkpoint advances to its maximum-timestamp record.
    /// Returns the number of records made durable.
    pub fn fsync(&mut self) -> usize {
        let n = self.pending.len();
        if n == 0 {
            return 0;
        }
        for (obj, rec) in self.pending.drain(..) {
            match self.checkpoints.get(&obj) {
                Some(cp) if cp.ts >= rec.ts => {}
                _ => {
                    self.checkpoints.insert(obj, rec);
                }
            }
        }
        blunt_obs::static_counter!("runtime.storage.fsyncs").inc();
        n
    }

    /// The largest timestamp known durable **for `obj`** — the per-object
    /// write-ahead ack threshold. `Ts::ZERO` if `obj` never reached an
    /// fsync point.
    #[must_use]
    pub fn durable_ts(&self, obj: ObjId) -> Ts {
        self.checkpoints.get(&obj).map_or(Ts::ZERO, |cp| cp.ts)
    }

    /// The crash: the shared unsynced suffix is gone (all objects). Returns
    /// how many records were lost.
    pub fn lose_unsynced(&mut self) -> usize {
        let n = self.pending.len();
        self.pending.clear();
        blunt_obs::static_counter!("runtime.storage.records_lost").add(n as u64);
        n
    }

    /// Recovery replay: every object's newest durable `(obj, value,
    /// timestamp)`, in `ObjId` order.
    #[must_use]
    pub fn replay(&self) -> Vec<(ObjId, Val, Ts)> {
        self.checkpoints
            .iter()
            .map(|(o, cp)| (*o, cp.val.clone(), cp.ts))
            .collect()
    }

    /// Total storage loss — checkpoints and suffix both gone (the
    /// `--demo-amnesia` broken-recovery mode).
    pub fn wipe(&mut self) {
        self.checkpoints.clear();
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_core::ids::Pid;

    fn ts(n: i64) -> Ts {
        Ts::new(n, Pid(0))
    }

    #[test]
    fn fresh_log_is_empty_and_at_ts_zero() {
        let wal = Wal::new(4);
        assert_eq!(wal.unsynced_len(), 0);
        assert_eq!(wal.durable_ts(), Ts::ZERO);
        assert_eq!(wal.replay(), None);
        assert!(!wal.batch_full());
    }

    #[test]
    fn appends_stay_volatile_until_fsync() {
        let mut wal = Wal::new(4);
        wal.append(Val::Int(1), ts(1));
        wal.append(Val::Int(2), ts(2));
        assert_eq!(wal.unsynced_len(), 2);
        assert_eq!(wal.durable_ts(), Ts::ZERO, "nothing synced yet");
        assert_eq!(wal.fsync(), 2);
        assert_eq!(wal.unsynced_len(), 0);
        assert_eq!(wal.durable_ts(), ts(2));
        assert_eq!(wal.replay(), Some((Val::Int(2), ts(2))));
    }

    #[test]
    fn crash_loses_exactly_the_unsynced_suffix() {
        let mut wal = Wal::new(8);
        wal.append(Val::Int(1), ts(1));
        wal.fsync();
        wal.append(Val::Int(2), ts(2));
        wal.append(Val::Int(3), ts(3));
        assert_eq!(wal.lose_unsynced(), 2);
        assert_eq!(wal.unsynced_len(), 0);
        // The synced prefix survives: replay recovers ts 1, not ts 3.
        assert_eq!(wal.replay(), Some((Val::Int(1), ts(1))));
        assert_eq!(wal.durable_ts(), ts(1));
    }

    #[test]
    fn checkpoint_keeps_the_max_timestamp_record() {
        // Out-of-order and duplicate appends (retransmitted updates) must
        // not regress the checkpoint.
        let mut wal = Wal::new(8);
        wal.append(Val::Int(3), ts(3));
        wal.append(Val::Int(1), ts(1));
        wal.fsync();
        assert_eq!(wal.replay(), Some((Val::Int(3), ts(3))));
        wal.append(Val::Int(2), ts(2));
        wal.fsync();
        assert_eq!(wal.replay(), Some((Val::Int(3), ts(3))), "no regression");
        wal.append(Val::Int(4), ts(4));
        wal.fsync();
        assert_eq!(wal.replay(), Some((Val::Int(4), ts(4))));
    }

    #[test]
    fn batch_full_tracks_the_interval_and_clamps_zero() {
        let mut wal = Wal::new(2);
        wal.append(Val::Int(1), ts(1));
        assert!(!wal.batch_full());
        wal.append(Val::Int(2), ts(2));
        assert!(wal.batch_full());

        let zero = Wal::new(0);
        assert_eq!(zero.fsync_interval(), 1, "interval clamps to ≥ 1");
    }

    #[test]
    fn empty_fsync_is_a_no_op() {
        let mut wal = Wal::new(4);
        assert_eq!(wal.fsync(), 0);
        wal.append(Val::Int(1), ts(1));
        wal.fsync();
        let before = wal.replay();
        assert_eq!(wal.fsync(), 0);
        assert_eq!(wal.replay(), before);
    }

    #[test]
    fn multiwal_checkpoints_are_per_object_with_a_shared_suffix() {
        let mut wal = MultiWal::new(3);
        wal.append(ObjId(1), Val::Int(10), ts(1));
        wal.append(ObjId(2), Val::Int(20), ts(5));
        assert_eq!(wal.unsynced_len(), 2);
        assert!(!wal.batch_full());
        wal.append(ObjId(1), Val::Int(11), ts(2));
        assert!(wal.batch_full(), "batch size counts across objects");
        assert_eq!(wal.fsync(), 3);
        assert_eq!(wal.durable_ts(ObjId(1)), ts(2));
        assert_eq!(wal.durable_ts(ObjId(2)), ts(5));
        assert_eq!(wal.durable_ts(ObjId(9)), Ts::ZERO, "unseen object");
        let replay = wal.replay();
        assert_eq!(
            replay,
            vec![
                (ObjId(1), Val::Int(11), ts(2)),
                (ObjId(2), Val::Int(20), ts(5)),
            ]
        );
    }

    #[test]
    fn multiwal_crash_loses_all_objects_unsynced_suffix() {
        let mut wal = MultiWal::new(8);
        wal.append(ObjId(1), Val::Int(1), ts(1));
        wal.fsync();
        wal.append(ObjId(1), Val::Int(2), ts(2));
        wal.append(ObjId(2), Val::Int(3), ts(3));
        assert_eq!(wal.lose_unsynced(), 2);
        assert_eq!(wal.durable_ts(ObjId(1)), ts(1));
        assert_eq!(wal.durable_ts(ObjId(2)), Ts::ZERO);
        wal.wipe();
        assert!(wal.replay().is_empty());
    }

    #[test]
    fn multiwal_checkpoint_never_regresses_per_object() {
        let mut wal = MultiWal::new(1);
        wal.append(ObjId(4), Val::Int(9), ts(9));
        wal.fsync();
        // A retransmitted older update for the same object is absorbed by
        // the checkpoint compaction, not a regression.
        wal.append(ObjId(4), Val::Int(1), ts(1));
        wal.fsync();
        assert_eq!(wal.replay(), vec![(ObjId(4), Val::Int(9), ts(9))]);
    }

    #[test]
    fn multiwal_single_object_matches_wal() {
        let mut mw = MultiWal::new(2);
        let mut w = Wal::new(2);
        let script = [(Val::Int(3), 3), (Val::Int(1), 1), (Val::Int(5), 5)];
        for (v, t) in script {
            mw.append(ObjId(0), v.clone(), ts(t));
            w.append(v, ts(t));
        }
        assert_eq!(mw.batch_full(), w.batch_full());
        assert_eq!(mw.fsync(), w.fsync());
        assert_eq!(mw.durable_ts(ObjId(0)), w.durable_ts());
        let (wv, wt) = w.replay().unwrap();
        assert_eq!(mw.replay(), vec![(ObjId(0), wv, wt)]);
    }

    #[test]
    fn multiwal_replay_is_prefix_consistent_at_every_fsync_boundary() {
        // Crash-mid-batch soundness for the keyed write path: record a
        // keyed run's append/fsync script, then crash it at EVERY fsync
        // boundary in turn and check the replay against first principles.
        // The write-ahead ack discipline acks an update on `obj` only once
        // an fsync covers it, and one group commit spans records from many
        // keys — so a crash must never tear a multi-key batch: every
        // record covered by a completed fsync survives replay (at its
        // per-object max timestamp), and nothing appended after the last
        // completed fsync leaks in.
        #[derive(Clone)]
        enum Step {
            Append(ObjId, i64),
            Fsync,
        }

        // A deterministic keyed workload: 64 appends over 5 keys with
        // interleaved timestamps, group-committed every 4 appends exactly
        // like the server loop's batch_full pressure.
        let mut script = Vec::new();
        let mut state = 0x5709_u64;
        let mut pending = 0u32;
        for i in 0..64i64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let obj = ObjId((state >> 33) as u32 % 5);
            script.push(Step::Append(obj, i + 1));
            pending += 1;
            if pending == 4 {
                script.push(Step::Fsync);
                pending = 0;
            }
        }
        let boundaries = script.iter().filter(|s| matches!(s, Step::Fsync)).count();
        assert!(boundaries >= 8, "the script must exercise many batches");

        for boundary in 0..=boundaries {
            // Re-run the recorded script, crashing right after the
            // `boundary`-th fsync: later appends land in the volatile
            // suffix and are lost; later fsyncs never happen.
            let mut wal = MultiWal::new(4);
            let mut fsyncs = 0;
            let mut durable_prefix: std::collections::BTreeMap<ObjId, Ts> =
                std::collections::BTreeMap::new();
            let mut in_flight: Vec<(ObjId, Ts)> = Vec::new();
            for step in &script {
                match step {
                    Step::Append(obj, t) => {
                        wal.append(*obj, Val::Int(*t), ts(*t));
                        if fsyncs < boundary {
                            in_flight.push((*obj, ts(*t)));
                        }
                    }
                    Step::Fsync => {
                        if fsyncs == boundary {
                            break;
                        }
                        wal.fsync();
                        fsyncs += 1;
                        // Everything appended so far is now durable — the
                        // server may ack these records from here on.
                        for (obj, t) in in_flight.drain(..) {
                            let e = durable_prefix.entry(obj).or_insert(Ts::ZERO);
                            if t > *e {
                                *e = t;
                            }
                        }
                    }
                }
            }
            let torn = wal.lose_unsynced();
            if boundary < boundaries {
                assert!(torn > 0, "a mid-batch crash loses the open batch");
            }

            // Replay must be exactly the per-object max over the durable
            // prefix: no acked record missing (torn batch), no lost
            // record resurrected.
            let replayed: std::collections::BTreeMap<ObjId, Ts> = wal
                .replay()
                .into_iter()
                .map(|(obj, _val, t)| (obj, t))
                .collect();
            assert_eq!(
                replayed, durable_prefix,
                "replay after crashing at fsync boundary {boundary} is not \
                 prefix-consistent"
            );
            for (obj, t) in &durable_prefix {
                assert!(
                    wal.durable_ts(*obj) >= *t,
                    "acked record on {obj:?} at {t:?} torn away by the crash"
                );
            }
        }
    }

    #[test]
    fn wipe_loses_everything() {
        let mut wal = Wal::new(4);
        wal.append(Val::Int(1), ts(1));
        wal.fsync();
        wal.append(Val::Int(2), ts(2));
        wal.wipe();
        assert_eq!(wal.replay(), None);
        assert_eq!(wal.durable_ts(), Ts::ZERO);
        assert_eq!(wal.unsynced_len(), 0);
    }
}
