//! Crash-recovery policy and counters.
//!
//! [`RecoveryMode`] selects what a crash *means* for a server's state:
//! under [`RecoveryMode::Stable`] (the pre-existing model) a crash is a
//! pure message blackout and the replica's memory survives; under
//! [`RecoveryMode::Amnesia`] the server loses its volatile `ServerState`
//! and its unsynced WAL suffix, and must run the recovery protocol —
//! replay the durable checkpoint, then catch up from a quorum of peers —
//! before serving traffic again. The `demo_skip_recovery` knob produces the
//! intentionally-broken variant that serves straight from forgotten state,
//! which the online linearizability monitor must catch.
//!
//! [`RecoveryStats`] are accumulated across server threads through the
//! shared atomics of `RecoverySink` and reported per run in
//! `ChaosReport::recovery`. `crashes` and `recoveries` are deterministic
//! for a seed (they follow the bus's crash-event detection, which lives in
//! link-index space); the WAL-shaped counters depend on flush timing and
//! are excluded from regression gating (see `docs/OBS_SCHEMA.md`).

use std::sync::atomic::{AtomicU64, Ordering};

/// What happens to a server's state when its crash window fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryMode {
    /// Crashes are message blackouts only; replica memory survives (the
    /// "stable storage" idealization the paper's algorithms assume).
    Stable,
    /// Crashes erase volatile state; servers keep a WAL and run the
    /// recovery protocol on restart.
    Amnesia {
        /// Group-commit batch size for the WAL (records per fsync).
        fsync_interval: u32,
        /// Broken mode: recovery skips both WAL replay and peer catch-up,
        /// serving from reset state — stale timestamps the monitor must
        /// flag.
        demo_skip_recovery: bool,
    },
}

impl RecoveryMode {
    /// The standard amnesia configuration: group commits of 4 records,
    /// sound recovery.
    #[must_use]
    pub fn amnesia() -> RecoveryMode {
        RecoveryMode::Amnesia {
            fsync_interval: 4,
            demo_skip_recovery: false,
        }
    }

    /// The intentionally-broken amnesia configuration for
    /// `--demo-amnesia`.
    #[must_use]
    pub fn demo_amnesia() -> RecoveryMode {
        RecoveryMode::Amnesia {
            fsync_interval: 4,
            demo_skip_recovery: true,
        }
    }

    /// Whether crashes erase volatile state in this mode.
    #[must_use]
    pub fn is_amnesia(&self) -> bool {
        matches!(self, RecoveryMode::Amnesia { .. })
    }
}

/// Per-run crash-recovery counters (also exported as the
/// `runtime.recovery.*` metrics in `blunt_obs`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RecoveryStats {
    /// Crash events suffered by servers (deterministic for a seed — one
    /// per bus crash-event signal).
    pub crashes: u64,
    /// Recovery protocol runs completed (deterministic; equals `crashes`
    /// in sound modes — every crash is recovered from, even if the
    /// catch-up phase was truncated by shutdown).
    pub recoveries: u64,
    /// WAL records lost to crashes (timing-dependent: depends on where
    /// group-commit flushes landed).
    pub wal_records_lost: u64,
    /// Recoveries that restored a durable checkpoint by WAL replay
    /// (timing-dependent).
    pub wal_records_replayed: u64,
    /// State-transfer queries sent during peer catch-up
    /// (timing-dependent).
    pub state_queries: u64,
    /// Catch-up phases truncated because the run was shutting down
    /// (timing-dependent; the replayed checkpoint still stands).
    pub catchup_aborted: u64,
}

/// The shared accumulation point: server threads add to these atomics, the
/// workload driver snapshots them into a [`RecoveryStats`] at the end.
/// Public so external runners (the keyed store) can drive the same server
/// loop with their own sink.
#[derive(Debug, Default)]
pub struct RecoverySink {
    crashes: AtomicU64,
    recoveries: AtomicU64,
    wal_records_lost: AtomicU64,
    wal_records_replayed: AtomicU64,
    state_queries: AtomicU64,
    catchup_aborted: AtomicU64,
}

impl RecoverySink {
    /// A server crashed, losing `records_lost` unsynced WAL records.
    pub fn on_crash(&self, records_lost: u64) {
        self.crashes.fetch_add(1, Ordering::Relaxed);
        self.wal_records_lost
            .fetch_add(records_lost, Ordering::Relaxed);
        blunt_obs::static_counter!("runtime.recovery.crashes").inc();
    }

    /// A recovery restored at least one durable checkpoint by WAL replay.
    pub fn on_replay(&self) {
        self.wal_records_replayed.fetch_add(1, Ordering::Relaxed);
        blunt_obs::static_counter!("runtime.recovery.wal_replays").inc();
    }

    /// A recovering server sent `n` peer state-transfer queries.
    pub fn on_state_queries(&self, n: u64) {
        self.state_queries.fetch_add(n, Ordering::Relaxed);
        blunt_obs::static_counter!("runtime.recovery.state_queries").add(n);
    }

    /// A catch-up phase was truncated by shutdown.
    pub fn on_catchup_aborted(&self) {
        self.catchup_aborted.fetch_add(1, Ordering::Relaxed);
        blunt_obs::static_counter!("runtime.recovery.catchup_aborted").inc();
    }

    /// A recovery completed after `elapsed_us` microseconds.
    pub fn on_recovery(&self, elapsed_us: u64) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
        blunt_obs::static_counter!("runtime.recovery.recoveries").inc();
        blunt_obs::histogram("runtime.recovery.latency_us").record(elapsed_us);
    }

    /// The accumulated counters as a value snapshot.
    #[must_use]
    pub fn snapshot(&self) -> RecoveryStats {
        RecoveryStats {
            crashes: self.crashes.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            wal_records_lost: self.wal_records_lost.load(Ordering::Relaxed),
            wal_records_replayed: self.wal_records_replayed.load(Ordering::Relaxed),
            state_queries: self.state_queries.load(Ordering::Relaxed),
            catchup_aborted: self.catchup_aborted.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_constructors_and_predicates() {
        assert!(!RecoveryMode::Stable.is_amnesia());
        assert!(RecoveryMode::amnesia().is_amnesia());
        assert!(RecoveryMode::demo_amnesia().is_amnesia());
        match RecoveryMode::amnesia() {
            RecoveryMode::Amnesia {
                demo_skip_recovery, ..
            } => assert!(!demo_skip_recovery),
            RecoveryMode::Stable => unreachable!(),
        }
    }

    #[test]
    fn sink_accumulates_into_stats() {
        let sink = RecoverySink::default();
        sink.on_crash(3);
        sink.on_crash(0);
        sink.on_replay();
        sink.on_state_queries(2);
        sink.on_recovery(17);
        sink.on_recovery(21);
        sink.on_catchup_aborted();
        let s = sink.snapshot();
        assert_eq!(
            s,
            RecoveryStats {
                crashes: 2,
                recoveries: 2,
                wal_records_lost: 3,
                wal_records_replayed: 1,
                state_queries: 2,
                catchup_aborted: 1,
            }
        );
    }
}
