//! The in-process message bus: per-node mpsc queues plus the fault
//! injector.
//!
//! Every node (server or client thread) owns one `mpsc::Receiver<Envelope>`;
//! the bus holds the matching senders. A send first consults the
//! [`FaultPlan`] (unless the envelope is *exempt*, i.e. a retransmission or
//! a response to one), then realizes the fate:
//!
//! - `Drop`/`CrashDrop`/`PartitionDrop` — the envelope vanishes;
//! - `Duplicate` — enqueued twice back to back;
//! - `Reorder` — held in the link until the next message on the same link
//!   overtakes it (flushed by [`Bus::flush`] if none ever comes);
//! - `Delay(ms)` — handed to a dedicated delayer thread that sleeps until
//!   the deadline and then enqueues it.
//!
//! `std::sync::mpsc` channels are per-sender FIFO and internally
//! linearizable, which is what makes the per-link message indexing of
//! [`FaultPlan`] well defined.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use blunt_abd::msg::AbdMsg;
use blunt_core::ids::Pid;

use crate::fault::{Fate, FaultConfig, FaultPlan};

/// One message in flight on the bus.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sending node.
    pub src: Pid,
    /// Destination node.
    pub dst: Pid,
    /// Protocol payload.
    pub msg: AbdMsg,
    /// Retransmissions (and responses to them) bypass the fault injector
    /// and consume no fault-schedule indices, so timing-dependent retry
    /// counts cannot perturb the seed-determined schedule.
    pub exempt: bool,
}

/// Deterministic fault counters accumulated by a run; equal across runs
/// with the same seed and configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BusStats {
    /// First-transmission messages offered to the injector.
    pub offered: u64,
    /// Messages dropped by the random drop fault.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages swapped with their successor.
    pub reordered: u64,
    /// Messages held back by a delay.
    pub delayed: u64,
    /// Messages lost to crash blackout windows.
    pub crash_dropped: u64,
    /// Messages lost to partition windows.
    pub partition_dropped: u64,
}

struct DelayedMsg {
    due: Instant,
    env: Envelope,
}

/// Per-link mutable state: the fate stream lives in the shared
/// [`FaultPlan`]; this holds the reorder hold-back slot.
struct LinkHold {
    held: Option<Envelope>,
}

struct BusInner {
    plan: FaultPlan,
    stats: BusStats,
    holds: Vec<LinkHold>,
}

/// The bus proper. Cloneable handles are not needed — threads share it via
/// `Arc<Bus>`.
pub struct Bus {
    nodes: u32,
    mailboxes: Vec<Sender<Envelope>>,
    inner: Mutex<BusInner>,
    delayer: Mutex<Option<Sender<DelayedMsg>>>,
    delayer_handle: Mutex<Option<JoinHandle<()>>>,
}

impl Bus {
    /// Creates a bus for `nodes` processes, returning it together with one
    /// receiver per node (index = pid).
    #[must_use]
    pub fn new(
        seed: u64,
        cfg: FaultConfig,
        servers: u32,
        nodes: u32,
    ) -> (Bus, Vec<Receiver<Envelope>>) {
        let mut senders = Vec::with_capacity(nodes as usize);
        let mut receivers = Vec::with_capacity(nodes as usize);
        for _ in 0..nodes {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let bus = Bus {
            nodes,
            mailboxes: senders,
            inner: Mutex::new(BusInner {
                plan: FaultPlan::new(seed, cfg, servers, nodes),
                stats: BusStats::default(),
                holds: (0..nodes * nodes)
                    .map(|_| LinkHold { held: None })
                    .collect(),
            }),
            delayer: Mutex::new(None),
            delayer_handle: Mutex::new(None),
        };
        bus.spawn_delayer();
        (bus, receivers)
    }

    /// The delayer thread: a min-deadline buffer fed by `Fate::Delay`
    /// messages, drained on deadline. Dropping the sender shuts it down
    /// (remaining messages are flushed immediately).
    fn spawn_delayer(&self) {
        let (tx, rx) = mpsc::channel::<DelayedMsg>();
        let mailboxes = self.mailboxes.clone();
        let handle = std::thread::spawn(move || {
            let mut pending: Vec<DelayedMsg> = Vec::new();
            loop {
                let timeout = pending
                    .iter()
                    .map(|d| d.due.saturating_duration_since(Instant::now()))
                    .min()
                    .unwrap_or(Duration::from_millis(50));
                match rx.recv_timeout(timeout) {
                    Ok(d) => pending.push(d),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        for d in pending.drain(..) {
                            let _ = mailboxes[d.env.dst.index()].send(d.env);
                        }
                        return;
                    }
                }
                let now = Instant::now();
                let mut i = 0;
                while i < pending.len() {
                    if pending[i].due <= now {
                        let d = pending.swap_remove(i);
                        let _ = mailboxes[d.env.dst.index()].send(d.env);
                    } else {
                        i += 1;
                    }
                }
            }
        });
        *self.delayer.lock().unwrap() = Some(tx);
        *self.delayer_handle.lock().unwrap() = Some(handle);
    }

    fn enqueue(&self, env: Envelope) {
        // A closed mailbox means the receiver already shut down; late
        // messages to it are irrelevant.
        let _ = self.mailboxes[env.dst.index()].send(env);
    }

    /// Sends `env`, applying the fault schedule to non-exempt envelopes.
    pub fn send(&self, env: Envelope) {
        if env.exempt {
            self.enqueue(env);
            return;
        }
        let fate = {
            let mut inner = self.inner.lock().unwrap();
            inner.stats.offered += 1;
            let fate = inner.plan.fate(env.src, env.dst);
            match fate {
                Fate::Drop => inner.stats.dropped += 1,
                Fate::Duplicate => inner.stats.duplicated += 1,
                Fate::Reorder => inner.stats.reordered += 1,
                Fate::Delay(_) => inner.stats.delayed += 1,
                Fate::CrashDrop => inner.stats.crash_dropped += 1,
                Fate::PartitionDrop => inner.stats.partition_dropped += 1,
                Fate::Deliver => {}
            }
            if fate == Fate::Reorder || matches!(fate, Fate::Deliver | Fate::Duplicate) {
                // Resolve the reorder hold-back under the same lock so the
                // swap is atomic w.r.t. concurrent senders on other links.
                let slot = (env.src.0 * self.nodes + env.dst.0) as usize;
                match fate {
                    Fate::Reorder => {
                        let prev = inner.holds[slot].held.replace(env);
                        if let Some(p) = prev {
                            // Two reorders in a row: the first held message
                            // is released by the second taking its place.
                            drop(inner);
                            self.enqueue(p);
                        }
                        blunt_obs::static_counter!("runtime.bus.reordered").inc();
                        return;
                    }
                    _ => {
                        let held = inner.holds[slot].held.take();
                        drop(inner);
                        let dup = matches!(fate, Fate::Duplicate);
                        self.enqueue(env.clone());
                        if dup {
                            self.enqueue(env);
                        }
                        if let Some(h) = held {
                            // The held message is overtaken: deliver after.
                            self.enqueue(h);
                        }
                        blunt_obs::static_counter!("runtime.bus.delivered").inc();
                        return;
                    }
                }
            }
            fate
        };
        match fate {
            Fate::Drop | Fate::CrashDrop | Fate::PartitionDrop => {
                blunt_obs::static_counter!("runtime.bus.lost").inc();
            }
            Fate::Delay(ms) => {
                blunt_obs::static_counter!("runtime.bus.delayed").inc();
                let due = Instant::now() + Duration::from_millis(u64::from(ms));
                let guard = self.delayer.lock().unwrap();
                if let Some(tx) = guard.as_ref() {
                    let _ = tx.send(DelayedMsg { due, env });
                }
            }
            _ => unreachable!("handled under the lock"),
        }
    }

    /// Broadcasts `msg` from `src` to every pid in `dsts`.
    pub fn broadcast(&self, src: Pid, dsts: impl Iterator<Item = Pid>, msg: &AbdMsg, exempt: bool) {
        for dst in dsts {
            self.send(Envelope {
                src,
                dst,
                msg: msg.clone(),
                exempt,
            });
        }
    }

    /// Releases every reorder hold-back (end of run: nothing will overtake
    /// them anymore) and flushes the delayer.
    pub fn flush(&self) {
        let held: Vec<Envelope> = {
            let mut inner = self.inner.lock().unwrap();
            inner
                .holds
                .iter_mut()
                .filter_map(|h| h.held.take())
                .collect()
        };
        for env in held {
            self.enqueue(env);
        }
        // Dropping the delayer sender makes the thread flush and exit.
        *self.delayer.lock().unwrap() = None;
        if let Some(h) = self.delayer_handle.lock().unwrap().take() {
            let _ = h.join();
        }
    }

    /// The deterministic fault counters so far.
    #[must_use]
    pub fn stats(&self) -> BusStats {
        self.inner.lock().unwrap().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_core::ids::ObjId;

    fn q(sn: u32) -> AbdMsg {
        AbdMsg::Query { obj: ObjId(0), sn }
    }

    fn env(src: u32, dst: u32, sn: u32, exempt: bool) -> Envelope {
        Envelope {
            src: Pid(src),
            dst: Pid(dst),
            msg: q(sn),
            exempt,
        }
    }

    fn drain(rx: &Receiver<Envelope>) -> Vec<u32> {
        let mut out = Vec::new();
        while let Ok(e) = rx.recv_timeout(Duration::from_millis(200)) {
            out.push(e.msg.sn());
            if out.len() > 64 {
                break;
            }
        }
        out
    }

    #[test]
    fn faultless_bus_preserves_per_link_fifo() {
        let (bus, rxs) = Bus::new(0, FaultConfig::none(), 1, 3);
        for sn in 0..10 {
            bus.send(env(2, 0, sn, false));
        }
        bus.flush();
        drop(bus);
        assert_eq!(drain(&rxs[0]), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn exempt_messages_always_arrive_even_under_full_drop() {
        let mut cfg = FaultConfig::none();
        cfg.drop_per_mille = 1000;
        let (bus, rxs) = Bus::new(0, cfg, 1, 3);
        for sn in 0..5 {
            bus.send(env(2, 0, sn, false));
        }
        for sn in 100..103 {
            bus.send(env(2, 0, sn, true));
        }
        bus.flush();
        drop(bus);
        assert_eq!(drain(&rxs[0]), vec![100, 101, 102]);
    }

    #[test]
    fn duplicate_fate_delivers_twice() {
        let mut cfg = FaultConfig::none();
        cfg.duplicate_per_mille = 1000;
        let (bus, rxs) = Bus::new(0, cfg, 1, 2);
        bus.send(env(1, 0, 7, false));
        bus.flush();
        drop(bus);
        assert_eq!(drain(&rxs[0]), vec![7, 7]);
    }

    #[test]
    fn reorder_fate_swaps_with_successor_and_flush_releases_stragglers() {
        let mut cfg = FaultConfig::none();
        cfg.reorder_per_mille = 1000;
        let (bus, rxs) = Bus::new(0, cfg, 1, 2);
        // Every message is held, then released when the next one takes its
        // slot: 0 held; 1 arrives → 0 out, 1 held; ... flush releases 4.
        for sn in 0..5 {
            bus.send(env(1, 0, sn, false));
        }
        bus.flush();
        drop(bus);
        assert_eq!(drain(&rxs[0]), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn delayed_messages_eventually_arrive() {
        let mut cfg = FaultConfig::none();
        cfg.delay_per_mille = 1000;
        cfg.max_delay_ms = 2;
        let (bus, rxs) = Bus::new(0, cfg, 1, 2);
        for sn in 0..8 {
            bus.send(env(1, 0, sn, false));
        }
        bus.flush();
        drop(bus);
        let mut got = drain(&rxs[0]);
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn stats_are_reproducible_for_a_seed() {
        let run = || {
            let (bus, _rxs) = Bus::new(42, FaultConfig::chaos(), 3, 6);
            for sn in 0..400 {
                for dst in 0..3 {
                    bus.send(env(4, dst, sn, false));
                }
                bus.send(env(0, 4, sn, false));
            }
            bus.flush();
            bus.stats()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.offered, 1600);
        assert!(a.dropped > 0 && a.delayed > 0 && a.crash_dropped > 0);
    }
}
