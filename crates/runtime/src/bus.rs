//! The in-process message bus: per-node mpsc queues plus the fault
//! injector.
//!
//! Every node (server or client thread) owns one `mpsc::Receiver<Envelope>`;
//! the bus holds the matching senders. A send first consults the shared
//! fault-decision core ([`blunt_net::Injector`] — the same one the socket
//! transports use, so fault counters are a pure function of the seed
//! regardless of backend), then realizes the fate:
//!
//! - `Drop`/`CrashDrop`/`PartitionDrop` — the envelope vanishes;
//! - `Duplicate` — enqueued twice back to back;
//! - `Reorder` — held in the link until the next message on the same link
//!   overtakes it (flushed by [`Bus::flush`] if none ever comes);
//! - `Delay(ms)` — handed to a dedicated delayer thread that sleeps until
//!   the deadline and then enqueues it.
//!
//! **Crash events.** When constructed with `signal_crashes`, a crash
//! blackout window additionally raises an *amnesia signal* at its **exit**:
//! the first non-`CrashDrop` first-transmission on a link that just saw a
//! `CrashDrop` enqueues an exempt [`Payload::Crash`] control envelope to
//! the crashed server (at most once per `(server, window)` pair), telling
//! it to erase volatile state and run recovery. Signaling at window exit —
//! not entry — matters twice over: recovery's peer catch-up runs when the
//! server is reachable again (a reboot after the outage, not during it),
//! and the post-crash state is actually observable by clients instead of
//! being shadowed by the blackout itself.
//!
//! The set of signaled `(server, window)` pairs is deterministic for a
//! seed: a pair fires iff some link's fixed first-transmission count
//! reaches past the end of that window, which is a pure function of the
//! per-link schedules — consecutive windows of one server are always
//! separated by at least one non-window index (`validate` guarantees
//! `crash_len < crash_period`), so a link that keeps sending always
//! resolves the pending window before entering the next. Hence
//! `BusStats::crash_events` is replayable exactly.
//!
//! `std::sync::mpsc` channels are per-sender FIFO and internally
//! linearizable, which is what makes the per-link message indexing of
//! [`blunt_net::fault::FaultPlan`] well defined.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use blunt_abd::msg::AbdMsg;
use blunt_core::ids::Pid;
use blunt_net::injector::Injector;
use blunt_net::{Fate, FaultConfig, FaultConfigError, Transport};
use blunt_obs::{FlightKind, FlightRecorder};

use crate::coverage::Coverage;

pub use blunt_net::wire::{Envelope, Payload, SpanCtx};

/// Deterministic fault counters accumulated by a run; equal across runs
/// with the same seed and configuration. (The transport-agnostic name is
/// [`blunt_net::TransportStats`]; this alias keeps the original in-process
/// spelling.)
pub type BusStats = blunt_net::TransportStats;

struct DelayedMsg {
    due: Instant,
    env: Envelope,
}

/// Per-link mutable state: the fate stream lives in the shared injector;
/// this holds the reorder hold-back slot.
struct LinkHold {
    held: Option<Envelope>,
}

struct BusInner {
    injector: Injector,
    holds: Vec<LinkHold>,
}

/// The bus proper. Cloneable handles are not needed — threads share it via
/// `Arc<Bus>`.
pub struct Bus {
    nodes: u32,
    flight: Arc<FlightRecorder>,
    mailboxes: Vec<Sender<Envelope>>,
    inner: Mutex<BusInner>,
    delayer: Mutex<Option<Sender<DelayedMsg>>>,
    delayer_handle: Mutex<Option<JoinHandle<()>>>,
}

impl Bus {
    /// Creates a bus for `nodes` processes, returning it together with one
    /// receiver per node (index = pid). With `signal_crashes`, crash
    /// blackout windows additionally raise the amnesia signal (see the
    /// module docs); without it, crashes stay pure message blackouts.
    /// Every send and fault decision is recorded into `flight` on the
    /// sending thread's ring.
    ///
    /// # Errors
    ///
    /// Returns the [`FaultConfig::validate`] error for unusable
    /// configurations (overlapping crash stagger, zero periods,
    /// oversubscribed rates).
    pub fn new(
        seed: u64,
        cfg: FaultConfig,
        servers: u32,
        nodes: u32,
        signal_crashes: bool,
        flight: Arc<FlightRecorder>,
    ) -> Result<(Bus, Vec<Receiver<Envelope>>), FaultConfigError> {
        let injector = Injector::new(seed, cfg, servers, nodes, signal_crashes)?;
        let mut senders = Vec::with_capacity(nodes as usize);
        let mut receivers = Vec::with_capacity(nodes as usize);
        for _ in 0..nodes {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let bus = Bus {
            nodes,
            flight,
            mailboxes: senders,
            inner: Mutex::new(BusInner {
                injector,
                holds: (0..nodes * nodes)
                    .map(|_| LinkHold { held: None })
                    .collect(),
            }),
            delayer: Mutex::new(None),
            delayer_handle: Mutex::new(None),
        };
        bus.spawn_delayer();
        Ok((bus, receivers))
    }

    /// The delayer thread: a min-deadline buffer fed by `Fate::Delay`
    /// messages, drained on deadline. Dropping the sender shuts it down
    /// (remaining messages are flushed immediately).
    fn spawn_delayer(&self) {
        let (tx, rx) = mpsc::channel::<DelayedMsg>();
        let mailboxes = self.mailboxes.clone();
        let handle = std::thread::spawn(move || {
            let mut pending: Vec<DelayedMsg> = Vec::new();
            loop {
                let timeout = pending
                    .iter()
                    .map(|d| d.due.saturating_duration_since(Instant::now()))
                    .min()
                    .unwrap_or(Duration::from_millis(50));
                match rx.recv_timeout(timeout) {
                    Ok(d) => pending.push(d),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        for d in pending.drain(..) {
                            let _ = mailboxes[d.env.dst.index()].send(d.env);
                        }
                        return;
                    }
                }
                let now = Instant::now();
                let mut i = 0;
                while i < pending.len() {
                    if pending[i].due <= now {
                        let d = pending.swap_remove(i);
                        let _ = mailboxes[d.env.dst.index()].send(d.env);
                    } else {
                        i += 1;
                    }
                }
            }
        });
        *self.delayer.lock().unwrap() = Some(tx);
        *self.delayer_handle.lock().unwrap() = Some(handle);
    }

    fn enqueue(&self, env: Envelope) {
        // A closed mailbox means the receiver already shut down; late
        // messages to it are irrelevant.
        let _ = self.mailboxes[env.dst.index()].send(env);
    }

    /// Sends `env`, applying the fault schedule to non-exempt envelopes.
    pub fn send(&self, env: Envelope) {
        let (src, dst, label) = (env.src.0, env.dst.0, env.msg.flight_label());
        let ring = self.flight.thread_ring();
        ring.record(FlightKind::BusSend, src, u64::from(dst), label);
        if env.exempt {
            self.enqueue(env);
            return;
        }
        /// What must happen once the lock is released.
        enum Outcome {
            Lost,
            Deliver {
                env: Envelope,
                dup: bool,
                /// A previously reorder-held message now overtaken.
                released: Option<Envelope>,
            },
            Hold {
                /// Displaced by the newly held message (two reorders in a
                /// row: the first is released by the second taking its
                /// place).
                released: Option<Envelope>,
            },
            Delay {
                env: Envelope,
                ms: u16,
            },
        }
        let (signal, fate, outcome) = {
            let mut inner = self.inner.lock().unwrap();
            // The shared fault-decision core: fate, stats, coverage, and
            // crash-window bookkeeping, all under this one lock.
            let (fate, signal) = inner.injector.decide(env.src, env.dst);
            let slot = (env.src.0 * self.nodes + env.dst.0) as usize;
            let outcome = match fate {
                Fate::Drop | Fate::CrashDrop { .. } | Fate::PartitionDrop { .. } => Outcome::Lost,
                Fate::Reorder => Outcome::Hold {
                    released: inner.holds[slot].held.replace(env),
                },
                Fate::Deliver | Fate::Duplicate => Outcome::Deliver {
                    env,
                    dup: fate == Fate::Duplicate,
                    released: inner.holds[slot].held.take(),
                },
                Fate::Delay(ms) => Outcome::Delay { env, ms },
            };
            (signal, fate, outcome)
        };
        // The fault decision, on the sender's ring (outside the lock; the
        // event words were captured before `env` moved into the outcome).
        match fate {
            Fate::Deliver => {}
            Fate::Drop => ring.record(FlightKind::FaultDrop, src, u64::from(dst), label),
            Fate::Duplicate => ring.record(FlightKind::FaultDuplicate, src, u64::from(dst), label),
            Fate::Reorder => ring.record(FlightKind::FaultReorder, src, u64::from(dst), label),
            Fate::Delay(ms) => {
                ring.record(FlightKind::FaultDelay, src, u64::from(dst), u64::from(ms));
            }
            Fate::CrashDrop { window } => {
                ring.record(FlightKind::FaultCrashDrop, src, u64::from(dst), window);
            }
            Fate::PartitionDrop { window } => {
                ring.record(FlightKind::FaultPartitionDrop, src, u64::from(dst), window);
            }
        }
        if let Some((dst, window)) = signal {
            // Before the triggering message: the server must crash and
            // recover before serving any post-window traffic.
            self.enqueue(Envelope {
                src: dst,
                dst,
                msg: Payload::Crash { window },
                exempt: true,
                reply_to: 0,
                span: SpanCtx::NONE,
            });
        }
        match outcome {
            Outcome::Lost => {
                blunt_obs::static_counter!("runtime.bus.lost").inc();
            }
            Outcome::Hold { released } => {
                if let Some(p) = released {
                    self.enqueue(p);
                }
                blunt_obs::static_counter!("runtime.bus.reordered").inc();
            }
            Outcome::Deliver { env, dup, released } => {
                self.enqueue(env.clone());
                if dup {
                    self.enqueue(env);
                }
                if let Some(h) = released {
                    // The held message is overtaken: deliver after.
                    self.enqueue(h);
                }
                blunt_obs::static_counter!("runtime.bus.delivered").inc();
            }
            Outcome::Delay { env, ms } => {
                blunt_obs::static_counter!("runtime.bus.delayed").inc();
                let due = Instant::now() + Duration::from_millis(u64::from(ms));
                let guard = self.delayer.lock().unwrap();
                if let Some(tx) = guard.as_ref() {
                    let _ = tx.send(DelayedMsg { due, env });
                }
            }
        }
    }

    /// Broadcasts the ABD message `msg` from `src` to every pid in `dsts`.
    pub fn broadcast(&self, src: Pid, dsts: impl Iterator<Item = Pid>, msg: &AbdMsg, exempt: bool) {
        for dst in dsts {
            self.send(Envelope::abd(src, dst, msg.clone(), exempt));
        }
    }

    /// Releases every reorder hold-back (end of run: nothing will overtake
    /// them anymore) and flushes the delayer.
    pub fn flush(&self) {
        let held: Vec<Envelope> = {
            let mut inner = self.inner.lock().unwrap();
            inner
                .holds
                .iter_mut()
                .filter_map(|h| h.held.take())
                .collect()
        };
        for env in held {
            self.enqueue(env);
        }
        // Dropping the delayer sender makes the thread flush and exit.
        *self.delayer.lock().unwrap() = None;
        if let Some(h) = self.delayer_handle.lock().unwrap().take() {
            let _ = h.join();
        }
    }

    /// The deterministic fault counters so far.
    #[must_use]
    pub fn stats(&self) -> BusStats {
        self.inner.lock().unwrap().injector.stats()
    }

    /// The fault-schedule coverage so far: per-link fate tallies (links
    /// with traffic only) plus the configured window shape. Deterministic
    /// for a seed, like [`Bus::stats`].
    #[must_use]
    pub fn coverage(&self) -> Coverage {
        self.inner.lock().unwrap().injector.coverage()
    }
}

impl Transport for Bus {
    fn send(&self, env: Envelope) {
        Bus::send(self, env);
    }

    fn flush(&self) {
        Bus::flush(self);
    }

    fn stats(&self) -> BusStats {
        Bus::stats(self)
    }

    fn coverage(&self) -> Coverage {
        Bus::coverage(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_core::ids::ObjId;

    fn q(sn: u32) -> AbdMsg {
        AbdMsg::Query { obj: ObjId(0), sn }
    }

    fn env(src: u32, dst: u32, sn: u32, exempt: bool) -> Envelope {
        Envelope::abd(Pid(src), Pid(dst), q(sn), exempt)
    }

    fn drain(rx: &Receiver<Envelope>) -> Vec<u32> {
        let mut out = Vec::new();
        while let Ok(e) = rx.recv_timeout(Duration::from_millis(200)) {
            match e.msg {
                Payload::Abd(m) => out.push(m.sn()),
                // Control traffic is surfaced as a sentinel so tests can
                // assert on its absence.
                Payload::Crash { .. } => out.push(u32::MAX),
                Payload::StateQuery { .. } | Payload::StateReply { .. } => {}
            }
            if out.len() > 64 {
                break;
            }
        }
        out
    }

    fn flight() -> Arc<FlightRecorder> {
        Arc::new(FlightRecorder::new(64))
    }

    fn bus(
        seed: u64,
        cfg: FaultConfig,
        servers: u32,
        nodes: u32,
    ) -> (Bus, Vec<Receiver<Envelope>>) {
        Bus::new(seed, cfg, servers, nodes, false, flight()).unwrap()
    }

    #[test]
    fn faultless_bus_preserves_per_link_fifo() {
        let (bus, rxs) = bus(0, FaultConfig::none(), 1, 3);
        for sn in 0..10 {
            bus.send(env(2, 0, sn, false));
        }
        bus.flush();
        drop(bus);
        assert_eq!(drain(&rxs[0]), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn exempt_messages_always_arrive_even_under_full_drop() {
        let mut cfg = FaultConfig::none();
        cfg.drop_per_mille = 1000;
        let (bus, rxs) = bus(0, cfg, 1, 3);
        for sn in 0..5 {
            bus.send(env(2, 0, sn, false));
        }
        for sn in 100..103 {
            bus.send(env(2, 0, sn, true));
        }
        bus.flush();
        drop(bus);
        assert_eq!(drain(&rxs[0]), vec![100, 101, 102]);
    }

    #[test]
    fn duplicate_fate_delivers_twice() {
        let mut cfg = FaultConfig::none();
        cfg.duplicate_per_mille = 1000;
        let (bus, rxs) = bus(0, cfg, 1, 2);
        bus.send(env(1, 0, 7, false));
        bus.flush();
        drop(bus);
        assert_eq!(drain(&rxs[0]), vec![7, 7]);
    }

    #[test]
    fn reorder_fate_swaps_with_successor_and_flush_releases_stragglers() {
        let mut cfg = FaultConfig::none();
        cfg.reorder_per_mille = 1000;
        let (bus, rxs) = bus(0, cfg, 1, 2);
        // Every message is held, then released when the next one takes its
        // slot: 0 held; 1 arrives → 0 out, 1 held; ... flush releases 4.
        for sn in 0..5 {
            bus.send(env(1, 0, sn, false));
        }
        bus.flush();
        drop(bus);
        assert_eq!(drain(&rxs[0]), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn delayed_messages_eventually_arrive() {
        let mut cfg = FaultConfig::none();
        cfg.delay_per_mille = 1000;
        cfg.max_delay_ms = 2;
        let (bus, rxs) = bus(0, cfg, 1, 2);
        for sn in 0..8 {
            bus.send(env(1, 0, sn, false));
        }
        bus.flush();
        drop(bus);
        let mut got = drain(&rxs[0]);
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn stats_are_reproducible_for_a_seed() {
        let run = |signal| {
            let (bus, _rxs) = Bus::new(42, FaultConfig::chaos(), 3, 6, signal, flight()).unwrap();
            for sn in 0..400 {
                for dst in 0..3 {
                    bus.send(env(4, dst, sn, false));
                }
                bus.send(env(0, 4, sn, false));
            }
            bus.flush();
            bus.stats()
        };
        let a = run(false);
        let b = run(false);
        assert_eq!(a, b);
        assert_eq!(a.offered, 1600);
        assert!(a.dropped > 0 && a.delayed > 0 && a.crash_dropped > 0);
        assert_eq!(a.crash_events, 0, "no signaling unless asked");
        // Signaling changes crash_events (deterministically) and nothing
        // else about the schedule-determined counters.
        let c = run(true);
        let d = run(true);
        assert_eq!(c, d);
        assert!(c.crash_events > 0);
        assert_eq!(
            BusStats {
                crash_events: 0,
                ..c
            },
            a,
            "the amnesia signal must not perturb the fault schedule"
        );
    }

    #[test]
    fn crash_signal_fires_once_per_window_at_its_exit() {
        // One server, crash window [0, 4) of every 10-index period on each
        // incoming link. Two links each send indices 0..6: 0–3 are inside
        // the window and dropped; index 4 is the first past it. The server
        // must get exactly ONE Crash{window: 0} signal — raised at the
        // window's exit, before any post-window delivery — not one per
        // dropped message or per link.
        let mut cfg = FaultConfig::none();
        cfg.crash_len = 4;
        cfg.crash_period = 10;
        let (bus, rxs) = Bus::new(0, cfg, 1, 3, true, flight()).unwrap();
        for sn in 0..6 {
            bus.send(env(1, 0, sn, false));
            bus.send(env(2, 0, sn, false));
        }
        bus.flush();
        drop(bus);
        let mut seen = Vec::new();
        while let Ok(e) = rxs[0].recv_timeout(Duration::from_millis(200)) {
            match e.msg {
                Payload::Crash { window } => {
                    assert!(e.exempt, "the amnesia signal must be exempt");
                    seen.push(u32::MAX);
                    assert_eq!(window, 0);
                }
                Payload::Abd(m) => seen.push(m.sn()),
                _ => {}
            }
        }
        assert_eq!(
            seen,
            vec![u32::MAX, 4, 4, 5, 5],
            "one signal, before the first post-window deliveries"
        );
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let mut cfg = FaultConfig::none();
        cfg.crash_len = 50;
        cfg.crash_period = 100;
        let err = Bus::new(0, cfg, 3, 5, false, flight())
            .err()
            .expect("must be rejected");
        assert!(matches!(err, FaultConfigError::CrashStaggerOverflow { .. }));
    }
}
