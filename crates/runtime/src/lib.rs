//! The chaos runtime: the repo's protocol step machines on real OS threads,
//! under seeded fault injection, with an online linearizability check.
//!
//! Everything else in this workspace runs inside the single-threaded
//! deterministic simulator (`blunt_sim`), where the adversary is an explicit
//! player. This crate turns the adversary into *measured chaos*: the same
//! ABD client/server machines (`blunt_abd`) and shared-memory register
//! constructions (`blunt_registers`) execute on threads connected by a
//! swappable [`blunt_net::Transport`] — the in-process message [`bus`] or
//! the socket tier in `blunt_net` — whose [`fault`] injector — drop, delay,
//! duplicate, reorder, partition, crash — follows a schedule that is a pure
//! function of the run seed, so any run is replayable. A [`workload`] driver
//! spawns client threads and records per-op latency into `blunt_obs`
//! histograms. Crashes are more than blackouts: under
//! [`recovery::RecoveryMode::Amnesia`] a server loses its volatile state
//! and recovers from a per-server write-ahead log ([`storage`]) plus peer
//! catch-up before serving again. The [`monitor`] consumes the concurrent
//! history incrementally
//! through the Wing–Gong checker in `blunt_lincheck`, rendering any
//! violation window through `blunt_trace`'s space-time diagram. [`shm`] does
//! the same for the mutex-shared-memory register constructions. [`netrun`]
//! is the multi-process entry: one `chaos serve` process per server plus a
//! socket-connected client driver, same protocol loops, same seeded fault
//! schedule pushed down to the socket layer.
//!
//! The determinism/replay contract, the fault semantics, and the soundness
//! argument for the monitor live in `docs/RUNTIME.md`; the transport tier
//! in `docs/TRANSPORT.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod monitor;
pub mod netrun;
pub mod recovery;
pub mod shm;
pub mod storage;
pub mod workload;

// The fault schedule and coverage report moved to the transport tier
// (`blunt-net`) so socket backends share them; these module re-exports keep
// the original `blunt_runtime::fault` / `blunt_runtime::coverage` paths.
pub use blunt_net::{coverage, fault};

pub use blunt_net::{Addr, RemoteServer, ServerTelemetry};
pub use bus::{Bus, BusStats, Envelope, Payload};
pub use coverage::{Coverage, LinkCoverage};
pub use fault::{Fate, FaultConfig, FaultConfigError, FaultPlan};
pub use monitor::{MonitorReport, OnlineMonitor, Violation};
pub use netrun::{run_chaos_net, run_net_server, NetChaosTopology, NetServeConfig, NetServeReport};
pub use recovery::{RecoveryMode, RecoverySink, RecoveryStats};
pub use shm::{run_shm_chaos, ShmChaosConfig, ShmReport};
pub use storage::{MultiWal, Wal, WalRecord};
pub use workload::{
    run_chaos, server_loop, ChaosReport, MonitorOverhead, RuntimeConfig, WATCH_SCHEMA_VERSION,
};
