//! The chaos runtime: the repo's protocol step machines on real OS threads,
//! under seeded fault injection, with an online linearizability check.
//!
//! Everything else in this workspace runs inside the single-threaded
//! deterministic simulator (`blunt_sim`), where the adversary is an explicit
//! player. This crate turns the adversary into *measured chaos*: the same
//! ABD client/server machines (`blunt_abd`) and shared-memory register
//! constructions (`blunt_registers`) execute on threads connected by an
//! in-process message [`bus`] whose [`fault`] injector — drop, delay,
//! duplicate, reorder, partition, crash — follows a schedule that is a pure
//! function of the run seed, so any run is replayable. A [`workload`] driver
//! spawns client threads and records per-op latency into `blunt_obs`
//! histograms. Crashes are more than blackouts: under
//! [`recovery::RecoveryMode::Amnesia`] a server loses its volatile state
//! and recovers from a per-server write-ahead log ([`storage`]) plus peer
//! catch-up before serving again. The [`monitor`] consumes the concurrent
//! history incrementally
//! through the Wing–Gong checker in `blunt_lincheck`, rendering any
//! violation window through `blunt_trace`'s space-time diagram. [`shm`] does
//! the same for the mutex-shared-memory register constructions.
//!
//! The determinism/replay contract, the fault semantics, and the soundness
//! argument for the monitor live in `docs/RUNTIME.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod coverage;
pub mod fault;
pub mod monitor;
pub mod recovery;
pub mod shm;
pub mod storage;
pub mod workload;

pub use bus::{Bus, BusStats, Envelope, Payload};
pub use coverage::{Coverage, LinkCoverage};
pub use fault::{Fate, FaultConfig, FaultConfigError, FaultPlan};
pub use monitor::{MonitorReport, OnlineMonitor, Violation};
pub use recovery::{RecoveryMode, RecoveryStats};
pub use shm::{run_shm_chaos, ShmChaosConfig, ShmReport};
pub use storage::{Wal, WalRecord};
pub use workload::{run_chaos, ChaosReport, MonitorOverhead, RuntimeConfig};
