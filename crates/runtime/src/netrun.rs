//! Multi-process chaos runs over the socket transport.
//!
//! The in-process [`crate::workload::run_chaos`] puts every node on a
//! thread sharing one [`crate::bus::Bus`]. This module splits the same run
//! across OS processes: each server runs [`run_net_server`] (the `chaos
//! serve` subcommand) — the *same* `server_loop` step
//! machine, WAL, and amnesia recovery, but its mailbox is fed by a socket
//! listener and its replies leave through [`blunt_net::NetServer`] — while
//! the driver process runs [`run_chaos_net`]: the same client loops,
//! online monitor, flight recorder, and watchdog, sending through
//! [`blunt_net::NetClient`].
//!
//! The seeded fault schedule is split by link direction: the driver's
//! injector realizes client→server fates at its sockets, each server's
//! injector realizes server→client fates at its own, and both consume the
//! same per-link SplitMix64 streams they would in process — so a seed
//! exercises the same fault pattern whether the run is threaded or
//! distributed. What is *not* preserved across the boundary is realization
//! detail (a socket duplicate is two frames absorbed by dedup, not two
//! mailbox deliveries); `docs/TRANSPORT.md` has the full comparison.
//!
//! Recovery counters live in the server processes; they come back to the
//! driver in each server's `Goodbye` frame at shutdown and are aggregated
//! into the report's [`RecoveryStats`]. WAL/state-query detail that never
//! crosses the wire stays zero in the aggregate.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use blunt_core::history::Action;
use blunt_core::ids::Pid;
use blunt_net::{
    Addr, NetClient, NetClientCfg, NetServer, NetServerCfg, ServerGoodbye, ServerTelemetry,
    Transport,
};
use blunt_obs::flight::{FlightDump, SPAN_NONE};
use blunt_obs::{FlightKind, FlightRecorder, Histogram, QuantileSketch};

use crate::fault::{FaultConfig, FaultConfigError};
use crate::recovery::{RecoveryMode, RecoverySink, RecoveryStats};
use crate::workload::{
    client_loop, server_loop, spawn_monitor, watch_loop, ChaosReport, MonitorOverhead,
    RuntimeConfig, Telemetry,
};

/// Configuration for one server process (`chaos serve`).
#[derive(Clone, Debug)]
pub struct NetServeConfig {
    /// Where this server listens.
    pub listen: Addr,
    /// This server's pid (`0..servers`).
    pub server_id: u32,
    /// Total number of servers in the run.
    pub servers: u32,
    /// Number of client threads the driver runs.
    pub clients: u32,
    /// Every server's listen address, index = pid (for peer catch-up).
    pub peers: Vec<Addr>,
    /// The run seed, shared with the driver.
    pub seed: u64,
    /// The fault mix, shared with the driver.
    pub faults: FaultConfig,
    /// What a crash means for this server's state.
    pub recovery: RecoveryMode,
    /// Replicas per shard for sharded (keyed-store) runs: server pids are
    /// shard-major, so this server's replica group is the `shard_size`
    /// consecutive pids containing `server_id`, and recovery catch-up asks
    /// only those peers. `None` means unsharded — the group is all servers.
    pub shard_size: Option<u32>,
    /// Directory for this process's own flight dump
    /// (`serve-<id>.flight.jsonl`), written when the serve loop exits —
    /// whether by the driver's `Shutdown` or by losing the driver
    /// connection mid-window. `None` skips the local file; the bounded
    /// dump still goes back piggybacked on `Goodbye`.
    pub dump_dir: Option<PathBuf>,
}

/// How often a serve process ships a cumulative [`ServerTelemetry`]
/// snapshot to its driver.
const TELEMETRY_TICK: Duration = Duration::from_millis(500);

/// How many trailing flight events a serve process piggybacks on its
/// `Goodbye` frame (bounded so a goodbye stays one modest frame).
const GOODBYE_DUMP_EVENTS: usize = 1024;

/// Folds successive flight-recorder snapshots into cumulative telemetry:
/// per-ring high-water seq marks make each event count once even though
/// snapshots overlap, and `WalFlush` events feed the fsync-latency sketch
/// (their `b` word is the fsync duration in µs).
struct FlightAggregator {
    /// Next unseen seq per ring (rings are bounded: eviction may skip
    /// seqs forward, which the high-water mark absorbs).
    seen: HashMap<String, u64>,
    fsync: QuantileSketch,
    fsync_count: u64,
    span_events: u64,
    events: u64,
}

impl FlightAggregator {
    fn new() -> FlightAggregator {
        FlightAggregator {
            seen: HashMap::new(),
            fsync: QuantileSketch::new(),
            fsync_count: 0,
            span_events: 0,
            events: 0,
        }
    }

    fn absorb(&mut self, dump: &FlightDump) {
        for e in &dump.events {
            let next = self.seen.entry(e.ring.clone()).or_insert(0);
            if e.seq < *next {
                continue;
            }
            *next = e.seq + 1;
            self.events += 1;
            if e.span != SPAN_NONE {
                self.span_events += 1;
            }
            if e.kind == FlightKind::WalFlush {
                self.fsync_count += 1;
                self.fsync.record(e.b);
            }
        }
    }

    fn snapshot(&self, sink: &RecoverySink) -> ServerTelemetry {
        let r = sink.snapshot();
        ServerTelemetry {
            recoveries: r.recoveries,
            crashes: r.crashes,
            fsync_count: self.fsync_count,
            fsync_p99_us: self.fsync.quantile(0.99),
            span_events: self.span_events,
            events: self.events,
        }
    }
}

/// What one server process did, reported after its driver says `Shutdown`.
#[derive(Debug)]
pub struct NetServeReport {
    /// Deterministic fault counters for this server's outbound links.
    pub stats: crate::bus::BusStats,
    /// Fault-pattern coverage of those links.
    pub coverage: crate::coverage::Coverage,
    /// This server's crash-recovery counters (also sent to the driver in
    /// the `Goodbye` frame).
    pub recovery: RecoveryStats,
}

/// Runs one server process to completion: bind, serve the ABD step machine
/// until the driver broadcasts `Shutdown`, then report.
///
/// # Errors
///
/// I/O errors from binding the listen address; fault-config validation
/// errors surface as [`io::ErrorKind::InvalidInput`] (the driver validates
/// the same config and reports the detailed error).
pub fn run_net_server(cfg: &NetServeConfig) -> io::Result<NetServeReport> {
    assert!(
        cfg.server_id < cfg.servers,
        "server id must be one of 0..servers"
    );
    assert_eq!(
        cfg.peers.len(),
        cfg.servers as usize,
        "one peer address per server"
    );
    let recorder = Arc::new(FlightRecorder::new(4096));
    let ncfg = NetServerCfg {
        listen: cfg.listen.clone(),
        me: Pid(cfg.server_id),
        servers: cfg.servers,
        clients: cfg.clients,
        peers: cfg.peers.clone(),
        seed: cfg.seed,
        faults: cfg.faults,
    };
    let (srv, rx) = NetServer::bind(&ncfg, Arc::clone(&recorder))?;
    let stop = srv.stop_flag();
    let sink = Arc::new(RecoverySink::default());

    // The telemetry thread: every tick, fold the recorder's current window
    // into the cumulative aggregate and ship a snapshot to the driver so
    // `--watch` sees live server-side numbers. Read-only observation — it
    // never touches the serve loop or the fault schedule.
    let (tele_stop_tx, tele_stop_rx) = mpsc::channel::<()>();
    let telemetry = {
        let srv = Arc::clone(&srv);
        let recorder = Arc::clone(&recorder);
        let sink = Arc::clone(&sink);
        thread::spawn(move || {
            let mut agg = FlightAggregator::new();
            loop {
                match tele_stop_rx.recv_timeout(TELEMETRY_TICK) {
                    Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => return agg,
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                }
                agg.absorb(&recorder.dump());
                srv.telemetry(agg.snapshot(&sink));
            }
        })
    };

    let shard_size = match cfg.shard_size {
        Some(s) => {
            assert!(
                s >= 1 && s <= cfg.servers && cfg.servers.is_multiple_of(s),
                "shard size must divide the server count"
            );
            s
        }
        None => cfg.servers,
    };
    let shard_base = cfg.server_id / shard_size * shard_size;
    let group: Vec<Pid> = (shard_base..shard_base + shard_size).map(Pid).collect();
    server_loop(
        Pid(cfg.server_id),
        group,
        cfg.recovery,
        rx,
        srv.as_ref(),
        &stop,
        &sink,
        &recorder,
    );
    srv.flush();

    let _ = tele_stop_tx.send(());
    let mut agg = telemetry.join().expect("telemetry thread");

    // Drain the flight rings NOW, whatever ended the serve loop — the
    // driver's `Shutdown` or a lost driver connection mid-window. The full
    // dump goes to the local file (when configured), a bounded tail rides
    // the `Goodbye`, and the final telemetry numbers cover every event.
    let dump = recorder.dump();
    agg.absorb(&dump);
    if let Some(dir) = &cfg.dump_dir {
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(
            dir.join(format!("serve-{}.flight.jsonl", cfg.server_id)),
            dump.to_jsonl(),
        );
    }
    // Final snapshot before the goodbye on the same FIFO connection: the
    // driver stores it before it sees the goodbye, so summary telemetry is
    // complete even though the periodic tick is best-effort.
    let final_telemetry = agg.snapshot(&sink);
    srv.telemetry(final_telemetry);
    let recovery = sink.snapshot();
    srv.goodbye(
        ServerGoodbye {
            crashes: recovery.crashes,
            recoveries: recovery.recoveries,
            wal_lost: recovery.wal_records_lost,
            wal_replayed: recovery.wal_records_replayed,
            fsync_p99_us: final_telemetry.fsync_p99_us,
        },
        dump.last_n(GOODBYE_DUMP_EVENTS).to_jsonl(),
    );
    Ok(NetServeReport {
        stats: srv.stats(),
        coverage: srv.coverage(),
        recovery,
    })
}

/// Where the driver finds its servers.
#[derive(Clone, Debug)]
pub struct NetChaosTopology {
    /// One listen address per server, index = server pid.
    pub servers: Vec<Addr>,
}

/// How long the driver waits for server `Goodbye` stats after `Shutdown`.
const GOODBYE_WAIT: Duration = Duration::from_secs(10);

/// Runs the driver side of a multi-process chaos run: the same client
/// loops, monitor, and watchdog as [`crate::workload::run_chaos`], but
/// sending to external `chaos serve` processes at `topo.servers`.
///
/// # Errors
///
/// Returns a [`FaultConfigError`] when `cfg.faults` is unusable for this
/// topology — same validation as the in-process run.
///
/// # Panics
///
/// Panics on degenerate configurations (no servers/clients/ops, burst
/// violating the monitor window) and when `topo.servers` disagrees with
/// `cfg.servers` — programmer errors.
pub fn run_chaos_net(
    cfg: &RuntimeConfig,
    topo: &NetChaosTopology,
) -> Result<ChaosReport, FaultConfigError> {
    assert!(cfg.servers >= 1 && cfg.clients >= 1 && cfg.ops_per_client >= 1);
    assert!(cfg.k >= 1, "ABD^k requires k ≥ 1");
    assert!(cfg.burst >= 1);
    assert!(
        u64::from(cfg.clients) * cfg.burst <= 64,
        "clients × burst must fit the monitor's 64-invocation window"
    );
    assert_eq!(
        topo.servers.len(),
        cfg.servers as usize,
        "one server address per configured server"
    );
    let started = Instant::now();
    let nodes = cfg.servers + cfg.clients;
    let quorum = cfg.servers / 2 + 1;
    let recorder = Arc::new(FlightRecorder::new(4096));
    let ncfg = NetClientCfg {
        seed: cfg.seed,
        faults: cfg.faults,
        servers: topo.servers.clone(),
        clients: cfg.clients,
        // The driver owns every client→server link, so crash-window exits —
        // which the schedule ties to client-side sends — are signaled from
        // here, as exempt frames ahead of the triggering frame.
        signal_crashes: cfg.recovery.is_amnesia(),
    };
    let (net, receivers) = NetClient::connect(&ncfg, Arc::clone(&recorder))?;
    let barrier = Arc::new(Barrier::new(cfg.clients as usize));
    let retransmissions = Arc::new(AtomicU64::new(0));
    // Recoveries happen in the server processes; this sink exists only so
    // the watch line has something to read (it stays zero until goodbyes).
    let recovery_sink = Arc::new(RecoverySink::default());
    let latency = Histogram::unregistered();
    let telemetry = Arc::new(Telemetry::new());

    let (mon_tx, mon_rx) = mpsc::channel::<Action>();
    let monitor = spawn_monitor(
        Arc::clone(&recorder),
        Arc::clone(&telemetry),
        nodes as usize,
        mon_rx,
    );

    let (watch_stop_tx, watch_stop_rx) = mpsc::channel::<()>();
    let stalled = Arc::new(AtomicBool::new(false));
    let watcher = if cfg.watch.is_some() || cfg.watch_out.is_some() || cfg.stall_after.is_some() {
        let telemetry = Arc::clone(&telemetry);
        let recorder = Arc::clone(&recorder);
        let sink = Arc::clone(&recovery_sink);
        let stalled = Arc::clone(&stalled);
        let cfg = cfg.clone();
        let watch_net = Arc::clone(&net);
        Some(thread::spawn(move || {
            // Live recovery counts come over the telemetry channel — the
            // driver's own sink never sees a remote server's crashes.
            let remote = || watch_net.remote_recoveries();
            watch_loop(
                &cfg,
                started,
                &telemetry,
                &recorder,
                &sink,
                &stalled,
                &watch_stop_rx,
                Some(&remote),
            );
        }))
    } else {
        None
    };

    let mut clients = Vec::new();
    for (c, rx) in receivers.into_iter().enumerate() {
        let c = u32::try_from(c).expect("client index fits u32");
        let net = Arc::clone(&net);
        let barrier = Arc::clone(&barrier);
        let retransmissions = Arc::clone(&retransmissions);
        let latency = latency.clone();
        let mon_tx = mon_tx.clone();
        let recorder = Arc::clone(&recorder);
        let telemetry = Arc::clone(&telemetry);
        let cfg = cfg.clone();
        clients.push(thread::spawn(move || {
            client_loop(
                c,
                &cfg,
                quorum,
                rx,
                net.as_ref(),
                &barrier,
                &mon_tx,
                &retransmissions,
                &latency,
                &recorder,
                &telemetry,
            );
        }));
    }
    drop(mon_tx);

    for c in clients {
        c.join().expect("client thread");
    }
    let goodbyes = net.shutdown(GOODBYE_WAIT);
    net.flush();
    let (monitor, observe_ns, lag_ops_hwm, violation_dump) =
        monitor.join().expect("monitor thread");
    drop(watch_stop_tx);
    if let Some(w) = watcher {
        w.join().expect("watch thread");
    }

    // Merge every server's goodbye-piggybacked dump into the driver's own,
    // clock-aligned by the Hello/HelloAck offset estimates and labeled
    // `s<pid>` — one cross-process space-time view of the whole run.
    let remote_servers = net.remote_snapshot();
    let mut merged = recorder.dump();
    for (sid, r) in remote_servers.iter().enumerate() {
        if let Some(d) = &r.dump {
            merged.merge_remote(&format!("s{sid}"), r.offset_us, d);
        }
    }

    let ops = u64::from(cfg.clients) * cfg.ops_per_client;
    blunt_obs::static_counter!("runtime.ops.completed").add(ops);
    Ok(ChaosReport {
        ops,
        bus: net.stats(),
        coverage: net.coverage(),
        monitor,
        monitor_overhead: MonitorOverhead {
            actions: telemetry.actions_seen(),
            observe_ns,
            lag_ops_hwm,
        },
        violation_dump,
        stalled: stalled.load(Ordering::Relaxed),
        recovery: aggregate_goodbyes(&goodbyes),
        retransmissions: retransmissions.load(Ordering::Relaxed),
        latency_us: latency.snapshot(),
        elapsed: started.elapsed(),
        remote_servers,
        merged_flight: Some(merged),
    })
}

/// Sums server `Goodbye` stats into the report's [`RecoveryStats`].
/// Counters that never cross the wire (state queries, aborted catch-ups)
/// stay zero; a server that died without a goodbye contributes nothing.
fn aggregate_goodbyes(goodbyes: &[Option<ServerGoodbye>]) -> RecoveryStats {
    let mut total = RecoveryStats::default();
    for g in goodbyes.iter().flatten() {
        total.crashes += g.crashes;
        total.recoveries += g.recoveries;
        total.wal_records_lost += g.wal_lost;
        total.wal_records_replayed += g.wal_replayed;
    }
    total
}
