//! The online linearizability monitor.
//!
//! Client threads report their operations as [`Action`]s over one shared
//! mpsc channel. mpsc enqueue order is a real-time-consistent total order
//! (the channel itself is linearizable), and clients enqueue `Call` *before*
//! the first protocol broadcast and `Return` *after* the quorum completes —
//! so the observed interval of every operation contains its true interval,
//! and any linearization of the observed history is a linearization of the
//! true one: the monitor raises no false alarms.
//!
//! Long runs are checked incrementally by splitting each object's history
//! at **cuts** — points where that object has no pending invocation. Cuts
//! respect real-time order, so any linearization of the whole history is a
//! concatenation of per-segment linearizations, and the whole is
//! linearizable iff there is a *chain of object states* through the
//! segments. Overlapping operations can leave several valid final states
//! (two concurrent writes commute), so the monitor threads the full set of
//! feasible states ([`feasible_final_states`]) rather than one witness's
//! choice — committing a single witness would falsely flag a later read
//! that observed the other order. The workload driver guarantees cuts by
//! running clients in barrier-separated bursts, which also bounds segment
//! size below the checker's 64-invocation ceiling.

use std::collections::{BTreeMap, HashMap};

use blunt_core::history::{Action, History};
use blunt_core::ids::{InvId, ObjId};
use blunt_core::spec::{RegisterSpec, SequentialSpec};
use blunt_core::value::Val;
use blunt_lincheck::feasible_final_states;
use blunt_trace::{history_space_time, DiagramOptions};

/// Hard ceiling on invocations per segment (the WGL checker's bitmask
/// width).
const SEGMENT_CAP: usize = 64;

/// A flagged violation: the offending window and its rendering.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The object whose segment failed to linearize.
    pub obj: ObjId,
    /// Index of the failing segment within that object's history.
    pub segment: u64,
    /// The non-linearizable window itself.
    pub window: History,
    /// The window rendered as a space-time diagram
    /// ([`blunt_trace::history_space_time`]).
    pub rendered: String,
}

/// What the monitor concluded, reported after the run.
#[derive(Clone, Debug, Default)]
pub struct MonitorReport {
    /// Segments checked and accepted.
    pub segments_ok: u64,
    /// Violations found (checking continues past the first).
    pub violations: Vec<Violation>,
    /// `true` if some segment exceeded `SEGMENT_CAP` without reaching a
    /// cut; the affected object's checking is disabled from that point (the
    /// driver's burst barriers make this unreachable in practice).
    pub overflowed: bool,
}

impl MonitorReport {
    /// `true` when every checked segment linearized and no window
    /// overflowed.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && !self.overflowed
    }
}

struct ObjectState {
    segment: History,
    /// Invocations in the open segment (cheap stand-in for
    /// `segment.invocations().len()` on the hot path).
    invocations: usize,
    pending: usize,
    /// The feasible object states at the last cut: each is the final state
    /// of some linearization of everything committed so far.
    committed: Vec<Val>,
    segments: u64,
    disabled: bool,
}

/// The incremental checker. Feed it actions in observation order via
/// [`OnlineMonitor::observe`]; collect the verdict with
/// [`OnlineMonitor::finish`].
pub struct OnlineMonitor {
    spec: RegisterSpec,
    lanes: usize,
    objects: BTreeMap<ObjId, ObjectState>,
    /// Which object each in-flight invocation targets, so a `Return` —
    /// which carries only its [`InvId`] — routes in O(1) instead of
    /// scanning every object's open segment. Matters for keyed-store runs,
    /// where the object count is the key count, not 1.
    pending_routes: HashMap<InvId, ObjId>,
    report: MonitorReport,
}

impl OnlineMonitor {
    /// A monitor for registers initialized to `initial`, rendering
    /// violation windows over `lanes` process lanes.
    #[must_use]
    pub fn new(initial: Val, lanes: usize) -> OnlineMonitor {
        OnlineMonitor {
            spec: RegisterSpec::new(initial.clone()),
            lanes,
            objects: BTreeMap::new(),
            pending_routes: HashMap::new(),
            report: MonitorReport::default(),
        }
    }

    /// Segments checked so far (accepted *or* flagged) — advances exactly
    /// when a cut commits, so the flight recorder can stamp `monitor_cut`
    /// events without re-deriving cut boundaries.
    #[must_use]
    pub fn segments_checked(&self) -> u64 {
        self.report.segments_ok + self.violations_found()
    }

    /// Violations flagged so far.
    #[must_use]
    pub fn violations_found(&self) -> u64 {
        self.report.violations.len() as u64
    }

    /// The violations flagged so far, windows included — readable mid-run,
    /// before [`Self::finish`].
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.report.violations
    }

    /// Feeds one observed action. Returns `false` iff the action closed a
    /// segment that failed to linearize (the violation is also recorded in
    /// the report; observation may continue).
    pub fn observe(&mut self, action: Action) -> bool {
        let obj = match &action {
            Action::Call { obj, inv, .. } => {
                // Remember the target until the return arrives: a pending
                // call is always in its object's open segment (the segment
                // can't close while it is pending), so this index is
                // exactly the set the old open-segment scan searched.
                self.pending_routes.insert(*inv, *obj);
                *obj
            }
            Action::Return { inv, .. } => {
                // Route the return to the object of its pending call.
                match self.pending_routes.remove(inv) {
                    Some(o) => o,
                    // A return whose call we never saw (pre-attach): ignore.
                    None => return true,
                }
            }
        };
        let initial = self.spec.init();
        let st = self.objects.entry(obj).or_insert_with(|| ObjectState {
            segment: History::new(),
            invocations: 0,
            pending: 0,
            committed: vec![initial],
            segments: 0,
            disabled: false,
        });
        if st.disabled {
            return true;
        }
        match &action {
            Action::Call { .. } => {
                st.pending += 1;
                st.invocations += 1;
            }
            Action::Return { .. } => st.pending = st.pending.saturating_sub(1),
        }
        st.segment.push(action);
        blunt_obs::static_counter!("runtime.monitor.actions").inc();

        if st.pending == 0 {
            return Self::close_segment(&self.spec, self.lanes, obj, st, &mut self.report);
        }
        if st.invocations >= SEGMENT_CAP {
            // No cut in sight and the checker's bitmask is full: give up on
            // this object rather than report nonsense.
            st.disabled = true;
            self.report.overflowed = true;
            blunt_obs::static_counter!("runtime.monitor.windows_overflowed").inc();
        }
        true
    }

    /// Checks and commits the current segment of `obj` (called at a cut).
    fn close_segment(
        spec: &RegisterSpec,
        lanes: usize,
        obj: ObjId,
        st: &mut ObjectState,
        report: &mut MonitorReport,
    ) -> bool {
        if st.segment.is_empty() {
            return true;
        }
        let segment = std::mem::take(&mut st.segment);
        st.invocations = 0;
        let idx = st.segments;
        st.segments += 1;
        blunt_obs::static_counter!("runtime.monitor.segments").inc();
        // The segment linearizes iff it does from at least one feasible
        // state; the union of reachable finals seeds the next segment.
        let mut finals: Vec<Val> = Vec::new();
        for from in &st.committed {
            for f in feasible_final_states(&segment, spec, from.clone()) {
                if !finals.contains(&f) {
                    finals.push(f);
                }
            }
        }
        if finals.is_empty() {
            blunt_obs::static_counter!("runtime.monitor.violations").inc();
            let rendered = history_space_time(&segment, lanes, &DiagramOptions::default());
            report.violations.push(Violation {
                obj,
                segment: idx,
                window: segment,
                rendered,
            });
            // Resynchronize: keep checking later segments from the last
            // known-good feasible states.
            false
        } else {
            finals.sort();
            st.committed = finals;
            report.segments_ok += 1;
            true
        }
    }

    /// Closes any open segments (treating end-of-run as a cut for objects
    /// with no pending invocations; pending tails are checked as-is) and
    /// returns the verdict.
    #[must_use]
    pub fn finish(mut self) -> MonitorReport {
        let objs: Vec<ObjId> = self.objects.keys().copied().collect();
        for obj in objs {
            let st = self.objects.get_mut(&obj).expect("known object");
            if !st.disabled {
                Self::close_segment(&self.spec, self.lanes, obj, st, &mut self.report);
            }
        }
        self.report
    }
}
