//! A threaded workload over the shared-memory register constructions of
//! `blunt_registers` — the Vitányi–Awerbuch MWMR register (and its
//! preamble-iterated O^k version) executed by real OS threads.
//!
//! Here the "network" is a mutex around the [`Shm`] cell array: each
//! protocol *step* (one base-register access) takes the lock, mutates, and
//! releases, so operations of different threads interleave at base-step
//! granularity and the OS scheduler plays the adversary. The same
//! [`OnlineMonitor`] checks the resulting history.
//!
//! The broken mode truncates a read's preamble to a single cell: it stops
//! scanning the other processes' single-writer cells, so it simply cannot
//! observe their writes — a deliberately unsound "fast read" the monitor
//! must flag.

use std::sync::mpsc::Sender;
use std::sync::{mpsc, Arc, Barrier, Mutex};
use std::thread;

use blunt_core::history::Action;
use blunt_core::ids::{InvId, MethodId, ObjId, Pid};
use blunt_core::value::Val;
use blunt_registers::shm::CellSpec;
use blunt_registers::twophase::IterEffect;
use blunt_registers::vitanyi_awerbuch::{make_cell, VaOp};
use blunt_registers::{IteratedOp, Shm, ShmLayout};
use blunt_sim::rng::{RandomSource, SplitMix64};

use crate::monitor::{MonitorReport, OnlineMonitor};

/// Configuration of a threaded shared-memory chaos run.
#[derive(Clone, Copy, Debug)]
pub struct ShmChaosConfig {
    /// Worker threads (= register processes).
    pub threads: u32,
    /// Operations per thread.
    pub ops_per_thread: u64,
    /// Preamble iterations for the O^k transformation.
    pub k: u32,
    /// Ops per thread between barriers (`threads × burst ≤ 64`).
    pub burst: u64,
    /// ‰ of operations that are reads.
    pub read_per_mille: u16,
    /// Run seed (op mix and object random choices).
    pub seed: u64,
    /// Use the unsound single-cell fast read.
    pub broken_reads: bool,
}

impl ShmChaosConfig {
    /// A small default shape.
    #[must_use]
    pub fn small(seed: u64, k: u32) -> ShmChaosConfig {
        ShmChaosConfig {
            threads: 4,
            ops_per_thread: 400,
            k,
            burst: 8,
            read_per_mille: 500,
            seed,
            broken_reads: false,
        }
    }
}

/// Outcome of a threaded shared-memory run.
#[derive(Debug)]
pub struct ShmReport {
    /// Operations completed.
    pub ops: u64,
    /// The monitor's verdict.
    pub monitor: MonitorReport,
}

fn va_layout(n: usize) -> ShmLayout {
    let mut l = ShmLayout::new();
    for i in 0..n {
        l.push(CellSpec::single_writer(
            Pid(u32::try_from(i).expect("pid fits u32")),
            n,
            make_cell(Val::Nil, 0, 0),
            format!("Val[{i}]"),
        ));
    }
    l
}

/// Runs the threaded Vitányi–Awerbuch workload.
///
/// # Panics
///
/// Panics on a degenerate configuration or if `threads × burst` exceeds the
/// monitor's 64-invocation window bound.
#[must_use]
pub fn run_shm_chaos(cfg: &ShmChaosConfig) -> ShmReport {
    assert!(cfg.threads >= 1 && cfg.ops_per_thread >= 1 && cfg.k >= 1 && cfg.burst >= 1);
    assert!(
        u64::from(cfg.threads) * cfg.burst <= 64,
        "threads × burst must fit the monitor's 64-invocation window"
    );
    let n = cfg.threads as usize;
    let layout = Arc::new(va_layout(n));
    let shm = Arc::new(Mutex::new(layout.initial_memory()));
    let barrier = Arc::new(Barrier::new(n));
    let (mon_tx, mon_rx) = mpsc::channel::<Action>();
    let monitor = thread::spawn(move || {
        let mut m = OnlineMonitor::new(Val::Nil, n);
        while let Ok(a) = mon_rx.recv() {
            m.observe(a);
        }
        m.finish()
    });

    let mut workers = Vec::new();
    for t in 0..cfg.threads {
        let layout = Arc::clone(&layout);
        let shm = Arc::clone(&shm);
        let barrier = Arc::clone(&barrier);
        let mon_tx = mon_tx.clone();
        let cfg = *cfg;
        workers.push(thread::spawn(move || {
            worker_loop(t, &cfg, &layout, &shm, &barrier, &mon_tx);
        }));
    }
    drop(mon_tx);
    for w in workers {
        w.join().expect("shm worker thread");
    }
    let monitor = monitor.join().expect("monitor thread");
    ShmReport {
        ops: u64::from(cfg.threads) * cfg.ops_per_thread,
        monitor,
    }
}

fn worker_loop(
    t: u32,
    cfg: &ShmChaosConfig,
    layout: &ShmLayout,
    shm: &Mutex<Shm>,
    barrier: &Barrier,
    mon_tx: &Sender<Action>,
) {
    let me = Pid(t);
    let n = cfg.threads as usize;
    let obj = ObjId(0);
    let mut rng = SplitMix64::new(
        cfg.seed ^ 0x5348_4D00_0000_0000 ^ u64::from(t).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    for op_idx in 0..cfg.ops_per_thread {
        if op_idx > 0 && op_idx % cfg.burst == 0 {
            barrier.wait();
        }
        let inv = InvId(u64::from(t) * 10_000_000 + op_idx);
        let is_read = rng.draw(1000) < usize::from(cfg.read_per_mille);
        let (method, arg) = if is_read {
            (MethodId::READ, Val::Nil)
        } else {
            let v = i64::from(t) * 1_000_000 + i64::try_from(op_idx).expect("op index fits i64");
            (MethodId::WRITE, Val::Int(v))
        };
        let _ = mon_tx.send(Action::Call {
            inv,
            pid: me,
            obj,
            method,
            arg: arg.clone(),
        });
        let inner = if is_read {
            if cfg.broken_reads {
                // Unsound: scan only cell 0, blind to every other writer.
                VaOp::read(me, 0, 1)
            } else {
                VaOp::read(me, 0, n)
            }
        } else {
            VaOp::write(me, 0, n, arg)
        };
        let mut op = IteratedOp::new(inner, cfg.k);
        let ret = loop {
            // Lock per *step*, not per op: base-register accesses of
            // different threads interleave freely.
            let effect = {
                let mut mem = shm.lock().expect("shm lock");
                op.step(&mut mem, layout)
            };
            match effect {
                IterEffect::Complete(v) => break v,
                IterEffect::NeedChoice { choices, .. } => {
                    op.choose(rng.draw(choices as usize));
                }
                IterEffect::Continue | IterEffect::PreamblePassed { .. } => {}
            }
        };
        let _ = mon_tx.send(Action::Return { inv, val: ret });
    }
}
