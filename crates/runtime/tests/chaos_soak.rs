//! The acceptance soak: seeded chaos runs over the threaded runtime.
//!
//! - ≥ 100k ops across ≥ 8 client threads with drop+delay+crash faults for
//!   both ABD (k = 1) and O² (k = 2), zero linearizability violations —
//!   with stable storage AND with amnesia crashes + WAL recovery;
//! - same seed ⇒ identical fault schedule (bus counters), identical
//!   ops/violation counters, and identical `runtime.recovery.*` crash and
//!   recovery counts;
//! - the intentionally-broken register (single-server fast read, no
//!   write-back) and the intentionally-broken recovery (`--demo-amnesia`:
//!   no WAL replay, no peer catch-up) are both caught by the monitor with
//!   a rendered violation window.

use blunt_runtime::{
    run_chaos, run_shm_chaos, FaultConfigError, RecoveryMode, RuntimeConfig, ShmChaosConfig,
};

#[test]
fn soak_abd_k1_100k_ops_8_clients_zero_violations() {
    let cfg = RuntimeConfig::soak(0xB1D5_EED0, 1);
    assert!(cfg.clients >= 8);
    let report = run_chaos(&cfg).expect("valid fault config");
    assert_eq!(report.ops, 104_000);
    assert!(
        report.monitor.clean(),
        "violations: {:?}",
        report
            .monitor
            .violations
            .iter()
            .map(|v| &v.rendered)
            .collect::<Vec<_>>()
    );
    // The fault mix actually fired.
    assert!(report.bus.dropped > 0, "{:?}", report.bus);
    assert!(report.bus.delayed > 0, "{:?}", report.bus);
    assert!(report.bus.crash_dropped > 0, "{:?}", report.bus);
    // Stable mode: crashes are blackouts, never amnesia events.
    assert_eq!(report.bus.crash_events, 0);
    assert_eq!(report.recovery.crashes, 0);
    assert!(report.latency_us.count == report.ops);
}

#[test]
fn soak_abd_k2_100k_ops_8_clients_zero_violations() {
    let report = run_chaos(&RuntimeConfig::soak(0xB1D5_EED2, 2)).expect("valid fault config");
    assert_eq!(report.ops, 104_000);
    assert!(
        report.monitor.clean(),
        "k=2 violations: {}",
        report.monitor.violations.len()
    );
    assert!(report.bus.crash_dropped > 0);
}

#[test]
fn soak_amnesia_k1_100k_ops_8_clients_zero_violations() {
    let cfg = RuntimeConfig::soak_amnesia(0xA3E5_1A01, 1);
    assert!(cfg.clients >= 8);
    let report = run_chaos(&cfg).expect("valid fault config");
    assert_eq!(report.ops, 104_000);
    assert!(
        report.monitor.clean(),
        "amnesia k=1 violations: {:?}",
        report
            .monitor
            .violations
            .iter()
            .map(|v| &v.rendered)
            .collect::<Vec<_>>()
    );
    // Servers really crashed with amnesia and really recovered.
    assert!(report.bus.crash_events > 0, "{:?}", report.bus);
    assert_eq!(report.recovery.crashes, report.bus.crash_events);
    assert_eq!(
        report.recovery.recoveries, report.recovery.crashes,
        "every amnesia crash must run a recovery: {:?}",
        report.recovery
    );
}

#[test]
fn soak_amnesia_k2_100k_ops_8_clients_zero_violations() {
    let report =
        run_chaos(&RuntimeConfig::soak_amnesia(0xA3E5_1A02, 2)).expect("valid fault config");
    assert_eq!(report.ops, 104_000);
    assert!(
        report.monitor.clean(),
        "amnesia k=2 violations: {}",
        report.monitor.violations.len()
    );
    assert!(report.recovery.recoveries > 0, "{:?}", report.recovery);
}

#[test]
fn same_seed_reproduces_fault_schedule_and_counters() {
    let run = || run_chaos(&RuntimeConfig::smoke(0x5EED)).expect("valid fault config");
    let a = run();
    let b = run();
    // The fault schedule is a pure function of the seed: every
    // deterministic counter matches exactly across runs. (Where the monitor
    // places its segment cuts is scheduling-dependent, so `segments_ok` is
    // NOT asserted — the verdict is.)
    assert_eq!(a.bus, b.bus);
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.monitor.violations.len(), b.monitor.violations.len());
    assert!(a.monitor.clean() && b.monitor.clean());
    // And a different seed gives a genuinely different schedule.
    let c = run_chaos(&RuntimeConfig::smoke(0x5EED + 1)).expect("valid fault config");
    assert_ne!(a.bus, c.bus);
}

#[test]
fn same_seed_reproduces_recovery_counters_under_amnesia() {
    let run = || run_chaos(&RuntimeConfig::smoke_amnesia(0xA3E5_5EED)).expect("valid fault config");
    let a = run();
    let b = run();
    // BusStats (including crash_events) and the crash/recovery counts are
    // deterministic: crash events live in link-index space and every signal
    // is drained before shutdown. The WAL-shaped counters (records lost,
    // replays, state queries) depend on flush timing and are deliberately
    // NOT asserted here.
    assert_eq!(a.bus, b.bus);
    assert!(a.bus.crash_events > 0);
    assert_eq!(a.recovery.crashes, b.recovery.crashes);
    assert_eq!(a.recovery.recoveries, b.recovery.recoveries);
    assert_eq!(a.recovery.recoveries, a.recovery.crashes);
    assert!(a.monitor.clean() && b.monitor.clean());
}

#[test]
fn broken_fast_read_is_caught_with_a_rendered_window() {
    let mut cfg = RuntimeConfig::smoke(0x0BAD_5EED);
    cfg.broken_reads = true;
    // Write-heavy mix: replicas that miss a dropped update stay stale, and
    // the single-server fast read exposes them.
    cfg.read_per_mille = 400;
    let report = run_chaos(&cfg).expect("valid fault config");
    assert!(
        !report.monitor.violations.is_empty(),
        "the unsafe fast read went unnoticed"
    );
    let v = &report.monitor.violations[0];
    assert!(!v.rendered.is_empty());
    assert!(
        v.rendered.contains('┌') && v.rendered.contains('└'),
        "window rendering must show operation intervals:\n{}",
        v.rendered
    );
    assert!(!v.window.is_empty());
}

#[test]
fn broken_amnesia_recovery_is_caught_with_a_rendered_window() {
    // Recovery that skips WAL replay and peer catch-up: rebooted servers
    // come back at timestamp (0, 0) and serve that void as truth. A single
    // wiped server is usually masked by the quorum, so the broken mode
    // needs the full coincidence: an update that missed one server (drop),
    // a second server that rebooted blank (crash), and an operation whose
    // quorum is exactly that stale pair (the fresh server's leg dropped or
    // delayed). Dense crash windows plus heavy drop/delay rates make that
    // coincidence routine.
    // Concurrency is load-bearing: with one client there is one link per
    // server, and every op overlapping a blackout is forced to commit to
    // both surviving peers, so the rebooted server always finds a fresh
    // quorum. With several clients the per-link window phases are
    // unsynchronized — another client can still commit to the crashing
    // server mid-window, and that acknowledged write dies in the wipe.
    // Two clients, not more: staleness slivers last a handful of ops, and
    // every concurrently-in-flight op widens what the checker must accept
    // as legal. Two clients keep the real-time order tight enough that the
    // sliver is provably non-linearizable.
    // Whether a given run trips the coincidence is scheduling-sensitive
    // (real-time overlap between the two clients is wall-clock, not
    // link-index, state — debug builds and a loaded machine running the
    // rest of the workspace suite in parallel both shift it), so sweep a
    // generous seed budget and require the catch within it; every run
    // must still show the broken shape (crashes fired, zero recoveries).
    let mut caught = None;
    for attempt in 0..24u64 {
        let mut cfg = RuntimeConfig::smoke_amnesia(0x0BAD_A3E5 + attempt);
        cfg.recovery = RecoveryMode::demo_amnesia();
        cfg.clients = 2;
        cfg.ops_per_client = 2000;
        cfg.read_per_mille = 400;
        cfg.faults.drop_per_mille = 200;
        cfg.faults.delay_per_mille = 100;
        cfg.faults.crash_len = 2;
        cfg.faults.crash_period = 9; // 3 × (2 + 1): windows exactly fill the period
        let report = run_chaos(&cfg).expect("valid fault config");
        assert!(report.recovery.crashes > 0, "no crash events fired");
        assert_eq!(
            report.recovery.recoveries, 0,
            "the broken mode must skip recovery"
        );
        if !report.monitor.violations.is_empty() {
            caught = Some(report);
            break;
        }
    }
    let report = caught.expect("the skipped recovery went unnoticed across 8 seeds");
    let v = &report.monitor.violations[0];
    assert!(
        v.rendered.contains('┌') && v.rendered.contains('└'),
        "window rendering must show operation intervals:\n{}",
        v.rendered
    );
}

#[test]
fn unusable_fault_config_is_a_recoverable_error() {
    let mut cfg = RuntimeConfig::smoke(1);
    cfg.faults.crash_len = 50;
    cfg.faults.crash_period = 100;
    match run_chaos(&cfg) {
        Err(FaultConfigError::CrashStaggerOverflow {
            servers,
            required,
            crash_period,
            ..
        }) => {
            assert_eq!((servers, required, crash_period), (3, 153, 100));
        }
        other => panic!("expected a stagger error, got {other:?}"),
    }
}

#[test]
fn shm_va_register_workload_is_clean_for_k1_and_k2() {
    for k in [1, 2] {
        let report = run_shm_chaos(&ShmChaosConfig::small(0x5113 + u64::from(k), k));
        assert_eq!(report.ops, 1600);
        assert!(
            report.monitor.clean(),
            "VA k={k} violations: {}",
            report.monitor.violations.len()
        );
    }
}

#[test]
fn shm_broken_single_cell_read_is_caught() {
    let mut cfg = ShmChaosConfig::small(0xBAD_5113, 1);
    cfg.broken_reads = true;
    let report = run_shm_chaos(&cfg);
    assert!(
        !report.monitor.violations.is_empty(),
        "single-cell fast read went unnoticed"
    );
    assert!(report.monitor.violations[0].rendered.contains("call"));
}
