//! The acceptance soak: seeded chaos runs over the threaded runtime.
//!
//! - ≥ 100k ops across ≥ 8 client threads with drop+delay+crash faults for
//!   both ABD (k = 1) and O² (k = 2), zero linearizability violations;
//! - same seed ⇒ identical fault schedule (bus counters) and identical
//!   ops/violation counters;
//! - the intentionally-broken register (single-server fast read, no
//!   write-back) is caught by the monitor with a rendered violation window.

use blunt_runtime::{run_chaos, run_shm_chaos, RuntimeConfig, ShmChaosConfig};

#[test]
fn soak_abd_k1_100k_ops_8_clients_zero_violations() {
    let cfg = RuntimeConfig::soak(0xB1D5_EED0, 1);
    assert!(cfg.clients >= 8);
    let report = run_chaos(&cfg);
    assert_eq!(report.ops, 104_000);
    assert!(
        report.monitor.clean(),
        "violations: {:?}",
        report
            .monitor
            .violations
            .iter()
            .map(|v| &v.rendered)
            .collect::<Vec<_>>()
    );
    // The fault mix actually fired.
    assert!(report.bus.dropped > 0, "{:?}", report.bus);
    assert!(report.bus.delayed > 0, "{:?}", report.bus);
    assert!(report.bus.crash_dropped > 0, "{:?}", report.bus);
    assert!(report.latency_us.count == report.ops);
}

#[test]
fn soak_abd_k2_100k_ops_8_clients_zero_violations() {
    let report = run_chaos(&RuntimeConfig::soak(0xB1D5_EED2, 2));
    assert_eq!(report.ops, 104_000);
    assert!(
        report.monitor.clean(),
        "k=2 violations: {}",
        report.monitor.violations.len()
    );
    assert!(report.bus.crash_dropped > 0);
}

#[test]
fn same_seed_reproduces_fault_schedule_and_counters() {
    let run = || run_chaos(&RuntimeConfig::smoke(0x5EED));
    let a = run();
    let b = run();
    // The fault schedule is a pure function of the seed: every
    // deterministic counter matches exactly across runs. (Where the monitor
    // places its segment cuts is scheduling-dependent, so `segments_ok` is
    // NOT asserted — the verdict is.)
    assert_eq!(a.bus, b.bus);
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.monitor.violations.len(), b.monitor.violations.len());
    assert!(a.monitor.clean() && b.monitor.clean());
    // And a different seed gives a genuinely different schedule.
    let c = run_chaos(&RuntimeConfig::smoke(0x5EED + 1));
    assert_ne!(a.bus, c.bus);
}

#[test]
fn broken_fast_read_is_caught_with_a_rendered_window() {
    let mut cfg = RuntimeConfig::smoke(0x0BAD_5EED);
    cfg.broken_reads = true;
    // Write-heavy mix: replicas that miss a dropped update stay stale, and
    // the single-server fast read exposes them.
    cfg.read_per_mille = 400;
    let report = run_chaos(&cfg);
    assert!(
        !report.monitor.violations.is_empty(),
        "the unsafe fast read went unnoticed"
    );
    let v = &report.monitor.violations[0];
    assert!(!v.rendered.is_empty());
    assert!(
        v.rendered.contains('┌') && v.rendered.contains('└'),
        "window rendering must show operation intervals:\n{}",
        v.rendered
    );
    assert!(!v.window.is_empty());
}

#[test]
fn shm_va_register_workload_is_clean_for_k1_and_k2() {
    for k in [1, 2] {
        let report = run_shm_chaos(&ShmChaosConfig::small(0x5113 + u64::from(k), k));
        assert_eq!(report.ops, 1600);
        assert!(
            report.monitor.clean(),
            "VA k={k} violations: {}",
            report.monitor.violations.len()
        );
    }
}

#[test]
fn shm_broken_single_cell_read_is_caught() {
    let mut cfg = ShmChaosConfig::small(0xBAD_5113, 1);
    cfg.broken_reads = true;
    let report = run_shm_chaos(&cfg);
    assert!(
        !report.monitor.violations.is_empty(),
        "single-cell fast read went unnoticed"
    );
    assert!(report.monitor.violations[0].rendered.contains("call"));
}
