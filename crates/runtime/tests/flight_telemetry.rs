//! The flight recorder and coverage telemetry, end to end through
//! `run_chaos`:
//!
//! - two same-seed runs produce byte-identical coverage (and summary-grade
//!   deterministic counters), proving the instrumentation draws no
//!   randomness and never perturbs the fault schedule;
//! - a run that the monitor flags auto-captures a flight dump at the
//!   moment of detection, and the dump's space-time rendering contains the
//!   violating operations themselves;
//! - `watch` streams without changing any deterministic result.

use std::time::Duration;

use blunt_core::history::Action;
use blunt_core::value::Val;
use blunt_runtime::{run_chaos, RuntimeConfig};
use blunt_trace::{flight_space_time, DiagramOptions};

fn small(seed: u64) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::smoke(seed);
    cfg.ops_per_client = 150;
    cfg
}

#[test]
fn same_seed_runs_have_identical_coverage_and_deterministic_counters() {
    let a = run_chaos(&small(0xC0FF_EE00)).expect("run a");
    let b = run_chaos(&small(0xC0FF_EE00)).expect("run b");
    assert_eq!(a.coverage, b.coverage);
    assert_eq!(
        a.coverage.to_json().to_string(),
        b.coverage.to_json().to_string(),
        "coverage must serialize byte-identically for a fixed seed"
    );
    assert_eq!(a.bus, b.bus);
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.monitor_overhead.actions, 2 * a.ops);
    assert_eq!(b.monitor_overhead.actions, 2 * b.ops);
    // The full chaos mix at this length exercises every fate.
    assert_eq!(
        a.coverage.fates_exercised(),
        vec![
            "deliver",
            "drop",
            "duplicate",
            "reorder",
            "delay",
            "crash_drop",
            "partition_drop"
        ]
    );
    // Links are (src, dst)-sorted with first-transmission totals that
    // reconcile against the bus counters.
    let offered: u64 = a.coverage.links.iter().map(|l| l.offered).sum();
    assert_eq!(offered, a.bus.offered);
    let mut keys: Vec<(u32, u32)> = a.coverage.links.iter().map(|l| (l.src, l.dst)).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted);
    keys.dedup();
    assert_eq!(keys.len(), a.coverage.links.len(), "one entry per link");
}

#[test]
fn violation_captures_a_flight_dump_containing_the_violating_ops() {
    // The proven catch configuration (mirrors chaos_soak's
    // broken_fast_read test): unsound single-server reads under the full
    // fault mix.
    let mut cfg = RuntimeConfig::smoke(0x0BAD_5EED);
    cfg.broken_reads = true;
    cfg.read_per_mille = 400;
    let report = run_chaos(&cfg).expect("run");
    assert!(
        !report.monitor.violations.is_empty(),
        "the broken read must be caught"
    );
    let dump = report
        .violation_dump
        .as_ref()
        .expect("a violation must auto-capture a flight dump");
    assert!(!dump.is_empty());

    let lanes = (cfg.servers + cfg.clients + 1) as usize;
    let rendered = flight_space_time(dump, lanes, &DiagramOptions::default());
    assert!(
        rendered.contains("VIOLATION seg"),
        "the monitor's violation event is in the window:\n{rendered}"
    );

    // The dump is captured at the instant the monitor flags the first
    // violation, so every operation of that violation's window — recorded
    // by clients *before* they report to the monitor — is still in the
    // rings: its returned values must appear in the rendering.
    let window = &report.monitor.violations[0].window;
    let mut checked = 0;
    for action in window.actions() {
        if let Action::Return {
            val: Val::Int(v), ..
        } = action
        {
            assert!(
                rendered.contains(&format!("ret {v}")),
                "violating op returning {v} missing from flight rendering"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "violation window has value-returning ops");

    // Round trip: the dump survives JSONL serialization and re-renders
    // byte-identically.
    let reparsed = blunt_obs::FlightDump::parse(&dump.to_jsonl()).expect("round trip");
    assert_eq!(
        flight_space_time(&reparsed, lanes, &DiagramOptions::default()),
        rendered
    );
}

#[test]
fn watch_mode_streams_without_perturbing_determinism() {
    let silent = run_chaos(&small(0x7E1E_3E7A)).expect("silent run");
    let mut cfg = small(0x7E1E_3E7A);
    cfg.watch = Some(Duration::from_millis(20));
    let watched = run_chaos(&cfg).expect("watched run");
    assert_eq!(silent.coverage, watched.coverage);
    assert_eq!(silent.bus, watched.bus);
    assert_eq!(silent.ops, watched.ops);
    assert!(!watched.stalled);
    assert!(watched.violation_dump.is_none(), "clean run, no dump");
}
