//! The socket-transport acceptance run, in one process: three servers each
//! running [`blunt_runtime::run_net_server`] on its own thread behind a
//! loopback Unix-domain socket, plus the [`blunt_runtime::run_chaos_net`]
//! driver — the same topology the `net-smoke` CI job runs as separate
//! `chaos serve` processes, minus the process boundary.
//!
//! The run must complete ≥ 10k operations under the light fault mix with
//! amnesia crashes, report zero linearizability violations, and show at
//! least one server crash *and recovery* mid-run — i.e. the WAL + peer
//! catch-up machinery works when peers are sockets, not mailboxes.

use std::thread;

use blunt_runtime::{
    run_chaos_net, run_net_server, Addr, NetChaosTopology, NetServeConfig, RuntimeConfig,
};

fn uds_addrs(tag: &str, n: u32) -> Vec<Addr> {
    let dir = std::env::temp_dir().join(format!("blunt-net-chaos-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    (0..n)
        .map(|i| Addr::parse(dir.join(format!("s{i}.sock")).to_str().expect("utf-8 path")))
        .collect()
}

#[test]
fn three_uds_servers_10k_ops_zero_violations_with_recovery() {
    let mut cfg = RuntimeConfig::smoke_amnesia(0x4E75_0001);
    cfg.ops_per_client = 2_500; // 4 clients × 2 500 = 10 000 ops
    let addrs = uds_addrs("amnesia", cfg.servers);
    let servers: Vec<_> = (0..cfg.servers)
        .map(|i| {
            let scfg = NetServeConfig {
                listen: addrs[i as usize].clone(),
                server_id: i,
                servers: cfg.servers,
                clients: cfg.clients,
                peers: addrs.clone(),
                seed: cfg.seed,
                faults: cfg.faults,
                recovery: cfg.recovery,
                shard_size: None,
                dump_dir: None,
            };
            thread::spawn(move || run_net_server(&scfg).expect("server run"))
        })
        .collect();

    let topo = NetChaosTopology {
        servers: addrs.clone(),
    };
    let report = run_chaos_net(&cfg, &topo).expect("valid fault config");

    let mut server_crashes = 0;
    let mut server_recoveries = 0;
    for s in servers {
        let r = s.join().expect("server thread");
        server_crashes += r.recovery.crashes;
        server_recoveries += r.recovery.recoveries;
    }

    assert_eq!(report.ops, 10_000);
    assert!(
        report.monitor.clean(),
        "violations over sockets: {:?}",
        report
            .monitor
            .violations
            .iter()
            .map(|v| &v.rendered)
            .collect::<Vec<_>>()
    );
    assert!(!report.stalled, "run stalled");
    // The fault mix really fired at the socket layer (client→server half).
    assert!(report.bus.dropped > 0, "{:?}", report.bus);
    assert!(report.bus.crash_events > 0, "{:?}", report.bus);
    // At least one server crashed with amnesia and recovered mid-run, and
    // every crash ran a recovery.
    assert!(server_crashes >= 1, "no server crashed");
    assert_eq!(
        server_recoveries, server_crashes,
        "every amnesia crash must run a recovery"
    );
    // The goodbye aggregation carried the same counters back to the driver.
    assert_eq!(report.recovery.crashes, server_crashes);
    assert_eq!(report.recovery.recoveries, server_recoveries);
    // Socket frames actually moved.
    let frames = blunt_obs::counter("net.frames_sent").get();
    assert!(frames > 0, "no frames crossed the socket layer");
    // The tracing plane worked end to end: every server process shipped
    // telemetry and a goodbye dump, and the merged cross-process dump
    // carries span-attributed events from all three remote processes.
    let merged = report.merged_flight.as_ref().expect("net runs merge dumps");
    assert_eq!(report.remote_servers.len(), 3);
    for (sid, r) in report.remote_servers.iter().enumerate() {
        let t = r
            .telemetry
            .unwrap_or_else(|| panic!("server {sid} sent no telemetry"));
        assert!(t.events > 0, "server {sid} telemetry counted no events");
        assert!(
            t.span_events > 0,
            "server {sid} telemetry counted no span-attributed events"
        );
        let proc = format!("s{sid}");
        assert!(
            merged
                .events
                .iter()
                .any(|e| e.proc == proc && e.span != blunt_obs::flight::SPAN_NONE),
            "merged dump has no span-attributed events from process {proc}"
        );
    }
}

#[test]
fn net_run_is_clean_under_stable_recovery_too() {
    let mut cfg = RuntimeConfig::smoke(0x4E75_0002);
    cfg.ops_per_client = 500;
    let addrs = uds_addrs("stable", cfg.servers);
    let servers: Vec<_> = (0..cfg.servers)
        .map(|i| {
            let scfg = NetServeConfig {
                listen: addrs[i as usize].clone(),
                server_id: i,
                servers: cfg.servers,
                clients: cfg.clients,
                peers: addrs.clone(),
                seed: cfg.seed,
                faults: cfg.faults,
                recovery: cfg.recovery,
                shard_size: None,
                dump_dir: None,
            };
            thread::spawn(move || run_net_server(&scfg).expect("server run"))
        })
        .collect();
    let topo = NetChaosTopology {
        servers: addrs.clone(),
    };
    let report = run_chaos_net(&cfg, &topo).expect("valid fault config");
    for s in servers {
        s.join().expect("server thread");
    }
    assert_eq!(report.ops, 2_000);
    assert!(report.monitor.clean(), "stable-mode violations");
    // Stable mode: crashes are blackouts, never recovery events.
    assert_eq!(report.recovery.crashes, 0);
}
