//! A tiny self-contained JSON value with a serializer and parser.
//!
//! The workspace cannot pull external crates, so this module provides the
//! minimum JSON surface the observability layer needs: building values,
//! writing them compactly (`Display`), and parsing them back for
//! round-trip tests and report tooling. Integers are kept exact — `Int`
//! and `UInt` variants are distinct from `Float` — so `u64` counters
//! survive a round trip unchanged.

use std::fmt;

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (exact).
    Int(i64),
    /// An unsigned integer (exact; used for counters that may exceed `i64`).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of key/value pairs (insertion order is
    /// preserved on write; duplicate keys are not merged).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for non-objects or missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any numeric variant.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a `bool` if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a JSON document from `input`.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax error, or
    /// trailing non-whitespace after the document.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

/// A JSON syntax error with a byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Float(v) => {
                if v.is_finite() {
                    // Guarantee a re-parseable numeric token (avoid `inf`/`NaN`).
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced the cursor itself
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point (input is a &str, so
                    // continuation bytes are well-formed).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| (b & 0xC0) == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        // self.pos is at the 'u'.
        self.pos += 1;
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("unpaired high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) {
        let text = v.to_string();
        let back = Json::parse(&text).expect("round-trip parse");
        assert_eq!(&back, v, "round trip of {text}");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&Json::Null);
        round_trip(&Json::Bool(true));
        round_trip(&Json::Bool(false));
        round_trip(&Json::Int(-42));
        round_trip(&Json::Int(i64::MIN));
        round_trip(&Json::UInt(u64::MAX));
        round_trip(&Json::Str("hello \"quoted\" \\ line\nbreak\ttab".into()));
        round_trip(&Json::Str("unicode: héllo ∀x π".into()));
    }

    #[test]
    fn composites_round_trip() {
        round_trip(&Json::Arr(vec![]));
        round_trip(&Json::Obj(vec![]));
        round_trip(&Json::Obj(vec![
            ("a".into(), Json::Int(1)),
            ("b".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            (
                "c".into(),
                Json::Obj(vec![("nested".into(), Json::Str("x".into()))]),
            ),
        ]));
    }

    #[test]
    fn integers_stay_exact() {
        // u64::MAX does not fit i64 or f64; it must survive untouched.
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v, Json::UInt(u64::MAX));
        let v = Json::parse("-9223372036854775808").unwrap();
        assert_eq!(v, Json::Int(i64::MIN));
    }

    #[test]
    fn floats_parse() {
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("-0.25").unwrap(), Json::Float(-0.25));
        // Whole floats serialize with a trailing .1 precision marker and
        // re-parse as floats, not ints.
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
    }

    #[test]
    fn escapes_parse() {
        assert_eq!(
            Json::parse(r#""aA\n\té""#).unwrap(),
            Json::Str("aA\n\té".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn errors_are_reported() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"name":"x","n":3,"arr":[1,2]}"#).unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            v.get("arr").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
    }
}
