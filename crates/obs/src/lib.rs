//! `blunt-obs` — observability substrate for the blunting workspace.
//!
//! Three layers, all dependency-free:
//!
//! 1. **Metrics** ([`Counter`], [`Gauge`], [`Histogram`], [`Timer`]) in a
//!    thread-safe global [`Registry`]. Handles are atomics behind `Arc`;
//!    instrumented code caches them in `OnceLock` statics (see
//!    [`static_counter!`]) so a hot-path increment is a single relaxed
//!    atomic op — cheap enough to leave on in release builds.
//! 2. **Structured records** ([`Json`], [`Recorder`], [`JsonlSink`]):
//!    trace events, scheduler decisions, and per-run summaries serialize
//!    to JSON-Lines files per the schema in `docs/OBS_SCHEMA.md`.
//! 3. **Timing scopes** ([`timed`]): span-style wall-clock measurement
//!    around closures, aggregated per scope name.
//! 4. **Flight recording** ([`FlightRecorder`], [`flight`]): always-on,
//!    bounded per-thread event rings drained into schema-versioned JSONL
//!    dumps on failure, plus a mergeable [`QuantileSketch`] for streaming
//!    latency percentiles.
//!
//! A [`Snapshot`] of the registry renders as a human table
//! ([`Snapshot::to_table`]) or JSON ([`Snapshot::to_json`]).
//!
//! # Example
//!
//! ```
//! let sum = blunt_obs::timed("example.add", || 2 + 2);
//! assert_eq!(sum, 4);
//! blunt_obs::counter("example.calls").inc();
//! let snap = blunt_obs::snapshot();
//! assert!(snap.counter("example.calls").unwrap() >= 1);
//! println!("{}", snap.to_table());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod flight;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod sketch;

pub use flight::{
    FlightDump, FlightEvent, FlightKind, FlightRecorder, FlightRing, FLIGHT_SCHEMA_VERSION,
};
pub use json::{Json, JsonError};
pub use metrics::{
    bucket_index, bucket_lower_bound, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
    Snapshot, Timer, TimerSnapshot, HISTOGRAM_BUCKETS,
};
pub use recorder::{parse_jsonl, JsonlSink, Recorder, VecSink};
pub use sketch::{QuantileSketch, SketchSnapshot, SKETCH_BUCKETS};

use std::sync::OnceLock;
use std::time::Instant;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide metric registry.
#[must_use]
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// The global counter named `name`, created on first use.
///
/// Prefer [`static_counter!`] on hot paths — it caches the handle so the
/// name lookup happens once per call site.
#[must_use]
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// The global gauge named `name`, created on first use.
#[must_use]
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// The global histogram named `name`, created on first use.
#[must_use]
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// The global timer named `name`, created on first use.
#[must_use]
pub fn timer(name: &str) -> Timer {
    global().timer(name)
}

/// A point-in-time copy of every global metric.
#[must_use]
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Zeroes every global metric in place (cached handles stay valid).
pub fn reset() {
    global().reset();
}

/// Runs `f`, recording its wall-clock time under the global timer `name`.
///
/// ```
/// let v = blunt_obs::timed("doc.work", || 40 + 2);
/// assert_eq!(v, 42);
/// assert!(blunt_obs::timer("doc.work").count() >= 1);
/// ```
pub fn timed<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let t = timer(name);
    let start = Instant::now();
    let out = f();
    t.record(start.elapsed());
    out
}

/// A cached handle to a global [`Counter`]: expands to
/// `&'static Counter`, looking the name up once per call site.
///
/// ```
/// blunt_obs::static_counter!("doc.macro.hits").inc();
/// assert!(blunt_obs::counter("doc.macro.hits").get() >= 1);
/// ```
#[macro_export]
macro_rules! static_counter {
    ($name:expr) => {{
        static __OBS_C: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        __OBS_C.get_or_init(|| $crate::counter($name))
    }};
}

/// A cached handle to a global [`Gauge`] (see [`static_counter!`]).
#[macro_export]
macro_rules! static_gauge {
    ($name:expr) => {{
        static __OBS_G: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        __OBS_G.get_or_init(|| $crate::gauge($name))
    }};
}

/// A cached handle to a global [`Histogram`] (see [`static_counter!`]).
#[macro_export]
macro_rules! static_histogram {
    ($name:expr) => {{
        static __OBS_H: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        __OBS_H.get_or_init(|| $crate::histogram($name))
    }};
}

/// A cached handle to a global [`Timer`] (see [`static_counter!`]).
#[macro_export]
macro_rules! static_timer {
    ($name:expr) => {{
        static __OBS_T: ::std::sync::OnceLock<$crate::Timer> = ::std::sync::OnceLock::new();
        __OBS_T.get_or_init(|| $crate::timer($name))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn global_registry_round_trip() {
        // Use names unique to this test: the global registry is shared
        // with every other test in the binary.
        super::counter("lib.test.count").add(2);
        super::gauge("lib.test.depth").record_max(9);
        let out = super::timed("lib.test.span", || 21 * 2);
        assert_eq!(out, 42);
        let snap = super::snapshot();
        assert_eq!(snap.counter("lib.test.count"), Some(2));
        assert_eq!(snap.gauge("lib.test.depth"), Some(9));
        assert!(snap
            .timers
            .iter()
            .any(|(k, t)| k == "lib.test.span" && t.count == 1));
    }

    #[test]
    fn static_macros_cache_handles() {
        for _ in 0..3 {
            crate::static_counter!("lib.test.static").inc();
        }
        crate::static_gauge!("lib.test.static.g").set(4);
        crate::static_histogram!("lib.test.static.h").record(16);
        crate::static_timer!("lib.test.static.t").record(std::time::Duration::from_nanos(5));
        assert_eq!(super::counter("lib.test.static").get(), 3);
        assert_eq!(super::gauge("lib.test.static.g").get(), 4);
        assert_eq!(super::histogram("lib.test.static.h").count(), 1);
        assert_eq!(super::timer("lib.test.static.t").count(), 1);
    }
}
