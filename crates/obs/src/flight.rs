//! The flight recorder: always-on, bounded, per-thread event rings.
//!
//! A [`FlightRecorder`] owns one lock-free ring buffer per participating
//! thread ([`FlightRing`]). Recording an event is O(1) — a handful of
//! relaxed/release atomic stores into a preallocated slot — so the runtime
//! leaves it on in
//! the hot path (bus sends, fault decisions, client ops, server acks,
//! monitor cuts). Each ring keeps only the most recent `capacity` events;
//! older ones are silently overwritten, which is the point: when something
//! goes wrong mid-soak (a monitor violation, a stall), [`FlightRecorder::dump`]
//! snapshots every ring into a [`FlightDump`] — the last few thousand events
//! per thread, merged in time order — without ever having paid for full
//! tracing.
//!
//! Dumps serialize to a schema-versioned JSONL form (see
//! `docs/OBS_SCHEMA.md`, `flight_dump`/`flight_event` records) and parse
//! back losslessly, so a dump written by a failing CI run can be re-rendered
//! as a space-time diagram offline.
//!
//! # Consistency
//!
//! Writers are single-threaded per ring (each thread records only into its
//! own ring); readers may race a writer. Every slot carries a version word
//! written before and after the payload (odd while a write is in flight),
//! and the snapshot skips slots whose version changed or is odd. All slot
//! fields are atomics, so a racing read is well-defined; the residual risk —
//! a writer lapping a reader by a full ring *during* a six-word read, with
//! both version loads agreeing — would garble one diagnostic event, never
//! program state.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;

/// Schema version written into flight dump headers. v2 added the optional
/// per-event `span` (packed originating-op trace context, [`pack_span`]),
/// `proc` (source process label in merged cross-process dumps), and `key`
/// (target register in keyed-store runs) fields; all three are elided at
/// their defaults, so [`FlightDump::parse`] still reads v1 dumps — and
/// single-register dumps stay byte-identical to their pre-keyed form.
pub const FLIGHT_SCHEMA_VERSION: u64 = 2;

/// Oldest dump schema version [`FlightDump::parse`] accepts.
pub const FLIGHT_SCHEMA_MIN_VERSION: u64 = 1;

/// The span word of an event not attributed to any client operation.
pub const SPAN_NONE: u64 = u64::MAX;

/// The key word of an event not attributed to a specific register — every
/// event of a single-register run, and non-op events of keyed runs.
pub const KEY_NONE: u64 = u64::MAX;

/// Packs an originating-op trace context — client pid (24 bits) and
/// invocation id (40 bits) — into one event span word. The runtime's
/// invocation ids (`client × 10_000_000 + op_idx`) stay far below 2⁴⁰ for
/// any realistic client count, and [`SPAN_NONE`] is reserved.
#[must_use]
pub fn pack_span(client: u32, op: u64) -> u64 {
    (u64::from(client) << 40) | (op & ((1 << 40) - 1))
}

/// Inverse of [`pack_span`]: `(client, op)`, or `None` for [`SPAN_NONE`].
#[must_use]
pub fn unpack_span(w: u64) -> Option<(u32, u64)> {
    if w == SPAN_NONE {
        None
    } else {
        Some(((w >> 40) as u32, w & ((1 << 40) - 1)))
    }
}

/// What happened. Each kind fixes the meaning of an event's `a`/`b` words
/// (documented per variant; `pid` is the recording node or lane).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightKind {
    /// A client started a read op; `a` = invocation id.
    OpStartRead = 0,
    /// A client started a write op; `a` = invocation id, `b` = encoded
    /// argument value ([`encode_val`]).
    OpStartWrite = 1,
    /// A client re-broadcast after a quorum timeout; `a` = op sequence
    /// number.
    OpRetransmit = 2,
    /// A read completed; `a` = invocation id, `b` = encoded return value.
    OpCompleteRead = 3,
    /// A write completed; `a` = invocation id, `b` = encoded return value.
    OpCompleteWrite = 4,
    /// The bus accepted a message for sending; `a` = destination node,
    /// `b` = packed message label ([`pack_msg`]).
    BusSend = 5,
    /// A node dequeued a message; `a` = source node, `b` = packed label.
    BusDeliver = 6,
    /// The fault injector dropped a message; `a` = destination, `b` =
    /// packed label.
    FaultDrop = 7,
    /// The injector duplicated a message; `a` = destination, `b` = packed
    /// label.
    FaultDuplicate = 8,
    /// The injector held a message back for reordering; `a` = destination,
    /// `b` = packed label.
    FaultReorder = 9,
    /// The injector delayed a message; `a` = destination, `b` = delay in
    /// milliseconds.
    FaultDelay = 10,
    /// A message died in a crash blackout window; `a` = destination, `b` =
    /// window index.
    FaultCrashDrop = 11,
    /// A message died in a partition window; `a` = destination, `b` =
    /// window index.
    FaultPartitionDrop = 12,
    /// A server acknowledged an update; `a` = destination client node,
    /// `b` = op sequence number.
    ServerAck = 13,
    /// A server flushed its WAL; `a` = acks released by the flush.
    WalFlush = 14,
    /// A server's crash window closed and its volatile state was wiped;
    /// `a` = WAL records lost to the crash.
    ServerCrash = 15,
    /// A server finished recovery and resumed serving; `a` = recovery
    /// duration in microseconds.
    ServerRecover = 16,
    /// The online monitor closed a segment cleanly; `a` = segments checked
    /// so far.
    MonitorCut = 17,
    /// The online monitor flagged a non-linearizable segment; `a` = index
    /// of the violating segment.
    MonitorViolation = 18,
}

/// Every kind, in discriminant order (handy for exhaustive fixtures).
pub const FLIGHT_KINDS: [FlightKind; 19] = [
    FlightKind::OpStartRead,
    FlightKind::OpStartWrite,
    FlightKind::OpRetransmit,
    FlightKind::OpCompleteRead,
    FlightKind::OpCompleteWrite,
    FlightKind::BusSend,
    FlightKind::BusDeliver,
    FlightKind::FaultDrop,
    FlightKind::FaultDuplicate,
    FlightKind::FaultReorder,
    FlightKind::FaultDelay,
    FlightKind::FaultCrashDrop,
    FlightKind::FaultPartitionDrop,
    FlightKind::ServerAck,
    FlightKind::WalFlush,
    FlightKind::ServerCrash,
    FlightKind::ServerRecover,
    FlightKind::MonitorCut,
    FlightKind::MonitorViolation,
];

impl FlightKind {
    /// The stable snake-case name used in JSONL dumps.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::OpStartRead => "op_start_read",
            FlightKind::OpStartWrite => "op_start_write",
            FlightKind::OpRetransmit => "op_retransmit",
            FlightKind::OpCompleteRead => "op_complete_read",
            FlightKind::OpCompleteWrite => "op_complete_write",
            FlightKind::BusSend => "bus_send",
            FlightKind::BusDeliver => "bus_deliver",
            FlightKind::FaultDrop => "fault_drop",
            FlightKind::FaultDuplicate => "fault_duplicate",
            FlightKind::FaultReorder => "fault_reorder",
            FlightKind::FaultDelay => "fault_delay",
            FlightKind::FaultCrashDrop => "fault_crash_drop",
            FlightKind::FaultPartitionDrop => "fault_partition_drop",
            FlightKind::ServerAck => "server_ack",
            FlightKind::WalFlush => "wal_flush",
            FlightKind::ServerCrash => "server_crash",
            FlightKind::ServerRecover => "server_recover",
            FlightKind::MonitorCut => "monitor_cut",
            FlightKind::MonitorViolation => "monitor_violation",
        }
    }

    /// Parses a dump name back into a kind.
    #[must_use]
    pub fn from_name(s: &str) -> Option<FlightKind> {
        FLIGHT_KINDS.iter().copied().find(|k| k.as_str() == s)
    }

    fn from_u8(b: u8) -> Option<FlightKind> {
        FLIGHT_KINDS.get(b as usize).copied()
    }
}

/// Encodes an optional integer register value into an event word.
/// `None` (⊥ / `Val::Nil`) maps to `u64::MAX`; this collides only with a
/// genuine value of `-1`, which the runtime's unique-write-value scheme
/// never produces.
#[must_use]
pub fn encode_val(v: Option<i64>) -> u64 {
    match v {
        None => u64::MAX,
        Some(x) => x as u64,
    }
}

/// Inverse of [`encode_val`].
#[must_use]
pub fn decode_val(w: u64) -> Option<i64> {
    if w == u64::MAX {
        None
    } else {
        Some(w as i64)
    }
}

/// Message-kind code for an ABD `Query` (see [`pack_msg`]).
pub const MSG_QUERY: u64 = 0;
/// Message-kind code for an ABD `Reply`.
pub const MSG_REPLY: u64 = 1;
/// Message-kind code for an ABD `Update`.
pub const MSG_UPDATE: u64 = 2;
/// Message-kind code for an ABD `Ack`.
pub const MSG_ACK: u64 = 3;
/// Message-kind code for a crash signal.
pub const MSG_CRASH: u64 = 4;
/// Message-kind code for a recovery `StateQuery`.
pub const MSG_STATE_QUERY: u64 = 5;
/// Message-kind code for a recovery `StateReply`.
pub const MSG_STATE_REPLY: u64 = 6;

/// Packs a message-kind code (3 bits) and its sequence number / window into
/// one event word.
#[must_use]
pub fn pack_msg(code: u64, sn: u64) -> u64 {
    (code & 7) | (sn << 3)
}

/// Inverse of [`pack_msg`]: `(code, sn)`.
#[must_use]
pub fn unpack_msg(w: u64) -> (u64, u64) {
    (w & 7, w >> 3)
}

/// Human label for a message-kind code (`"?"` for unknown codes).
#[must_use]
pub fn msg_code_name(code: u64) -> &'static str {
    match code {
        MSG_QUERY => "query",
        MSG_REPLY => "reply",
        MSG_UPDATE => "update",
        MSG_ACK => "ack",
        MSG_CRASH => "crash",
        MSG_STATE_QUERY => "state_query",
        MSG_STATE_REPLY => "state_reply",
        _ => "?",
    }
}

struct Slot {
    /// `0` = never written; odd = write in flight; `2·(seq+1)` = holds the
    /// event with sequence number `seq`.
    version: AtomicU64,
    t: AtomicU64,
    /// `kind | pid << 8`.
    meta: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    /// Packed originating-op span ([`pack_span`]); [`SPAN_NONE`] when the
    /// event is not attributed to a client operation.
    span: AtomicU64,
    /// Target register of a keyed-store op event; [`KEY_NONE`] otherwise.
    key: AtomicU64,
}

/// One thread's bounded event ring. Obtained from
/// [`FlightRecorder::register_current`] / [`FlightRecorder::thread_ring`];
/// only the owning thread should record into it.
pub struct FlightRing {
    label: String,
    start: Instant,
    mask: u64,
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl FlightRing {
    fn new(label: &str, capacity: usize, start: Instant) -> FlightRing {
        FlightRing {
            label: label.to_string(),
            start,
            mask: capacity as u64 - 1,
            head: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Slot {
                    version: AtomicU64::new(0),
                    t: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                    a: AtomicU64::new(0),
                    b: AtomicU64::new(0),
                    span: AtomicU64::new(SPAN_NONE),
                    key: AtomicU64::new(KEY_NONE),
                })
                .collect(),
        }
    }

    /// The ring's label (thread name).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Records one event, stamped with the recorder's elapsed clock.
    pub fn record(&self, kind: FlightKind, pid: u32, a: u64, b: u64) {
        self.record_span(kind, pid, a, b, SPAN_NONE);
    }

    /// Records one span-attributed event ([`pack_span`] word; [`SPAN_NONE`]
    /// for unattributed events), stamped with the recorder's elapsed clock.
    pub fn record_span(&self, kind: FlightKind, pid: u32, a: u64, b: u64, span: u64) {
        let t = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.record_span_at(t, kind, pid, a, b, span);
    }

    /// Records one event with an explicit timestamp (µs since run start).
    /// Golden tests use this to pin deterministic dumps.
    pub fn record_at(&self, t_us: u64, kind: FlightKind, pid: u32, a: u64, b: u64) {
        self.record_span_at(t_us, kind, pid, a, b, SPAN_NONE);
    }

    /// Records one span-attributed event with an explicit timestamp.
    pub fn record_span_at(&self, t_us: u64, kind: FlightKind, pid: u32, a: u64, b: u64, span: u64) {
        self.record_span_key_at(t_us, kind, pid, a, b, span, KEY_NONE);
    }

    /// Records one span-attributed event targeting register `key`
    /// ([`KEY_NONE`] outside keyed-store runs), stamped with the recorder's
    /// elapsed clock.
    pub fn record_span_key(&self, kind: FlightKind, pid: u32, a: u64, b: u64, span: u64, key: u64) {
        let t = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.record_span_key_at(t, kind, pid, a, b, span, key);
    }

    /// Records one fully-attributed event with an explicit timestamp.
    #[allow(clippy::too_many_arguments)] // the slot layout, spelled out
    pub fn record_span_key_at(
        &self,
        t_us: u64,
        kind: FlightKind,
        pid: u32,
        a: u64,
        b: u64,
        span: u64,
        key: u64,
    ) {
        let seq = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        slot.version.store(seq * 2 + 1, Ordering::Release);
        slot.t.store(t_us, Ordering::Relaxed);
        slot.meta.store(
            u64::from(kind as u8) | (u64::from(pid) << 8),
            Ordering::Relaxed,
        );
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.span.store(span, Ordering::Relaxed);
        slot.key.store(key, Ordering::Relaxed);
        slot.version.store(seq * 2 + 2, Ordering::Release);
        self.head.store(seq + 1, Ordering::Release);
    }

    fn snapshot_into(&self, out: &mut Vec<FlightEvent>) {
        for slot in &self.slots {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 == 0 || v1 % 2 == 1 {
                continue;
            }
            let t_us = slot.t.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            let span = slot.span.load(Ordering::Relaxed);
            let key = slot.key.load(Ordering::Relaxed);
            if slot.version.load(Ordering::Acquire) != v1 {
                continue; // torn: the writer lapped us mid-read
            }
            let Some(kind) = FlightKind::from_u8((meta & 0xFF) as u8) else {
                continue;
            };
            out.push(FlightEvent {
                ring: self.label.clone(),
                seq: v1 / 2 - 1,
                t_us,
                kind,
                pid: (meta >> 8) as u32,
                a,
                b,
                span,
                key,
                proc: String::new(),
            });
        }
    }
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread cache of `(recorder id, ring)` pairs, so the hot-path
    /// [`FlightRecorder::thread_ring`] lookup is a short TLS scan.
    static TLS_RINGS: RefCell<Vec<(u64, Arc<FlightRing>)>> = const { RefCell::new(Vec::new()) };
}

/// A set of per-thread flight rings sharing one run clock.
///
/// Create one per run, hand clones of the `Arc` to every thread, have each
/// thread call [`register_current`](FlightRecorder::register_current) with
/// its lane name, then [`dump`](FlightRecorder::dump) whenever a window into
/// recent history is needed. Dumping does not consume events.
pub struct FlightRecorder {
    id: u64,
    start: Instant,
    capacity: usize,
    rings: Mutex<Vec<Arc<FlightRing>>>,
    anon: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("rings", &self.rings.lock().unwrap().len())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder whose rings each hold the `capacity` most recent events
    /// (rounded up to a power of two, at least 8).
    #[must_use]
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            start: Instant::now(),
            capacity: capacity.max(8).next_power_of_two(),
            rings: Mutex::new(Vec::new()),
            anon: AtomicU64::new(0),
        }
    }

    /// Registers a fresh ring labeled `label` for the calling thread and
    /// caches it in thread-local storage, replacing any prior ring this
    /// thread had with this recorder.
    pub fn register_current(&self, label: &str) -> Arc<FlightRing> {
        let ring = Arc::new(FlightRing::new(label, self.capacity, self.start));
        self.rings.lock().unwrap().push(Arc::clone(&ring));
        TLS_RINGS.with(|tls| {
            let mut v = tls.borrow_mut();
            // Drop cache entries whose recorder is gone (we hold the only
            // other strong ref), so long test binaries don't accumulate.
            v.retain(|(_, r)| Arc::strong_count(r) > 1);
            if let Some(entry) = v.iter_mut().find(|(id, _)| *id == self.id) {
                entry.1 = Arc::clone(&ring);
            } else {
                v.push((self.id, Arc::clone(&ring)));
            }
        });
        ring
    }

    /// The calling thread's ring, registering an anonymous one on first use
    /// (threads the runtime doesn't name — e.g. the bus delayer — still get
    /// captured).
    pub fn thread_ring(&self) -> Arc<FlightRing> {
        let cached = TLS_RINGS.with(|tls| {
            tls.borrow()
                .iter()
                .find(|(id, _)| *id == self.id)
                .map(|(_, r)| Arc::clone(r))
        });
        if let Some(ring) = cached {
            return ring;
        }
        let n = self.anon.fetch_add(1, Ordering::Relaxed);
        self.register_current(&format!("anon-{n}"))
    }

    /// Number of registered rings.
    #[must_use]
    pub fn rings(&self) -> usize {
        self.rings.lock().unwrap().len()
    }

    /// Snapshots every ring into one time-ordered dump. Events are sorted
    /// by `(t_us, proc, ring, seq)` so same-microsecond events order
    /// deterministically.
    #[must_use]
    pub fn dump(&self) -> FlightDump {
        let mut events = Vec::new();
        for ring in self.rings.lock().unwrap().iter() {
            ring.snapshot_into(&mut events);
        }
        sort_events(&mut events);
        FlightDump {
            schema_version: FLIGHT_SCHEMA_VERSION,
            events,
        }
    }

    /// Microseconds elapsed on this recorder's clock — the timestamp the
    /// next [`FlightRing::record`] would get. Socket handshakes use it for
    /// cross-process clock-offset estimation.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// The canonical dump order: `(t_us, proc, ring, seq)`.
fn sort_events(events: &mut [FlightEvent]) {
    events
        .sort_by(|x, y| (x.t_us, &x.proc, &x.ring, x.seq).cmp(&(y.t_us, &y.proc, &y.ring, y.seq)));
}

/// One recorded event, as it appears in a dump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Label of the ring (thread) that recorded it.
    pub ring: String,
    /// Per-ring sequence number (monotone; gaps mean ring overwrite).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub t_us: u64,
    /// What happened.
    pub kind: FlightKind,
    /// The recording node / lane.
    pub pid: u32,
    /// First payload word (meaning fixed by `kind`).
    pub a: u64,
    /// Second payload word (meaning fixed by `kind`).
    pub b: u64,
    /// Packed originating-op trace context ([`pack_span`]); [`SPAN_NONE`]
    /// when the event is not attributed to a client operation. Schema v2;
    /// v1 dumps parse with `SPAN_NONE`.
    pub span: u64,
    /// The register a keyed-store op event targets; [`KEY_NONE`] for
    /// non-op events and single-register runs. Elided at the default, so
    /// dumps written before keyed stores parse with `KEY_NONE`.
    pub key: u64,
    /// The process this event came from in a merged cross-process dump
    /// (e.g. `"s0"` for server process 0); empty for events recorded
    /// locally. Schema v2; v1 dumps parse with `""`.
    pub proc: String,
}

impl FlightEvent {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("type".into(), Json::Str("flight_event".into())),
            ("ring".into(), Json::Str(self.ring.clone())),
            ("seq".into(), Json::UInt(self.seq)),
            ("t_us".into(), Json::UInt(self.t_us)),
            ("kind".into(), Json::Str(self.kind.as_str().into())),
            ("pid".into(), Json::UInt(u64::from(self.pid))),
            ("a".into(), Json::UInt(self.a)),
            ("b".into(), Json::UInt(self.b)),
        ];
        // Defaults are elided so unattributed local events keep their
        // compact v1 shape and absent-field ↔ default stays a bijection
        // (parse → serialize is the identity).
        if self.span != SPAN_NONE {
            pairs.push(("span".into(), Json::UInt(self.span)));
        }
        if self.key != KEY_NONE {
            pairs.push(("key".into(), Json::UInt(self.key)));
        }
        if !self.proc.is_empty() {
            pairs.push(("proc".into(), Json::Str(self.proc.clone())));
        }
        Json::Obj(pairs)
    }

    fn from_json(j: &Json) -> Result<FlightEvent, String> {
        let field = |name: &str| {
            j.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("flight_event missing field {name:?}: {j}"))
        };
        let kind_name = j
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("flight_event missing kind: {j}"))?;
        Ok(FlightEvent {
            ring: j
                .get("ring")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("flight_event missing ring: {j}"))?
                .to_string(),
            seq: field("seq")?,
            t_us: field("t_us")?,
            kind: FlightKind::from_name(kind_name)
                .ok_or_else(|| format!("unknown flight_event kind {kind_name:?}"))?,
            pid: u32::try_from(field("pid")?).map_err(|_| "pid out of range".to_string())?,
            a: field("a")?,
            b: field("b")?,
            span: j.get("span").and_then(Json::as_u64).unwrap_or(SPAN_NONE),
            key: j.get("key").and_then(Json::as_u64).unwrap_or(KEY_NONE),
            proc: j
                .get("proc")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        })
    }
}

/// A drained flight recorder: the most recent events of every ring, merged
/// in time order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightDump {
    /// The dump schema version ([`FLIGHT_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Events, ascending by `(t_us, ring, seq)`.
    pub events: Vec<FlightEvent>,
}

impl FlightDump {
    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The dump restricted to its last `n` events (the window rendered into
    /// space-time diagrams).
    #[must_use]
    pub fn last_n(&self, n: usize) -> FlightDump {
        let skip = self.events.len().saturating_sub(n);
        FlightDump {
            schema_version: self.schema_version,
            events: self.events[skip..].to_vec(),
        }
    }

    /// Serializes as JSONL: one `flight_dump` header line, then one
    /// `flight_event` line per event.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let header = Json::Obj(vec![
            ("type".into(), Json::Str("flight_dump".into())),
            ("schema_version".into(), Json::UInt(self.schema_version)),
            ("events".into(), Json::UInt(self.events.len() as u64)),
        ]);
        let mut out = header.to_string();
        out.push('\n');
        for e in &self.events {
            out.push_str(&e.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL dump back. The first record must be a `flight_dump`
    /// header with a matching schema version; records of other types are
    /// skipped (dumps may be embedded in larger JSONL streams).
    pub fn parse(text: &str) -> Result<FlightDump, String> {
        let records = crate::recorder::parse_jsonl(text).map_err(|e| e.to_string())?;
        let header = records
            .first()
            .ok_or_else(|| "empty flight dump".to_string())?;
        if header.get("type").and_then(Json::as_str) != Some("flight_dump") {
            return Err(format!("not a flight dump header: {header}"));
        }
        let version = header
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| "flight_dump header missing schema_version".to_string())?;
        if !(FLIGHT_SCHEMA_MIN_VERSION..=FLIGHT_SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "flight dump schema v{version}, this build reads \
                 v{FLIGHT_SCHEMA_MIN_VERSION}–v{FLIGHT_SCHEMA_VERSION}"
            ));
        }
        let mut events = Vec::new();
        for r in &records[1..] {
            if r.get("type").and_then(Json::as_str) == Some("flight_event") {
                events.push(FlightEvent::from_json(r)?);
            }
        }
        Ok(FlightDump {
            schema_version: version,
            events,
        })
    }

    /// Merges a remote process's dump into this one: every event of `other`
    /// is stamped with the process label `proc`, its timestamp is shifted
    /// from the remote clock onto this dump's clock by `clock_offset_us`
    /// (the estimate `remote_clock − local_clock` from the `Hello`
    /// handshake; shifted times saturate at 0), and the result is re-sorted
    /// into the canonical `(t_us, proc, ring, seq)` order. The merged dump
    /// is always schema v2.
    pub fn merge_remote(&mut self, proc: &str, clock_offset_us: i64, other: &FlightDump) {
        for e in &other.events {
            let t_us = if clock_offset_us >= 0 {
                e.t_us.saturating_sub(clock_offset_us.unsigned_abs())
            } else {
                e.t_us.saturating_add(clock_offset_us.unsigned_abs())
            };
            self.events.push(FlightEvent {
                t_us,
                proc: proc.to_string(),
                ..e.clone()
            });
        }
        self.schema_version = FLIGHT_SCHEMA_VERSION;
        sort_events(&mut self.events);
    }
}

/// Returns `stem` the first time it is requested in this process and
/// `stem.2`, `stem.3`, … on repeats, so concurrent or repeated dumps under
/// one artifact directory never overwrite each other. Callers append their
/// own extensions (`.flight.jsonl`, `.diagram.txt`) to the returned stem,
/// which keeps a dump's sibling artifacts sharing one suffix.
pub fn unique_dump_stem(stem: &str) -> String {
    use std::collections::HashMap;
    use std::sync::OnceLock;
    static USED: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
    let mut used = USED
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("dump stem lock");
    let n = used.entry(stem.to_string()).or_insert(0);
    *n += 1;
    if *n == 1 {
        stem.to_string()
    } else {
        format!("{stem}.{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for (i, k) in FLIGHT_KINDS.iter().enumerate() {
            assert_eq!(*k as u8 as usize, i, "discriminant order");
            assert_eq!(FlightKind::from_name(k.as_str()), Some(*k));
            assert_eq!(FlightKind::from_u8(i as u8), Some(*k));
        }
        assert_eq!(FlightKind::from_name("nope"), None);
        assert_eq!(FlightKind::from_u8(19), None);
    }

    #[test]
    fn val_and_msg_packing_round_trip() {
        for v in [None, Some(0), Some(5), Some(-2), Some(i64::MAX)] {
            assert_eq!(decode_val(encode_val(v)), v);
        }
        for (code, sn) in [(MSG_QUERY, 0), (MSG_ACK, 7_777_777), (MSG_STATE_REPLY, 1)] {
            assert_eq!(unpack_msg(pack_msg(code, sn)), (code, sn));
        }
        assert_eq!(msg_code_name(MSG_UPDATE), "update");
        assert_eq!(msg_code_name(99), "?");
    }

    #[test]
    fn ring_keeps_only_the_most_recent_events() {
        let rec = FlightRecorder::new(8);
        let ring = rec.register_current("client-0");
        for i in 0..20u64 {
            ring.record_at(i, FlightKind::BusSend, 0, i, 0);
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), 8);
        let seqs: Vec<u64> = dump.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>());
        assert!(dump.events.iter().all(|e| e.a == e.seq));
    }

    #[test]
    fn dump_merges_rings_in_time_order_without_consuming() {
        let rec = FlightRecorder::new(16);
        let a = rec.register_current("client-0");
        a.record_at(5, FlightKind::OpStartWrite, 3, 1, encode_val(Some(9)));
        std::thread::scope(|s| {
            s.spawn(|| {
                let b = rec.register_current("server-0");
                b.record_at(2, FlightKind::BusDeliver, 0, 3, pack_msg(MSG_UPDATE, 1));
            });
            s.spawn(|| {
                let b = rec.register_current("server-1");
                b.record_at(9, FlightKind::ServerAck, 1, 3, 1);
            });
        });
        let d1 = rec.dump();
        let d2 = rec.dump();
        assert_eq!(d1, d2, "dumping is non-destructive");
        let times: Vec<u64> = d1.events.iter().map(|e| e.t_us).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert_eq!(rec.rings(), 3);
    }

    #[test]
    fn thread_ring_registers_anonymous_rings_once() {
        let rec = FlightRecorder::new(8);
        let r1 = rec.thread_ring();
        let r2 = rec.thread_ring();
        assert!(Arc::ptr_eq(&r1, &r2));
        assert_eq!(r1.label(), "anon-0");
        // Two recorders on the same thread keep distinct rings.
        let other = FlightRecorder::new(8);
        assert_eq!(other.thread_ring().label(), "anon-0");
        assert!(Arc::ptr_eq(&rec.thread_ring(), &r1));
    }

    #[test]
    fn jsonl_round_trips_and_rejects_bad_headers() {
        let rec = FlightRecorder::new(8);
        let ring = rec.register_current("monitor");
        ring.record_at(1, FlightKind::MonitorCut, 7, 4, 0);
        ring.record_at(2, FlightKind::MonitorViolation, 7, 5, 0);
        let dump = rec.dump();
        let text = dump.to_jsonl();
        assert_eq!(FlightDump::parse(&text).unwrap(), dump);
        assert!(FlightDump::parse("").is_err());
        assert!(FlightDump::parse("{\"type\":\"metric\"}\n").is_err());
        let wrong = text.replacen("\"schema_version\":2", "\"schema_version\":9", 1);
        let err = FlightDump::parse(&wrong).unwrap_err();
        assert!(err.contains("schema v9"), "{err}");
        assert!(err.contains("v1–v2"), "{err}");
    }

    #[test]
    fn span_packing_round_trips_and_none_is_reserved() {
        assert_eq!(unpack_span(SPAN_NONE), None);
        for (client, op) in [(0, 0), (3, 12), (7, 39_999_999), (255, (1 << 40) - 2)] {
            assert_eq!(unpack_span(pack_span(client, op)), Some((client, op)));
        }
    }

    #[test]
    fn span_attributed_events_round_trip_and_v1_dumps_still_parse() {
        let rec = FlightRecorder::new(8);
        let ring = rec.register_current("server-0");
        ring.record_span_at(5, FlightKind::ServerAck, 0, 3, 1, pack_span(3, 12));
        ring.record_at(6, FlightKind::WalFlush, 0, 1, 250);
        let dump = rec.dump();
        assert_eq!(dump.events[0].span, pack_span(3, 12));
        assert_eq!(dump.events[1].span, SPAN_NONE);
        let text = dump.to_jsonl();
        assert!(text.contains("\"span\":"), "attributed events carry span");
        assert_eq!(FlightDump::parse(&text).unwrap(), dump);

        // A v1 dump (no span/proc fields) parses with defaults.
        let v1 = "{\"type\":\"flight_dump\",\"schema_version\":1,\"events\":1}\n\
                  {\"type\":\"flight_event\",\"ring\":\"client-3\",\"seq\":0,\"t_us\":7,\
                  \"kind\":\"bus_send\",\"pid\":3,\"a\":0,\"b\":1}\n";
        let parsed = FlightDump::parse(v1).expect("v1 dumps stay readable");
        assert_eq!(parsed.schema_version, 1);
        assert_eq!(parsed.events[0].span, SPAN_NONE);
        assert_eq!(parsed.events[0].key, KEY_NONE);
        assert_eq!(parsed.events[0].proc, "");
    }

    #[test]
    fn keyed_events_round_trip_and_unkeyed_dumps_stay_byte_identical() {
        let rec = FlightRecorder::new(8);
        let ring = rec.register_current("client-0");
        ring.record_span_key_at(3, FlightKind::OpStartWrite, 0, 1, 5, pack_span(0, 1), 42);
        ring.record_span_at(4, FlightKind::OpCompleteWrite, 0, 1, 5, pack_span(0, 1));
        let dump = rec.dump();
        assert_eq!(dump.events[0].key, 42);
        assert_eq!(dump.events[1].key, KEY_NONE);
        let text = dump.to_jsonl();
        assert!(text.contains("\"key\":42"), "keyed events carry key");
        assert_eq!(FlightDump::parse(&text).unwrap(), dump);

        // An unkeyed dump serializes without any `key` field at all —
        // pre-keyed consumers and goldens see exactly the old bytes.
        let rec2 = FlightRecorder::new(8);
        let ring2 = rec2.register_current("client-0");
        ring2.record_span_at(3, FlightKind::OpStartWrite, 0, 1, 5, pack_span(0, 1));
        assert!(!rec2.dump().to_jsonl().contains("\"key\""));
    }

    #[test]
    fn merge_remote_aligns_clocks_and_labels_processes() {
        let rec = FlightRecorder::new(8);
        let ring = rec.register_current("client-3");
        ring.record_at(100, FlightKind::OpStartWrite, 3, 1, encode_val(Some(9)));
        let mut merged = rec.dump();

        let remote = FlightDump {
            schema_version: FLIGHT_SCHEMA_VERSION,
            events: vec![FlightEvent {
                ring: "server-0".into(),
                seq: 0,
                t_us: 1_150,
                kind: FlightKind::ServerAck,
                pid: 0,
                a: 3,
                b: 1,
                span: pack_span(3, 1),
                key: KEY_NONE,
                proc: String::new(),
            }],
        };
        // Remote clock runs 1000µs ahead of ours: its t=1150 is our t=150.
        merged.merge_remote("s0", 1_000, &remote);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.events[1].t_us, 150);
        assert_eq!(merged.events[1].proc, "s0");
        assert_eq!(merged.events[1].span, pack_span(3, 1));
        // A remote clock *behind* ours shifts the other way; saturation at 0
        // keeps a large positive offset from wrapping.
        let mut m2 = FlightDump {
            schema_version: FLIGHT_SCHEMA_VERSION,
            events: Vec::new(),
        };
        m2.merge_remote("s1", -50, &remote);
        assert_eq!(m2.events[0].t_us, 1_200);
        m2.merge_remote("s2", i64::MAX, &remote);
        assert_eq!(m2.events[0].t_us, 0, "saturates, resorted to front");
        // Round trip: proc fields survive JSONL.
        let reparsed = FlightDump::parse(&merged.to_jsonl()).unwrap();
        assert_eq!(reparsed, merged);
    }

    #[test]
    fn last_n_takes_the_tail() {
        let rec = FlightRecorder::new(16);
        let ring = rec.register_current("client-0");
        for i in 0..10u64 {
            ring.record_at(i, FlightKind::BusSend, 0, i, 0);
        }
        let dump = rec.dump();
        let tail = dump.last_n(3);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail.events[0].a, 7);
        assert_eq!(dump.last_n(99).len(), 10);
    }

    #[test]
    fn dump_stems_get_monotonic_suffixes_on_collision() {
        // First use of a stem is unsuffixed — CI configs and tests address
        // artifacts by their exact expected names — and only repeats grow
        // a sequence number.
        let stem = "test-stem-collision";
        assert_eq!(unique_dump_stem(stem), stem);
        assert_eq!(unique_dump_stem(stem), format!("{stem}.2"));
        assert_eq!(unique_dump_stem(stem), format!("{stem}.3"));
        assert_eq!(unique_dump_stem("test-stem-other"), "test-stem-other");
    }

    #[test]
    fn racing_reader_never_sees_torn_kinds() {
        let rec = FlightRecorder::new(64);
        std::thread::scope(|s| {
            let writer_ring = rec.register_current("writer");
            s.spawn(move || {
                for i in 0..50_000u64 {
                    writer_ring.record(FlightKind::BusSend, 1, i, i);
                }
            });
            for _ in 0..50 {
                let dump = rec.dump();
                for e in &dump.events {
                    assert_eq!(e.kind, FlightKind::BusSend);
                    assert_eq!(e.a, e.b);
                }
            }
        });
    }
}
