//! Metric primitives and the registry that owns them.
//!
//! All primitives are lock-free atomics behind `Arc` handles: a handle is
//! obtained once (a mutex-guarded name lookup) and then incremented with
//! plain atomic operations, cheap enough to stay enabled in release builds
//! and on the explorer's hot paths. Values survive [`Registry::reset`] as
//! zeroed metrics — handles cached by instrumented code stay valid.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of histogram buckets: one per power of two, plus the zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing event counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge: a value that can move in both directions, with a
/// `fetch_max` for high-water marks.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger — a high-water mark.
    pub fn record_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared state of a histogram.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A histogram over `u64` samples with fixed log₂-scale buckets.
///
/// Bucket `0` holds the sample `0`; bucket `i ≥ 1` holds samples in
/// `[2^(i-1), 2^i)`. The top bucket (index 64) therefore holds
/// `[2^63, u64::MAX]` — every `u64` has a bucket, including `u64::MAX`.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

/// The bucket index for a sample (see [`Histogram`]).
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The smallest sample that lands in bucket `i`.
///
/// # Panics
///
/// Panics if `i >= HISTOGRAM_BUCKETS`.
#[must_use]
pub fn bucket_lower_bound(i: usize) -> u64 {
    assert!(i < HISTOGRAM_BUCKETS, "bucket index out of range");
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

impl Histogram {
    /// A private histogram not owned by any [`Registry`] — the per-thread
    /// shard of a sharded recorder, combined later with
    /// [`Histogram::merge`].
    #[must_use]
    pub fn unregistered() -> Histogram {
        Histogram(Arc::new(HistogramCore::new()))
    }

    /// Records one sample. The running sum saturates at `u64::MAX` instead
    /// of wrapping, so extreme samples can never make `sum` (and the mean
    /// derived from it) look small.
    pub fn record(&self, v: u64) {
        let core = &*self.0;
        core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&core.sum, v);
        core.min.fetch_min(v, Ordering::Relaxed);
        core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Folds every sample recorded in `other` into `self`, bucket by
    /// bucket.
    ///
    /// This is the aggregation path for sharded recording: each worker
    /// thread records into a private histogram with zero contention, and the
    /// shards are merged once at the end. Merging is equivalent to having
    /// recorded all samples into one histogram — counts, sums, min/max, and
    /// therefore every bucket-resolution percentile are identical. `other`
    /// is not modified; merging a histogram into itself doubles it.
    pub fn merge(&self, other: &Histogram) {
        let (dst, src) = (&*self.0, &*other.0);
        for (d, s) in dst.buckets.iter().zip(&src.buckets) {
            let c = s.load(Ordering::Relaxed);
            if c > 0 {
                d.fetch_add(c, Ordering::Relaxed);
            }
        }
        let count = src.count.load(Ordering::Relaxed);
        if count == 0 {
            return;
        }
        dst.count.fetch_add(count, Ordering::Relaxed);
        saturating_fetch_add(&dst.sum, src.sum.load(Ordering::Relaxed));
        dst.min
            .fetch_min(src.min.load(Ordering::Relaxed), Ordering::Relaxed);
        dst.max
            .fetch_max(src.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// An immutable copy of the current histogram state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.0;
        let count = core.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: core.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                core.min.load(Ordering::Relaxed)
            },
            max: core.max.load(Ordering::Relaxed),
            buckets: core
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let c = b.load(Ordering::Relaxed);
                    (c > 0).then_some((bucket_lower_bound(i), c))
                })
                .collect(),
        }
    }
}

/// Adds `v` to `cell`, clamping at `u64::MAX` instead of wrapping. Sample
/// sums are diagnostics: a saturated sum is visibly pegged, a wrapped sum
/// silently lies.
fn saturating_fetch_add(cell: &AtomicU64, v: u64) {
    if v > 0 {
        let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
            Some(s.saturating_add(v))
        });
    }
}

/// Shared state of a timer.
#[derive(Debug, Default)]
pub(crate) struct TimerCore {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl TimerCore {
    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// A wall-time accumulator for span-style timing scopes.
#[derive(Clone, Debug)]
pub struct Timer(Arc<TimerCore>);

impl Timer {
    /// Records one elapsed duration. `total_ns` saturates at `u64::MAX`.
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.0.total_ns, ns);
        self.0.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of spans recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// An immutable copy of the current timer state.
    #[must_use]
    pub fn snapshot(&self) -> TimerSnapshot {
        TimerSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            total_ns: self.0.total_ns.load(Ordering::Relaxed),
            max_ns: self.0.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples (saturating at `u64::MAX`).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(lower_bound, count)` pairs, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile of the recorded samples, at bucket resolution.
    ///
    /// Returns the **lower bound** of the bucket containing the sample of
    /// rank `⌈q · count⌉` (1-based, clamped to `[1, count]`) — i.e. the
    /// largest value known to be `≤` the true quantile, since a log₂ bucket
    /// only remembers that its samples lie in `[lower, 2·lower)`. Returns 0
    /// for an empty histogram. `q` is clamped to `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(lo, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return lo;
            }
        }
        // Unreachable for consistent snapshots (bucket counts sum to
        // `count`), but degrade gracefully to the top bucket.
        self.buckets.last().map_or(0, |&(lo, _)| lo)
    }

    /// Median, at bucket resolution (see [`HistogramSnapshot::percentile`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile, at bucket resolution.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile, at bucket resolution.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

/// Point-in-time copy of one timer.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TimerSnapshot {
    /// Number of spans.
    pub count: u64,
    /// Total wall time across spans, in nanoseconds.
    pub total_ns: u64,
    /// Longest single span, in nanoseconds.
    pub max_ns: u64,
}

/// A named collection of metrics.
///
/// Most code uses the process-wide registry via the crate-level free
/// functions; tests construct private registries for isolation.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    timers: Mutex<BTreeMap<String, Timer>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex is poisoned.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.counters.lock().unwrap();
        m.entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex is poisoned.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.gauges.lock().unwrap();
        m.entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex is poisoned.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.histograms.lock().unwrap();
        m.entry(name.to_string())
            .or_insert_with(|| Histogram(Arc::new(HistogramCore::new())))
            .clone()
    }

    /// The timer named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex is poisoned.
    pub fn timer(&self, name: &str) -> Timer {
        let mut m = self.timers.lock().unwrap();
        m.entry(name.to_string())
            .or_insert_with(|| Timer(Arc::new(TimerCore::default())))
            .clone()
    }

    /// Zeroes every metric **in place**: handles cached by instrumented code
    /// remain valid and keep writing to the same (now zeroed) metrics.
    ///
    /// # Panics
    ///
    /// Panics if a registry mutex is poisoned.
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.0.store(0, Ordering::Relaxed);
        }
        for g in self.gauges.lock().unwrap().values() {
            g.0.store(0, Ordering::Relaxed);
        }
        for h in self.histograms.lock().unwrap().values() {
            h.0.reset();
        }
        for t in self.timers.lock().unwrap().values() {
            t.0.reset();
        }
    }

    /// A consistent-enough point-in-time copy of every metric (each metric
    /// is read atomically; the set is read under the registry locks).
    ///
    /// # Panics
    ///
    /// Panics if a registry mutex is poisoned.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            timers: self
                .timers
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a whole [`Registry`], renderable as a human
/// table or as JSON.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Snapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Timers, sorted by name.
    pub timers: Vec<(String, TimerSnapshot)>,
}

impl Snapshot {
    /// The value of counter `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// The value of gauge `name`, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Returns `true` if no metric has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.timers.is_empty()
    }

    /// Renders an aligned human-readable table, one metric per line.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for (k, v) in &self.counters {
            rows.push((k.clone(), v.to_string()));
        }
        for (k, v) in &self.gauges {
            rows.push((format!("{k} (gauge)"), v.to_string()));
        }
        for (k, h) in &self.histograms {
            rows.push((
                format!("{k} (hist)"),
                format!(
                    "count={} sum={} min={} max={} mean={:.1}",
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    h.mean()
                ),
            ));
        }
        for (k, t) in &self.timers {
            rows.push((
                format!("{k} (timer)"),
                format!(
                    "count={} total={:.3}ms max={:.3}ms",
                    t.count,
                    t.total_ns as f64 / 1e6,
                    t.max_ns as f64 / 1e6
                ),
            ));
        }
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in rows {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        out
    }

    /// Serializes every metric as one JSON object (see `docs/OBS_SCHEMA.md`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), histogram_json(h)))
                        .collect(),
                ),
            ),
            (
                "timers".into(),
                Json::Obj(
                    self.timers
                        .iter()
                        .map(|(k, t)| {
                            (
                                k.clone(),
                                Json::Obj(vec![
                                    ("count".into(), Json::UInt(t.count)),
                                    ("total_ns".into(), Json::UInt(t.total_ns)),
                                    ("max_ns".into(), Json::UInt(t.max_ns)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The per-metric JSONL records of this snapshot, one [`Json`] object
    /// per metric, in `metric` record form (see `docs/OBS_SCHEMA.md`).
    #[must_use]
    pub fn to_jsonl_records(&self) -> Vec<Json> {
        let mut out = Vec::new();
        for (k, v) in &self.counters {
            out.push(Json::Obj(vec![
                ("type".into(), Json::Str("counter".into())),
                ("name".into(), Json::Str(k.clone())),
                ("value".into(), Json::UInt(*v)),
            ]));
        }
        for (k, v) in &self.gauges {
            out.push(Json::Obj(vec![
                ("type".into(), Json::Str("gauge".into())),
                ("name".into(), Json::Str(k.clone())),
                ("value".into(), Json::Int(*v)),
            ]));
        }
        for (k, h) in &self.histograms {
            let mut obj = vec![
                ("type".into(), Json::Str("histogram".into())),
                ("name".into(), Json::Str(k.clone())),
            ];
            if let Json::Obj(fields) = histogram_json(h) {
                obj.extend(fields);
            }
            out.push(Json::Obj(obj));
        }
        for (k, t) in &self.timers {
            out.push(Json::Obj(vec![
                ("type".into(), Json::Str("timer".into())),
                ("name".into(), Json::Str(k.clone())),
                ("count".into(), Json::UInt(t.count)),
                ("total_ns".into(), Json::UInt(t.total_ns)),
                ("max_ns".into(), Json::UInt(t.max_ns)),
            ]));
        }
        out
    }
}

fn histogram_json(h: &HistogramSnapshot) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::UInt(h.count)),
        ("sum".into(), Json::UInt(h.sum)),
        ("min".into(), Json::UInt(h.min)),
        ("max".into(), Json::UInt(h.max)),
        (
            "buckets".into(),
            Json::Arr(
                h.buckets
                    .iter()
                    .map(|(lo, c)| Json::Arr(vec![Json::UInt(*lo), Json::UInt(*c)]))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_get() {
        let r = Registry::new();
        let c = r.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name, same counter.
        assert_eq!(r.counter("x").get(), 5);
        assert_eq!(r.counter("y").get(), 0);
    }

    #[test]
    fn gauges_set_add_and_record_max() {
        let r = Registry::new();
        let g = r.gauge("g");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.record_max(5);
        assert_eq!(g.get(), 7, "record_max must not lower the gauge");
        g.record_max(40);
        assert_eq!(g.get(), 40);
    }

    #[test]
    fn histogram_bucketing_edge_cases() {
        // The two extreme samples of the issue checklist: 0 and u64::MAX.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index((1 << 63) - 1), 63);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(64), 1 << 63);

        let r = Registry::new();
        let h = r.histogram("h");
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.sum, u64::MAX); // 0 + MAX
        assert_eq!(s.buckets, vec![(0, 1), (1 << 63, 1)]);
    }

    #[test]
    fn every_sample_has_exactly_one_bucket() {
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < HISTOGRAM_BUCKETS);
            assert!(bucket_lower_bound(i) <= v);
            if i + 1 < HISTOGRAM_BUCKETS {
                assert!(v < bucket_lower_bound(i + 1), "sample {v} above bucket {i}");
            }
        }
    }

    #[test]
    fn percentiles_pin_bucket_boundary_behavior() {
        let r = Registry::new();
        let h = r.histogram("p");
        // Samples 1, 2, 3, 4 land in buckets 1 ([1,2)), 2 ([2,4)) ×2,
        // 3 ([4,8)): percentile reports the bucket *lower bound* of the
        // rank-⌈q·n⌉ sample.
        for v in [1u64, 2, 3, 4] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(1, 1), (2, 2), (4, 1)]);
        assert_eq!(s.percentile(0.0), 1); // rank clamps to 1
        assert_eq!(s.percentile(0.25), 1); // rank 1 → bucket [1,2)
        assert_eq!(s.p50(), 2); // rank 2 → bucket [2,4)
        assert_eq!(s.percentile(0.75), 2); // rank 3 → still [2,4)
        assert_eq!(s.p90(), 4); // rank 4 → bucket [4,8)
        assert_eq!(s.p99(), 4);
        assert_eq!(s.percentile(1.0), 4);

        // A sample exactly on a power of two sits in the *upper* bucket:
        // 2 is the lower bound of [2,4), so p50 of {1, 2} is 2... and of
        // {1} alone is 1.
        let h2 = r.histogram("p2");
        h2.record(1);
        assert_eq!(h2.snapshot().p50(), 1);
        h2.record(2);
        assert_eq!(h2.snapshot().p50(), 1); // rank ⌈0.5·2⌉ = 1 → bucket [1,2)
        assert_eq!(h2.snapshot().p90(), 2); // rank 2 → bucket [2,4)
    }

    #[test]
    fn percentiles_at_the_extremes() {
        let r = Registry::new();
        // Empty histogram: all percentiles are 0.
        let empty = r.histogram("e").snapshot();
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p99(), 0);
        assert_eq!(empty.percentile(1.0), 0);

        // The zero bucket and the top bucket: p50 of {0, u64::MAX} is the
        // zero bucket; p99 is the top bucket's lower bound 2^63 (bucket
        // resolution, not the sample itself).
        let h = r.histogram("x");
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 1 << 63);

        // Out-of-range q is clamped, not a panic.
        assert_eq!(s.percentile(-3.0), 0);
        assert_eq!(s.percentile(7.5), 1 << 63);

        // Skewed distribution: 99 zeros and one huge sample — p90 stays in
        // the zero bucket, p99 does too (rank 99), but percentile(0.999)
        // crosses into the top bucket.
        let sk = r.histogram("skew");
        for _ in 0..99 {
            sk.record(0);
        }
        sk.record(1 << 40);
        let s = sk.snapshot();
        assert_eq!(s.p90(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.percentile(0.999), 1 << 40);
    }

    #[test]
    fn merged_shards_match_a_single_histogram_exactly() {
        // The per-client-thread sharding pattern: 8 shards record disjoint
        // sample streams, the shards are merged, and the result must be
        // indistinguishable — including every percentile — from one
        // histogram that saw all samples.
        let reference = Histogram::unregistered();
        let merged = Histogram::unregistered();
        let shards: Vec<Histogram> = (0..8).map(|_| Histogram::unregistered()).collect();
        let mut g = SplitMixLite(99);
        for i in 0..10_000u64 {
            let v = g.next() % (1 << 20);
            reference.record(v);
            shards[(i % 8) as usize].record(v);
        }
        for s in &shards {
            merged.merge(s);
        }
        let (a, b) = (reference.snapshot(), merged.snapshot());
        assert_eq!(a, b, "merge must be sample-order independent");
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.percentile(q), b.percentile(q), "percentile {q} drifted");
        }
        // Shards are untouched by the merge.
        let shard_total: u64 = shards.iter().map(Histogram::count).sum();
        assert_eq!(shard_total, 10_000);
    }

    /// A tiny local generator so this test has no cross-crate dependency.
    struct SplitMixLite(u64);
    impl SplitMixLite {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn merging_an_empty_shard_is_a_no_op() {
        let h = Histogram::unregistered();
        h.record(5);
        let before = h.snapshot();
        h.merge(&Histogram::unregistered());
        assert_eq!(h.snapshot(), before);
        // Empty ∪ empty stays empty (min must not become u64::MAX).
        let e = Histogram::unregistered();
        e.merge(&Histogram::unregistered());
        let s = e.snapshot();
        assert_eq!((s.count, s.min, s.max), (0, 0, 0));
    }

    #[test]
    fn merging_into_an_empty_destination_copies_the_source() {
        // The other degenerate direction: a fresh destination must adopt
        // the source exactly — in particular its min, which starts at the
        // u64::MAX sentinel in the destination and must not survive the
        // merge.
        let src = Histogram::unregistered();
        for v in [3, 9, 1 << 14] {
            src.record(v);
        }
        let dst = Histogram::unregistered();
        dst.merge(&src);
        let (a, b) = (dst.snapshot(), src.snapshot());
        assert_eq!(a, b, "empty ∪ src must equal src");
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(a.percentile(q), b.percentile(q));
        }
        assert_eq!((a.count, a.min, a.max), (3, 3, 1 << 14));
    }

    #[test]
    fn empty_histogram_snapshot_is_sane() {
        let r = Registry::new();
        let s = r.histogram("h").snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn concurrent_counter_increments_from_many_threads() {
        let r = Registry::new();
        let c = r.counter("concurrent");
        let h = r.histogram("concurrent.h");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i % 7);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.snapshot().max, 6);
    }

    #[test]
    fn reset_zeroes_in_place_and_keeps_handles_valid() {
        let r = Registry::new();
        let c = r.counter("c");
        let g = r.gauge("g");
        let h = r.histogram("h");
        let t = r.timer("t");
        c.add(3);
        g.set(-2);
        h.record(9);
        t.record(Duration::from_millis(1));
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(t.count(), 0);
        // Old handles still write to the registry.
        c.inc();
        assert_eq!(r.counter("c").get(), 1);
    }

    #[test]
    fn snapshot_renders_table_and_json() {
        let r = Registry::new();
        r.counter("a.count").add(2);
        r.gauge("b.depth").set(5);
        r.histogram("c.sizes").record(100);
        r.timer("d.time").record(Duration::from_micros(1500));
        let s = r.snapshot();
        assert_eq!(s.counter("a.count"), Some(2));
        assert_eq!(s.gauge("b.depth"), Some(5));
        assert!(!s.is_empty());
        let table = s.to_table();
        assert!(table.contains("a.count"));
        assert!(table.contains("b.depth (gauge)"));
        assert!(table.contains("c.sizes (hist)"));
        assert!(table.contains("d.time (timer)"));
        let json = s.to_json().to_string();
        assert!(json.contains("\"a.count\":2"));
        assert!(json.contains("\"histograms\""));
        // One JSONL record per metric.
        assert_eq!(s.to_jsonl_records().len(), 4);
    }

    #[test]
    fn timer_accumulates() {
        let r = Registry::new();
        let t = r.timer("t");
        t.record(Duration::from_nanos(10));
        t.record(Duration::from_nanos(30));
        let s = t.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 40);
        assert_eq!(s.max_ns, 30);
    }

    #[test]
    fn bucket_boundaries_are_exact_around_the_top_bucket() {
        // The top bucket holds [2^63, u64::MAX]: both endpoints index 64,
        // and the next-lower boundary is one below 2^63.
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
        assert_eq!(bucket_lower_bound(64), 1u64 << 63);
        assert_eq!(bucket_lower_bound(HISTOGRAM_BUCKETS - 1), 1u64 << 63);
        // Adjacent buckets tile with no gap or overlap.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i);
            assert_eq!(bucket_index(bucket_lower_bound(i + 1) - 1), i);
        }
    }

    #[test]
    fn histogram_sum_saturates_instead_of_wrapping() {
        let h = Histogram::unregistered();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(1);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, u64::MAX, "sum pegs at MAX, never wraps");
        // Merging saturated shards stays saturated.
        let dst = Histogram::unregistered();
        dst.record(u64::MAX);
        dst.merge(&h);
        assert_eq!(dst.snapshot().sum, u64::MAX);
        assert_eq!(dst.snapshot().count, 4);
    }

    #[test]
    fn timer_total_saturates_instead_of_wrapping() {
        let t = Registry::new().timer("t");
        t.record(Duration::from_secs(u64::MAX)); // clamps to MAX ns
        t.record(Duration::from_nanos(7));
        let s = t.snapshot();
        assert_eq!(s.total_ns, u64::MAX);
        assert_eq!(s.max_ns, u64::MAX);
        assert_eq!(s.count, 2);
    }
}
