//! A mergeable streaming quantile sketch for latency telemetry.
//!
//! [`QuantileSketch`] is an HDR-style log-linear sketch: values are bucketed
//! by octave (power of two) with 8 linear sub-buckets per octave, so the
//! lower bound reported for any quantile is within 12.5% of the true sample
//! value (exact below 8). Recording is one relaxed atomic increment plus a
//! saturating sum update — cheap enough for the chaos runtime's per-op hot
//! path — and sketches merge commutatively, so per-thread shards can be
//! combined into one live view without locks.
//!
//! Unlike [`Histogram`](crate::Histogram) (65 power-of-two buckets, a
//! registry metric), the sketch is a free-standing value type: the `--watch`
//! telemetry thread reads quantiles from it *while* client threads record,
//! which a registry snapshot cycle would make needlessly expensive.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Linear sub-buckets per octave, as a bit count (2³ = 8 sub-buckets).
const SUB_BITS: usize = 3;

/// Total bucket count: 8 exact buckets for values `0..8`, then 8 sub-buckets
/// for each of the 61 octaves `[2^3, 2^4) ..= [2^63, 2^64)`.
pub const SKETCH_BUCKETS: usize = 8 + 61 * 8;

/// The bucket index for sample `v`. Total over all `v`: every sample lands
/// in exactly one of the [`SKETCH_BUCKETS`] buckets.
#[must_use]
pub fn sketch_index(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros() as usize; // 3..=63
        let sub = ((v >> (octave - SUB_BITS)) & 7) as usize;
        8 + (octave - SUB_BITS) * 8 + sub
    }
}

/// The smallest sample value that lands in bucket `i`.
///
/// # Panics
///
/// Panics if `i >= SKETCH_BUCKETS`.
#[must_use]
pub fn sketch_lower_bound(i: usize) -> u64 {
    assert!(i < SKETCH_BUCKETS, "bucket index {i} out of range");
    if i < 8 {
        i as u64
    } else {
        let octave = SUB_BITS + (i - 8) / 8;
        let sub = ((i - 8) % 8) as u64;
        (1u64 << octave) + (sub << (octave - SUB_BITS))
    }
}

struct SketchCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A thread-safe, mergeable log-linear quantile sketch (≤ 12.5% relative
/// error on reported bucket lower bounds; exact below 8).
///
/// Cloning shares the underlying buckets, like the registry metric handles.
#[derive(Clone)]
pub struct QuantileSketch(Arc<SketchCore>);

impl Default for QuantileSketch {
    fn default() -> QuantileSketch {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// A fresh, empty sketch. All buckets are allocated up front; recording
    /// never allocates.
    #[must_use]
    pub fn new() -> QuantileSketch {
        QuantileSketch(Arc::new(SketchCore {
            buckets: (0..SKETCH_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one sample (relaxed atomics; the sum saturates at
    /// `u64::MAX` instead of wrapping).
    pub fn record(&self, v: u64) {
        let core = &self.0;
        core.buckets[sketch_index(v)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        saturating_add(&core.sum, v);
        core.min.fetch_min(v, Ordering::Relaxed);
        core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Folds `other`'s samples into `self`. Merging an empty sketch is a
    /// no-op, and merge is commutative: `a.merge(&b)` and `b.merge(&a)`
    /// yield equal snapshots.
    pub fn merge(&self, other: &QuantileSketch) {
        let (dst, src) = (&self.0, &other.0);
        for (d, s) in dst.buckets.iter().zip(src.buckets.iter()) {
            let c = s.load(Ordering::Relaxed);
            if c > 0 {
                d.fetch_add(c, Ordering::Relaxed);
            }
        }
        let count = src.count.load(Ordering::Relaxed);
        if count == 0 {
            return;
        }
        dst.count.fetch_add(count, Ordering::Relaxed);
        saturating_add(&dst.sum, src.sum.load(Ordering::Relaxed));
        dst.min
            .fetch_min(src.min.load(Ordering::Relaxed), Ordering::Relaxed);
        dst.max
            .fetch_max(src.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy of the sketch contents.
    #[must_use]
    pub fn snapshot(&self) -> SketchSnapshot {
        let core = &self.0;
        let count = core.count.load(Ordering::Relaxed);
        SketchSnapshot {
            count,
            sum: core.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                core.min.load(Ordering::Relaxed)
            },
            max: core.max.load(Ordering::Relaxed),
            buckets: core
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let c = b.load(Ordering::Relaxed);
                    (c > 0).then(|| (sketch_lower_bound(i), c))
                })
                .collect(),
        }
    }

    /// Convenience: the lower bound of the bucket holding the `q`-quantile
    /// sample (see [`SketchSnapshot::quantile`]).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

fn saturating_add(cell: &AtomicU64, v: u64) {
    if v > 0 {
        let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
            Some(s.saturating_add(v))
        });
    }
}

/// A point-in-time copy of a [`QuantileSketch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SketchSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (saturating at `u64::MAX`).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl SketchSnapshot {
    /// The lower bound of the bucket containing the sample of rank
    /// `⌈q · count⌉` (clamped to `[1, count]`). Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for &(lower, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return lower;
            }
        }
        self.max
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_value_lands_in_exactly_one_bucket() {
        // Bucket boundaries tile: lower_bound(i) .. lower_bound(i+1).
        for i in 0..SKETCH_BUCKETS - 1 {
            let lo = sketch_lower_bound(i);
            let hi = sketch_lower_bound(i + 1);
            assert!(lo < hi, "bucket {i} empty: [{lo}, {hi})");
            assert_eq!(sketch_index(lo), i);
            assert_eq!(sketch_index(hi - 1), i, "top of bucket {i}");
        }
        assert_eq!(sketch_index(u64::MAX), SKETCH_BUCKETS - 1);
        assert_eq!(sketch_index(0), 0);
        assert_eq!(sketch_index(7), 7);
        assert_eq!(sketch_index(8), 8);
    }

    #[test]
    fn relative_error_is_within_one_eighth() {
        for v in [8u64, 9, 100, 1_000, 65_535, 1 << 40, u64::MAX] {
            let lo = sketch_lower_bound(sketch_index(v));
            assert!(lo <= v);
            assert!(v - lo <= v / 8, "bucket too wide for {v}: lower {lo}");
        }
        for v in 0..8u64 {
            assert_eq!(sketch_lower_bound(sketch_index(v)), v, "exact below 8");
        }
    }

    #[test]
    fn quantiles_track_fixtures() {
        let s = QuantileSketch::new();
        for v in 1..=100u64 {
            s.record(v);
        }
        let snap = s.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 100);
        // p50 sample is 50; its bucket lower bound is within 12.5%.
        let p50 = snap.quantile(0.50);
        assert!(p50 <= 50 && 50 - p50 <= 50 / 8, "p50 = {p50}");
        let p99 = snap.quantile(0.99);
        assert!(p99 <= 99 && 99 - p99 <= 99 / 8, "p99 = {p99}");
        assert_eq!(snap.quantile(0.0), 1, "rank clamps to the first sample");
        assert_eq!(snap.quantile(1.0), sketch_lower_bound(sketch_index(100)));
    }

    #[test]
    fn merge_with_empty_is_a_no_op() {
        let a = QuantileSketch::new();
        for v in [3u64, 900, 12] {
            a.record(v);
        }
        let before = a.snapshot();
        a.merge(&QuantileSketch::new());
        assert_eq!(a.snapshot(), before);

        // And merging *into* an empty sketch copies everything.
        let b = QuantileSketch::new();
        b.merge(&a);
        assert_eq!(b.snapshot(), before);
    }

    #[test]
    fn merge_is_commutative_on_fixtures() {
        let build = |vals: &[u64]| {
            let s = QuantileSketch::new();
            for &v in vals {
                s.record(v);
            }
            s
        };
        let ab = build(&[1, 5, 1 << 20, u64::MAX]);
        ab.merge(&build(&[0, 7, 4096, 4097]));
        let ba = build(&[0, 7, 4096, 4097]);
        ba.merge(&build(&[1, 5, 1 << 20, u64::MAX]));
        assert_eq!(ab.snapshot(), ba.snapshot());
        assert_eq!(ab.snapshot().count, 8);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let s = QuantileSketch::new();
        s.record(u64::MAX);
        s.record(u64::MAX);
        assert_eq!(s.snapshot().sum, u64::MAX);
        let t = QuantileSketch::new();
        t.record(u64::MAX);
        t.merge(&s);
        assert_eq!(t.snapshot().sum, u64::MAX);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let s = QuantileSketch::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        s.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(s.count(), 4000);
        assert_eq!(
            s.snapshot().buckets.iter().map(|(_, c)| c).sum::<u64>(),
            4000
        );
    }
}
