//! Structured-record sinks: the [`Recorder`] trait plus JSONL and
//! in-memory implementations.
//!
//! A recorder receives a stream of [`Json`] objects — trace events,
//! scheduler decisions, per-run summaries, metric snapshots — and
//! persists them one per line ("JSONL"). The schema of the records the
//! workspace emits is documented in `docs/OBS_SCHEMA.md`.

use crate::json::Json;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// A sink for structured observability records.
pub trait Recorder {
    /// Appends one record.
    fn record(&mut self, record: &Json);

    /// Flushes any buffered records to stable storage. Default: no-op.
    fn flush(&mut self) {}
}

/// A [`Recorder`] that appends records to a file, one compact JSON object
/// per line (JSON Lines).
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
    path: PathBuf,
    lines: u64,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory or file creation.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlSink {
            out: BufWriter::new(File::create(&path)?),
            path,
            lines: 0,
        })
    }

    /// The path this sink writes to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of records written so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl Recorder for JsonlSink {
    fn record(&mut self, record: &Json) {
        // I/O errors on a metrics sink must never take down the run;
        // a short metrics file is diagnosable, a crashed experiment is not.
        let _ = writeln!(self.out, "{record}");
        self.lines += 1;
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// A [`Recorder`] that keeps records in memory — for tests and for
/// programmatic inspection.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct VecSink {
    /// The records received, in order.
    pub records: Vec<Json>,
}

impl VecSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> VecSink {
        VecSink::default()
    }
}

impl Recorder for VecSink {
    fn record(&mut self, record: &Json) {
        self.records.push(record.clone());
    }
}

/// Parses a JSONL document: one JSON value per non-empty line.
///
/// # Errors
///
/// Returns the first line's [`crate::json::JsonError`] (with the 1-based
/// line number prepended to the message) on malformed input.
pub fn parse_jsonl(text: &str) -> Result<Vec<Json>, crate::json::JsonError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Json::parse(line) {
            Ok(v) => out.push(v),
            Err(mut e) => {
                e.msg = format!("line {}: {}", i + 1, e.msg);
                return Err(e);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_collects() {
        let mut sink = VecSink::new();
        sink.record(&Json::Int(1));
        sink.record(&Json::Str("two".into()));
        sink.flush();
        assert_eq!(sink.records, vec![Json::Int(1), Json::Str("two".into())]);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("blunt-obs-test");
        let path = dir.join("sink.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.record(&Json::Obj(vec![("a".into(), Json::UInt(1))]));
        sink.record(&Json::Obj(vec![("b".into(), Json::Str("x\ny".into()))]));
        assert_eq!(sink.lines(), 2);
        assert_eq!(sink.path(), path.as_path());
        drop(sink); // flush
        let text = std::fs::read_to_string(&path).unwrap();
        let records = parse_jsonl(&text).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(records[1].get("b").and_then(Json::as_str), Some("x\ny"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_jsonl_skips_blank_lines_and_reports_line_numbers() {
        let records = parse_jsonl("1\n\n  \n2\n").unwrap();
        assert_eq!(records, vec![Json::Int(1), Json::Int(2)]);
        let err = parse_jsonl("1\nnot json\n").unwrap_err();
        assert!(err.msg.contains("line 2"), "got: {}", err.msg);
    }
}
