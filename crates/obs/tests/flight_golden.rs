//! Golden-file pin of the flight-recorder JSONL schema.
//!
//! The dump format is a contract consumed outside this crate (the
//! `blunt_trace` diagram renderer, CI artifact tooling, human `grep`), so
//! its byte-level shape is pinned here: a recorder fed a fixed event script
//! at fixed timestamps must serialize to exactly the committed golden file,
//! and the golden file must parse back into the same events and re-serialize
//! byte-identically. Regenerate intentionally with
//! `BLESS=1 cargo test -p blunt-obs --test flight_golden`.

use blunt_obs::flight::{encode_val, pack_msg, MSG_ACK, MSG_QUERY, MSG_UPDATE};
use blunt_obs::{FlightDump, FlightKind, FlightRecorder, FLIGHT_SCHEMA_VERSION};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/flight_dump.jsonl"
);

/// A fixed script exercising every event-kind family: op boundaries,
/// bus traffic, fault decisions, server lifecycle, monitor verdicts.
fn scripted_dump() -> FlightDump {
    let rec = FlightRecorder::new(64);
    let client = rec.register_current("client-3");
    client.record_at(10, FlightKind::OpStartWrite, 3, 7, encode_val(Some(42)));
    client.record_at(11, FlightKind::BusSend, 3, 0, pack_msg(MSG_QUERY, 1));
    client.record_at(12, FlightKind::FaultDrop, 3, 1, pack_msg(MSG_QUERY, 1));
    client.record_at(14, FlightKind::FaultDelay, 3, 2, 3);
    client.record_at(30, FlightKind::OpRetransmit, 3, 1, 0);
    client.record_at(44, FlightKind::BusDeliver, 3, 0, pack_msg(MSG_ACK, 1));
    client.record_at(45, FlightKind::OpCompleteWrite, 3, 7, encode_val(None));
    client.record_at(50, FlightKind::OpStartRead, 3, 8, encode_val(None));
    client.record_at(61, FlightKind::OpCompleteRead, 3, 8, encode_val(Some(42)));

    let server = rec.register_current("server-0");
    server.record_at(20, FlightKind::BusDeliver, 0, 3, pack_msg(MSG_UPDATE, 1));
    server.record_at(21, FlightKind::WalFlush, 0, 1, 0);
    server.record_at(22, FlightKind::ServerAck, 0, 3, 1);
    server.record_at(33, FlightKind::FaultCrashDrop, 0, 1, 4);
    server.record_at(34, FlightKind::FaultPartitionDrop, 0, 2, 1);
    server.record_at(35, FlightKind::ServerCrash, 0, 2, 0);
    server.record_at(40, FlightKind::ServerRecover, 0, 512, 0);

    let monitor = rec.register_current("monitor");
    monitor.record_at(46, FlightKind::MonitorCut, 7, 1, 0);
    monitor.record_at(62, FlightKind::MonitorViolation, 7, 1, 0);

    rec.dump()
}

#[test]
fn dump_serializes_to_the_committed_golden_file() {
    let jsonl = scripted_dump().to_jsonl();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN, &jsonl).expect("bless golden file");
    }
    let golden = std::fs::read_to_string(GOLDEN).expect("golden file exists (BLESS=1 to create)");
    assert_eq!(
        jsonl, golden,
        "flight JSONL schema drifted from the golden file — if intentional, \
         re-bless with BLESS=1 and bump FLIGHT_SCHEMA_VERSION"
    );
}

#[test]
fn golden_file_round_trips_byte_identically() {
    let golden = std::fs::read_to_string(GOLDEN).expect("golden file exists");
    let parsed = FlightDump::parse(&golden).expect("golden parses");
    assert_eq!(parsed.schema_version, FLIGHT_SCHEMA_VERSION);
    assert_eq!(parsed.events, scripted_dump().events);
    assert_eq!(
        parsed.to_jsonl(),
        golden,
        "parse → serialize must be the identity on the golden file"
    );
}

#[test]
fn events_interleave_across_rings_in_time_order() {
    let dump = scripted_dump();
    let times: Vec<u64> = dump.events.iter().map(|e| e.t_us).collect();
    let mut sorted = times.clone();
    sorted.sort_unstable();
    assert_eq!(times, sorted, "dump must be globally time-ordered");
    assert_eq!(dump.len(), 18);
    // The last-N window keeps the newest events.
    let tail = dump.last_n(3);
    assert_eq!(tail.len(), 3);
    assert_eq!(tail.events[2].kind, FlightKind::MonitorViolation);
}
