//! Randomized concurrent programs (Section 2.3 of the paper).
//!
//! A program `P(O)` is a set of processes that invoke methods on shared
//! objects `O`, perform local computation, and execute `random(V)` steps.
//! This crate represents programs as **data**: a tiny flat instruction set
//! ([`instr::Instr`]) over an expression language ([`expr::Expr`]),
//! interpreted by a per-process state machine ([`state::ProgState`]).
//!
//! Representing programs as data rather than as Rust control flow has two
//! payoffs:
//!
//! 1. the composed systems in `blunt-abd` / `blunt-registers` stay `Clone +
//!    Eq + Hash`, which the exact adversary explorer requires;
//! 2. the *same* program text runs unchanged against atomic objects,
//!    linearizable objects, and preamble-iterated objects — the paper's
//!    substitution setup (`P(O₁)` vs `P(O₂)` for equivalent objects).
//!
//! The concrete programs of the paper live here too:
//!
//! - [`weakener`] — Algorithm 1, the three-process distillation of the
//!   Hadzilacos–Hu–Toueg weakener;
//! - [`ghw`] — the same adversarial structure expressed against a snapshot
//!   object (the Golab–Higham–Woelfel style example of Section 6);
//! - [`round_based`] — the round-based program family of the Section 7
//!   discussion (`k > T·s`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod def;
pub mod expr;
pub mod ghw;
pub mod instr;
pub mod round_based;
pub mod state;
pub mod weakener;

pub use def::ProgramDef;
pub use expr::Expr;
pub use instr::Instr;
pub use state::{ProcMode, ProgCmd, ProgState};
