//! The expression language for local computation.
//!
//! Local computation in the paper's programs is deliberately minimal — the
//! weakener needs equality tests, boolean conjunction, and `1 − c`. The
//! language here covers exactly the constructs the reproduced programs use,
//! plus tuple indexing for snapshot views.

use blunt_core::value::Val;
use std::fmt;

/// An expression over a process's local variables.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// A literal value.
    Const(Val),
    /// The local variable with the given index.
    Var(u8),
    /// `1 − e` (for integer `e`); the weakener's "other side of the coin".
    OneMinus(Box<Expr>),
    /// Structural equality, yielding `Int(1)` or `Int(0)`.
    Eq(Box<Expr>, Box<Expr>),
    /// Logical conjunction of integer truth values (non-zero = true).
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction of integer truth values.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation of an integer truth value.
    Not(Box<Expr>),
    /// Component `i` of a tuple value (e.g. a snapshot view).
    TupleGet(Box<Expr>, usize),
}

/// Why evaluation failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// A variable index beyond the process's variable count.
    UnboundVar(u8),
    /// An operator applied to a value of the wrong shape.
    TypeMismatch {
        /// The operator that failed.
        op: &'static str,
        /// The offending value.
        value: Val,
    },
    /// Tuple index out of range.
    IndexOutOfRange {
        /// Requested index.
        index: usize,
        /// Tuple length.
        len: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar(v) => write!(f, "unbound variable x{v}"),
            EvalError::TypeMismatch { op, value } => {
                write!(f, "operator {op} applied to incompatible value {value}")
            }
            EvalError::IndexOutOfRange { index, len } => {
                write!(f, "tuple index {index} out of range for length {len}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl Expr {
    /// Shorthand for a constant integer.
    #[must_use]
    pub fn int(i: i64) -> Expr {
        Expr::Const(Val::Int(i))
    }

    /// Shorthand for a variable reference.
    #[must_use]
    pub fn var(i: u8) -> Expr {
        Expr::Var(i)
    }

    /// Shorthand for equality.
    #[must_use]
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Eq(Box::new(a), Box::new(b))
    }

    /// Shorthand for conjunction.
    #[must_use]
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    /// Shorthand for disjunction.
    #[must_use]
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Or(Box::new(a), Box::new(b))
    }

    /// Shorthand for `1 − e`.
    #[must_use]
    pub fn one_minus(e: Expr) -> Expr {
        Expr::OneMinus(Box::new(e))
    }

    /// Shorthand for negation.
    #[allow(clippy::should_implement_trait)] // constructor, not an operator impl
    #[must_use]
    pub fn not(e: Expr) -> Expr {
        Expr::Not(Box::new(e))
    }

    /// Shorthand for tuple indexing.
    #[must_use]
    pub fn get(e: Expr, index: usize) -> Expr {
        Expr::TupleGet(Box::new(e), index)
    }

    /// Evaluates the expression against a variable environment.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] for unbound variables, shape mismatches, or
    /// out-of-range tuple indices.
    pub fn eval(&self, vars: &[Val]) -> Result<Val, EvalError> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Var(i) => vars
                .get(*i as usize)
                .cloned()
                .ok_or(EvalError::UnboundVar(*i)),
            Expr::OneMinus(e) => {
                let v = e.eval(vars)?;
                match v.as_int() {
                    Some(i) => Ok(Val::Int(1 - i)),
                    None => Err(EvalError::TypeMismatch {
                        op: "1 − _",
                        value: v,
                    }),
                }
            }
            Expr::Eq(a, b) => {
                let va = a.eval(vars)?;
                let vb = b.eval(vars)?;
                Ok(Val::Int(i64::from(va == vb)))
            }
            Expr::And(a, b) => {
                let va = truth(a.eval(vars)?, "and")?;
                // Short-circuit like the source programs would.
                if !va {
                    return Ok(Val::Int(0));
                }
                let vb = truth(b.eval(vars)?, "and")?;
                Ok(Val::Int(i64::from(vb)))
            }
            Expr::Or(a, b) => {
                let va = truth(a.eval(vars)?, "or")?;
                if va {
                    return Ok(Val::Int(1));
                }
                let vb = truth(b.eval(vars)?, "or")?;
                Ok(Val::Int(i64::from(vb)))
            }
            Expr::Not(e) => {
                let v = truth(e.eval(vars)?, "not")?;
                Ok(Val::Int(i64::from(!v)))
            }
            Expr::TupleGet(e, index) => {
                let v = e.eval(vars)?;
                match v.as_tuple() {
                    Some(t) => t.get(*index).cloned().ok_or(EvalError::IndexOutOfRange {
                        index: *index,
                        len: t.len(),
                    }),
                    None => Err(EvalError::TypeMismatch {
                        op: "tuple-get",
                        value: v,
                    }),
                }
            }
        }
    }

    /// Evaluates the expression as a truth value.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] if evaluation fails or yields a non-integer.
    pub fn eval_bool(&self, vars: &[Val]) -> Result<bool, EvalError> {
        truth(self.eval(vars)?, "condition")
    }
}

fn truth(v: Val, op: &'static str) -> Result<bool, EvalError> {
    match v.as_int() {
        Some(i) => Ok(i != 0),
        None => Err(EvalError::TypeMismatch { op, value: v }),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(i) => write!(f, "x{i}"),
            Expr::OneMinus(e) => write!(f, "(1 - {e})"),
            Expr::Eq(a, b) => write!(f, "({a} = {b})"),
            Expr::And(a, b) => write!(f, "({a} ∧ {b})"),
            Expr::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Expr::Not(e) => write!(f, "¬{e}"),
            Expr::TupleGet(e, i) => write!(f, "{e}[{i}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_vars() {
        let vars = vec![Val::Int(7), Val::Nil];
        assert_eq!(Expr::int(3).eval(&vars).unwrap(), Val::Int(3));
        assert_eq!(Expr::var(0).eval(&vars).unwrap(), Val::Int(7));
        assert_eq!(Expr::var(1).eval(&vars).unwrap(), Val::Nil);
        assert_eq!(Expr::var(9).eval(&vars), Err(EvalError::UnboundVar(9)));
    }

    #[test]
    fn weakener_condition_shape() {
        // (u1 = c) ∧ (u2 = 1 − c), with u1 = x0, u2 = x1, c = x2.
        let cond = Expr::and(
            Expr::eq(Expr::var(0), Expr::var(2)),
            Expr::eq(Expr::var(1), Expr::one_minus(Expr::var(2))),
        );
        let looping = vec![Val::Int(0), Val::Int(1), Val::Int(0)];
        assert!(cond.eval_bool(&looping).unwrap());
        let fine = vec![Val::Int(0), Val::Int(1), Val::Int(1)];
        assert!(!cond.eval_bool(&fine).unwrap());
        // ⊥ never equals an integer, so reads that missed both writes fail
        // the test and the process terminates.
        let bottom = vec![Val::Nil, Val::Int(1), Val::Int(0)];
        assert!(!cond.eval_bool(&bottom).unwrap());
    }

    #[test]
    fn and_short_circuits() {
        // Right side would error (1 − ⊥), but the left side is false.
        let e = Expr::and(
            Expr::int(0),
            Expr::eq(Expr::int(0), Expr::one_minus(Expr::Const(Val::Nil))),
        );
        assert_eq!(e.eval(&[]).unwrap(), Val::Int(0));
    }

    #[test]
    fn one_minus_requires_integer() {
        let e = Expr::one_minus(Expr::Const(Val::Nil));
        assert!(matches!(
            e.eval(&[]),
            Err(EvalError::TypeMismatch { op: "1 − _", .. })
        ));
    }

    #[test]
    fn not_inverts_truth() {
        assert_eq!(Expr::not(Expr::int(0)).eval(&[]).unwrap(), Val::Int(1));
        assert_eq!(Expr::not(Expr::int(5)).eval(&[]).unwrap(), Val::Int(0));
    }

    #[test]
    fn or_short_circuits_and_normalizes() {
        let e = Expr::or(
            Expr::int(7),
            Expr::one_minus(Expr::Const(Val::Nil)), // would error if evaluated
        );
        assert_eq!(e.eval(&[]).unwrap(), Val::Int(1));
        assert_eq!(
            Expr::or(Expr::int(0), Expr::int(0)).eval(&[]).unwrap(),
            Val::Int(0)
        );
    }

    #[test]
    fn tuple_get_indexes_views() {
        let vars = vec![Val::Tuple(vec![Val::Int(10), Val::Int(20)])];
        assert_eq!(
            Expr::get(Expr::var(0), 1).eval(&vars).unwrap(),
            Val::Int(20)
        );
        assert_eq!(
            Expr::get(Expr::var(0), 5).eval(&vars),
            Err(EvalError::IndexOutOfRange { index: 5, len: 2 })
        );
        assert!(matches!(
            Expr::get(Expr::int(1), 0).eval(&vars),
            Err(EvalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn display_is_readable() {
        let cond = Expr::and(
            Expr::eq(Expr::var(0), Expr::var(2)),
            Expr::eq(Expr::var(1), Expr::one_minus(Expr::var(2))),
        );
        assert_eq!(cond.to_string(), "((x0 = x2) ∧ (x1 = (1 - x2)))");
        assert!(EvalError::UnboundVar(3).to_string().contains("x3"));
    }
}
