//! The flat instruction set interpreted by [`crate::state::ProgState`].
//!
//! Control flow is flattened to jumps so that a process's dynamic state is a
//! single program counter — cheap to clone and hash. Instructions split into
//! *local* ones (assignments and jumps), which the interpreter executes
//! eagerly, and *visible* ones (object invocations, random steps,
//! termination), which are scheduling points for the adversary.
//!
//! Bundling local computation with the following visible step is a standard
//! partial-order reduction: local steps touch only process-private variables,
//! so they commute with every step of every other process and scheduling them
//! separately cannot change any outcome distribution.

use crate::expr::Expr;
use blunt_core::ids::{MethodId, ObjId};
use std::fmt;

/// One instruction of a process's code.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// `x[var] := expr` (local).
    Assign {
        /// Destination variable.
        var: u8,
        /// Right-hand side.
        expr: Expr,
    },
    /// Unconditional jump (local).
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Jump to `target` iff `cond` evaluates to false (local).
    JumpIfNot {
        /// Condition.
        cond: Expr,
        /// Target instruction index when the condition is false.
        target: usize,
    },
    /// Invoke `method(arg)` on object `obj`; when the invocation returns,
    /// optionally bind the return value (visible).
    Invoke {
        /// Program line number, used to build the outcome's [`blunt_core::ids::CallSite`].
        line: u16,
        /// Target object.
        obj: ObjId,
        /// Method to invoke.
        method: MethodId,
        /// Argument expression, evaluated at invocation time.
        arg: Expr,
        /// Variable that receives the return value, if any.
        bind: Option<u8>,
    },
    /// `x[bind] := random({0, …, choices−1})` — a *program* random step
    /// (visible).
    Random {
        /// Program line number (for trace readability).
        line: u16,
        /// Number of equiprobable alternatives.
        choices: usize,
        /// Variable that receives the drawn value as an `Int`.
        bind: u8,
    },
    /// Terminate this process (visible).
    Halt,
    /// Diverge: the process loops forever; its mode becomes absorbing
    /// (visible). This is the weakener's bad branch.
    LoopForever,
}

impl Instr {
    /// Returns `true` for instructions the interpreter executes eagerly
    /// without yielding to the scheduler.
    #[must_use]
    pub fn is_local(&self) -> bool {
        matches!(
            self,
            Instr::Assign { .. } | Instr::Jump { .. } | Instr::JumpIfNot { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Assign { var, expr } => write!(f, "x{var} := {expr}"),
            Instr::Jump { target } => write!(f, "goto {target}"),
            Instr::JumpIfNot { cond, target } => write!(f, "unless {cond} goto {target}"),
            Instr::Invoke {
                line,
                obj,
                method,
                arg,
                bind,
            } => {
                if let Some(b) = bind {
                    write!(f, "x{b} := {obj}.{method}({arg})  // L{line}")
                } else {
                    write!(f, "{obj}.{method}({arg})  // L{line}")
                }
            }
            Instr::Random {
                line,
                choices,
                bind,
            } => write!(f, "x{bind} := random({choices})  // L{line}"),
            Instr::Halt => write!(f, "halt"),
            Instr::LoopForever => write!(f, "loop forever"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_core::value::Val;

    #[test]
    fn locality_classification() {
        assert!(Instr::Assign {
            var: 0,
            expr: Expr::int(1)
        }
        .is_local());
        assert!(Instr::Jump { target: 0 }.is_local());
        assert!(Instr::JumpIfNot {
            cond: Expr::int(1),
            target: 0
        }
        .is_local());
        assert!(!Instr::Halt.is_local());
        assert!(!Instr::LoopForever.is_local());
        assert!(!Instr::Random {
            line: 4,
            choices: 2,
            bind: 0
        }
        .is_local());
        assert!(!Instr::Invoke {
            line: 3,
            obj: ObjId(0),
            method: MethodId::WRITE,
            arg: Expr::Const(Val::Int(0)),
            bind: None,
        }
        .is_local());
    }

    #[test]
    fn display_round_trips_the_reader() {
        let i = Instr::Invoke {
            line: 6,
            obj: ObjId(0),
            method: MethodId::READ,
            arg: Expr::Const(Val::Nil),
            bind: Some(2),
        };
        assert_eq!(i.to_string(), "x2 := obj0.Read(⊥)  // L6");
        assert_eq!(
            Instr::Random {
                line: 4,
                choices: 2,
                bind: 1
            }
            .to_string(),
            "x1 := random(2)  // L4"
        );
    }
}
