//! The round-based program family from the paper's discussion (Section 7).
//!
//! Many randomized algorithms proceed in rounds, with a fixed number `s` of
//! random steps per round and high-probability termination within `T`
//! rounds. The paper observes that for such programs the transformation can
//! be applied with `k > T·s`. This module provides a concrete family:
//! `T` independent copies of the weakener, one per round, each with its own
//! pair of registers. `p2` loops forever only if the weakener condition
//! holds in **every** round, so with atomic registers the bad probability is
//! at most `(1/2)^T`.

use crate::def::ProgramDef;
use crate::expr::Expr;
use crate::instr::Instr;
use crate::weakener;
use blunt_core::ids::{CallSite, MethodId, ObjId, Pid};
use blunt_core::outcome::Outcome;
use blunt_core::value::Val;

/// The register `R_t` of round `t`.
#[must_use]
pub fn reg_r(round: u32) -> ObjId {
    ObjId(2 * round)
}

/// The register `C_t` of round `t`.
#[must_use]
pub fn reg_c(round: u32) -> ObjId {
    ObjId(2 * round + 1)
}

/// `p2`'s reads in round `t`: `(u1, u2, c)` call sites.
#[must_use]
pub fn round_sites(round: u32) -> (CallSite, CallSite, CallSite) {
    let base = (3 * round) as u16;
    (
        CallSite::new(Pid(2), 6, base),
        CallSite::new(Pid(2), 6, base + 1),
        CallSite::new(Pid(2), 6, base + 2),
    )
}

/// Builds the `rounds`-round weakener. Each round `t` uses registers
/// [`reg_r`]`(t)` and [`reg_c`]`(t)`; `p1` takes one random step per round,
/// so the program has `r = rounds` random steps (`s = 1`).
///
/// # Panics
///
/// Panics if `rounds == 0`.
#[must_use]
pub fn round_based(rounds: u32) -> ProgramDef {
    assert!(
        rounds >= 1,
        "a round-based program needs at least one round"
    );
    let mut p0 = Vec::new();
    let mut p1 = Vec::new();
    let mut p2 = Vec::new();

    // p2's variables: x0 = u1, x1 = u2, x2 = c, x3 = running conjunction.
    p2.push(Instr::Assign {
        var: 3,
        expr: Expr::int(1),
    });

    for t in 0..rounds {
        p0.push(Instr::Invoke {
            line: 3,
            obj: reg_r(t),
            method: MethodId::WRITE,
            arg: Expr::int(0),
            bind: None,
        });
        p1.push(Instr::Invoke {
            line: 3,
            obj: reg_r(t),
            method: MethodId::WRITE,
            arg: Expr::int(1),
            bind: None,
        });
        p1.push(Instr::Random {
            line: 4,
            choices: 2,
            bind: 0,
        });
        p1.push(Instr::Invoke {
            line: 4,
            obj: reg_c(t),
            method: MethodId::WRITE,
            arg: Expr::var(0),
            bind: None,
        });
        for (bind, obj, method) in [
            (0u8, reg_r(t), MethodId::READ),
            (1u8, reg_r(t), MethodId::READ),
            (2u8, reg_c(t), MethodId::READ),
        ] {
            p2.push(Instr::Invoke {
                line: 6,
                obj,
                method,
                arg: Expr::Const(Val::Nil),
                bind: Some(bind),
            });
        }
        p2.push(Instr::Assign {
            var: 3,
            expr: Expr::and(Expr::var(3), weakener::loop_condition()),
        });
    }
    p0.push(Instr::Halt);
    p1.push(Instr::Halt);
    let end = p2.len() + 2;
    p2.push(Instr::JumpIfNot {
        cond: Expr::var(3),
        target: end,
    });
    p2.push(Instr::LoopForever);
    p2.push(Instr::Halt);

    ProgramDef::new(
        "round-based-weakener",
        vec![p0, p1, p2],
        vec![0, 1, 4],
        rounds,
        vec![Pid(2)],
    )
}

/// The bad-outcome predicate: the weakener condition holds in **all**
/// `rounds` rounds.
#[must_use]
pub fn is_bad(rounds: u32, outcome: &Outcome) -> bool {
    (0..rounds).all(|t| {
        let (su1, su2, sc) = round_sites(t);
        let (Some(u1), Some(u2), Some(c)) = (
            outcome.get(&su1).and_then(Val::as_int),
            outcome.get(&su2).and_then(Val::as_int),
            outcome.get(&sc).and_then(Val::as_int),
        ) else {
            return false;
        };
        u1 == c && u2 == 1 - c
    })
}

/// Number of shared objects the `rounds`-round program uses.
#[must_use]
pub fn object_count(rounds: u32) -> usize {
    (2 * rounds) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{ProgCmd, ProgState};

    #[test]
    fn one_round_matches_the_plain_weakener_structure() {
        let def = round_based(1);
        assert_eq!(def.process_count(), 3);
        assert_eq!(def.random_bound(), 1);
        assert_eq!(def.static_random_count(), 1);
        assert_eq!(object_count(1), 2);
    }

    #[test]
    fn rounds_scale_random_steps_and_objects() {
        let def = round_based(4);
        assert_eq!(def.random_bound(), 4);
        assert_eq!(def.static_random_count(), 4);
        assert_eq!(object_count(4), 8);
        assert_ne!(reg_r(0), reg_c(0));
        assert_ne!(reg_r(1), reg_c(0));
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_panics() {
        let _ = round_based(0);
    }

    #[test]
    fn bad_requires_every_round() {
        let mut o = Outcome::new();
        for t in 0..2 {
            let (su1, su2, sc) = round_sites(t);
            o.record(su1, Val::Int(0));
            o.record(su2, Val::Int(1));
            o.record(sc, Val::Int(0));
        }
        assert!(is_bad(2, &o));

        // Break round 1.
        let (_, _, sc) = round_sites(1);
        o.record(sc, Val::Int(1));
        assert!(!is_bad(2, &o));
    }

    #[test]
    fn interpreter_runs_two_rounds_to_looping() {
        let rounds = 2;
        let def = round_based(rounds);
        let mut st = ProgState::new(&def);
        // Feed p2 bad values in both rounds.
        for _ in 0..rounds {
            for val in [Val::Int(0), Val::Int(1), Val::Int(0)] {
                match st.step(&def, Pid(2)) {
                    ProgCmd::Invoke { .. } => st.on_return(Pid(2), val),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(st.step(&def, Pid(2)), ProgCmd::Looping);
        assert!(is_bad(rounds, &st.outcome()));
    }

    #[test]
    fn interpreter_halts_when_a_round_is_good() {
        let rounds = 2;
        let def = round_based(rounds);
        let mut st = ProgState::new(&def);
        let feeds = [
            [Val::Int(0), Val::Int(1), Val::Int(0)], // bad round
            [Val::Int(1), Val::Int(1), Val::Int(0)], // good round
        ];
        for round in &feeds {
            for val in round {
                match st.step(&def, Pid(2)) {
                    ProgCmd::Invoke { .. } => st.on_return(Pid(2), val.clone()),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(st.step(&def, Pid(2)), ProgCmd::Halted);
        assert!(!is_bad(rounds, &st.outcome()));
    }
}
