//! The weakener program — Algorithm 1 of the paper.
//!
//! Three processes share two registers, `R` (written by `p0` and `p1`, read
//! by `p2`) and `C` (written by `p1`, read by `p2`):
//!
//! ```text
//! Initially: R = ⊥, C = −1
//! p_i, i ∈ {0, 1}:  R := i;  if (i = 1) then C := flip fair coin (0 or 1)
//! p2:               u1 := R; u2 := R; c := C
//!                   if ((u1 = c) ∧ (u2 = 1 − c)) then loop forever
//!                   else terminate
//! ```
//!
//! The *bad* outcome set `B` is the set of outcomes whose return values make
//! `p2` loop forever. With atomic registers `Prob[B] = 1/2` exactly
//! (Appendix A.1); with ABD registers a strong adversary forces `Prob[B] = 1`
//! (Appendix A.2, Figure 1); with ABD² the paper bounds `Prob[B] ≤ 7/8`
//! generically (Theorem 4.2) and `≤ 5/8` by the specialized analysis of
//! Appendix A.3.2.

use crate::def::ProgramDef;
use crate::expr::Expr;
use crate::instr::Instr;
use blunt_core::ids::{CallSite, MethodId, ObjId, Pid};
use blunt_core::outcome::Outcome;
use blunt_core::value::Val;

/// The register `R` written by `p0`/`p1` and read twice by `p2`.
pub const R: ObjId = ObjId(0);
/// The register `C` carrying the coin flip from `p1` to `p2`.
pub const C: ObjId = ObjId(1);

/// `p2`'s first read of `R` (`u1`).
#[must_use]
pub fn site_u1() -> CallSite {
    CallSite::new(Pid(2), 6, 0)
}

/// `p2`'s second read of `R` (`u2`).
#[must_use]
pub fn site_u2() -> CallSite {
    CallSite::new(Pid(2), 6, 1)
}

/// `p2`'s read of `C` (`c`).
#[must_use]
pub fn site_c() -> CallSite {
    CallSite::new(Pid(2), 6, 2)
}

/// The weakener condition `(u1 = c) ∧ (u2 = 1 − c)` over `p2`'s variables
/// `x0 = u1`, `x1 = u2`, `x2 = c`.
#[must_use]
pub fn loop_condition() -> Expr {
    Expr::and(
        Expr::eq(Expr::var(0), Expr::var(2)),
        Expr::eq(Expr::var(1), Expr::one_minus(Expr::var(2))),
    )
}

/// Builds Algorithm 1 as a [`ProgramDef`].
///
/// `p2` is the sole decider: once it halts or loops, the outcome is fixed
/// (any still-pending write by `p0`/`p1` can no longer change which outcome
/// set the execution landed in).
#[must_use]
pub fn weakener() -> ProgramDef {
    let p0 = vec![
        Instr::Invoke {
            line: 3,
            obj: R,
            method: MethodId::WRITE,
            arg: Expr::int(0),
            bind: None,
        },
        Instr::Halt,
    ];
    let p1 = vec![
        Instr::Invoke {
            line: 3,
            obj: R,
            method: MethodId::WRITE,
            arg: Expr::int(1),
            bind: None,
        },
        Instr::Random {
            line: 4,
            choices: 2,
            bind: 0,
        },
        Instr::Invoke {
            line: 4,
            obj: C,
            method: MethodId::WRITE,
            arg: Expr::var(0),
            bind: None,
        },
        Instr::Halt,
    ];
    let p2 = vec![
        Instr::Invoke {
            line: 6,
            obj: R,
            method: MethodId::READ,
            arg: Expr::Const(Val::Nil),
            bind: Some(0),
        },
        Instr::Invoke {
            line: 6,
            obj: R,
            method: MethodId::READ,
            arg: Expr::Const(Val::Nil),
            bind: Some(1),
        },
        Instr::Invoke {
            line: 6,
            obj: C,
            method: MethodId::READ,
            arg: Expr::Const(Val::Nil),
            bind: Some(2),
        },
        Instr::JumpIfNot {
            cond: loop_condition(),
            target: 5,
        },
        Instr::LoopForever,
        Instr::Halt,
    ];
    ProgramDef::new("weakener", vec![p0, p1, p2], vec![0, 1, 3], 1, vec![Pid(2)])
}

/// A single-writer variant of the weakener, for register constructions with
/// a designated writer (the Israeli–Li register of Section 5.4, the
/// original single-writer ABD): `p0` writes 0 and then 1 to `R`
/// sequentially; `p1` flips the coin and publishes it through `C`; `p2`
/// behaves exactly as in Algorithm 1.
///
/// The adversarial structure is preserved — `p2` loops iff its two reads
/// straddle `p0`'s second write on exactly the side the coin predicts — so
/// the same blunting comparison (atomic vs. implementation vs.
/// implementation`^k`) applies. The bad-outcome predicate is [`is_bad`],
/// unchanged.
#[must_use]
pub fn sw_weakener() -> ProgramDef {
    let p0 = vec![
        Instr::Invoke {
            line: 3,
            obj: R,
            method: MethodId::WRITE,
            arg: Expr::int(0),
            bind: None,
        },
        Instr::Invoke {
            line: 3,
            obj: R,
            method: MethodId::WRITE,
            arg: Expr::int(1),
            bind: None,
        },
        Instr::Halt,
    ];
    let p1 = vec![
        Instr::Random {
            line: 4,
            choices: 2,
            bind: 0,
        },
        Instr::Invoke {
            line: 4,
            obj: C,
            method: MethodId::WRITE,
            arg: Expr::var(0),
            bind: None,
        },
        Instr::Halt,
    ];
    let p2 = vec![
        Instr::Invoke {
            line: 6,
            obj: R,
            method: MethodId::READ,
            arg: Expr::Const(Val::Nil),
            bind: Some(0),
        },
        Instr::Invoke {
            line: 6,
            obj: R,
            method: MethodId::READ,
            arg: Expr::Const(Val::Nil),
            bind: Some(1),
        },
        Instr::Invoke {
            line: 6,
            obj: C,
            method: MethodId::READ,
            arg: Expr::Const(Val::Nil),
            bind: Some(2),
        },
        Instr::JumpIfNot {
            cond: loop_condition(),
            target: 5,
        },
        Instr::LoopForever,
        Instr::Halt,
    ];
    ProgramDef::new(
        "sw-weakener",
        vec![p0, p1, p2],
        vec![0, 1, 3],
        1,
        vec![Pid(2)],
    )
}

/// The bad-outcome predicate `B`: the values read by `p2` satisfy
/// `u1 = c ∧ u2 = 1 − c`, i.e. `p2` loops forever.
///
/// Outcomes in which some read did not return are not in `B` (the paper's
/// adversaries use complete schedules, so this is a non-case; it is handled
/// for robustness).
#[must_use]
pub fn is_bad(outcome: &Outcome) -> bool {
    let (Some(u1), Some(u2), Some(c)) = (
        outcome.get(&site_u1()).and_then(Val::as_int),
        outcome.get(&site_u2()).and_then(Val::as_int),
        outcome.get(&site_c()).and_then(Val::as_int),
    ) else {
        return false;
    };
    u1 == c && u2 == 1 - c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{ProgCmd, ProgState};

    #[test]
    fn program_shape_matches_algorithm_1() {
        let def = weakener();
        assert_eq!(def.process_count(), 3);
        assert_eq!(def.random_bound(), 1);
        assert_eq!(def.static_random_count(), 1);
        assert_eq!(def.deciders(), &[Pid(2)]);
    }

    #[test]
    fn bad_predicate_matches_loop_condition() {
        // u1 = 0, u2 = 1, c = 0  →  bad (p2 loops).
        let mut o = Outcome::new();
        o.record(site_u1(), Val::Int(0));
        o.record(site_u2(), Val::Int(1));
        o.record(site_c(), Val::Int(0));
        assert!(is_bad(&o));

        // u1 = 1, u2 = 0, c = 1  →  bad (the symmetric case).
        let mut o = Outcome::new();
        o.record(site_u1(), Val::Int(1));
        o.record(site_u2(), Val::Int(0));
        o.record(site_c(), Val::Int(1));
        assert!(is_bad(&o));

        // Equal reads can never be bad.
        let mut o = Outcome::new();
        o.record(site_u1(), Val::Int(1));
        o.record(site_u2(), Val::Int(1));
        o.record(site_c(), Val::Int(1));
        assert!(!is_bad(&o));

        // A ⊥ read can never be bad.
        let mut o = Outcome::new();
        o.record(site_u1(), Val::Nil);
        o.record(site_u2(), Val::Int(1));
        o.record(site_c(), Val::Int(0));
        assert!(!is_bad(&o));

        // Missing reads are not bad.
        assert!(!is_bad(&Outcome::new()));
    }

    #[test]
    fn interpreter_walk_reproduces_looping_branch() {
        // Drive p2 by hand: reads return 0, 1 and the coin read returns 0 —
        // the Figure 1 Case-1 values — and the process must loop.
        let def = weakener();
        let mut st = ProgState::new(&def);
        for val in [Val::Int(0), Val::Int(1), Val::Int(0)] {
            match st.step(&def, Pid(2)) {
                ProgCmd::Invoke { .. } => st.on_return(Pid(2), val),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(st.step(&def, Pid(2)), ProgCmd::Looping);
        assert!(st.is_done(&def));
        assert!(is_bad(&st.outcome()));
    }

    #[test]
    fn interpreter_walk_reproduces_halting_branch() {
        let def = weakener();
        let mut st = ProgState::new(&def);
        for val in [Val::Int(1), Val::Int(1), Val::Int(1)] {
            match st.step(&def, Pid(2)) {
                ProgCmd::Invoke { .. } => st.on_return(Pid(2), val),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(st.step(&def, Pid(2)), ProgCmd::Halted);
        assert!(!is_bad(&st.outcome()));
    }

    #[test]
    fn p1_flips_exactly_one_coin() {
        let def = weakener();
        let mut st = ProgState::new(&def);
        match st.step(&def, Pid(1)) {
            ProgCmd::Invoke { obj, .. } => {
                assert_eq!(obj, R);
                st.on_return(Pid(1), Val::Nil);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(st.step(&def, Pid(1)), ProgCmd::Random { choices: 2 });
        st.on_random(Pid(1), 1);
        match st.step(&def, Pid(1)) {
            ProgCmd::Invoke { obj, arg, .. } => {
                assert_eq!(obj, C);
                assert_eq!(arg, Val::Int(1), "coin value is written to C");
                st.on_return(Pid(1), Val::Nil);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(st.step(&def, Pid(1)), ProgCmd::Halted);
    }
}
