//! The program interpreter: per-process dynamic state and stepping.
//!
//! [`ProgState`] is the mutable half of a program (the immutable half being
//! [`ProgramDef`]). Composed systems own one `ProgState` and drive it:
//!
//! - [`ProgState::can_step`] tells the system whether a process-step event
//!   should be enabled for a process;
//! - [`ProgState::step`] executes local instructions eagerly and returns the
//!   next *visible* command ([`ProgCmd`]) — an object invocation, a program
//!   random step, or termination;
//! - [`ProgState::on_return`] / [`ProgState::on_random`] resume a process
//!   once the environment has produced the awaited value.

use crate::def::ProgramDef;
use crate::instr::Instr;
use blunt_core::ids::{CallSite, MethodId, ObjId, Pid};
use blunt_core::outcome::Outcome;
use blunt_core::value::Val;

/// Safety fuel for local-instruction chains inside a single `step` call; a
/// program whose local computation runs longer than this without a visible
/// step is considered buggy.
const LOCAL_FUEL: usize = 10_000;

/// What a process is currently doing.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ProcMode {
    /// Ready to take its next step.
    Ready,
    /// Blocked on a pending object invocation.
    AwaitReturn {
        /// Variable receiving the return value, if any.
        bind: Option<u8>,
        /// The invocation's call site (for the outcome map).
        site: CallSite,
    },
    /// Blocked on a `random(V)` draw.
    AwaitRandom {
        /// Variable receiving the drawn value.
        bind: u8,
        /// Number of alternatives.
        choices: usize,
    },
    /// Terminated normally.
    Halted,
    /// Diverged (`loop forever`) — absorbing.
    Looping,
    /// Crashed — absorbing, takes no further steps.
    Crashed,
}

impl ProcMode {
    /// Returns `true` for absorbing modes (the process will never step
    /// again).
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            ProcMode::Halted | ProcMode::Looping | ProcMode::Crashed
        )
    }
}

/// The visible command produced by one program step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProgCmd {
    /// Invoke `method(arg)` on `obj`; the process blocks until
    /// [`ProgState::on_return`].
    Invoke {
        /// Call site identifying this invocation in outcomes.
        site: CallSite,
        /// Target object.
        obj: ObjId,
        /// Method.
        method: MethodId,
        /// Evaluated argument.
        arg: Val,
    },
    /// A program random step; the process blocks until
    /// [`ProgState::on_random`].
    Random {
        /// Number of equiprobable alternatives.
        choices: usize,
    },
    /// The process terminated.
    Halted,
    /// The process diverged.
    Looping,
}

/// Per-process dynamic state.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct ProcState {
    pc: usize,
    vars: Vec<Val>,
    mode: ProcMode,
    /// Occurrence counters per program line, for outcome call sites.
    occurrences: Vec<(u16, u16)>,
}

impl ProcState {
    fn next_occurrence(&mut self, line: u16) -> u16 {
        match self.occurrences.binary_search_by_key(&line, |e| e.0) {
            Ok(i) => {
                let occ = self.occurrences[i].1;
                self.occurrences[i].1 += 1;
                occ
            }
            Err(i) => {
                self.occurrences.insert(i, (line, 1));
                0
            }
        }
    }
}

/// The dynamic state of a whole program.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ProgState {
    procs: Vec<ProcState>,
    outcome: Outcome,
}

impl ProgState {
    /// The initial state of `def`: every process at instruction 0 with all
    /// variables `⊥`.
    #[must_use]
    pub fn new(def: &ProgramDef) -> ProgState {
        let procs = (0..def.process_count())
            .map(|p| ProcState {
                pc: 0,
                vars: vec![Val::Nil; def.var_count(Pid(p as u32)) as usize],
                mode: ProcMode::Ready,
                occurrences: Vec::new(),
            })
            .collect();
        ProgState {
            procs,
            outcome: Outcome::new(),
        }
    }

    /// The current mode of process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    #[must_use]
    pub fn mode(&self, pid: Pid) -> &ProcMode {
        &self.procs[pid.index()].mode
    }

    /// Returns `true` if process `pid` has a step to take.
    #[must_use]
    pub fn can_step(&self, pid: Pid) -> bool {
        self.procs[pid.index()].mode == ProcMode::Ready
    }

    /// Executes process `pid` up to (and including) its next visible
    /// instruction and returns the corresponding command.
    ///
    /// Local instructions (assignments, jumps) are executed eagerly: they
    /// touch only process-private state and therefore commute with all other
    /// processes' steps, so giving the adversary separate scheduling power
    /// over them cannot change any outcome distribution.
    ///
    /// # Panics
    ///
    /// Panics if the process is not `Ready`, if expression evaluation fails
    /// (a malformed program), or if local fuel runs out (a local infinite
    /// loop).
    pub fn step(&mut self, def: &ProgramDef, pid: Pid) -> ProgCmd {
        // Aggregated over every explorer branch (global registry; see
        // `blunt_sim::network` for the rationale).
        blunt_obs::static_counter!("prog.steps").inc();
        let proc = &mut self.procs[pid.index()];
        assert_eq!(
            proc.mode,
            ProcMode::Ready,
            "step on non-ready process {pid}"
        );
        let code = def.code(pid);
        for _ in 0..LOCAL_FUEL {
            if proc.pc >= code.len() {
                proc.mode = ProcMode::Halted;
                return ProgCmd::Halted;
            }
            let instr = &code[proc.pc];
            match instr {
                Instr::Assign { var, expr } => {
                    let v = expr
                        .eval(&proc.vars)
                        .unwrap_or_else(|e| panic!("{pid} pc {}: {e}", proc.pc));
                    proc.vars[*var as usize] = v;
                    proc.pc += 1;
                }
                Instr::Jump { target } => {
                    proc.pc = *target;
                }
                Instr::JumpIfNot { cond, target } => {
                    let t = cond
                        .eval_bool(&proc.vars)
                        .unwrap_or_else(|e| panic!("{pid} pc {}: {e}", proc.pc));
                    proc.pc = if t { proc.pc + 1 } else { *target };
                }
                Instr::Invoke {
                    line,
                    obj,
                    method,
                    arg,
                    bind,
                } => {
                    let argv = arg
                        .eval(&proc.vars)
                        .unwrap_or_else(|e| panic!("{pid} pc {}: {e}", proc.pc));
                    let occ = proc.next_occurrence(*line);
                    let site = CallSite::new(pid, *line, occ);
                    proc.mode = ProcMode::AwaitReturn { bind: *bind, site };
                    proc.pc += 1;
                    return ProgCmd::Invoke {
                        site,
                        obj: *obj,
                        method: *method,
                        arg: argv,
                    };
                }
                Instr::Random {
                    line: _,
                    choices,
                    bind,
                } => {
                    proc.mode = ProcMode::AwaitRandom {
                        bind: *bind,
                        choices: *choices,
                    };
                    proc.pc += 1;
                    return ProgCmd::Random { choices: *choices };
                }
                Instr::Halt => {
                    proc.mode = ProcMode::Halted;
                    return ProgCmd::Halted;
                }
                Instr::LoopForever => {
                    proc.mode = ProcMode::Looping;
                    return ProgCmd::Looping;
                }
            }
        }
        panic!("{pid}: local fuel exhausted — local infinite loop in program");
    }

    /// Delivers the return value of the pending invocation at `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not awaiting a return.
    pub fn on_return(&mut self, pid: Pid, val: Val) {
        let proc = &mut self.procs[pid.index()];
        match proc.mode.clone() {
            ProcMode::AwaitReturn { bind, site } => {
                self.outcome.record(site, val.clone());
                if let Some(b) = bind {
                    proc.vars[b as usize] = val;
                }
                proc.mode = ProcMode::Ready;
            }
            other => panic!("on_return for {pid} in mode {other:?}"),
        }
    }

    /// Delivers a drawn random value to `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not awaiting randomness or the choice is out of
    /// range.
    pub fn on_random(&mut self, pid: Pid, choice: usize) {
        let proc = &mut self.procs[pid.index()];
        match proc.mode.clone() {
            ProcMode::AwaitRandom { bind, choices } => {
                assert!(choice < choices, "random choice out of range");
                proc.vars[bind as usize] = Val::Int(choice as i64);
                proc.mode = ProcMode::Ready;
            }
            other => panic!("on_random for {pid} in mode {other:?}"),
        }
    }

    /// Marks `pid` as crashed (absorbing).
    pub fn crash(&mut self, pid: Pid) {
        self.procs[pid.index()].mode = ProcMode::Crashed;
    }

    /// Returns `true` once the observable outcome is fixed: every decider
    /// (or, with no declared deciders, every process) is terminal.
    #[must_use]
    pub fn is_done(&self, def: &ProgramDef) -> bool {
        if def.deciders().is_empty() {
            self.procs.iter().all(|p| p.mode.is_terminal())
        } else {
            def.deciders()
                .iter()
                .all(|d| self.procs[d.index()].mode.is_terminal())
        }
    }

    /// The outcome accumulated so far (final once [`ProgState::is_done`]).
    #[must_use]
    pub fn outcome(&self) -> Outcome {
        self.outcome.clone()
    }

    /// A process's local variables (for assertions in tests).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    #[must_use]
    pub fn vars(&self, pid: Pid) -> &[Val] {
        &self.procs[pid.index()].vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn toy_def() -> ProgramDef {
        // p0: x0 := random(2); x1 := obj0.Read(); if (x0 = x1) loop else halt
        ProgramDef::new(
            "toy",
            vec![vec![
                Instr::Random {
                    line: 1,
                    choices: 2,
                    bind: 0,
                },
                Instr::Invoke {
                    line: 2,
                    obj: ObjId(0),
                    method: MethodId::READ,
                    arg: Expr::Const(Val::Nil),
                    bind: Some(1),
                },
                Instr::JumpIfNot {
                    cond: Expr::eq(Expr::var(0), Expr::var(1)),
                    target: 4,
                },
                Instr::LoopForever,
                Instr::Halt,
            ]],
            vec![2],
            1,
            vec![],
        )
    }

    #[test]
    fn full_walk_through_looping_branch() {
        let def = toy_def();
        let mut st = ProgState::new(&def);
        assert!(st.can_step(Pid(0)));

        let cmd = st.step(&def, Pid(0));
        assert_eq!(cmd, ProgCmd::Random { choices: 2 });
        assert!(!st.can_step(Pid(0)));
        st.on_random(Pid(0), 1);

        let cmd = st.step(&def, Pid(0));
        match cmd {
            ProgCmd::Invoke {
                site, obj, method, ..
            } => {
                assert_eq!(site, CallSite::new(Pid(0), 2, 0));
                assert_eq!(obj, ObjId(0));
                assert_eq!(method, MethodId::READ);
            }
            other => panic!("unexpected {other:?}"),
        }
        st.on_return(Pid(0), Val::Int(1));
        assert_eq!(st.vars(Pid(0)), &[Val::Int(1), Val::Int(1)]);

        let cmd = st.step(&def, Pid(0));
        assert_eq!(cmd, ProgCmd::Looping);
        assert!(st.is_done(&def));
        assert_eq!(
            st.outcome().get(&CallSite::new(Pid(0), 2, 0)),
            Some(&Val::Int(1))
        );
    }

    #[test]
    fn halting_branch_when_values_differ() {
        let def = toy_def();
        let mut st = ProgState::new(&def);
        st.step(&def, Pid(0));
        st.on_random(Pid(0), 1);
        st.step(&def, Pid(0));
        st.on_return(Pid(0), Val::Int(0));
        assert_eq!(st.step(&def, Pid(0)), ProgCmd::Halted);
        assert_eq!(*st.mode(Pid(0)), ProcMode::Halted);
    }

    #[test]
    fn occurrences_distinguish_repeated_lines() {
        let def = ProgramDef::new(
            "twice",
            vec![vec![
                Instr::Invoke {
                    line: 6,
                    obj: ObjId(0),
                    method: MethodId::READ,
                    arg: Expr::Const(Val::Nil),
                    bind: None,
                },
                Instr::Invoke {
                    line: 6,
                    obj: ObjId(0),
                    method: MethodId::READ,
                    arg: Expr::Const(Val::Nil),
                    bind: None,
                },
                Instr::Halt,
            ]],
            vec![0],
            0,
            vec![],
        );
        let mut st = ProgState::new(&def);
        let c1 = st.step(&def, Pid(0));
        st.on_return(Pid(0), Val::Int(0));
        let c2 = st.step(&def, Pid(0));
        st.on_return(Pid(0), Val::Int(1));
        let (s1, s2) = match (c1, c2) {
            (ProgCmd::Invoke { site: a, .. }, ProgCmd::Invoke { site: b, .. }) => (a, b),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(s1, CallSite::new(Pid(0), 6, 0));
        assert_eq!(s2, CallSite::new(Pid(0), 6, 1));
        assert_eq!(st.outcome().len(), 2);
    }

    #[test]
    fn crash_is_terminal_and_blocks_stepping() {
        let def = toy_def();
        let mut st = ProgState::new(&def);
        st.crash(Pid(0));
        assert!(!st.can_step(Pid(0)));
        assert!(st.is_done(&def));
        assert!(st.mode(Pid(0)).is_terminal());
    }

    #[test]
    fn deciders_gate_doneness() {
        let def = ProgramDef::new(
            "two",
            vec![vec![Instr::Halt], vec![Instr::Halt]],
            vec![0, 0],
            0,
            vec![Pid(1)],
        );
        let mut st = ProgState::new(&def);
        assert!(!st.is_done(&def));
        st.step(&def, Pid(1));
        assert!(st.is_done(&def), "only the decider must finish");
        assert!(st.can_step(Pid(0)), "p0 may still run");
    }

    #[test]
    #[should_panic(expected = "non-ready")]
    fn stepping_blocked_process_panics() {
        let def = toy_def();
        let mut st = ProgState::new(&def);
        st.step(&def, Pid(0)); // now awaiting random
        st.step(&def, Pid(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_random_choice_panics() {
        let def = toy_def();
        let mut st = ProgState::new(&def);
        st.step(&def, Pid(0));
        st.on_random(Pid(0), 2);
    }

    #[test]
    fn implicit_halt_at_end_of_code() {
        let def = ProgramDef::new("empty", vec![vec![]], vec![0], 0, vec![]);
        let mut st = ProgState::new(&def);
        assert_eq!(st.step(&def, Pid(0)), ProgCmd::Halted);
        assert!(st.is_done(&def));
    }
}
