//! A weakener-style program over an atomic **snapshot** object — the
//! Golab–Higham–Woelfel scenario (Section 6 of the paper).
//!
//! GHW's original observation was that the Afek et al. snapshot, although
//! linearizable, lets a strong adversary bias the outcome distribution of a
//! randomized program. This module expresses that scenario in the same shape
//! as Algorithm 1:
//!
//! - `p0` marks its snapshot component: `Update(0, 1)`;
//! - `p1` marks its component, flips a coin `c`, writes `c` to register `C`;
//! - `p2` takes two scans `s1`, `s2` and reads `C`; it **loops forever** iff
//!   the first scan saw exactly the component of process `c` and the second
//!   scan saw both components:
//!
//! ```text
//! bad  ⇔  (s1 = [1, ⊥] ∧ c = 0 ∨ s1 = [⊥, 1] ∧ c = 1) ∧ s2 = [1, 1]
//! ```
//!
//! With an atomic snapshot the adversary must commit to `s1`'s position
//! before the flip and wins with probability exactly 1/2; with the Afek
//! et al. implementation it can keep `p2`'s scan unresolved across the flip
//! and do better. The exact values are computed by the explorer in
//! `blunt-registers`' tests and the experiments harness.

use crate::def::ProgramDef;
use crate::expr::Expr;
use crate::instr::Instr;
use blunt_core::ids::{CallSite, MethodId, ObjId, Pid};
use blunt_core::outcome::Outcome;
use blunt_core::value::Val;

/// The two-component snapshot object (`p0` owns component 0, `p1` owns 1).
pub const S: ObjId = ObjId(0);
/// The coin register written by `p1` and read by `p2`.
pub const C: ObjId = ObjId(1);

/// `p2`'s first scan (`s1`).
#[must_use]
pub fn site_s1() -> CallSite {
    CallSite::new(Pid(2), 6, 0)
}

/// `p2`'s second scan (`s2`).
#[must_use]
pub fn site_s2() -> CallSite {
    CallSite::new(Pid(2), 6, 1)
}

/// `p2`'s read of `C`.
#[must_use]
pub fn site_c() -> CallSite {
    CallSite::new(Pid(2), 6, 2)
}

fn seen(view: Expr, comp: usize) -> Expr {
    Expr::eq(Expr::get(view, comp), Expr::int(1))
}

fn unseen(view: Expr, comp: usize) -> Expr {
    Expr::eq(Expr::get(view, comp), Expr::Const(Val::Nil))
}

/// The loop condition over `p2`'s variables `x0 = s1`, `x1 = s2`, `x2 = c`.
#[must_use]
pub fn loop_condition() -> Expr {
    let s1_only_p0 = Expr::and(seen(Expr::var(0), 0), unseen(Expr::var(0), 1));
    let s1_only_p1 = Expr::and(unseen(Expr::var(0), 0), seen(Expr::var(0), 1));
    let s2_both = Expr::and(seen(Expr::var(1), 0), seen(Expr::var(1), 1));
    let c_is = |i: i64| Expr::eq(Expr::var(2), Expr::int(i));
    Expr::and(
        Expr::or(
            Expr::and(s1_only_p0, c_is(0)),
            Expr::and(s1_only_p1, c_is(1)),
        ),
        s2_both,
    )
}

/// Builds the snapshot weakener as a [`ProgramDef`].
#[must_use]
pub fn snapshot_weakener() -> ProgramDef {
    let p0 = vec![
        Instr::Invoke {
            line: 3,
            obj: S,
            method: MethodId::UPDATE,
            arg: Expr::Const(Val::pair(Val::Int(0), Val::Int(1))),
            bind: None,
        },
        Instr::Halt,
    ];
    let p1 = vec![
        Instr::Invoke {
            line: 3,
            obj: S,
            method: MethodId::UPDATE,
            arg: Expr::Const(Val::pair(Val::Int(1), Val::Int(1))),
            bind: None,
        },
        Instr::Random {
            line: 4,
            choices: 2,
            bind: 0,
        },
        Instr::Invoke {
            line: 4,
            obj: C,
            method: MethodId::WRITE,
            arg: Expr::var(0),
            bind: None,
        },
        Instr::Halt,
    ];
    let p2 = vec![
        Instr::Invoke {
            line: 6,
            obj: S,
            method: MethodId::SCAN,
            arg: Expr::Const(Val::Nil),
            bind: Some(0),
        },
        Instr::Invoke {
            line: 6,
            obj: S,
            method: MethodId::SCAN,
            arg: Expr::Const(Val::Nil),
            bind: Some(1),
        },
        Instr::Invoke {
            line: 6,
            obj: C,
            method: MethodId::READ,
            arg: Expr::Const(Val::Nil),
            bind: Some(2),
        },
        Instr::JumpIfNot {
            cond: loop_condition(),
            target: 5,
        },
        Instr::LoopForever,
        Instr::Halt,
    ];
    ProgramDef::new(
        "snapshot-weakener",
        vec![p0, p1, p2],
        vec![0, 1, 3],
        1,
        vec![Pid(2)],
    )
}

/// The bad-outcome predicate matching [`loop_condition`].
#[must_use]
pub fn is_bad(outcome: &Outcome) -> bool {
    let (Some(s1), Some(s2), Some(c)) = (
        outcome.get(&site_s1()).and_then(Val::as_tuple),
        outcome.get(&site_s2()).and_then(Val::as_tuple),
        outcome.get(&site_c()).and_then(Val::as_int),
    ) else {
        return false;
    };
    if s1.len() < 2 || s2.len() < 2 {
        // Views carry one component per process; only the writers'
        // components (0 and 1) matter.
        return false;
    }
    let one = Val::Int(1);
    let s1_only = |i: usize| s1[i] == one && s1[1 - i] == Val::Nil;
    let s2_both = s2[0] == one && s2[1] == one;
    ((s1_only(0) && c == 0) || (s1_only(1) && c == 1)) && s2_both
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{ProgCmd, ProgState};

    fn view(a: Val, b: Val) -> Val {
        Val::Tuple(vec![a, b])
    }

    #[test]
    fn program_shape() {
        let def = snapshot_weakener();
        assert_eq!(def.process_count(), 3);
        assert_eq!(def.random_bound(), 1);
        assert_eq!(def.deciders(), &[Pid(2)]);
    }

    #[test]
    fn bad_predicate_cases() {
        let mut o = Outcome::new();
        o.record(site_s1(), view(Val::Int(1), Val::Nil));
        o.record(site_s2(), view(Val::Int(1), Val::Int(1)));
        o.record(site_c(), Val::Int(0));
        assert!(is_bad(&o));

        let mut o = Outcome::new();
        o.record(site_s1(), view(Val::Nil, Val::Int(1)));
        o.record(site_s2(), view(Val::Int(1), Val::Int(1)));
        o.record(site_c(), Val::Int(1));
        assert!(is_bad(&o));

        // Wrong coin side.
        let mut o = Outcome::new();
        o.record(site_s1(), view(Val::Int(1), Val::Nil));
        o.record(site_s2(), view(Val::Int(1), Val::Int(1)));
        o.record(site_c(), Val::Int(1));
        assert!(!is_bad(&o));

        // Second scan incomplete.
        let mut o = Outcome::new();
        o.record(site_s1(), view(Val::Int(1), Val::Nil));
        o.record(site_s2(), view(Val::Int(1), Val::Nil));
        o.record(site_c(), Val::Int(0));
        assert!(!is_bad(&o));

        // Empty first scan.
        let mut o = Outcome::new();
        o.record(site_s1(), view(Val::Nil, Val::Nil));
        o.record(site_s2(), view(Val::Int(1), Val::Int(1)));
        o.record(site_c(), Val::Int(0));
        assert!(!is_bad(&o));

        assert!(!is_bad(&Outcome::new()));
    }

    #[test]
    fn loop_condition_agrees_with_predicate_via_interpreter() {
        // Feed p2 the bad values by hand; it must loop.
        let def = snapshot_weakener();
        let mut st = ProgState::new(&def);
        for val in [
            view(Val::Nil, Val::Int(1)),
            view(Val::Int(1), Val::Int(1)),
            Val::Int(1),
        ] {
            match st.step(&def, Pid(2)) {
                ProgCmd::Invoke { .. } => st.on_return(Pid(2), val),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(st.step(&def, Pid(2)), ProgCmd::Looping);
        assert!(is_bad(&st.outcome()));
    }
}
