//! Static program definitions.
//!
//! A [`ProgramDef`] is the immutable text of a program `P`: one instruction
//! vector per process, variable counts, and the analysis-relevant metadata —
//! the bound `r` on program random steps (Theorem 4.2) and the set of
//! *decider* processes whose termination fixes the observable outcome.

use crate::instr::Instr;
use blunt_core::ids::Pid;
use std::fmt;

/// The immutable definition of a randomized concurrent program.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ProgramDef {
    name: &'static str,
    codes: Vec<Vec<Instr>>,
    var_counts: Vec<u8>,
    random_bound: u32,
    deciders: Vec<Pid>,
}

impl ProgramDef {
    /// Creates a program definition.
    ///
    /// - `codes[p]` is process `p`'s instruction vector;
    /// - `var_counts[p]` is the number of local variables of process `p`
    ///   (all initialized to `⊥`);
    /// - `random_bound` is `r`, the maximum number of *program* random steps
    ///   over all executions (declared; validated against the static count
    ///   for straight-line code);
    /// - `deciders`: once every decider has halted, looped, or crashed, the
    ///   program's observable outcome is fixed and the execution counts as
    ///   complete. Pass an empty vector to require all processes to finish.
    ///
    /// # Panics
    ///
    /// Panics if `codes` and `var_counts` disagree in length, if a decider
    /// is out of range, or if a jump target is out of range.
    #[must_use]
    pub fn new(
        name: &'static str,
        codes: Vec<Vec<Instr>>,
        var_counts: Vec<u8>,
        random_bound: u32,
        deciders: Vec<Pid>,
    ) -> ProgramDef {
        assert_eq!(
            codes.len(),
            var_counts.len(),
            "one variable count per process required"
        );
        assert!(!codes.is_empty(), "a program needs at least one process");
        for d in &deciders {
            assert!(d.index() < codes.len(), "decider {d} out of range");
        }
        for (p, code) in codes.iter().enumerate() {
            for (i, instr) in code.iter().enumerate() {
                let target = match instr {
                    Instr::Jump { target } | Instr::JumpIfNot { target, .. } => Some(*target),
                    _ => None,
                };
                if let Some(t) = target {
                    assert!(
                        t <= code.len(),
                        "process {p} instruction {i}: jump target {t} out of range"
                    );
                }
            }
        }
        ProgramDef {
            name,
            codes,
            var_counts,
            random_bound,
            deciders,
        }
    }

    /// The program's name (for reports).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of processes (`n` in Theorem 4.2).
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.codes.len()
    }

    /// Process `pid`'s code.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    #[must_use]
    pub fn code(&self, pid: Pid) -> &[Instr] {
        &self.codes[pid.index()]
    }

    /// Process `pid`'s variable count.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    #[must_use]
    pub fn var_count(&self, pid: Pid) -> u8 {
        self.var_counts[pid.index()]
    }

    /// The declared bound `r` on program random steps.
    #[must_use]
    pub fn random_bound(&self) -> u32 {
        self.random_bound
    }

    /// The decider processes (empty = all processes must finish).
    #[must_use]
    pub fn deciders(&self) -> &[Pid] {
        &self.deciders
    }

    /// The number of `Random` instructions appearing statically in the text;
    /// for straight-line programs (no backward jumps) this equals the exact
    /// maximum number of program random steps.
    #[must_use]
    pub fn static_random_count(&self) -> u32 {
        self.codes
            .iter()
            .flatten()
            .filter(|i| matches!(i, Instr::Random { .. }))
            .count() as u32
    }
}

impl fmt::Display for ProgramDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} (r ≤ {}):", self.name, self.random_bound)?;
        for (p, code) in self.codes.iter().enumerate() {
            writeln!(f, "  p{p}:")?;
            for (i, instr) in code.iter().enumerate() {
                writeln!(f, "    {i:3}: {instr}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn tiny() -> ProgramDef {
        ProgramDef::new(
            "tiny",
            vec![vec![
                Instr::Random {
                    line: 1,
                    choices: 2,
                    bind: 0,
                },
                Instr::Halt,
            ]],
            vec![1],
            1,
            vec![],
        )
    }

    #[test]
    fn accessors_report_structure() {
        let p = tiny();
        assert_eq!(p.name(), "tiny");
        assert_eq!(p.process_count(), 1);
        assert_eq!(p.var_count(Pid(0)), 1);
        assert_eq!(p.random_bound(), 1);
        assert_eq!(p.static_random_count(), 1);
        assert_eq!(p.code(Pid(0)).len(), 2);
        assert!(p.deciders().is_empty());
    }

    #[test]
    #[should_panic(expected = "variable count per process")]
    fn mismatched_var_counts_panic() {
        let _ = ProgramDef::new("bad", vec![vec![Instr::Halt]], vec![], 0, vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_decider_panics() {
        let _ = ProgramDef::new("bad", vec![vec![Instr::Halt]], vec![0], 0, vec![Pid(5)]);
    }

    #[test]
    #[should_panic(expected = "jump target")]
    fn bad_jump_target_panics() {
        let _ = ProgramDef::new(
            "bad",
            vec![vec![Instr::JumpIfNot {
                cond: Expr::int(1),
                target: 9,
            }]],
            vec![0],
            0,
            vec![],
        );
    }

    #[test]
    fn display_shows_instructions() {
        let s = tiny().to_string();
        assert!(s.contains("program tiny"));
        assert!(s.contains("x0 := random(2)"));
    }
}
