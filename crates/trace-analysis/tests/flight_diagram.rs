//! Golden-file pin of the flight-dump space-time rendering: a committed
//! JSONL dump must parse and render to exactly the committed diagram, and
//! the render must be a pure function of the dump (parse → serialize →
//! re-parse → render is byte-identical). Regenerate intentionally with
//! `BLESS=1 cargo test -p blunt-trace --test flight_diagram`.

use blunt_obs::FlightDump;
use blunt_trace::{flight_space_time, DiagramOptions};

/// Mirrors the `blunt-obs` golden fixture (`tests/golden/flight_dump.jsonl`
/// there): one client op pair, bus traffic with every fault family, a
/// server crash/recovery, and a monitor cut + violation over 8 lanes.
const DUMP: &str = "\
{\"type\":\"flight_dump\",\"schema_version\":1,\"events\":18}
{\"type\":\"flight_event\",\"ring\":\"client-3\",\"seq\":0,\"t_us\":10,\"kind\":\"op_start_write\",\"pid\":3,\"a\":7,\"b\":42}
{\"type\":\"flight_event\",\"ring\":\"client-3\",\"seq\":1,\"t_us\":11,\"kind\":\"bus_send\",\"pid\":3,\"a\":0,\"b\":8}
{\"type\":\"flight_event\",\"ring\":\"client-3\",\"seq\":2,\"t_us\":12,\"kind\":\"fault_drop\",\"pid\":3,\"a\":1,\"b\":8}
{\"type\":\"flight_event\",\"ring\":\"client-3\",\"seq\":3,\"t_us\":14,\"kind\":\"fault_delay\",\"pid\":3,\"a\":2,\"b\":3}
{\"type\":\"flight_event\",\"ring\":\"server-0\",\"seq\":0,\"t_us\":20,\"kind\":\"bus_deliver\",\"pid\":0,\"a\":3,\"b\":10}
{\"type\":\"flight_event\",\"ring\":\"server-0\",\"seq\":1,\"t_us\":21,\"kind\":\"wal_flush\",\"pid\":0,\"a\":1,\"b\":0}
{\"type\":\"flight_event\",\"ring\":\"server-0\",\"seq\":2,\"t_us\":22,\"kind\":\"server_ack\",\"pid\":0,\"a\":3,\"b\":1}
{\"type\":\"flight_event\",\"ring\":\"client-3\",\"seq\":4,\"t_us\":30,\"kind\":\"op_retransmit\",\"pid\":3,\"a\":1,\"b\":0}
{\"type\":\"flight_event\",\"ring\":\"server-0\",\"seq\":3,\"t_us\":33,\"kind\":\"fault_crash_drop\",\"pid\":0,\"a\":1,\"b\":4}
{\"type\":\"flight_event\",\"ring\":\"server-0\",\"seq\":4,\"t_us\":34,\"kind\":\"fault_partition_drop\",\"pid\":0,\"a\":2,\"b\":1}
{\"type\":\"flight_event\",\"ring\":\"server-0\",\"seq\":5,\"t_us\":35,\"kind\":\"server_crash\",\"pid\":0,\"a\":2,\"b\":0}
{\"type\":\"flight_event\",\"ring\":\"server-0\",\"seq\":6,\"t_us\":40,\"kind\":\"server_recover\",\"pid\":0,\"a\":512,\"b\":0}
{\"type\":\"flight_event\",\"ring\":\"client-3\",\"seq\":5,\"t_us\":44,\"kind\":\"bus_deliver\",\"pid\":3,\"a\":0,\"b\":11}
{\"type\":\"flight_event\",\"ring\":\"client-3\",\"seq\":6,\"t_us\":45,\"kind\":\"op_complete_write\",\"pid\":3,\"a\":7,\"b\":18446744073709551615}
{\"type\":\"flight_event\",\"ring\":\"monitor\",\"seq\":0,\"t_us\":46,\"kind\":\"monitor_cut\",\"pid\":7,\"a\":1,\"b\":0}
{\"type\":\"flight_event\",\"ring\":\"client-3\",\"seq\":7,\"t_us\":50,\"kind\":\"op_start_read\",\"pid\":3,\"a\":8,\"b\":18446744073709551615}
{\"type\":\"flight_event\",\"ring\":\"client-3\",\"seq\":8,\"t_us\":61,\"kind\":\"op_complete_read\",\"pid\":3,\"a\":8,\"b\":42}
{\"type\":\"flight_event\",\"ring\":\"monitor\",\"seq\":1,\"t_us\":62,\"kind\":\"monitor_violation\",\"pid\":7,\"a\":1,\"b\":0}
";

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/flight_diagram.txt"
);

#[test]
fn dump_renders_to_the_committed_golden_diagram() {
    let dump = FlightDump::parse(DUMP).expect("fixture parses");
    let rendered = flight_space_time(&dump, 8, &DiagramOptions::default());
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN, &rendered).expect("bless golden diagram");
    }
    let golden = std::fs::read_to_string(GOLDEN).expect("golden file exists (BLESS=1 to create)");
    assert_eq!(
        rendered, golden,
        "flight rendering drifted from the golden diagram — re-bless if intentional"
    );
}

#[test]
fn round_trip_re_render_is_byte_identical() {
    let dump = FlightDump::parse(DUMP).expect("fixture parses");
    let direct = flight_space_time(&dump, 8, &DiagramOptions::default());
    let reparsed = FlightDump::parse(&dump.to_jsonl()).expect("round trip");
    assert_eq!(
        flight_space_time(&reparsed, 8, &DiagramOptions::default()),
        direct
    );
}

#[test]
fn rendering_names_the_interesting_events() {
    let dump = FlightDump::parse(DUMP).expect("fixture parses");
    let s = flight_space_time(&dump, 8, &DiagramOptions::default());
    for needle in [
        "call Write(42)",
        "ret ⊥",
        "call Read(⊥)",
        "ret 42",
        "p3→p0: query#1",
        "✂ drop →p1 query#1",
        "delay →p2 3ms",
        "recv update#1 ⟵p3",
        "wal flush (1 acks)",
        "ack →p3 sn=1",
        "retransmit sn=1",
        "✂ crash-drop →p1 w4",
        "✂ partition →p2 w1",
        "recovered in 512µs",
        "cut #1",
        "VIOLATION seg 1",
        "· t=10µs → t=62µs · 18 events",
    ] {
        assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
    }
    assert!(s.contains('✗'), "crash marker in:\n{s}");
}
