//! End-to-end analysis of the paper's Figure 1 execution: record the
//! scripted adversary's run against plain ABD, then check that the
//! happens-before report exposes the adversary's freedom and that the
//! space-time diagram renders the interleaving.

use blunt_abd::scenarios::weakener_abd;
use blunt_adversary::fig1::fig1_script;
use blunt_sim::kernel::run;
use blunt_sim::rng::Tape;
use blunt_sim::trace::Trace;
use blunt_trace::{analyze, space_time, DiagramOptions};

const N: usize = 3;

fn fig1_trace(coin: usize) -> Trace {
    let report = run(
        weakener_abd(1),
        &mut fig1_script(coin),
        &mut Tape::new(vec![coin]),
        true,
        10_000,
    )
    .expect("fig1 script runs to completion");
    report.trace
}

#[test]
fn fig1_interleaving_has_races_and_reorderable_steps() {
    for coin in 0..2 {
        let trace = fig1_trace(coin);
        let hb = analyze(&trace, N);
        let report = hb.report(&trace);
        assert!(
            !report.races.is_empty(),
            "coin {coin}: the Figure 1 schedule overlaps operations on a shared object"
        );
        assert!(
            !report.reorderable_adjacent.is_empty(),
            "coin {coin}: the adversary had adjacent steps it could swap"
        );
        let text = report.summary(&trace);
        assert!(text.contains("race"), "{text}");
    }
}

#[test]
fn a_single_process_slice_of_fig1_is_sequential() {
    // Restricting the trace to one process leaves only program order: the
    // report must be empty — no races, nothing to reorder.
    let full = fig1_trace(0);
    let mut solo = Trace::new();
    solo.extend(
        full.events()
            .iter()
            .filter(|ev| ev.pid() == blunt_core::ids::Pid(0))
            .cloned()
            .collect(),
    );
    assert!(!solo.is_empty(), "p0 takes steps in Figure 1");
    let report = analyze(&solo, N).report(&solo);
    assert!(
        report.is_empty(),
        "sequential trace must produce an empty report: {}",
        report.summary(&solo)
    );
}

#[test]
fn fig1_space_time_diagram_renders_the_schedule() {
    let trace = fig1_trace(1);
    let diagram = space_time(&trace, N, &DiagramOptions::default());
    assert_eq!(diagram.lines().count(), trace.len() + 2);
    assert!(diagram.contains('▶') || diagram.contains('◀'), "{diagram}");
    assert!(diagram.contains('┌') && diagram.contains('└'), "{diagram}");
    assert!(
        diagram.contains("loop forever"),
        "p2's absorbing loop is visible:\n{diagram}"
    );
}

#[test]
fn hb_clocks_respect_the_recorded_order_of_fig1() {
    // Sanity: happens-before is a sub-order of the recorded total order —
    // no event may happen-before an earlier one.
    let trace = fig1_trace(0);
    let hb = analyze(&trace, N);
    for i in 0..hb.len() {
        for j in (i + 1)..hb.len() {
            assert!(
                !hb.ordered(j, i),
                "event {j} cannot happen-before earlier event {i}"
            );
        }
    }
}
