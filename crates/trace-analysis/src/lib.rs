//! Causal trace analysis and adversary explainability for the blunting
//! reproduction.
//!
//! The simulator (`blunt-sim`) records executions as flat [`Trace`]s of
//! atomic steps; the adversary crate solves expectimax games over them. This
//! crate turns those raw artifacts into *explanations*:
//!
//! - [`hb`] annotates a trace with vector clocks and derives the
//!   happens-before partial order — message causality for ABD deliveries,
//!   program order per process, and conflict order for shared-memory base
//!   accesses — then reports which step pairs are concurrent, i.e. which
//!   reorderings the adversary could legally have chosen instead;
//! - [`diagram`] renders a trace as an ASCII space-time diagram (processes as
//!   vertical lanes, operations as intervals, deliveries as arrows between
//!   lanes), reproducing the paper's Figure 1 from a recorded run;
//! - [`flight`] renders the threaded runtime's flight-recorder dumps (the
//!   bounded event window captured at a violation or stall) in the same
//!   space-time language;
//! - [`pv`] pretty-prints the adversary decision artifacts produced by
//!   `blunt_sim::explore::Solver`: the principal variation (the worst-case
//!   schedule with its win probability after each move) and the recorded
//!   expectimax game tree;
//! - [`regress`] defines the schema-versioned `BENCH_results.json` format
//!   written by the `experiments` binary and the baseline comparison used by
//!   the `bench-report` gate.
//!
//! [`Trace`]: blunt_sim::trace::Trace

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagram;
pub mod flight;
pub mod hb;
pub mod pv;
pub mod regress;

pub use diagram::{history_space_time, space_time, DiagramOptions};
pub use flight::{flight_space_time, latency_breakdown, LatencyBreakdown};
pub use hb::{analyze, HbAnalysis, HbReport, Race};
pub use pv::{render_pv, render_tree};
pub use regress::{
    compare, BenchResults, CompareOptions, CompareReport, DeltaRow, RowKind, BENCH_SCHEMA_VERSION,
};
