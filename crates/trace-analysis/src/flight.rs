//! Space-time rendering of flight-recorder dumps.
//!
//! A [`FlightDump`] is the runtime's last-few-thousand-events window — bus
//! sends, fault decisions, op boundaries, server crashes, monitor cuts —
//! captured at the moment a violation or stall was detected. This module
//! maps those events onto [`blunt_sim::trace::TraceEvent`]s and reuses
//! [`space_time`], so a failing chaos run
//! renders in the same visual language as the paper's Figure 1 and the
//! monitor's violation windows: client ops as intervals, messages as
//! arrows, crashes as `✗`.

use blunt_core::ids::{CallSite, InvId, MethodId, ObjId, Pid};
use blunt_core::value::Val;
use blunt_obs::flight::{decode_val, msg_code_name, unpack_msg};
use blunt_obs::{FlightDump, FlightKind};
use blunt_sim::trace::{Trace, TraceEvent};

use crate::diagram::{space_time, DiagramOptions};

fn val_of(w: u64) -> Val {
    match decode_val(w) {
        None => Val::Nil,
        Some(x) => Val::Int(x),
    }
}

fn msg_label(w: u64) -> String {
    let (code, sn) = unpack_msg(w);
    format!("{}#{}", msg_code_name(code), sn)
}

/// Maps one flight event onto its diagram representation.
fn trace_event(e: &blunt_obs::FlightEvent) -> TraceEvent {
    let pid = Pid(e.pid);
    match e.kind {
        FlightKind::OpStartRead => TraceEvent::Call {
            inv: InvId(e.a),
            pid,
            obj: ObjId(0),
            method: MethodId::READ,
            arg: Val::Nil,
            site: CallSite::new(pid, 0, 0),
        },
        FlightKind::OpStartWrite => TraceEvent::Call {
            inv: InvId(e.a),
            pid,
            obj: ObjId(0),
            method: MethodId::WRITE,
            arg: val_of(e.b),
            site: CallSite::new(pid, 0, 0),
        },
        FlightKind::OpCompleteRead | FlightKind::OpCompleteWrite => TraceEvent::Return {
            inv: InvId(e.a),
            pid,
            val: val_of(e.b),
        },
        FlightKind::OpRetransmit => TraceEvent::Internal {
            pid,
            label: format!("retransmit sn={}", e.a),
        },
        FlightKind::BusSend => TraceEvent::Deliver {
            src: pid,
            dst: Pid(e.a as u32),
            label: msg_label(e.b),
        },
        FlightKind::BusDeliver => TraceEvent::Internal {
            pid,
            label: format!("recv {} ⟵p{}", msg_label(e.b), e.a),
        },
        FlightKind::FaultDrop => TraceEvent::Internal {
            pid,
            label: format!("✂ drop →p{} {}", e.a, msg_label(e.b)),
        },
        FlightKind::FaultDuplicate => TraceEvent::Internal {
            pid,
            label: format!("dup →p{} {}", e.a, msg_label(e.b)),
        },
        FlightKind::FaultReorder => TraceEvent::Internal {
            pid,
            label: format!("reorder →p{} {}", e.a, msg_label(e.b)),
        },
        FlightKind::FaultDelay => TraceEvent::Internal {
            pid,
            label: format!("delay →p{} {}ms", e.a, e.b),
        },
        FlightKind::FaultCrashDrop => TraceEvent::Internal {
            pid,
            label: format!("✂ crash-drop →p{} w{}", e.a, e.b),
        },
        FlightKind::FaultPartitionDrop => TraceEvent::Internal {
            pid,
            label: format!("✂ partition →p{} w{}", e.a, e.b),
        },
        FlightKind::ServerAck => TraceEvent::Internal {
            pid,
            label: format!("ack →p{} sn={}", e.a, e.b),
        },
        FlightKind::WalFlush => TraceEvent::Internal {
            pid,
            label: format!("wal flush ({} acks)", e.a),
        },
        FlightKind::ServerCrash => TraceEvent::Crash { pid },
        FlightKind::ServerRecover => TraceEvent::Internal {
            pid,
            label: format!("recovered in {}µs", e.a),
        },
        FlightKind::MonitorCut => TraceEvent::Internal {
            pid,
            label: format!("cut #{}", e.a),
        },
        FlightKind::MonitorViolation => TraceEvent::Internal {
            pid,
            label: format!("VIOLATION seg {}", e.a),
        },
    }
}

/// Renders a flight dump as a space-time diagram over `n` lanes.
///
/// Deterministic: the output is a pure function of the dump, so a dump
/// parsed back from JSONL re-renders byte-identically. A trailing
/// `· t=<first>µs → t=<last>µs · <events> events` footer line situates the
/// window on the run clock. Client-op intervals open on `op_start_*` and
/// close on `op_complete_*`; an op whose start was evicted from the ring
/// still shows its completion row (`└ ret …`), which is exactly what a
/// bounded window promises.
#[must_use]
pub fn flight_space_time(dump: &FlightDump, n: usize, opts: &DiagramOptions) -> String {
    let mut trace = Trace::new();
    trace.extend(dump.events.iter().map(trace_event).collect());
    let mut out = space_time(&trace, n, opts);
    let (first, last) = match (dump.events.first(), dump.events.last()) {
        (Some(f), Some(l)) => (f.t_us, l.t_us),
        _ => (0, 0),
    };
    out.push_str(&format!(
        "· t={first}µs → t={last}µs · {} events\n",
        dump.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_obs::flight::{encode_val, pack_msg, MSG_ACK, MSG_UPDATE};
    use blunt_obs::FlightEvent;

    fn ev(
        ring: &str,
        seq: u64,
        t_us: u64,
        kind: FlightKind,
        pid: u32,
        a: u64,
        b: u64,
    ) -> FlightEvent {
        FlightEvent {
            ring: ring.into(),
            seq,
            t_us,
            kind,
            pid,
            a,
            b,
        }
    }

    fn fixture() -> FlightDump {
        FlightDump {
            schema_version: blunt_obs::FLIGHT_SCHEMA_VERSION,
            events: vec![
                ev(
                    "client-3",
                    0,
                    1,
                    FlightKind::OpStartWrite,
                    3,
                    10,
                    encode_val(Some(5)),
                ),
                ev(
                    "client-3",
                    1,
                    2,
                    FlightKind::BusSend,
                    3,
                    0,
                    pack_msg(MSG_UPDATE, 1),
                ),
                ev(
                    "client-3",
                    2,
                    3,
                    FlightKind::FaultDrop,
                    3,
                    1,
                    pack_msg(MSG_UPDATE, 1),
                ),
                ev("server-0", 0, 4, FlightKind::ServerAck, 0, 3, 1),
                ev("server-1", 0, 5, FlightKind::ServerCrash, 1, 2, 0),
                ev(
                    "client-3",
                    3,
                    6,
                    FlightKind::OpCompleteWrite,
                    3,
                    10,
                    encode_val(None),
                ),
                ev("monitor", 0, 7, FlightKind::MonitorCut, 4, 1, 0),
            ],
        }
    }

    #[test]
    fn renders_ops_messages_faults_and_crashes() {
        let s = flight_space_time(&fixture(), 5, &DiagramOptions::default());
        assert!(s.contains("call Write(5)"), "{s}");
        assert!(s.contains("ret ⊥"), "{s}");
        assert!(s.contains("p3→p0: update#1"), "arrow label:\n{s}");
        assert!(s.contains("✂ drop →p1"), "{s}");
        assert!(s.contains('✗'), "crash marker:\n{s}");
        assert!(s.contains("cut #1"), "{s}");
        assert!(s.ends_with("· t=1µs → t=7µs · 7 events\n"), "{s}");
    }

    #[test]
    fn rendering_is_a_pure_function_of_the_dump() {
        let dump = fixture();
        let direct = flight_space_time(&dump, 5, &DiagramOptions::default());
        let reparsed = FlightDump::parse(&dump.to_jsonl()).expect("round trip");
        assert_eq!(
            flight_space_time(&reparsed, 5, &DiagramOptions::default()),
            direct,
            "re-render after JSONL round-trip must be byte-identical"
        );
    }

    #[test]
    fn empty_dump_renders_header_and_footer_only() {
        let dump = FlightDump {
            schema_version: blunt_obs::FLIGHT_SCHEMA_VERSION,
            events: vec![],
        };
        let s = flight_space_time(&dump, 2, &DiagramOptions::default());
        assert_eq!(s.lines().count(), 3, "{s}");
        assert!(s.contains("0 events"));
    }

    #[test]
    fn ack_and_delay_labels_are_readable() {
        let dump = FlightDump {
            schema_version: blunt_obs::FLIGHT_SCHEMA_VERSION,
            events: vec![
                ev("client-0", 0, 1, FlightKind::FaultDelay, 0, 2, 3),
                ev(
                    "server-2",
                    0,
                    2,
                    FlightKind::BusDeliver,
                    2,
                    0,
                    pack_msg(MSG_ACK, 9),
                ),
            ],
        };
        let s = flight_space_time(&dump, 3, &DiagramOptions::default());
        assert!(s.contains("delay →p2 3ms"), "{s}");
        assert!(s.contains("recv ack#9"), "{s}");
    }
}
