//! Space-time rendering of flight-recorder dumps.
//!
//! A [`FlightDump`] is the runtime's last-few-thousand-events window — bus
//! sends, fault decisions, op boundaries, server crashes, monitor cuts —
//! captured at the moment a violation or stall was detected. This module
//! maps those events onto [`blunt_sim::trace::TraceEvent`]s and reuses
//! [`space_time`], so a failing chaos run
//! renders in the same visual language as the paper's Figure 1 and the
//! monitor's violation windows: client ops as intervals, messages as
//! arrows, crashes as `✗`.

use std::collections::HashMap;

use blunt_core::ids::{CallSite, InvId, MethodId, ObjId, Pid};
use blunt_core::value::Val;
use blunt_obs::flight::{decode_val, msg_code_name, unpack_msg, unpack_span};
use blunt_obs::{FlightDump, FlightKind};
use blunt_sim::trace::{Trace, TraceEvent};

use crate::diagram::{space_time, DiagramOptions};

fn val_of(w: u64) -> Val {
    match decode_val(w) {
        None => Val::Nil,
        Some(x) => Val::Int(x),
    }
}

fn msg_label(w: u64) -> String {
    let (code, sn) = unpack_msg(w);
    format!("{}#{}", msg_code_name(code), sn)
}

/// Suffixes a label with the event's trace context (when span-attributed)
/// and prefixes it with the recording process (when remote). Events without
/// span or proc — every pre-v2 dump — render exactly as before.
fn decorate(e: &blunt_obs::FlightEvent, label: String) -> String {
    let mut label = label;
    if let Some((client, op)) = unpack_span(e.span) {
        label.push_str(&format!(" ·c{client}op{op}"));
    }
    if !e.proc.is_empty() {
        label = format!("[{}] {label}", e.proc);
    }
    label
}

/// Maps one flight event onto its diagram representation.
fn trace_event(e: &blunt_obs::FlightEvent) -> TraceEvent {
    match raw_trace_event(e) {
        TraceEvent::Internal { pid, label } => TraceEvent::Internal {
            pid,
            label: decorate(e, label),
        },
        TraceEvent::Deliver { src, dst, label } => TraceEvent::Deliver {
            src,
            dst,
            label: decorate(e, label),
        },
        other => other,
    }
}

fn raw_trace_event(e: &blunt_obs::FlightEvent) -> TraceEvent {
    let pid = Pid(e.pid);
    match e.kind {
        FlightKind::OpStartRead => TraceEvent::Call {
            inv: InvId(e.a),
            pid,
            obj: ObjId(0),
            method: MethodId::READ,
            arg: Val::Nil,
            site: CallSite::new(pid, 0, 0),
        },
        FlightKind::OpStartWrite => TraceEvent::Call {
            inv: InvId(e.a),
            pid,
            obj: ObjId(0),
            method: MethodId::WRITE,
            arg: val_of(e.b),
            site: CallSite::new(pid, 0, 0),
        },
        FlightKind::OpCompleteRead | FlightKind::OpCompleteWrite => TraceEvent::Return {
            inv: InvId(e.a),
            pid,
            val: val_of(e.b),
        },
        FlightKind::OpRetransmit => TraceEvent::Internal {
            pid,
            label: format!("retransmit sn={}", e.a),
        },
        FlightKind::BusSend => TraceEvent::Deliver {
            src: pid,
            dst: Pid(e.a as u32),
            label: msg_label(e.b),
        },
        FlightKind::BusDeliver => TraceEvent::Internal {
            pid,
            label: format!("recv {} ⟵p{}", msg_label(e.b), e.a),
        },
        FlightKind::FaultDrop => TraceEvent::Internal {
            pid,
            label: format!("✂ drop →p{} {}", e.a, msg_label(e.b)),
        },
        FlightKind::FaultDuplicate => TraceEvent::Internal {
            pid,
            label: format!("dup →p{} {}", e.a, msg_label(e.b)),
        },
        FlightKind::FaultReorder => TraceEvent::Internal {
            pid,
            label: format!("reorder →p{} {}", e.a, msg_label(e.b)),
        },
        FlightKind::FaultDelay => TraceEvent::Internal {
            pid,
            label: format!("delay →p{} {}ms", e.a, e.b),
        },
        FlightKind::FaultCrashDrop => TraceEvent::Internal {
            pid,
            label: format!("✂ crash-drop →p{} w{}", e.a, e.b),
        },
        FlightKind::FaultPartitionDrop => TraceEvent::Internal {
            pid,
            label: format!("✂ partition →p{} w{}", e.a, e.b),
        },
        FlightKind::ServerAck => TraceEvent::Internal {
            pid,
            label: format!("ack →p{} sn={}", e.a, e.b),
        },
        FlightKind::WalFlush => TraceEvent::Internal {
            pid,
            label: format!("wal flush ({} acks)", e.a),
        },
        FlightKind::ServerCrash => TraceEvent::Crash { pid },
        FlightKind::ServerRecover => TraceEvent::Internal {
            pid,
            label: format!("recovered in {}µs", e.a),
        },
        FlightKind::MonitorCut => TraceEvent::Internal {
            pid,
            label: format!("cut #{}", e.a),
        },
        FlightKind::MonitorViolation => TraceEvent::Internal {
            pid,
            label: format!("VIOLATION seg {}", e.a),
        },
    }
}

/// Renders a flight dump as a space-time diagram over `n` lanes.
///
/// Deterministic: the output is a pure function of the dump, so a dump
/// parsed back from JSONL re-renders byte-identically. A trailing
/// `· t=<first>µs → t=<last>µs · <events> events` footer line situates the
/// window on the run clock. Client-op intervals open on `op_start_*` and
/// close on `op_complete_*`; an op whose start was evicted from the ring
/// still shows its completion row (`└ ret …`), which is exactly what a
/// bounded window promises.
#[must_use]
pub fn flight_space_time(dump: &FlightDump, n: usize, opts: &DiagramOptions) -> String {
    let mut trace = Trace::new();
    trace.extend(dump.events.iter().map(trace_event).collect());
    let mut out = space_time(&trace, n, opts);
    let (first, last) = match (dump.events.first(), dump.events.last()) {
        (Some(f), Some(l)) => (f.t_us, l.t_us),
        _ => (0, 0),
    };
    out.push_str(&format!(
        "· t={first}µs → t={last}µs · {} events\n",
        dump.len()
    ));
    out
}

/// Median per-operation phase latencies, computed from a merged,
/// clock-aligned cross-process flight dump.
///
/// Each phase is the median over all operations whose span left a complete
/// timeline in the window (start, send, remote deliver, remote ack,
/// complete). `fsync_us` is instead the median fsync duration over every
/// remote WAL flush in the window, since flushes batch acks across ops.
/// All values are zero when the dump has no remote (merged) events — e.g.
/// an in-process run — so callers can gate emission on `ops > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyBreakdown {
    /// Operations with a complete five-stamp span timeline.
    pub ops: u64,
    /// Op start → first envelope handed to the transport (client side).
    pub client_queue_us: u64,
    /// First send → first delivery recorded by a remote server.
    pub wire_us: u64,
    /// First remote delivery → first remote WAL ack of the op.
    pub server_ack_us: u64,
    /// Median remote fsync duration (WAL flush wall time).
    pub fsync_us: u64,
    /// First remote ack → op completion at the client (quorum assembly).
    pub quorum_complete_us: u64,
}

fn median(xs: &mut [u64]) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Computes the per-op [`LatencyBreakdown`] of a merged flight dump.
///
/// Span-attributed events from the driver process (`proc == ""`) supply the
/// client-side stamps; events merged in from remote server processes
/// (`proc != ""`, already shifted onto the driver clock by
/// [`FlightDump::merge_remote`]) supply the server-side stamps. Clock skew
/// that survives offset estimation is clamped to zero per phase rather than
/// wrapping.
#[must_use]
pub fn latency_breakdown(dump: &FlightDump) -> LatencyBreakdown {
    #[derive(Default)]
    struct Stamps {
        start: Option<u64>,
        send: Option<u64>,
        deliver: Option<u64>,
        ack: Option<u64>,
        complete: Option<u64>,
    }
    fn first(slot: &mut Option<u64>, t: u64) {
        if slot.is_none_or(|old| t < old) {
            *slot = Some(t);
        }
    }
    let mut spans: HashMap<u64, Stamps> = HashMap::new();
    let mut fsyncs: Vec<u64> = Vec::new();
    for e in &dump.events {
        let remote = !e.proc.is_empty();
        if e.kind == FlightKind::WalFlush && remote {
            fsyncs.push(e.b);
        }
        if unpack_span(e.span).is_none() {
            continue;
        }
        let s = spans.entry(e.span).or_default();
        match e.kind {
            FlightKind::OpStartRead | FlightKind::OpStartWrite if !remote => {
                first(&mut s.start, e.t_us);
            }
            FlightKind::BusSend if !remote => first(&mut s.send, e.t_us),
            FlightKind::BusDeliver if remote => first(&mut s.deliver, e.t_us),
            FlightKind::ServerAck if remote => first(&mut s.ack, e.t_us),
            FlightKind::OpCompleteRead | FlightKind::OpCompleteWrite if !remote => {
                first(&mut s.complete, e.t_us);
            }
            _ => {}
        }
    }
    let mut queue = Vec::new();
    let mut wire = Vec::new();
    let mut ack = Vec::new();
    let mut quorum = Vec::new();
    for s in spans.values() {
        let (Some(t0), Some(t1), Some(t2), Some(t3), Some(t4)) =
            (s.start, s.send, s.deliver, s.ack, s.complete)
        else {
            continue;
        };
        queue.push(t1.saturating_sub(t0));
        wire.push(t2.saturating_sub(t1));
        ack.push(t3.saturating_sub(t2));
        quorum.push(t4.saturating_sub(t3));
    }
    LatencyBreakdown {
        ops: queue.len() as u64,
        client_queue_us: median(&mut queue),
        wire_us: median(&mut wire),
        server_ack_us: median(&mut ack),
        fsync_us: median(&mut fsyncs),
        quorum_complete_us: median(&mut quorum),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_obs::flight::{
        encode_val, pack_msg, pack_span, KEY_NONE, MSG_ACK, MSG_UPDATE, SPAN_NONE,
    };
    use blunt_obs::FlightEvent;

    fn ev(
        ring: &str,
        seq: u64,
        t_us: u64,
        kind: FlightKind,
        pid: u32,
        a: u64,
        b: u64,
    ) -> FlightEvent {
        FlightEvent {
            ring: ring.into(),
            seq,
            t_us,
            kind,
            pid,
            a,
            b,
            span: SPAN_NONE,
            key: KEY_NONE,
            proc: String::new(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn span_ev(
        ring: &str,
        seq: u64,
        t_us: u64,
        kind: FlightKind,
        pid: u32,
        a: u64,
        b: u64,
        span: u64,
        proc: &str,
    ) -> FlightEvent {
        FlightEvent {
            span,
            proc: proc.into(),
            ..ev(ring, seq, t_us, kind, pid, a, b)
        }
    }

    fn fixture() -> FlightDump {
        FlightDump {
            schema_version: blunt_obs::FLIGHT_SCHEMA_VERSION,
            events: vec![
                ev(
                    "client-3",
                    0,
                    1,
                    FlightKind::OpStartWrite,
                    3,
                    10,
                    encode_val(Some(5)),
                ),
                ev(
                    "client-3",
                    1,
                    2,
                    FlightKind::BusSend,
                    3,
                    0,
                    pack_msg(MSG_UPDATE, 1),
                ),
                ev(
                    "client-3",
                    2,
                    3,
                    FlightKind::FaultDrop,
                    3,
                    1,
                    pack_msg(MSG_UPDATE, 1),
                ),
                ev("server-0", 0, 4, FlightKind::ServerAck, 0, 3, 1),
                ev("server-1", 0, 5, FlightKind::ServerCrash, 1, 2, 0),
                ev(
                    "client-3",
                    3,
                    6,
                    FlightKind::OpCompleteWrite,
                    3,
                    10,
                    encode_val(None),
                ),
                ev("monitor", 0, 7, FlightKind::MonitorCut, 4, 1, 0),
            ],
        }
    }

    #[test]
    fn renders_ops_messages_faults_and_crashes() {
        let s = flight_space_time(&fixture(), 5, &DiagramOptions::default());
        assert!(s.contains("call Write(5)"), "{s}");
        assert!(s.contains("ret ⊥"), "{s}");
        assert!(s.contains("p3→p0: update#1"), "arrow label:\n{s}");
        assert!(s.contains("✂ drop →p1"), "{s}");
        assert!(s.contains('✗'), "crash marker:\n{s}");
        assert!(s.contains("cut #1"), "{s}");
        assert!(s.ends_with("· t=1µs → t=7µs · 7 events\n"), "{s}");
    }

    #[test]
    fn rendering_is_a_pure_function_of_the_dump() {
        let dump = fixture();
        let direct = flight_space_time(&dump, 5, &DiagramOptions::default());
        let reparsed = FlightDump::parse(&dump.to_jsonl()).expect("round trip");
        assert_eq!(
            flight_space_time(&reparsed, 5, &DiagramOptions::default()),
            direct,
            "re-render after JSONL round-trip must be byte-identical"
        );
    }

    #[test]
    fn empty_dump_renders_header_and_footer_only() {
        let dump = FlightDump {
            schema_version: blunt_obs::FLIGHT_SCHEMA_VERSION,
            events: vec![],
        };
        let s = flight_space_time(&dump, 2, &DiagramOptions::default());
        assert_eq!(s.lines().count(), 3, "{s}");
        assert!(s.contains("0 events"));
    }

    #[test]
    fn ack_and_delay_labels_are_readable() {
        let dump = FlightDump {
            schema_version: blunt_obs::FLIGHT_SCHEMA_VERSION,
            events: vec![
                ev("client-0", 0, 1, FlightKind::FaultDelay, 0, 2, 3),
                ev(
                    "server-2",
                    0,
                    2,
                    FlightKind::BusDeliver,
                    2,
                    0,
                    pack_msg(MSG_ACK, 9),
                ),
            ],
        };
        let s = flight_space_time(&dump, 3, &DiagramOptions::default());
        assert!(s.contains("delay →p2 3ms"), "{s}");
        assert!(s.contains("recv ack#9"), "{s}");
    }

    #[test]
    fn merged_dump_labels_carry_proc_and_span() {
        let w = pack_span(3, 41);
        let dump = FlightDump {
            schema_version: blunt_obs::FLIGHT_SCHEMA_VERSION,
            events: vec![
                span_ev(
                    "server-0",
                    0,
                    2,
                    FlightKind::BusDeliver,
                    0,
                    3,
                    pack_msg(MSG_UPDATE, 1),
                    w,
                    "s0",
                ),
                span_ev("server-0", 1, 3, FlightKind::ServerAck, 0, 3, 1, w, "s0"),
                // A remote event without a span still gets a proc prefix.
                span_ev(
                    "server-0",
                    2,
                    4,
                    FlightKind::WalFlush,
                    0,
                    1,
                    120,
                    SPAN_NONE,
                    "s0",
                ),
            ],
        };
        let opts = DiagramOptions {
            lane_width: 48,
            ..DiagramOptions::default()
        };
        let s = flight_space_time(&dump, 4, &opts);
        assert!(s.contains("[s0] recv update#1 ⟵p3 ·c3op41"), "{s}");
        assert!(s.contains("[s0] ack →p3 sn=1 ·c3op41"), "{s}");
        assert!(s.contains("[s0] wal flush (1 acks)"), "{s}");
        assert!(
            !s.contains("wal flush (1 acks) ·c"),
            "spanless event grew a span tag:\n{s}"
        );
    }

    #[test]
    fn latency_breakdown_computes_phase_medians_over_complete_spans() {
        let w1 = pack_span(3, 1);
        let w2 = pack_span(3, 2);
        let mut events = vec![
            // Op 1: start 10, send 14, deliver 20, ack 29, complete 45.
            span_ev("client-3", 0, 10, FlightKind::OpStartWrite, 3, 1, 0, w1, ""),
            span_ev("client-3", 1, 14, FlightKind::BusSend, 3, 0, 0, w1, ""),
            span_ev("server-0", 0, 20, FlightKind::BusDeliver, 0, 3, 0, w1, "s0"),
            span_ev("server-0", 1, 29, FlightKind::ServerAck, 0, 3, 1, w1, "s0"),
            span_ev(
                "client-3",
                2,
                45,
                FlightKind::OpCompleteWrite,
                3,
                1,
                0,
                w1,
                "",
            ),
            // Op 2: start 50, send 56, deliver 60, ack 75, complete 80.
            span_ev("client-3", 3, 50, FlightKind::OpStartRead, 3, 2, 0, w2, ""),
            span_ev("client-3", 4, 56, FlightKind::BusSend, 3, 1, 0, w2, ""),
            span_ev("server-1", 0, 60, FlightKind::BusDeliver, 1, 3, 0, w2, "s1"),
            span_ev("server-1", 1, 75, FlightKind::ServerAck, 1, 3, 2, w2, "s1"),
            span_ev(
                "client-3",
                5,
                80,
                FlightKind::OpCompleteRead,
                3,
                2,
                0,
                w2,
                "",
            ),
            // Remote fsyncs: durations 100 and 300 → median picks 300
            // (upper-median of an even-length set).
            span_ev(
                "server-0",
                2,
                30,
                FlightKind::WalFlush,
                0,
                1,
                100,
                SPAN_NONE,
                "s0",
            ),
            span_ev(
                "server-1",
                2,
                76,
                FlightKind::WalFlush,
                1,
                1,
                300,
                SPAN_NONE,
                "s1",
            ),
            // An incomplete span (no completion in the window) is skipped.
            span_ev(
                "client-2",
                0,
                90,
                FlightKind::OpStartRead,
                2,
                7,
                0,
                pack_span(2, 7),
                "",
            ),
        ];
        events.sort_by_key(|e| e.t_us);
        let dump = FlightDump {
            schema_version: blunt_obs::FLIGHT_SCHEMA_VERSION,
            events,
        };
        let b = latency_breakdown(&dump);
        assert_eq!(b.ops, 2);
        // Phase samples: queue {4, 6}, wire {6, 4}, ack {9, 15},
        // quorum {16, 5}; upper-median of each two-element set.
        assert_eq!(b.client_queue_us, 6);
        assert_eq!(b.wire_us, 6);
        assert_eq!(b.server_ack_us, 15);
        assert_eq!(b.fsync_us, 300);
        assert_eq!(b.quorum_complete_us, 16);
    }

    #[test]
    fn latency_breakdown_of_a_local_only_dump_is_all_zero() {
        let b = latency_breakdown(&fixture());
        assert_eq!(b, LatencyBreakdown::default());
    }
}
