//! The schema-versioned `BENCH_results.json` format and the baseline
//! comparison behind the `bench-report` regression gate.
//!
//! The `experiments` binary writes a [`BenchResults`] snapshot (per-phase
//! wall-clock times plus the final `blunt-obs` counter totals, which include
//! the expectimax node counts). `bench-report` parses a committed baseline
//! and a fresh run, prints a delta table, and — in `--check` mode — exits
//! nonzero when a *counter* grew past the configured threshold. Wall-clock
//! times are reported but gate only under `strict_times`, since they are
//! machine-dependent; counters are deterministic for a fixed experiment set.

use std::fmt::Write as _;

use blunt_obs::{Json, Snapshot};

/// Version stamp written into every `BENCH_results.json`. Bump on any
/// incompatible change to the record shape; mismatching versions always gate.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// One benchmark run: phase wall-times and counter totals.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResults {
    /// The schema version the file was written with.
    pub schema_version: u64,
    /// `(phase name, wall-clock milliseconds)`, in execution order.
    pub phases: Vec<(String, f64)>,
    /// `(counter name, total)`, sorted by name (as produced by
    /// [`Snapshot`]).
    pub counters: Vec<(String, u64)>,
    /// The run seed, when the producing binary was seeded (`experiments
    /// --seed`, `chaos --seed`). Echoed for replay; never gated on.
    /// Optional within schema v1 — absent in older files.
    pub seed: Option<u64>,
}

impl BenchResults {
    /// An empty result set at the current schema version.
    #[must_use]
    pub fn new() -> BenchResults {
        BenchResults {
            schema_version: BENCH_SCHEMA_VERSION,
            phases: Vec::new(),
            counters: Vec::new(),
            seed: None,
        }
    }

    /// Builds results from recorded phase times and a metrics snapshot.
    #[must_use]
    pub fn from_snapshot(phases: Vec<(String, f64)>, snap: &Snapshot) -> BenchResults {
        BenchResults {
            schema_version: BENCH_SCHEMA_VERSION,
            phases,
            counters: snap.counters.clone(),
            seed: None,
        }
    }

    /// The wall-time of phase `name`, if present.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<f64> {
        self.phases.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// The value of counter `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Serializes to the `bench_results` JSON record (see
    /// `docs/OBS_SCHEMA.md`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let phases = self
            .phases
            .iter()
            .map(|(name, ms)| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(name.clone())),
                    ("wall_ms".into(), Json::Float(*ms)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(name.clone())),
                    ("value".into(), Json::UInt(*v)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("type".into(), Json::Str("bench_results".into())),
            ("schema_version".into(), Json::UInt(self.schema_version)),
        ];
        if let Some(seed) = self.seed {
            fields.push(("seed".into(), Json::UInt(seed)));
        }
        fields.push(("phases".into(), Json::Arr(phases)));
        fields.push(("counters".into(), Json::Arr(counters)));
        Json::Obj(fields)
    }

    /// Parses a `bench_results` record; `None` on shape mismatch.
    #[must_use]
    pub fn from_json(j: &Json) -> Option<BenchResults> {
        if j.get("type")?.as_str()? != "bench_results" {
            return None;
        }
        let schema_version = j.get("schema_version")?.as_u64()?;
        let mut phases = Vec::new();
        for p in j.get("phases")?.as_arr()? {
            phases.push((
                p.get("name")?.as_str()?.to_owned(),
                p.get("wall_ms")?.as_f64()?,
            ));
        }
        let mut counters = Vec::new();
        for c in j.get("counters")?.as_arr()? {
            counters.push((
                c.get("name")?.as_str()?.to_owned(),
                c.get("value")?.as_u64()?,
            ));
        }
        // `seed` is optional within schema v1: older files lack it.
        let seed = j.get("seed").and_then(Json::as_u64);
        Some(BenchResults {
            schema_version,
            phases,
            counters,
            seed,
        })
    }
}

impl Default for BenchResults {
    fn default() -> BenchResults {
        BenchResults::new()
    }
}

/// Gate configuration for [`compare`].
#[derive(Clone, Copy, Debug)]
pub struct CompareOptions {
    /// Allowed relative increase before a row counts as regressed: `0.25`
    /// means "up to +25% is fine".
    pub threshold: f64,
    /// Also gate on wall-clock phase times (off by default: times are
    /// machine-dependent).
    pub strict_times: bool,
}

impl Default for CompareOptions {
    fn default() -> CompareOptions {
        CompareOptions {
            threshold: 0.25,
            strict_times: false,
        }
    }
}

/// What kind of quantity a [`DeltaRow`] compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowKind {
    /// A phase wall-clock time in milliseconds.
    Time,
    /// A deterministic counter total.
    Count,
}

/// One baseline-vs-current comparison row.
#[derive(Clone, Debug)]
pub struct DeltaRow {
    /// Phase or counter name.
    pub name: String,
    /// Whether this row is a time or a counter.
    pub kind: RowKind,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub current: f64,
    /// True when the row trips the gate under the options used.
    pub regressed: bool,
}

impl DeltaRow {
    /// Relative change in percent (`+∞` when the baseline is zero and the
    /// current value is not).
    #[must_use]
    pub fn delta_pct(&self) -> f64 {
        if self.base == 0.0 {
            if self.current == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.current - self.base) / self.base * 100.0
        }
    }
}

/// The outcome of [`compare`].
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// True when the two files were written with different schema versions
    /// (always gates).
    pub schema_mismatch: bool,
    /// Per-quantity rows, phases first, then counters.
    pub rows: Vec<DeltaRow>,
    /// Names present in the baseline but absent from the current run
    /// (informational).
    pub missing_in_current: Vec<String>,
    /// Names present only in the current run (informational).
    pub only_in_current: Vec<String>,
}

impl CompareReport {
    /// The rows that tripped the gate.
    #[must_use]
    pub fn regressions(&self) -> Vec<&DeltaRow> {
        self.rows.iter().filter(|r| r.regressed).collect()
    }

    /// True when `bench-report --check` should exit nonzero.
    #[must_use]
    pub fn has_regressions(&self) -> bool {
        self.schema_mismatch || self.rows.iter().any(|r| r.regressed)
    }

    /// Renders the aligned delta table plus a one-line verdict.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<6} {:<44} {:>14} {:>14} {:>9}",
            "kind", "name", "baseline", "current", "delta"
        );
        for r in &self.rows {
            let kind = match r.kind {
                RowKind::Time => "time",
                RowKind::Count => "count",
            };
            let fmt_v = |v: f64| {
                if r.kind == RowKind::Time {
                    format!("{v:.1}ms")
                } else {
                    format!("{v:.0}")
                }
            };
            let delta = if r.delta_pct().is_infinite() {
                "   new>0".to_owned()
            } else {
                format!("{:>+7.1}%", r.delta_pct())
            };
            let _ = writeln!(
                s,
                "{:<6} {:<44} {:>14} {:>14} {:>9}{}",
                kind,
                r.name,
                fmt_v(r.base),
                fmt_v(r.current),
                delta,
                if r.regressed { "  REGRESSED" } else { "" }
            );
        }
        if self.schema_mismatch {
            let _ = writeln!(s, "schema version mismatch — results not comparable");
        }
        if !self.missing_in_current.is_empty() {
            let _ = writeln!(
                s,
                "missing in current: {}",
                self.missing_in_current.join(", ")
            );
        }
        if !self.only_in_current.is_empty() {
            let _ = writeln!(s, "new in current: {}", self.only_in_current.join(", "));
        }
        let _ = writeln!(
            s,
            "verdict: {}",
            if self.has_regressions() {
                "REGRESSION"
            } else {
                "OK"
            }
        );
        s
    }
}

/// Compares `current` against `baseline` under `opts`.
///
/// Counters gate when they grow past `base * (1 + threshold)`; phase times
/// do the same only under [`CompareOptions::strict_times`] (with half a
/// millisecond of absolute slack). Quantities present on only one side are
/// listed but never gate — adding or retiring an experiment is not a
/// regression.
#[must_use]
pub fn compare(
    baseline: &BenchResults,
    current: &BenchResults,
    opts: &CompareOptions,
) -> CompareReport {
    let mut report = CompareReport {
        schema_mismatch: baseline.schema_version != current.schema_version,
        ..CompareReport::default()
    };
    for (name, base) in &baseline.phases {
        match current.phase(name) {
            Some(cur) => report.rows.push(DeltaRow {
                name: name.clone(),
                kind: RowKind::Time,
                base: *base,
                current: cur,
                regressed: opts.strict_times && cur > base * (1.0 + opts.threshold) + 0.5,
            }),
            None => report.missing_in_current.push(name.clone()),
        }
    }
    for (name, base) in &baseline.counters {
        match current.counter(name) {
            Some(cur) => {
                let (b, c) = (*base as f64, cur as f64);
                report.rows.push(DeltaRow {
                    name: name.clone(),
                    kind: RowKind::Count,
                    base: b,
                    current: c,
                    regressed: c > b * (1.0 + opts.threshold) + 1e-9,
                });
            }
            None => report.missing_in_current.push(name.clone()),
        }
    }
    for (name, _) in &current.phases {
        if baseline.phase(name).is_none() {
            report.only_in_current.push(name.clone());
        }
    }
    for (name, _) in &current.counters {
        if baseline.counter(name).is_none() {
            report.only_in_current.push(name.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> BenchResults {
        BenchResults::from_json(&Json::parse(text).expect("valid json")).expect("valid schema")
    }

    const BASELINE: &str = r#"{"type":"bench_results","schema_version":1,
        "phases":[{"name":"e1_game_values","wall_ms":120.0}],
        "counters":[{"name":"sim.explore.states","value":1000},
                    {"name":"sim.kernel.steps","value":400}]}"#;

    #[test]
    fn json_round_trips() {
        let r = parse(BASELINE);
        assert_eq!(r.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(r.counter("sim.explore.states"), Some(1000));
        assert_eq!(r.phase("e1_game_values"), Some(120.0));
        let back = BenchResults::from_json(&Json::parse(&r.to_json().to_string()).unwrap());
        assert_eq!(back.as_ref(), Some(&r));
    }

    #[test]
    fn seed_round_trips_and_never_gates() {
        // Seeded runs echo the seed (replay affordance); files without one
        // still parse — `seed` is optional within schema v1.
        let mut seeded = parse(BASELINE);
        assert_eq!(seeded.seed, None);
        seeded.seed = Some(0x0B1D_5EED);
        let back = BenchResults::from_json(&Json::parse(&seeded.to_json().to_string()).unwrap())
            .expect("round trip");
        assert_eq!(back.seed, Some(0x0B1D_5EED));
        // Two runs differing only in seed compare clean.
        let report = compare(&parse(BASELINE), &seeded, &CompareOptions::default());
        assert!(!report.has_regressions());
    }

    #[test]
    fn doctored_regression_trips_the_gate() {
        // Current run doubled an expectimax node counter: past the default
        // +25% threshold, so --check must fail.
        let baseline = parse(BASELINE);
        let doctored = parse(
            r#"{"type":"bench_results","schema_version":1,
                "phases":[{"name":"e1_game_values","wall_ms":480.0}],
                "counters":[{"name":"sim.explore.states","value":2000},
                            {"name":"sim.kernel.steps","value":400}]}"#,
        );
        let report = compare(&baseline, &doctored, &CompareOptions::default());
        assert!(report.has_regressions());
        let regs: Vec<&str> = report
            .regressions()
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(
            regs,
            vec!["sim.explore.states"],
            "times do not gate by default"
        );
        assert!(report.to_text().contains("REGRESSED"));
        assert!(report.to_text().contains("verdict: REGRESSION"));

        // A generous threshold lets the same run pass.
        let lax = compare(
            &baseline,
            &doctored,
            &CompareOptions {
                threshold: 1.5,
                strict_times: false,
            },
        );
        assert!(!lax.has_regressions(), "{}", lax.to_text());
    }

    #[test]
    fn strict_times_gates_on_wall_clock() {
        let baseline = parse(BASELINE);
        let mut current = baseline.clone();
        current.phases[0].1 = 480.0;
        let opts = CompareOptions {
            threshold: 0.25,
            strict_times: true,
        };
        assert!(compare(&baseline, &current, &opts).has_regressions());
        assert!(!compare(&baseline, &current, &CompareOptions::default()).has_regressions());
    }

    #[test]
    fn schema_mismatch_and_missing_counters_behave() {
        let baseline = parse(BASELINE);
        let mut newer = baseline.clone();
        newer.schema_version += 1;
        assert!(compare(&baseline, &newer, &CompareOptions::default()).has_regressions());

        // Retired counter: listed, but not a gate failure.
        let mut slimmer = baseline.clone();
        slimmer.counters.retain(|(k, _)| k != "sim.kernel.steps");
        let report = compare(&baseline, &slimmer, &CompareOptions::default());
        assert!(!report.has_regressions());
        assert_eq!(report.missing_in_current, vec!["sim.kernel.steps"]);
        assert!(report.to_text().contains("missing in current"));
    }

    #[test]
    fn equal_runs_are_clean() {
        let baseline = parse(BASELINE);
        let report = compare(&baseline, &baseline.clone(), &CompareOptions::default());
        assert!(!report.has_regressions());
        assert!(report.missing_in_current.is_empty() && report.only_in_current.is_empty());
        assert!(report.to_text().contains("verdict: OK"));
    }
}
