//! Vector-clock happens-before annotation and the commutativity/race report.
//!
//! A recorded [`Trace`] is a *total* order — one particular schedule the
//! adversary chose. The happens-before relation recovers the underlying
//! *partial* order: the causality that every legal schedule must respect.
//! Steps left unordered by happens-before are exactly the pairs the adversary
//! was free to reorder, which is what makes a schedule an adversarial choice
//! rather than a forced one.
//!
//! Edges, following the paper's Section 2 execution model:
//!
//! - **program order** — consecutive steps of the same process;
//! - **message causality** — a [`TraceEvent::Deliver`] at the destination is
//!   ordered after the *latest preceding step of the sender*. The simulator
//!   does not record explicit send events, so this over-approximates the true
//!   send point; the approximation is *sound* for race reporting (it can only
//!   order more, never report a false race... conversely it may hide a race,
//!   so the report is a lower bound on adversary freedom);
//! - **base-object conflict order** — shared-memory base accesses (the
//!   `"base access"` [`TraceEvent::Internal`] steps emitted by
//!   `blunt-registers`) are serialized against each other on a single
//!   coarse resource, because the trace does not name the individual cell.
//!   Again conservative: more order, never less.
//!
//! Vector clocks are built in one forward pass (join of all predecessor
//! clocks, then increment the stepping process's component), so
//! `e happens-before f` iff `clock(e) ≤ clock(f)` componentwise.

use std::fmt::Write as _;

use blunt_core::ids::{MethodId, ObjId};
use blunt_sim::trace::{Trace, TraceEvent};

/// The `Internal` label marking a shared-memory base access (see
/// `blunt-registers`); all such steps conflict pairwise.
const BASE_ACCESS_LABEL: &str = "base access";

/// Vector clocks for every event of one trace.
#[derive(Clone, Debug)]
pub struct HbAnalysis {
    width: usize,
    clocks: Vec<Vec<u64>>,
}

/// Annotates `trace` with vector clocks for a system of `n` processes.
///
/// Process ids at or above `n` are clamped into the last component, matching
/// the convention of [`Trace::timeline`]. `n` must be at least 1.
#[must_use]
pub fn analyze(trace: &Trace, n: usize) -> HbAnalysis {
    assert!(n >= 1, "need at least one process lane");
    blunt_obs::static_counter!("trace.hb.analyses").inc();
    let lane = |p: blunt_core::ids::Pid| p.index().min(n - 1);
    let mut clocks: Vec<Vec<u64>> = Vec::with_capacity(trace.len());
    let mut last_of: Vec<Option<usize>> = vec![None; n];
    let mut last_base_access: Option<usize> = None;
    for ev in trace.events() {
        let me = lane(ev.pid());
        let mut clock = vec![0u64; n];
        let join = |clock: &mut Vec<u64>, pred: Option<usize>| {
            if let Some(j) = pred {
                for (c, p) in clock.iter_mut().zip(&clocks[j]) {
                    *c = (*c).max(*p);
                }
            }
        };
        join(&mut clock, last_of[me]);
        if let TraceEvent::Deliver { src, .. } = ev {
            join(&mut clock, last_of[lane(*src)]);
        }
        let is_base =
            matches!(ev, TraceEvent::Internal { label, .. } if label == BASE_ACCESS_LABEL);
        if is_base {
            join(&mut clock, last_base_access);
        }
        clock[me] += 1;
        let idx = clocks.len();
        clocks.push(clock);
        last_of[me] = Some(idx);
        if is_base {
            last_base_access = Some(idx);
        }
    }
    HbAnalysis { width: n, clocks }
}

impl HbAnalysis {
    /// The number of annotated events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// True when the trace had no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// The number of process lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.width
    }

    /// The vector clock of event `i`.
    #[must_use]
    pub fn clock(&self, i: usize) -> &[u64] {
        &self.clocks[i]
    }

    /// True iff event `i` happens strictly before event `j`.
    #[must_use]
    pub fn ordered(&self, i: usize, j: usize) -> bool {
        i != j
            && self.clocks[i]
                .iter()
                .zip(&self.clocks[j])
                .all(|(a, b)| a <= b)
    }

    /// True iff events `i` and `j` are causally unordered — the adversary
    /// could have scheduled them in either order.
    #[must_use]
    pub fn concurrent(&self, i: usize, j: usize) -> bool {
        i != j && !self.ordered(i, j) && !self.ordered(j, i)
    }

    /// Derives the commutativity/race report for the annotated trace.
    #[must_use]
    pub fn report(&self, trace: &Trace) -> HbReport {
        let mut reorderable_adjacent = Vec::new();
        for i in 0..self.len().saturating_sub(1) {
            if self.concurrent(i, i + 1) {
                reorderable_adjacent.push((i, i + 1));
            }
        }
        let calls: Vec<(usize, ObjId, MethodId)> = trace
            .events()
            .iter()
            .enumerate()
            .filter_map(|(i, ev)| match ev {
                TraceEvent::Call { obj, method, .. } => Some((i, *obj, *method)),
                _ => None,
            })
            .collect();
        let is_mutator = |m: MethodId| m != MethodId::READ && m != MethodId::SCAN;
        let mut races = Vec::new();
        let mut concurrent_calls = 0usize;
        for (a, &(i, obj_i, m_i)) in calls.iter().enumerate() {
            for &(j, obj_j, m_j) in &calls[a + 1..] {
                if obj_i == obj_j && self.concurrent(i, j) {
                    concurrent_calls += 1;
                    if is_mutator(m_i) || is_mutator(m_j) {
                        races.push(Race {
                            first: i,
                            second: j,
                            obj: obj_i,
                        });
                    }
                }
            }
        }
        blunt_obs::counter("trace.hb.races").add(races.len() as u64);
        blunt_obs::counter("trace.hb.reorderable").add(reorderable_adjacent.len() as u64);
        HbReport {
            reorderable_adjacent,
            races,
            concurrent_calls,
        }
    }
}

/// Two causally unordered operation invocations on the same object, at least
/// one of which mutates it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Race {
    /// Index of the earlier (in recorded order) racing `Call` event.
    pub first: usize,
    /// Index of the later racing `Call` event.
    pub second: usize,
    /// The contended object.
    pub obj: ObjId,
}

/// What the adversary could have reordered: the output of
/// [`HbAnalysis::report`].
#[derive(Clone, Debug, Default)]
pub struct HbReport {
    /// Adjacent event pairs `(i, i+1)` that are causally unordered — swapping
    /// them yields another legal schedule of the same program.
    pub reorderable_adjacent: Vec<(usize, usize)>,
    /// Concurrent same-object call pairs with at least one mutator.
    pub races: Vec<Race>,
    /// All concurrent same-object call pairs, mutating or not.
    pub concurrent_calls: usize,
}

impl HbReport {
    /// True when the trace is sequential as far as this analysis can tell:
    /// no races and no reorderable adjacent pairs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.races.is_empty() && self.reorderable_adjacent.is_empty()
    }

    /// Renders a human-readable summary, quoting the racing events from
    /// `trace` (which must be the trace the report was derived from).
    #[must_use]
    pub fn summary(&self, trace: &Trace) -> String {
        const SHOWN: usize = 12;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "happens-before report: {} race(s), {} reorderable adjacent pair(s), {} concurrent call pair(s)",
            self.races.len(),
            self.reorderable_adjacent.len(),
            self.concurrent_calls,
        );
        for r in self.races.iter().take(SHOWN) {
            let _ = writeln!(
                s,
                "  race on {}: #{} ∥ #{}  ({}  ∥  {})",
                r.obj,
                r.first,
                r.second,
                trace.events()[r.first],
                trace.events()[r.second],
            );
        }
        if self.races.len() > SHOWN {
            let _ = writeln!(s, "  … {} more race(s)", self.races.len() - SHOWN);
        }
        for &(i, j) in self.reorderable_adjacent.iter().take(SHOWN) {
            let _ = writeln!(s, "  swappable: #{i} ↔ #{j}");
        }
        if self.reorderable_adjacent.len() > SHOWN {
            let _ = writeln!(
                s,
                "  … {} more swappable pair(s)",
                self.reorderable_adjacent.len() - SHOWN
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_core::ids::{CallSite, InvId, MethodId, ObjId, Pid};
    use blunt_core::value::Val;

    fn call(pid: u32, obj: u32, method: MethodId, inv: u64) -> TraceEvent {
        TraceEvent::Call {
            inv: InvId(inv),
            pid: Pid(pid),
            obj: ObjId(obj),
            method,
            arg: Val::Nil,
            site: CallSite::new(Pid(pid), 0, 0),
        }
    }

    fn ret(pid: u32, inv: u64) -> TraceEvent {
        TraceEvent::Return {
            inv: InvId(inv),
            pid: Pid(pid),
            val: Val::Nil,
        }
    }

    #[test]
    fn single_process_trace_is_totally_ordered() {
        let mut t = Trace::new();
        t.extend(vec![
            call(0, 0, MethodId::WRITE, 1),
            ret(0, 1),
            call(0, 0, MethodId::READ, 2),
            ret(0, 2),
        ]);
        let hb = analyze(&t, 3);
        for i in 0..t.len() {
            for j in (i + 1)..t.len() {
                assert!(hb.ordered(i, j), "{i} must precede {j}");
                assert!(!hb.concurrent(i, j));
            }
        }
        let report = hb.report(&t);
        assert!(report.is_empty(), "sequential trace must have empty report");
        assert_eq!(report.concurrent_calls, 0);
    }

    #[test]
    fn unrelated_processes_race_on_a_shared_object() {
        // p0 writes obj0 while p1 reads obj0, with no messages between them:
        // the four events form two independent chains.
        let mut t = Trace::new();
        t.extend(vec![
            call(0, 0, MethodId::WRITE, 1),
            call(1, 0, MethodId::READ, 2),
            ret(0, 1),
            ret(1, 2),
        ]);
        let hb = analyze(&t, 2);
        assert!(hb.concurrent(0, 1));
        assert!(hb.concurrent(2, 3));
        assert!(hb.ordered(0, 2) && hb.ordered(1, 3));
        let report = hb.report(&t);
        assert_eq!(
            report.races,
            vec![Race {
                first: 0,
                second: 1,
                obj: ObjId(0)
            }]
        );
        assert!(!report.reorderable_adjacent.is_empty());
        let text = report.summary(&t);
        assert!(text.contains("1 race(s)"), "summary lists the race: {text}");
    }

    #[test]
    fn two_reads_are_concurrent_but_not_a_race() {
        let mut t = Trace::new();
        t.extend(vec![
            call(0, 0, MethodId::READ, 1),
            call(1, 0, MethodId::READ, 2),
        ]);
        let report = analyze(&t, 2).report(&t);
        assert!(report.races.is_empty());
        assert_eq!(report.concurrent_calls, 1);
        assert_eq!(report.reorderable_adjacent, vec![(0, 1)]);
    }

    #[test]
    fn delivery_edges_order_across_processes() {
        // p0 steps, then p1 receives a message from p0: everything p0 did
        // before the delivery happens-before the delivery and p1's later
        // steps.
        let mut t = Trace::new();
        t.extend(vec![
            TraceEvent::Internal {
                pid: Pid(0),
                label: "compute".into(),
            },
            TraceEvent::Deliver {
                src: Pid(0),
                dst: Pid(1),
                label: "m".into(),
            },
            TraceEvent::Internal {
                pid: Pid(1),
                label: "after".into(),
            },
        ]);
        let hb = analyze(&t, 2);
        assert!(hb.ordered(0, 1));
        assert!(hb.ordered(0, 2));
        assert!(hb.ordered(1, 2));
        assert!(analyze(&t, 2).report(&t).reorderable_adjacent.is_empty());
    }

    #[test]
    fn base_accesses_conflict_even_across_processes() {
        let ev = |pid: u32, label: &str| TraceEvent::Internal {
            pid: Pid(pid),
            label: label.into(),
        };
        let mut t = Trace::new();
        t.extend(vec![
            ev(0, BASE_ACCESS_LABEL),
            ev(1, BASE_ACCESS_LABEL),
            ev(2, "unrelated"),
        ]);
        let hb = analyze(&t, 3);
        assert!(hb.ordered(0, 1), "base accesses serialize");
        assert!(hb.concurrent(0, 2) && hb.concurrent(1, 2));
    }

    #[test]
    fn clocks_have_the_documented_shape() {
        let mut t = Trace::new();
        t.extend(vec![
            TraceEvent::Internal {
                pid: Pid(0),
                label: "a".into(),
            },
            TraceEvent::Internal {
                pid: Pid(7),
                label: "clamped".into(),
            },
        ]);
        let hb = analyze(&t, 2);
        assert_eq!(hb.lanes(), 2);
        assert_eq!(hb.clock(0), &[1, 0]);
        // Pid(7) clamps into the last lane.
        assert_eq!(hb.clock(1), &[0, 1]);
        assert!(hb.concurrent(0, 1));
    }
}
