//! Renderers for the adversary decision artifacts of
//! `blunt_sim::explore::Solver`: the principal variation and the recorded
//! expectimax game tree.

use std::fmt::Write as _;

use blunt_sim::explore::{Pv, PvStepKind, SearchTrace};

/// Renders a principal variation as a numbered schedule.
///
/// Each line shows the exact win probability *after* the step, so the reader
/// can watch the adversary's prospects evolve: adversary moves never decrease
/// the value (it maximizes), coin flips resolve an average into one branch.
#[must_use]
pub fn render_pv(pv: &Pv) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "principal variation — value {} ({:.4})",
        pv.value,
        pv.value.to_f64()
    );
    for (i, step) in pv.steps.iter().enumerate() {
        let tag = match &step.kind {
            PvStepKind::Adversary { alternatives } => format!("adv/{alternatives}"),
            PvStepKind::Random { choices, chosen } => format!("coin {chosen} of {choices}"),
        };
        let _ = writeln!(
            s,
            "{:>3}. [{:>8}] {:<14} {}",
            i + 1,
            step.value.to_string(),
            tag,
            step.label
        );
    }
    let _ = writeln!(s, "outcome: {}", pv.outcome);
    s
}

/// Renders a recorded [`SearchTrace`] as an indented tree, depth-first from
/// the root, stopping after `max_lines` lines.
///
/// Chosen edges (the adversary's argmax) are marked `▸`; edges whose subtree
/// was answered by the memo table or never expanded (pruned by early exit)
/// have no recorded child and are marked `(memo/pruned)`.
#[must_use]
pub fn render_tree(tree: &SearchTrace, max_lines: usize) -> String {
    let mut s = String::new();
    let Some(root) = tree.root() else {
        let _ = writeln!(s, "search tree: empty");
        return s;
    };
    let _ = writeln!(
        s,
        "search tree — {} node(s) recorded, {} truncated, root value {}",
        tree.len(),
        tree.truncated,
        root.value
    );
    let mut lines = 0usize;
    render_node(tree, root.id, &mut s, &mut lines, max_lines);
    if lines >= max_lines {
        let _ = writeln!(s, "… (line budget reached)");
    }
    s
}

fn render_node(tree: &SearchTrace, id: usize, s: &mut String, lines: &mut usize, max_lines: usize) {
    if *lines >= max_lines {
        return;
    }
    let node = &tree.nodes()[id];
    let pad = "  ".repeat(node.depth);
    let _ = writeln!(s, "{pad}[{} {}]", node.kind.as_str(), node.value);
    *lines += 1;
    for edge in &node.edges {
        if *lines >= max_lines {
            return;
        }
        let mark = if edge.chosen { '▸' } else { '·' };
        let memo = if edge.child.is_none() {
            " (memo/pruned)"
        } else {
            ""
        };
        let _ = writeln!(s, "{pad} {mark} {} → {}{memo}", edge.label, edge.value);
        *lines += 1;
        if let Some(child) = edge.child {
            render_node(tree, child, s, lines, max_lines);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blunt_sim::explore::{ExploreBudget, Solver};
    use blunt_sim::rng::Tape;
    use blunt_sim::toy::GambleGame;

    #[test]
    fn renders_the_gamble_game_pv_and_tree() {
        let mut solver =
            Solver::new(&GambleGame::is_bad, ExploreBudget::default()).record_tree(10_000);
        let pv = solver
            .principal_variation(&GambleGame::new(), &mut Tape::new(vec![1, 1, 1]), 64)
            .expect("pv exists");
        let text = render_pv(&pv);
        assert!(text.contains("value 5/8"), "{text}");
        assert!(text.contains("Flip"), "{text}");
        assert!(text.contains("coin 1 of 2"), "{text}");
        assert!(text.lines().count() == pv.steps.len() + 2, "{text}");

        let tree = solver.take_tree().expect("tree recorded");
        let rendered = render_tree(&tree, 200);
        assert!(rendered.contains("root value 5/8"), "{rendered}");
        assert!(rendered.contains("[adversary"), "{rendered}");
        assert!(rendered.contains("[random"), "{rendered}");
        assert!(rendered.contains('▸'), "chosen edge marked: {rendered}");
    }

    #[test]
    fn tree_rendering_respects_the_line_budget() {
        let mut solver =
            Solver::new(&GambleGame::is_bad, ExploreBudget::default()).record_tree(10_000);
        let _ = solver.solve(&GambleGame::new());
        let tree = solver.take_tree().unwrap();
        let rendered = render_tree(&tree, 3);
        assert!(rendered.contains("line budget reached"), "{rendered}");
        assert!(rendered.lines().count() <= 6, "{rendered}");
        assert!(render_tree(&SearchTrace::with_max_nodes(0), 10).contains("empty"));
    }
}
